#include "analyze/lexer.hpp"

#include <array>
#include <cctype>

namespace streak::analyze {

namespace {

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest first so maximal munch works with
/// a simple prefix scan.
constexpr std::array<std::string_view, 24> kPuncts = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "++",  "--",
};

class Lexer {
public:
    explicit Lexer(std::string_view src) : src_(src) {}

    LexedSource run() {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                atLineStart_ = true;
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
                ++pos_;
                continue;
            }
            if (c == '/' && peek(1) == '/') {
                lexLineComment();
                continue;
            }
            if (c == '/' && peek(1) == '*') {
                lexBlockComment();
                continue;
            }
            if (c == '#' && atLineStart_) {
                lexDirective();
                continue;
            }
            atLineStart_ = false;
            if (c == '"') {
                lexString();
                continue;
            }
            if (c == '\'') {
                lexChar();
                continue;
            }
            if (isIdentStart(c)) {
                lexIdentifier();
                continue;
            }
            if (isDigit(c) || (c == '.' && isDigit(peek(1)))) {
                lexNumber();
                continue;
            }
            lexPunct();
        }
        return std::move(out_);
    }

private:
    [[nodiscard]] char peek(size_t ahead) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void emit(TokKind kind, size_t begin, int line) {
        out_.tokens.push_back(
            {kind, std::string(src_.substr(begin, pos_ - begin)), line});
    }

    void lexLineComment() {
        const size_t begin = pos_;
        const int line = line_;
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        out_.comments.push_back(
            {std::string(src_.substr(begin, pos_ - begin)), line});
    }

    void lexBlockComment() {
        const size_t begin = pos_;
        const int line = line_;
        pos_ += 2;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '*' && peek(1) == '/') {
                pos_ += 2;
                break;
            }
            if (src_[pos_] == '\n') ++line_;
            ++pos_;
        }
        out_.comments.push_back(
            {std::string(src_.substr(begin, pos_ - begin)), line});
    }

    /// Ordinary string literal starting at a '"'; escapes respected.
    void lexString() {
        const size_t begin = pos_;
        const int line = line_;
        ++pos_;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
                pos_ += 2;
                continue;
            }
            if (src_[pos_] == '"') {
                ++pos_;
                break;
            }
            if (src_[pos_] == '\n') ++line_;  // ill-formed, but keep lines
            ++pos_;
        }
        out_.tokens.push_back(
            {TokKind::String, std::string(src_.substr(begin, pos_ - begin)),
             line});
    }

    /// Raw string literal: pos_ sits on the '"' after an R-suffixed prefix.
    void lexRawString(size_t prefixBegin, int line) {
        ++pos_;  // consume the quote
        const size_t delimBegin = pos_;
        while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
        const std::string closer =
            ")" + std::string(src_.substr(delimBegin, pos_ - delimBegin)) + "\"";
        while (pos_ < src_.size()) {
            if (src_.compare(pos_, closer.size(), closer) == 0) {
                pos_ += closer.size();
                break;
            }
            if (src_[pos_] == '\n') ++line_;
            ++pos_;
        }
        out_.tokens.push_back(
            {TokKind::String,
             std::string(src_.substr(prefixBegin, pos_ - prefixBegin)), line});
    }

    void lexChar() {
        const size_t begin = pos_;
        const int line = line_;
        ++pos_;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
                pos_ += 2;
                continue;
            }
            if (src_[pos_] == '\'') {
                ++pos_;
                break;
            }
            if (src_[pos_] == '\n') break;  // unterminated; don't eat lines
            ++pos_;
        }
        out_.tokens.push_back(
            {TokKind::Char, std::string(src_.substr(begin, pos_ - begin)),
             line});
    }

    void lexIdentifier() {
        const size_t begin = pos_;
        const int line = line_;
        while (pos_ < src_.size() && isIdentChar(src_[pos_])) ++pos_;
        const std::string_view id = src_.substr(begin, pos_ - begin);
        // Raw (and prefixed-raw) string literals: the prefix ends in R and
        // a quote follows immediately.
        if (pos_ < src_.size() && src_[pos_] == '"' &&
            (id == "R" || id == "u8R" || id == "uR" || id == "LR" ||
             id == "UR")) {
            lexRawString(begin, line);
            return;
        }
        // Encoding prefixes of ordinary literals (u8"x", L'c'): emit the
        // literal alone; the prefix is irrelevant to every rule.
        emit(TokKind::Identifier, begin, line);
    }

    /// pp-number: digits plus identifier chars, dots, digit separators and
    /// signed exponents. Over-accepts, which is fine for rule purposes.
    void lexNumber() {
        const size_t begin = pos_;
        const int line = line_;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (isIdentChar(c) || c == '.' || c == '\'') {
                const bool exponent = (c == 'e' || c == 'E' || c == 'p' ||
                                       c == 'P') &&
                                      (peek(1) == '+' || peek(1) == '-');
                ++pos_;
                if (exponent) ++pos_;
                continue;
            }
            break;
        }
        emit(TokKind::Number, begin, line);
    }

    void lexPunct() {
        const size_t begin = pos_;
        const int line = line_;
        for (const std::string_view p : kPuncts) {
            if (src_.compare(pos_, p.size(), p) == 0) {
                pos_ += p.size();
                emit(TokKind::Punct, begin, line);
                return;
            }
        }
        ++pos_;
        emit(TokKind::Punct, begin, line);
    }

    /// Preprocessor directive: `#include` and `#pragma once` are absorbed
    /// into structured fields; any other directive has its body lexed as
    /// ordinary tokens so rules still see macro definitions.
    void lexDirective() {
        atLineStart_ = false;
        ++pos_;  // '#'
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t')) {
            ++pos_;
        }
        const size_t nameBegin = pos_;
        while (pos_ < src_.size() && isIdentChar(src_[pos_])) ++pos_;
        const std::string_view name = src_.substr(nameBegin, pos_ - nameBegin);
        if (name == "include") {
            lexIncludeTarget();
            return;
        }
        if (name == "pragma") {
            const size_t rest = pos_;
            size_t end = rest;
            while (end < src_.size() && src_[end] != '\n') ++end;
            if (src_.substr(rest, end - rest).find("once") !=
                std::string_view::npos) {
                out_.pragmaOnce = true;
            }
            pos_ = end;
            return;
        }
        // Everything else (define, if, ifdef, ...) falls back to normal
        // lexing; backslash-newline continuations tokenize harmlessly.
    }

    void lexIncludeTarget() {
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t')) {
            ++pos_;
        }
        if (pos_ >= src_.size()) return;
        const int line = line_;
        const char open = src_[pos_];
        if (open != '"' && open != '<') return;  // computed include; skip
        const char close = open == '"' ? '"' : '>';
        ++pos_;
        const size_t begin = pos_;
        while (pos_ < src_.size() && src_[pos_] != close &&
               src_[pos_] != '\n') {
            ++pos_;
        }
        out_.includes.push_back(
            {std::string(src_.substr(begin, pos_ - begin)), open == '<',
             line});
        if (pos_ < src_.size() && src_[pos_] == close) ++pos_;
    }

    std::string_view src_;
    size_t pos_ = 0;
    int line_ = 1;
    bool atLineStart_ = true;
    LexedSource out_;
};

}  // namespace

LexedSource lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace streak::analyze
