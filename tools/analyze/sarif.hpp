// SARIF 2.1.0 export of analyzer findings (DESIGN.md "Static analysis").
// The document is built on the in-tree src/obs/json writer, so it stays
// parseable by the same parser the tests and report tooling already use;
// editors and CI services ingest it natively.
#pragma once

#include <vector>

#include "analyze/analyzer.hpp"
#include "obs/json.hpp"

namespace streak::analyze {

/// Build the SARIF document: one run, the full rule catalog under
/// tool.driver.rules, one result per finding (level "error" — the
/// analyzer has no advisory tier; waivers are the escape hatch).
[[nodiscard]] obs::json::Value sarifDocument(
    const std::vector<Finding>& findings);

}  // namespace streak::analyze
