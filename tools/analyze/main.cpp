// streak_analyze — token-level determinism and layering analyzer
// (DESIGN.md "Static analysis"). Registered as a ctest and run as
// check.sh stage 8 over src/ and tools/.
//
// Usage:
//   streak_analyze [--layers <layers.txt>] [--sarif <out.json>]
//                  [--no-layering] [--legacy-only] <dir-or-file>...
//
// Exits 1 on any finding (unused suppression markers included), 2 on
// usage or configuration errors. Findings print in the classic
// file:line: [rule] message form; --sarif additionally writes the full
// SARIF 2.1 document (written even when clean, so CI always has the
// artifact).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/sarif.hpp"

namespace {

namespace fs = std::filesystem;
using namespace streak::analyze;

bool readFile(const fs::path& p, std::string* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = std::move(ss).str();
    return true;
}

int usage() {
    std::cerr << "usage: streak_analyze [--layers <layers.txt>] "
                 "[--sarif <out.json>] [--no-layering] [--legacy-only] "
                 "<dir-or-file>...\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    AnalyzerOptions opts;
    std::string layersPath;
    std::string sarifPath;
    std::vector<fs::path> roots;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--layers" && a + 1 < argc) {
            layersPath = argv[++a];
        } else if (arg == "--sarif" && a + 1 < argc) {
            sarifPath = argv[++a];
        } else if (arg == "--no-layering") {
            opts.layering = false;
        } else if (arg == "--legacy-only") {
            opts.determinismRules = false;
            opts.robustnessRules = false;
            opts.observabilityRules = false;
            opts.layering = false;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) return usage();
    if (opts.layering && layersPath.empty()) {
        std::cerr << "streak_analyze: --layers is required unless "
                     "--no-layering is given\n";
        return 2;
    }

    std::vector<fs::path> paths;
    for (const fs::path& root : roots) {
        if (!fs::exists(root)) {
            std::cerr << "streak_analyze: no such path: " << root << "\n";
            return 2;
        }
        if (fs::is_regular_file(root)) {
            paths.push_back(root);
            continue;
        }
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file()) continue;
            const fs::path& p = entry.path();
            if (p.extension() == ".hpp" || p.extension() == ".cpp") {
                paths.push_back(p);
            }
        }
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path& p : paths) {
        std::string text;
        if (!readFile(p, &text)) {
            std::cerr << "streak_analyze: could not read " << p << "\n";
            return 2;
        }
        files.push_back({p.generic_string(), lex(text)});
    }

    LayerSpec layers;
    if (opts.layering) {
        std::string text;
        if (!readFile(layersPath, &text)) {
            std::cerr << "streak_analyze: could not read layers file "
                      << layersPath << "\n";
            return 2;
        }
        std::string error;
        if (!parseLayerSpec(text, layersPath, &layers, &error)) {
            std::cerr << "streak_analyze: " << error << "\n";
            return 2;
        }
    }

    const std::vector<Finding> findings =
        analyze(files, opts.layering ? &layers : nullptr, opts);

    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        if (!out) {
            std::cerr << "streak_analyze: could not write " << sarifPath
                      << "\n";
            return 2;
        }
        sarifDocument(findings).write(out, 2);
        out << "\n";
    }

    for (const Finding& f : findings) {
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    if (!findings.empty()) {
        std::cerr << "streak_analyze: " << findings.size() << " finding(s) in "
                  << files.size() << " files\n";
        return 1;
    }
    std::cout << "streak_analyze: " << files.size() << " files clean\n";
    return 0;
}
