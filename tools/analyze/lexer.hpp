// Token-level C++ lexer shared by the static-analysis tools
// (streak_analyze, streak_lint; DESIGN.md "Static analysis").
//
// This is not a compiler front end: it produces a flat token stream with
// line numbers, which is exactly the altitude the project rules need.
// What it does get right — and what the old line-regex lint could not —
// is the lexical grammar that decides whether text is code at all:
// line and block comments, string/char literals with escapes, raw string
// literals with arbitrary delimiters, and preprocessor directives
// (includes and `#pragma once` are parsed out; other directive bodies
// are tokenized normally so macro definitions stay visible to rules).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace streak::analyze {

enum class TokKind {
    Identifier,  // identifiers and keywords alike
    Number,      // pp-number: 1, 0x1f, 1.0e-3f, 1'000
    String,      // "...", R"(...)", prefix handled by the caller token
    Char,        // 'c', '\n'
    Punct,       // operators and punctuation; multi-char ops are one token
};

struct Token {
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;  // 1-based physical line of the token's first character
};

/// A comment, kept out of the code token stream but retained for
/// suppression-marker scanning.
struct Comment {
    std::string text;  // delimiters included
    int line = 1;      // line of the comment's first character
};

struct IncludeDirective {
    std::string path;    // target exactly as written between the delimiters
    bool angled = false;  // <...> rather than "..."
    int line = 1;
};

struct LexedSource {
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    std::vector<IncludeDirective> includes;
    bool pragmaOnce = false;
};

/// Lex a complete translation unit. Never fails: unterminated constructs
/// are closed at end of input (the rules run on best-effort structure).
[[nodiscard]] LexedSource lex(std::string_view src);

}  // namespace streak::analyze
