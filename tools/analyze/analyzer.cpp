#include "analyze/analyzer.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <tuple>

namespace streak::analyze {

namespace {

// ---------------------------------------------------------------------
// Rule catalog

const std::vector<RuleInfo> kCatalog = {
    {"banned-function",
     "std::rand / srand and the printf family have no place in library code"},
    {"raw-new-delete",
     "no raw new / delete; own memory via containers or smart pointers"},
    {"pragma-once", "every header starts its include guard life as #pragma once"},
    {"relative-include",
     "#include \"../...\" bypasses module boundaries; use the "
     "module-qualified path from src/"},
    {"float-equality",
     "== / != against a floating literal needs an epsilon helper"},
    {"bare-assert",
     "use STREAK_ASSERT / STREAK_REQUIRE instead of <cassert>"},
    {"raw-timing",
     "raw std::chrono clock reads outside src/obs and src/parallel"},
    {"unordered-iteration",
     "iteration over an unordered container; order can escape into results"},
    {"pointer-keyed", "container keyed by raw pointer value"},
    {"thread-state",
     "thread-identity or thread_local state outside src/parallel and src/obs"},
    {"nondet-random",
     "std::random_device or unseeded random engine outside src/gen"},
    {"catch-all",
     "catch (...) outside src/parallel and src/robust swallows trips and "
     "faults"},
    {"flow-throw",
     "src/flow may only throw robust::StreakException; ad-hoc types bypass "
     "the structured-error contract"},
    {"obs-global-registry",
     "obs::counter / obs::histogram free-function lookup outside src/obs; "
     "resolve handles through the run's obs::Session"},
    {"layering", "include edge not declared in the module layering DAG"},
    {"unused-suppression", "suppression marker that suppresses nothing"},
};

bool knownRule(std::string_view id) {
    return std::any_of(kCatalog.begin(), kCatalog.end(),
                       [&](const RuleInfo& r) { return r.id == id; });
}

/// Historic marker spellings that map onto a catalog rule.
std::string canonicalRule(std::string name) {
    if (name == "float-eq") return "float-equality";
    return name;
}

// ---------------------------------------------------------------------
// Suppression markers

struct Marker {
    int line = 0;
    std::string rule;
    bool known = false;
    bool used = false;
};

bool isRuleNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/// Collect `<marker>: rule[, rule...]` waivers from a file's comments.
std::vector<Marker> collectMarkers(const LexedSource& lexed,
                                   const std::vector<std::string>& words) {
    std::vector<Marker> out;
    for (const Comment& c : lexed.comments) {
        for (const std::string& word : words) {
            const std::string needle = word + ":";
            for (size_t at = c.text.find(needle); at != std::string::npos;
                 at = c.text.find(needle, at + 1)) {
                const int line =
                    c.line + static_cast<int>(std::count(
                                 c.text.begin(),
                                 c.text.begin() + static_cast<long>(at), '\n'));
                size_t p = at + needle.size();
                // One or more rule names, comma or whitespace separated;
                // anything else ends the list (prose rationale may follow).
                bool any = false;
                while (p < c.text.size()) {
                    while (p < c.text.size() &&
                           (c.text[p] == ' ' || (any && c.text[p] == ','))) {
                        ++p;
                    }
                    const size_t begin = p;
                    while (p < c.text.size() && isRuleNameChar(c.text[p])) ++p;
                    if (p == begin) break;
                    Marker m;
                    m.line = line;
                    m.rule = canonicalRule(c.text.substr(begin, p - begin));
                    m.known = knownRule(m.rule);
                    out.push_back(std::move(m));
                    any = true;
                    if (p >= c.text.size() || c.text[p] != ',') break;
                }
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Token-rule helpers

struct FileContext {
    const SourceFile* file = nullptr;
    std::string srcRel;              // empty outside a src tree
    bool isHeader = false;
    bool timingExempt = false;       // src/obs, src/parallel
    bool threadExempt = false;       // src/obs, src/parallel
    bool randomExempt = false;       // src/gen
    bool catchAllExempt = false;     // src/parallel, src/robust
    bool inFlow = false;             // src/flow
    bool obsExempt = false;          // src/obs
    const std::set<std::string>* unorderedVars = nullptr;   // this file + header
    const std::set<std::string>* unorderedFns = nullptr;    // global
};

bool startsWith(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

bool isPunct(const Token& t, std::string_view text) {
    return t.kind == TokKind::Punct && t.text == text;
}

bool isIdent(const Token& t, std::string_view text) {
    return t.kind == TokKind::Identifier && t.text == text;
}

/// Index just past a balanced template argument list; `i` points at the
/// opening '<'. Merged '>>' closes two levels.
size_t skipTemplateArgs(const std::vector<Token>& toks, size_t i) {
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct) continue;
        if (toks[i].text == "<") ++depth;
        if (toks[i].text == ">") --depth;
        if (toks[i].text == ">>") depth -= 2;
        if (depth <= 0 && toks[i].text != "<") return i + 1;
    }
    return i;
}

/// Names declared with an unordered container type in one file, split by
/// whether the declared entity is callable (function) or not (variable).
struct UnorderedDecls {
    std::set<std::string> vars;
    std::set<std::string> fns;
};

UnorderedDecls collectUnorderedDecls(const LexedSource& lexed) {
    UnorderedDecls out;
    const std::vector<Token>& toks = lexed.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier) continue;
        const std::string& t = toks[i].text;
        if (t != "unordered_map" && t != "unordered_set" &&
            t != "unordered_multimap" && t != "unordered_multiset") {
            continue;
        }
        if (!isPunct(toks[i + 1], "<")) continue;
        size_t j = skipTemplateArgs(toks, i + 1);
        while (j < toks.size() &&
               (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                isIdent(toks[j], "const"))) {
            ++j;
        }
        if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
        const bool call = j + 1 < toks.size() && isPunct(toks[j + 1], "(");
        (call ? out.fns : out.vars).insert(toks[j].text);
    }
    return out;
}

class TokenRulePass {
public:
    TokenRulePass(const FileContext& ctx, const AnalyzerOptions& opts,
                  std::vector<Finding>* out)
        : ctx_(ctx), opts_(opts), out_(out) {}

    void run() {
        const LexedSource& lexed = ctx_.file->lexed;
        if (opts_.legacyRules) {
            if (ctx_.isHeader && !lexed.pragmaOnce) {
                add(1, "pragma-once", "header is missing #pragma once");
            }
            for (const IncludeDirective& inc : lexed.includes) {
                if (!inc.angled && (startsWith(inc.path, "../") ||
                                    startsWith(inc.path, "./"))) {
                    add(inc.line, "relative-include",
                        "relative include bypasses module boundaries; use "
                        "the module-qualified path");
                }
                if (inc.angled &&
                    (inc.path == "cassert" || inc.path == "assert.h")) {
                    add(inc.line, "bare-assert",
                        "bare assert() reports no context; use STREAK_ASSERT "
                        "/ STREAK_REQUIRE / STREAK_INVARIANT");
                }
            }
        }
        const std::vector<Token>& toks = lexed.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (opts_.legacyRules) runLegacyAt(toks, i);
            if (opts_.determinismRules) runDeterminismAt(toks, i);
            if (opts_.robustnessRules) runRobustnessAt(toks, i);
            if (opts_.observabilityRules) runObservabilityAt(toks, i);
        }
    }

private:
    void add(int line, std::string rule, std::string message) {
        out_->push_back(
            {ctx_.file->path, line, std::move(rule), std::move(message)});
    }

    [[nodiscard]] static bool floatLiteral(const Token& t) {
        return t.kind == TokKind::Number &&
               t.text.find('.') != std::string::npos;
    }

    void runLegacyAt(const std::vector<Token>& toks, size_t i) {
        const Token& tok = toks[i];
        if (tok.kind == TokKind::Identifier) {
            for (const char* banned :
                 {"printf", "fprintf", "sprintf", "snprintf", "srand"}) {
                if (tok.text == banned) {
                    add(tok.line, "banned-function",
                        tok.text + " is banned in library code");
                }
            }
            if (tok.text == "rand" && i >= 2 && isPunct(toks[i - 1], "::") &&
                isIdent(toks[i - 2], "std")) {
                add(tok.line, "banned-function",
                    "std::rand is banned (non-deterministic seeding, "
                    "poor distribution)");
            }
            if (tok.text == "new") {
                add(tok.line, "raw-new-delete",
                    "raw new is banned; use containers or smart pointers");
            }
            if (tok.text == "delete" &&
                (i == 0 || !isPunct(toks[i - 1], "="))) {
                add(tok.line, "raw-new-delete",
                    "raw delete is banned; use containers or smart pointers");
            }
            if (tok.text == "assert" &&
                (i == 0 || (!isPunct(toks[i - 1], ".") &&
                            !isPunct(toks[i - 1], "->") &&
                            !isPunct(toks[i - 1], "::")))) {
                add(tok.line, "bare-assert",
                    "bare assert() reports no context; use STREAK_ASSERT / "
                    "STREAK_REQUIRE / STREAK_INVARIANT");
            }
            if (!ctx_.timingExempt) {
                for (const char* clock : {"steady_clock",
                                          "high_resolution_clock",
                                          "system_clock"}) {
                    if (tok.text == clock) {
                        add(tok.line, "raw-timing",
                            tok.text + " outside src/obs and src/parallel; "
                                       "time through obs::Stopwatch or spans");
                    }
                }
            }
        }
        if (tok.kind == TokKind::Punct &&
            (tok.text == "==" || tok.text == "!=")) {
            const bool lhs = i > 0 && floatLiteral(toks[i - 1]);
            const bool rhs = i + 1 < toks.size() && floatLiteral(toks[i + 1]);
            if (lhs || rhs) {
                add(tok.line, "float-equality",
                    "== / != against a float literal; use check::approxEqual "
                    "or waive with the float-equality marker");
            }
        }
    }

    void runDeterminismAt(const std::vector<Token>& toks, size_t i) {
        const Token& tok = toks[i];
        if (tok.kind != TokKind::Identifier) return;

        if (tok.text == "for" && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "(")) {
            checkRangeFor(toks, i);
        }

        // std::map / std::set / std::unordered_* keyed by a raw pointer.
        if (tok.text == "std" && i + 3 < toks.size() &&
            isPunct(toks[i + 1], "::") &&
            toks[i + 2].kind == TokKind::Identifier &&
            isPunct(toks[i + 3], "<")) {
            const std::string& c = toks[i + 2].text;
            if (c == "map" || c == "multimap" || c == "set" ||
                c == "multiset" || c == "unordered_map" ||
                c == "unordered_set" || c == "unordered_multimap" ||
                c == "unordered_multiset") {
                checkPointerKey(toks, i + 3, c);
            }
        }

        if (!ctx_.threadExempt) {
            if (tok.text == "thread_local") {
                add(tok.line, "thread-state",
                    "thread_local state outside src/parallel and src/obs; "
                    "results must not depend on which thread ran the work");
            }
            if (tok.text == "this_thread") {
                add(tok.line, "thread-state",
                    "std::this_thread (thread identity) outside src/parallel "
                    "and src/obs; results must not depend on thread ids");
            }
        }

        if (!ctx_.randomExempt) {
            if (tok.text == "random_device") {
                add(tok.line, "nondet-random",
                    "std::random_device outside src/gen; all randomness "
                    "flows from explicit seeds");
            }
            for (const char* engine :
                 {"mt19937", "mt19937_64", "default_random_engine",
                  "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
                  "knuth_b"}) {
                if (tok.text != engine) continue;
                // `engine name;` or `engine name{}` is default-seeded.
                if (i + 2 < toks.size() &&
                    toks[i + 1].kind == TokKind::Identifier &&
                    (isPunct(toks[i + 2], ";") ||
                     (i + 3 < toks.size() && isPunct(toks[i + 2], "{") &&
                      isPunct(toks[i + 3], "}")))) {
                    add(tok.line, "nondet-random",
                        std::string("unseeded std::") + engine +
                            " outside src/gen; construct engines from an "
                            "explicit seed");
                }
            }
        }
    }

    void runRobustnessAt(const std::vector<Token>& toks, size_t i) {
        const Token& tok = toks[i];
        if (tok.kind != TokKind::Identifier) return;

        if (!ctx_.catchAllExempt && tok.text == "catch" &&
            i + 2 < toks.size() && isPunct(toks[i + 1], "(") &&
            isPunct(toks[i + 2], "...")) {
            add(tok.line, "catch-all",
                "catch (...) outside src/parallel and src/robust swallows "
                "cancellation and fault trips; catch robust::StreakException "
                "or a concrete type");
        }

        if (ctx_.inFlow && tok.text == "throw") {
            // `throw;` rethrows the active exception unchanged — fine.
            // Otherwise the thrown expression must mention
            // StreakException; anything else escapes runStreak as a raw
            // foreign exception instead of a structured StreakError.
            if (i + 1 < toks.size() && isPunct(toks[i + 1], ";")) return;
            bool structured = false;
            for (size_t j = i + 1; j < toks.size() && j <= i + 6; ++j) {
                if (isPunct(toks[j], ";") || isPunct(toks[j], "(")) break;
                if (isIdent(toks[j], "StreakException")) structured = true;
            }
            if (!structured) {
                add(tok.line, "flow-throw",
                    "src/flow throws a non-StreakError type; raise a "
                    "structured error (robust::StreakException) so callers "
                    "see kind/stage/site");
            }
        }
    }

    void runObservabilityAt(const std::vector<Token>& toks, size_t i) {
        if (ctx_.obsExempt) return;
        const Token& tok = toks[i];
        if (tok.kind != TokKind::Identifier ||
            (tok.text != "counter" && tok.text != "histogram")) {
            return;
        }
        // Only the free-function lookups `obs::counter(...)` /
        // `obs::histogram(...)`; the member calls on a session —
        // obs::session().counter(...) — resolve against the run's own
        // registry and are the sanctioned spelling.
        if (i < 2 || !isPunct(toks[i - 1], "::") ||
            !isIdent(toks[i - 2], "obs")) {
            return;
        }
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "(")) return;
        add(tok.line, "obs-global-registry",
            "obs::" + tok.text +
                " resolves against whichever session is bound at call "
                "time (and invites cached handles that pin the wrong "
                "one); go through obs::session()." + tok.text + "(...)");
    }

    /// Flag `for (decl : range)` when the range expression mentions a name
    /// declared as an unordered container (this file or its header) or
    /// calls a function known to return one.
    void checkRangeFor(const std::vector<Token>& toks, size_t forIdx) {
        int depth = 0;
        size_t colon = 0;
        size_t close = 0;
        for (size_t i = forIdx + 1; i < toks.size(); ++i) {
            if (isPunct(toks[i], "(")) ++depth;
            if (isPunct(toks[i], ")")) {
                --depth;
                if (depth == 0) {
                    close = i;
                    break;
                }
            }
            if (depth == 1 && colon == 0 && isPunct(toks[i], ":")) colon = i;
        }
        if (colon == 0 || close == 0) return;  // classic for
        for (size_t i = colon + 1; i < close; ++i) {
            if (toks[i].kind != TokKind::Identifier) continue;
            const bool isVar = ctx_.unorderedVars != nullptr &&
                               ctx_.unorderedVars->contains(toks[i].text);
            const bool isCall = ctx_.unorderedFns != nullptr &&
                                ctx_.unorderedFns->contains(toks[i].text) &&
                                i + 1 < close && isPunct(toks[i + 1], "(");
            if (isVar || isCall) {
                add(toks[forIdx].line, "unordered-iteration",
                    "iterates unordered container '" + toks[i].text +
                        "'; iteration order is STL-specific — iterate a "
                        "sorted view, or waive where order cannot escape");
                return;
            }
        }
    }

    /// `i` points at the '<' after the container name: inspect the first
    /// template argument for a raw pointer declarator.
    void checkPointerKey(const std::vector<Token>& toks, size_t i,
                         const std::string& container) {
        int depth = 0;
        for (size_t j = i; j < toks.size(); ++j) {
            if (toks[j].kind != TokKind::Punct) continue;
            if (toks[j].text == "<") ++depth;
            if (toks[j].text == ">") --depth;
            if (toks[j].text == ">>") depth -= 2;
            if (depth <= 0) return;  // first argument ended without '*'
            if (depth == 1 && toks[j].text == ",") return;
            if (toks[j].text == "*") {
                add(toks[i].line, "pointer-keyed",
                    "std::" + container + " keyed by raw pointer value; "
                    "ordering/hashing by address is nondeterministic across "
                    "runs — key by a stable id");
                return;
            }
        }
    }

    const FileContext& ctx_;
    const AnalyzerOptions& opts_;
    std::vector<Finding>* out_;
};

// ---------------------------------------------------------------------
// Layering pass

std::string moduleOf(std::string_view srcRel, const LayerSpec& spec) {
    for (const auto& [prefix, module] : spec.overrides) {
        if (startsWith(srcRel, prefix)) return module;
    }
    const size_t slash = srcRel.find('/');
    if (slash == std::string_view::npos) return "";
    return std::string(srcRel.substr(0, slash));
}

/// Cycle detection over the declared edges; returns one cycle's modules
/// in order, or empty when the declaration is a DAG.
std::vector<std::string> findCycle(const LayerSpec& spec) {
    std::map<std::string, int> state;  // 0 new, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::vector<std::string> cycle;
    const std::function<bool(const std::string&)> visit =
        [&](const std::string& m) {
            state[m] = 1;
            stack.push_back(m);
            const auto it = spec.allowed.find(m);
            if (it != spec.allowed.end()) {
                for (const std::string& dep : it->second) {
                    const int s = state[dep];
                    if (s == 1) {
                        const auto at =
                            std::find(stack.begin(), stack.end(), dep);
                        cycle.assign(at, stack.end());
                        cycle.push_back(dep);
                        return true;
                    }
                    if (s == 0 && visit(dep)) return true;
                }
            }
            state[m] = 2;
            stack.pop_back();
            return false;
        };
    for (const auto& [m, deps] : spec.allowed) {
        if (state[m] == 0 && visit(m)) break;
    }
    return cycle;
}

void runLayering(const std::vector<SourceFile>& files, const LayerSpec& spec,
                 std::vector<Finding>* out) {
    if (const std::vector<std::string> cycle = findCycle(spec);
        !cycle.empty()) {
        std::ostringstream os;
        os << "declared layering has a cycle: ";
        for (size_t i = 0; i < cycle.size(); ++i) {
            if (i != 0) os << " -> ";
            os << cycle[i];
        }
        out->push_back({spec.file, 1, "layering", os.str()});
        return;  // edge checks against a cyclic spec prove nothing
    }

    std::vector<bool> exceptionUsed(spec.exceptions.size(), false);
    std::set<std::string> undeclaredModules;
    std::map<std::string, std::string> moduleExample;  // module -> a file

    for (const SourceFile& f : files) {
        const std::string srcRel = srcRelative(f.path);
        if (srcRel.empty()) continue;  // outside any src tree
        const std::string from = moduleOf(srcRel, spec);
        if (from.empty()) continue;
        const auto declared = spec.allowed.find(from);
        if (declared == spec.allowed.end()) {
            if (undeclaredModules.insert(from).second) {
                moduleExample.emplace(from, f.path);
            }
            continue;  // every edge from it would be noise
        }
        for (const IncludeDirective& inc : f.lexed.includes) {
            if (inc.angled) continue;
            const std::string to = moduleOf(inc.path, spec);
            if (to.empty() || to == from) continue;
            if (declared->second.contains(to)) continue;
            bool excepted = false;
            for (size_t e = 0; e < spec.exceptions.size(); ++e) {
                if (spec.exceptions[e].first == srcRel &&
                    spec.exceptions[e].second == to) {
                    exceptionUsed[e] = true;
                    excepted = true;
                }
            }
            if (excepted) continue;
            out->push_back(
                {f.path, inc.line, "layering",
                 "include of \"" + inc.path + "\" adds edge " + from +
                     " -> " + to + " not declared in " + spec.file});
        }
    }

    for (const std::string& m : undeclaredModules) {
        out->push_back({moduleExample[m], 1, "layering",
                        "module '" + m + "' has no layering declaration in " +
                            spec.file});
    }
    for (size_t e = 0; e < spec.exceptions.size(); ++e) {
        if (!exceptionUsed[e]) {
            out->push_back(
                {spec.file, 1, "layering",
                 "unused layering exception: " + spec.exceptions[e].first +
                     " -> " + spec.exceptions[e].second +
                     " (remove it so waivers cannot rot)"});
        }
    }
}

}  // namespace

// ---------------------------------------------------------------------
// Public interface

const std::vector<RuleInfo>& ruleCatalog() { return kCatalog; }

std::string srcRelative(std::string_view path) {
    size_t best = std::string_view::npos;
    for (size_t at = path.find("src/"); at != std::string_view::npos;
         at = path.find("src/", at + 1)) {
        if (at == 0 || path[at - 1] == '/') best = at;
    }
    if (best == std::string_view::npos) return "";
    return std::string(path.substr(best + 4));
}

bool parseLayerSpec(std::string_view text, std::string file, LayerSpec* spec,
                    std::string* error) {
    spec->file = std::move(file);
    std::istringstream in{std::string(text)};
    std::string line;
    int no = 0;
    const auto fail = [&](const std::string& why) {
        if (error != nullptr) {
            *error = spec->file + ":" + std::to_string(no) + ": " + why;
        }
        return false;
    };
    while (std::getline(in, line)) {
        ++no;
        if (const size_t hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream words(line);
        std::string first;
        if (!(words >> first)) continue;
        if (first == "module") {
            std::string prefix, name;
            if (!(words >> prefix >> name)) {
                return fail("expected: module <path-prefix> <name>");
            }
            spec->overrides.emplace_back(std::move(prefix), std::move(name));
            continue;
        }
        if (first == "except") {
            std::string path, target;
            if (!(words >> path >> target)) {
                return fail("expected: except <src-relative-file> <module>");
            }
            spec->exceptions.emplace_back(std::move(path), std::move(target));
            continue;
        }
        if (first.back() != ':') {
            return fail("expected '<module>:' at start of layer line");
        }
        first.pop_back();
        if (spec->allowed.contains(first)) {
            return fail("duplicate layer entry for module '" + first + "'");
        }
        std::set<std::string>& deps = spec->allowed[first];
        for (std::string dep; words >> dep;) deps.insert(std::move(dep));
    }
    return true;
}

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const LayerSpec* layers,
                             const AnalyzerOptions& opts) {
    std::vector<Finding> findings;

    // Determinism pass 1: functions returning unordered containers are
    // visible repo-wide; variables stay scoped to their own file plus its
    // companion header (wire_ declared in topology.hpp, used in .cpp).
    std::set<std::string> globalFns;
    std::map<std::string, UnorderedDecls> declsOf;  // path -> decls
    if (opts.determinismRules) {
        for (const SourceFile& f : files) {
            UnorderedDecls d = collectUnorderedDecls(f.lexed);
            globalFns.insert(d.fns.begin(), d.fns.end());
            declsOf.emplace(f.path, std::move(d));
        }
    }
    const auto companionOf = [](const std::string& path) -> std::string {
        const auto swap = [&](std::string_view from, std::string_view to) {
            if (path.size() > from.size() &&
                path.substr(path.size() - from.size()) == from) {
                return path.substr(0, path.size() - from.size()) +
                       std::string(to);
            }
            return std::string();
        };
        std::string other = swap(".cpp", ".hpp");
        if (other.empty()) other = swap(".hpp", ".cpp");
        return other;
    };

    for (const SourceFile& f : files) {
        FileContext ctx;
        ctx.file = &f;
        ctx.srcRel = srcRelative(f.path);
        ctx.isHeader = f.path.size() > 4 &&
                       f.path.substr(f.path.size() - 4) == ".hpp";
        ctx.timingExempt = startsWith(ctx.srcRel, "obs/") ||
                           startsWith(ctx.srcRel, "parallel/");
        ctx.threadExempt = ctx.timingExempt;
        ctx.randomExempt = startsWith(ctx.srcRel, "gen/");
        ctx.catchAllExempt = startsWith(ctx.srcRel, "parallel/") ||
                             startsWith(ctx.srcRel, "robust/");
        ctx.inFlow = startsWith(ctx.srcRel, "flow/");
        ctx.obsExempt = startsWith(ctx.srcRel, "obs/");

        std::set<std::string> vars;
        if (opts.determinismRules) {
            vars = declsOf[f.path].vars;
            const std::string companion = companionOf(f.path);
            const auto it = declsOf.find(companion);
            if (it != declsOf.end()) {
                vars.insert(it->second.vars.begin(), it->second.vars.end());
            }
            ctx.unorderedVars = &vars;
            ctx.unorderedFns = &globalFns;
        }

        std::vector<Finding> raw;
        TokenRulePass(ctx, opts, &raw).run();

        std::vector<Marker> markers = collectMarkers(f.lexed, opts.markers);
        for (Finding& fd : raw) {
            bool suppressed = false;
            for (Marker& m : markers) {
                if (m.line == fd.line && m.rule == fd.rule) {
                    m.used = true;
                    suppressed = true;
                }
            }
            if (!suppressed) findings.push_back(std::move(fd));
        }
        if (opts.unusedSuppressions) {
            for (const Marker& m : markers) {
                if (!m.known) {
                    findings.push_back(
                        {f.path, m.line, "unused-suppression",
                         "suppression names unknown rule '" + m.rule + "'"});
                } else if (!m.used) {
                    findings.push_back(
                        {f.path, m.line, "unused-suppression",
                         "suppression of '" + m.rule +
                             "' suppresses nothing; remove the marker"});
                }
            }
        }
    }

    if (opts.layering && layers != nullptr) {
        runLayering(files, *layers, &findings);
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return findings;
}

}  // namespace streak::analyze
