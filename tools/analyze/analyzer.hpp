// Rule engine of the static-analysis subsystem (DESIGN.md "Static
// analysis"). Runs two kinds of passes over lexed sources:
//
//  - token rules: the seven project lint rules carried over from
//    streak_lint, the determinism rule pack (unordered-container
//    iteration, pointer-keyed containers, thread-identity state, raw
//    randomness), and the robustness pack (catch-all handlers outside
//    the infrastructure modules, ad-hoc throws in flow code),
//  - the include-graph pass: module layering against the DAG declared in
//    tools/analyze/layers.txt.
//
// Findings on a line carrying an `analyze-ok` waiver comment naming the
// rule are suppressed; waivers that suppress nothing are themselves
// findings, so stale markers cannot accumulate. The legacy `lint-ok`
// marker spelling is honoured as an alias.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/lexer.hpp"

namespace streak::analyze {

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct RuleInfo {
    std::string_view id;
    std::string_view summary;
};

/// Every rule the analyzer can emit, in stable catalog order (this is
/// also the `tool.driver.rules` array of the SARIF export).
[[nodiscard]] const std::vector<RuleInfo>& ruleCatalog();

/// One source file handed to the analyzer. `path` is the name used in
/// findings and module mapping; slashes must be forward.
struct SourceFile {
    std::string path;
    LexedSource lexed;
};

/// Module layering declarations parsed from layers.txt.
struct LayerSpec {
    std::string file;  // where the spec came from, for findings
    /// module -> modules its files may include (directed edges).
    std::map<std::string, std::set<std::string>> allowed;
    /// path-prefix overrides: files/includes matching a prefix belong to
    /// the named module instead of their directory module.
    std::vector<std::pair<std::string, std::string>> overrides;
    /// per-file waivers: (src-relative file path, target module).
    std::vector<std::pair<std::string, std::string>> exceptions;
};

/// Parse layers.txt. Returns false and sets *error on malformed input.
[[nodiscard]] bool parseLayerSpec(std::string_view text, std::string file,
                                  LayerSpec* spec, std::string* error);

struct AnalyzerOptions {
    bool legacyRules = true;        // the seven streak_lint rules
    bool determinismRules = true;   // the determinism rule pack
    bool robustnessRules = true;    // catch-all / flow-throw pack
    bool observabilityRules = true; // global obs-registry access pack
    bool layering = true;           // requires `layers`
    bool unusedSuppressions = true; // report waivers that suppress nothing
    /// Marker words that introduce a suppression in a comment.
    std::vector<std::string> markers = {"analyze-ok", "lint-ok"};
};

/// Run all enabled passes over the file set; returns findings sorted by
/// (file, line, rule). `layers` may be null when layering is disabled.
[[nodiscard]] std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                                           const LayerSpec* layers,
                                           const AnalyzerOptions& opts);

/// The `src/`-relative form of a path: everything after the last "src/"
/// component, or empty when the path is not under a src tree (such files
/// are exempt from layering but still see every token rule).
[[nodiscard]] std::string srcRelative(std::string_view path);

}  // namespace streak::analyze
