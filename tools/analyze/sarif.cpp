#include "analyze/sarif.hpp"

#include <algorithm>
#include <string>

namespace streak::analyze {

namespace js = obs::json;

js::Value sarifDocument(const std::vector<Finding>& findings) {
    js::Array rules;
    std::vector<std::string> ruleIds;
    for (const RuleInfo& r : ruleCatalog()) {
        js::Object rule;
        rule.set("id", std::string(r.id));
        js::Object shortDesc;
        shortDesc.set("text", std::string(r.summary));
        rule.set("shortDescription", std::move(shortDesc));
        rules.push_back(std::move(rule));
        ruleIds.emplace_back(r.id);
    }

    js::Object driver;
    driver.set("name", "streak_analyze");
    driver.set("informationUri", "DESIGN.md#static-analysis");
    driver.set("rules", std::move(rules));
    js::Object tool;
    tool.set("driver", std::move(driver));

    js::Array results;
    for (const Finding& f : findings) {
        js::Object result;
        result.set("ruleId", f.rule);
        const auto at = std::find(ruleIds.begin(), ruleIds.end(), f.rule);
        if (at != ruleIds.end()) {
            result.set("ruleIndex",
                       static_cast<int>(at - ruleIds.begin()));
        }
        result.set("level", "error");
        js::Object message;
        message.set("text", f.message);
        result.set("message", std::move(message));

        js::Object artifact;
        artifact.set("uri", f.file);
        js::Object region;
        region.set("startLine", f.line < 1 ? 1 : f.line);
        js::Object physical;
        physical.set("artifactLocation", std::move(artifact));
        physical.set("region", std::move(region));
        js::Object location;
        location.set("physicalLocation", std::move(physical));
        js::Array locations;
        locations.push_back(std::move(location));
        result.set("locations", std::move(locations));
        results.push_back(std::move(result));
    }

    js::Object run;
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    js::Array runs;
    runs.push_back(std::move(run));

    js::Object doc;
    doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    doc.set("version", "2.1.0");
    doc.set("runs", std::move(runs));
    return js::Value(std::move(doc));
}

}  // namespace streak::analyze
