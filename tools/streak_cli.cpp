// streak — command-line front end for the Streak router.
//
//   streak generate <suite 1-7|spec> <out.streak>   write a benchmark
//   streak info     <design.streak>                 print design stats
//   streak route    <design.streak> [options]       route and report
//   streak eco      <ckpt.streakeco> [options]      incremental re-route
//   streak campaign run  [options]                  sweep configs x suites
//   streak campaign diff <store.jsonl> [options]    flag regressions
//
// route options:
//   --solver=pd|ilp        selection engine (default pd)
//   --ilp-limit=<sec>      ILP time cap (default 60)
//   --threads=<n>          worker threads (0 = hardware, 1 = serial);
//                          results are identical for every value
//   --no-post              skip post optimization
//   --no-clustering        post-opt without bottom-up clustering
//   --no-refinement        post-opt without distance refinement
//   --backbones=<k>        backbone candidates per object (default 4)
//   --heatmap=<file.csv>   dump the congestion map as CSV
//   --report=<file.json>   write the schema-versioned run report (spans,
//                          counters, metrics); turns on detail
//                          instrumentation for the run
//   --trace=<file.json>    write a chrome://tracing / Perfetto trace of
//                          the run's span tree; also turns on detail
//   --deadline=<sec>       wall-clock budget for the whole run; on expiry
//                          the flow degrades (cheaper engine / partial
//                          solution) or fails with exit code 4
//   --checkpoint=<file>    freeze the routed state (design, options,
//                          topologies, usage) for later `streak eco`
//   --quiet                only the summary line
//
// eco options:
//   --deltas=<file>        delta script to apply (required); directives
//                          MOVEPIN / ADDBLOCKAGE / REMOVEBLOCKAGE /
//                          RESIZECAPACITY, '#' comments
//   --threads=<n>          override the checkpoint's thread count (the
//                          result is identical for every value)
//   --cold                 also re-route the mutated design from scratch
//                          and report incremental-vs-cold timing
//   --cold-check           with --cold: verify the incremental result is
//                          byte-identical to the cold one (exit 1 if not)
//   --report=<file.json>   write the run report (streak-run-report schema
//                          plus an "eco" section)
//   --save=<file>          checkpoint the stitched result, so another
//                          delta batch can chain on top
//   --quiet                only the summary lines
//
// campaign run options:
//   --store=<file.jsonl>   append one schema-versioned record per sweep
//                          point (config x suite x threads) to this
//                          JSON-lines store (required)
//   --configs=<a,b>        built-in configs to sweep (default all:
//                          pd, pd-nopost, ilp, manual)
//   --suites=<1,3,7>       shrunk synth suites to route (default 1-7)
//   --threads=<0,2>        thread counts to sweep (default 0); counter
//                          values are identical for every count
//   --scale-counter=<name:factor>
//                          multiply a persisted counter (repeatable);
//                          drill knob for exercising `campaign diff`
//   --quiet                no per-run progress lines
//
// campaign diff options (at least one baseline is required):
//   --baseline=<file.jsonl>  prior store to compare against
//   --bench=<file.json>      committed kernel-bench baseline
//                            (BENCH_streak.json); checks the ilp
//                            config against the LP kernel (pivots +
//                            quality) and the manual config against
//                            the maze kernel (pops + quality)
//   --verdict=<file.json>    write the machine-readable verdict
//   --counter-pct=<p>        counter growth threshold (default 10)
//   --wall-pct=<p>           wall-time growth threshold (default 50)
//   --min-wall=<sec>         wall noise floor (default 0.1)
//   --quiet                  only the verdict summary line
//
// The stage table's "speedup" column estimates per-stage parallel
// speedup (task seconds / wall seconds); it is printed only when the
// run used more than one thread.
//
// Exit codes: 0 success (possibly degraded), 1 unexpected error, 2 bad
// usage, 3 invalid input, 4 deadline expired, 5 cancelled, 6 injected
// fault, 7 internal error, 8 campaign regression. Fault-injection builds
// honor the STREAK_FAULT environment variable ("site" or "site:hit", see
// robust/fault.hpp).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "eco/checkpoint.hpp"
#include "eco/delta.hpp"
#include "eco/eco.hpp"
#include "flow/report.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "core/validate.hpp"
#include "io/design_io.hpp"
#include "io/heatmap.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace {

using namespace streak;

int usage() {
    std::cerr << "usage:\n"
              << "  streak generate <suite 1-7> <out.streak>\n"
              << "  streak info <design.streak>\n"
              << "  streak campaign run --store=FILE.jsonl [--configs=A,B]"
                 " [--suites=1,2,..] [--threads=N,M]"
                 " [--scale-counter=NAME:FACTOR] [--quiet]\n"
              << "  streak campaign diff <store.jsonl> [--baseline=FILE.jsonl]"
                 " [--bench=FILE.json] [--verdict=FILE.json]"
                 " [--counter-pct=P] [--wall-pct=P] [--min-wall=SEC]"
                 " [--quiet]\n"
              << "  streak route <design.streak> [--solver=pd|ilp]"
                 " [--ilp-limit=SEC] [--threads=N] [--no-post]"
                 " [--no-clustering] [--no-refinement] [--backbones=K]"
                 " [--heatmap=FILE] [--report=FILE.json] [--trace=FILE.json]"
                 " [--deadline=SEC] [--checkpoint=FILE] [--quiet]\n"
              << "  streak eco <ckpt> --deltas=FILE [--threads=N] [--cold]"
                 " [--cold-check] [--report=FILE.json] [--save=FILE]"
                 " [--quiet]\n"
              << "\n"
                 "route prints a per-stage table; its speedup column"
                 " (task seconds / wall seconds) appears only for"
                 " multi-threaded runs.\n"
                 "exit codes: 0 ok, 1 unexpected, 2 usage, 3 invalid input,"
                 " 4 deadline, 5 cancelled, 6 injected fault, 7 internal,"
                 " 8 campaign regression.\n";
    return 2;
}

int cmdGenerate(int argc, char** argv) {
    if (argc != 4) return usage();
    const int suite = std::atoi(argv[2]);
    if (suite < 1 || suite > 7) {
        std::cerr << "streak: suite index must be 1..7\n";
        return 2;
    }
    const Design d = gen::makeSynth(suite);
    io::writeDesignFile(d, argv[3]);
    std::cout << "wrote " << argv[3] << " (" << d.numGroups() << " groups, "
              << d.numNets() << " nets)\n";
    return 0;
}

int cmdInfo(int argc, char** argv) {
    if (argc != 3) return usage();
    const Design d = io::readDesignFile(argv[2]);
    io::Table t({"metric", "value"});
    t.addRow({"grid", std::to_string(d.grid.width()) + " x " +
                          std::to_string(d.grid.height()) + " x " +
                          std::to_string(d.grid.numLayers())});
    t.addRow({"signal groups", std::to_string(d.numGroups())});
    t.addRow({"nets (bits)", std::to_string(d.numNets())});
    t.addRow({"total pins", std::to_string(d.totalPins())});
    t.addRow({"Np_max", std::to_string(d.maxPins())});
    t.addRow({"W_max", std::to_string(d.maxWidth())});
    t.print(std::cout);
    const auto issues = validateDesign(d);
    for (const ValidationIssue& i : issues) {
        std::cout << (i.severity == ValidationIssue::Severity::Error
                          ? "error: "
                          : "warning: ")
                  << i.message << '\n';
    }
    if (issues.empty()) std::cout << "design is clean\n";
    return isRoutable(issues) ? 0 : 1;
}

int cmdRoute(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string path = argv[2];
    StreakOptions opts;
    opts.postOptimize = true;
    opts.ilpTimeLimitSeconds = 60.0;
    std::string heatmapPath;
    std::string svgPath;
    std::string reportPath;
    std::string tracePath;
    std::string checkpointPath;
    bool quiet = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--solver=pd") {
            opts.solver = SolverKind::PrimalDual;
        } else if (arg == "--solver=ilp") {
            opts.solver = SolverKind::Ilp;
        } else if (arg == "--solver=hilp") {
            opts.solver = SolverKind::IlpHierarchical;
        } else if (arg.rfind("--ilp-limit=", 0) == 0) {
            opts.ilpTimeLimitSeconds = std::atof(value("--ilp-limit=").c_str());
        } else if (arg.rfind("--threads=", 0) == 0) {
            opts.threads = std::atoi(value("--threads=").c_str());
        } else if (arg == "--no-post") {
            opts.postOptimize = false;
        } else if (arg == "--no-clustering") {
            opts.clusteringEnabled = false;
        } else if (arg == "--no-refinement") {
            opts.refinementEnabled = false;
        } else if (arg.rfind("--backbones=", 0) == 0) {
            opts.backbone.maxBackbones =
                std::atoi(value("--backbones=").c_str());
        } else if (arg.rfind("--heatmap=", 0) == 0) {
            heatmapPath = value("--heatmap=");
        } else if (arg.rfind("--svg=", 0) == 0) {
            svgPath = value("--svg=");
        } else if (arg.rfind("--report=", 0) == 0) {
            reportPath = value("--report=");
        } else if (arg.rfind("--trace=", 0) == 0) {
            tracePath = value("--trace=");
        } else if (arg.rfind("--deadline=", 0) == 0) {
            opts.deadlineSeconds = std::atof(value("--deadline=").c_str());
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            checkpointPath = value("--checkpoint=");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "streak: unknown option " << arg << '\n';
            return 2;
        }
    }

    // Either export needs the detailed spans / counters; the observer
    // hook is how a run opts into them.
    if (!reportPath.empty() || !tracePath.empty()) {
        opts.observer = [](const StreakObservation&) {};
    }

    const Design d = io::readDesignFile(path);
    const FlowResult flow = runStreak(d, opts);
    if (!flow.ok()) {
        std::cerr << "streak: " << flow.error().describe() << '\n';
        return robust::exitCodeFor(flow.error().kind);
    }
    const StreakResult& r = flow.value();

    for (const robust::Degradation& deg : r.degradations) {
        std::cerr << "streak: degraded: " << deg.rung << " at " << deg.stage
                  << " (" << deg.message << ")\n";
    }
    std::cout << "routed " << r.metrics.routedBits << "/"
              << r.metrics.totalBits << " ("
              << io::Table::percent(r.metrics.routability) << "), WL "
              << r.metrics.wirelength << ", Avg(Reg) "
              << io::Table::percent(r.metrics.avgRegularity) << ", Vio(dst) "
              << r.distanceViolationsBefore << " -> "
              << r.distanceViolationsAfter << ", overflow "
              << r.metrics.totalOverflow << '\n';
    if (!quiet) {
        // A single-threaded run has nothing to speed up — every stage
        // would print "1.00x" noise — so the column only appears for
        // multi-threaded runs.
        const bool showSpeedup = r.threadsUsed > 1;
        const auto speedup = [](const parallel::RegionStats& s) {
            if (s.regions == 0) return std::string("-");
            return io::Table::fixed(s.speedupEstimate(), 2) + "x";
        };
        std::vector<std::string> header{"stage", "seconds"};
        if (showSpeedup) header.push_back("speedup");
        io::Table t(header);
        const auto addStage = [&](std::string name, std::string seconds,
                                  const parallel::RegionStats& stats) {
            std::vector<std::string> row{std::move(name), std::move(seconds)};
            if (showSpeedup) row.push_back(speedup(stats));
            t.addRow(row);
        };
        addStage("build (identify+candidates)",
                 io::Table::fixed(r.buildSeconds(), 3), r.buildParallel());
        const char* solverName =
            opts.solver == SolverKind::Ilp               ? "solve (ILP)"
            : opts.solver == SolverKind::IlpHierarchical ? "solve (hier. ILP)"
                                                         : "solve (primal-dual)";
        addStage(solverName,
                 io::Table::fixed(r.solveSeconds(), 3) +
                     (r.hitTimeLimit ? " (limit)" : ""),
                 r.solveParallel());
        addStage("distance analysis", io::Table::fixed(r.distanceSeconds(), 3),
                 r.distanceParallel());
        addStage("post optimization", io::Table::fixed(r.postSeconds(), 3),
                 r.postParallel());
        t.print(std::cout);
        std::cout << "objects: " << r.problem.numObjects()
                  << ", unrouted bits: " << r.routed.unroutedMembers.size()
                  << ", threads: " << r.threadsUsed << '\n';
    }
    if (!reportPath.empty()) {
        std::ofstream os(reportPath);
        if (!os) {
            std::cerr << "streak: cannot open " << reportPath << '\n';
            return 1;
        }
        flow::writeRunReport(d, opts, r, os);
        if (!quiet) std::cout << "wrote " << reportPath << '\n';
    }
    if (!tracePath.empty()) {
        std::ofstream os(tracePath);
        if (!os) {
            std::cerr << "streak: cannot open " << tracePath << '\n';
            return 1;
        }
        obs::writeChromeTrace(r.trace, os);
        if (!quiet) std::cout << "wrote " << tracePath << '\n';
    }
    if (!heatmapPath.empty()) {
        std::ofstream os(heatmapPath);
        if (!os) {
            std::cerr << "streak: cannot open " << heatmapPath << '\n';
            return 1;
        }
        io::writeCsvHeatmap(r.routed.usage, os);
        if (!quiet) std::cout << "wrote " << heatmapPath << '\n';
    }
    if (!svgPath.empty()) {
        std::ofstream os(svgPath);
        if (!os) {
            std::cerr << "streak: cannot open " << svgPath << '\n';
            return 1;
        }
        io::writeSvg(r.routed, os);
        if (!quiet) std::cout << "wrote " << svgPath << '\n';
    }
    if (!checkpointPath.empty()) {
        eco::writeCheckpointFile(eco::makeCheckpoint(d, opts, r),
                                 checkpointPath);
        if (!quiet) std::cout << "wrote " << checkpointPath << '\n';
    }
    return 0;
}

int cmdEco(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string ckptPath = argv[2];
    std::string deltasPath;
    std::string reportPath;
    std::string savePath;
    int threads = -1;
    bool cold = false;
    bool coldCheck = false;
    bool quiet = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--deltas=", 0) == 0) {
            deltasPath = value("--deltas=");
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::atoi(value("--threads=").c_str());
        } else if (arg == "--cold") {
            cold = true;
        } else if (arg == "--cold-check") {
            cold = true;
            coldCheck = true;
        } else if (arg.rfind("--report=", 0) == 0) {
            reportPath = value("--report=");
        } else if (arg.rfind("--save=", 0) == 0) {
            savePath = value("--save=");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "streak: unknown option " << arg << '\n';
            return 2;
        }
    }
    if (deltasPath.empty()) {
        std::cerr << "streak: eco needs --deltas=FILE\n";
        return 2;
    }

    const eco::Checkpoint ckpt = eco::readCheckpointFile(ckptPath);
    const std::vector<eco::Delta> deltas =
        eco::parseDeltaScriptFile(deltasPath);
    if (!quiet) {
        std::cout << "loaded " << ckptPath << " ("
                  << ckpt.design->numGroups() << " groups, "
                  << ckpt.design->numNets() << " nets), " << deltas.size()
                  << " delta" << (deltas.size() == 1 ? "" : "s") << '\n';
    }

    obs::Stopwatch watch;
    const eco::EcoResult r = eco::runEco(ckpt, deltas, threads);
    const double incrementalSeconds = watch.seconds();

    StreakOptions effective = eco::semanticOptions(ckpt.opts);
    if (threads >= 0) effective.threads = threads;

    for (const robust::Degradation& deg : r.degradations) {
        std::cerr << "streak: degraded: " << deg.rung << " at " << deg.stage
                  << " (" << deg.message << ")\n";
    }
    std::cout << "eco: re-solved " << r.resolvedGroups.size() << "/"
              << r.totalGroups << " groups (carried " << r.carriedGroups()
              << "), " << io::Table::fixed(incrementalSeconds, 3) << "s\n";
    std::cout << "routed " << r.metrics.routedBits << "/"
              << r.metrics.totalBits << " ("
              << io::Table::percent(r.metrics.routability) << "), WL "
              << r.metrics.wirelength << ", Avg(Reg) "
              << io::Table::percent(r.metrics.avgRegularity) << ", Vio(dst) "
              << r.distanceViolationsBefore << " -> "
              << r.distanceViolationsAfter << ", overflow "
              << r.metrics.totalOverflow << '\n';

    double coldSeconds = -1.0;
    if (cold) {
        watch.restart();
        const FlowResult coldFlow = runStreak(*r.design, effective);
        coldSeconds = watch.seconds();
        if (!coldFlow.ok()) {
            std::cerr << "streak: cold re-route failed: "
                      << coldFlow.error().describe() << '\n';
            return robust::exitCodeFor(coldFlow.error().kind);
        }
        std::cout << "cold: re-solved " << r.totalGroups << "/"
                  << r.totalGroups << " groups, "
                  << io::Table::fixed(coldSeconds, 3) << "s";
        if (coldSeconds > 0.0 && incrementalSeconds > 0.0) {
            std::cout << " (incremental "
                      << io::Table::fixed(coldSeconds / incrementalSeconds, 2)
                      << "x)";
        }
        std::cout << '\n';
        if (coldCheck) {
            std::string diff;
            if (!eco::equivalent(r, coldFlow.value(), &diff)) {
                std::cerr << "streak: eco/cold mismatch: " << diff << '\n';
                return 1;
            }
            std::cout << "cold-check: incremental result is byte-identical"
                         " to the cold re-route\n";
        }
    }

    if (!reportPath.empty()) {
        std::ofstream os(reportPath);
        if (!os) {
            std::cerr << "streak: cannot open " << reportPath << '\n';
            return 1;
        }
        eco::buildEcoReport(r, effective, incrementalSeconds, coldSeconds)
            .write(os, 2);
        os << '\n';
        if (!quiet) std::cout << "wrote " << reportPath << '\n';
    }
    if (!savePath.empty()) {
        eco::writeCheckpointFile(eco::makeCheckpoint(r, effective), savePath);
        if (!quiet) std::cout << "wrote " << savePath << '\n';
    }
    return 0;
}

/// "1,3,7" -> {1, 3, 7}; throws std::invalid_argument on junk.
std::vector<int> parseIntList(const std::string& text, const char* what) {
    std::vector<int> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        size_t used = 0;
        const int v = std::stoi(item, &used);
        if (used != item.size()) {
            throw std::invalid_argument(std::string("bad ") + what +
                                        " entry '" + item + "'");
        }
        out.push_back(v);
    }
    if (out.empty()) {
        throw std::invalid_argument(std::string("empty ") + what + " list");
    }
    return out;
}

int cmdCampaignRun(int argc, char** argv) {
    campaign::CampaignSpec spec;
    std::string storePath;
    bool quiet = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--store=", 0) == 0) {
            storePath = value("--store=");
        } else if (arg.rfind("--configs=", 0) == 0) {
            spec.configs.clear();
            std::stringstream ss(value("--configs="));
            std::string name;
            while (std::getline(ss, name, ',')) {
                spec.configs.push_back(campaign::configByName(name));
            }
        } else if (arg.rfind("--suites=", 0) == 0) {
            spec.suites = parseIntList(value("--suites="), "suite");
        } else if (arg.rfind("--threads=", 0) == 0) {
            spec.threads = parseIntList(value("--threads="), "threads");
        } else if (arg.rfind("--scale-counter=", 0) == 0) {
            const std::string knob = value("--scale-counter=");
            const size_t colon = knob.rfind(':');
            if (colon == std::string::npos || colon == 0) {
                std::cerr << "streak: --scale-counter wants NAME:FACTOR\n";
                return 2;
            }
            spec.scaleCounters[knob.substr(0, colon)] =
                std::atof(knob.substr(colon + 1).c_str());
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "streak: unknown option " << arg << '\n';
            return 2;
        }
    }
    if (storePath.empty()) {
        std::cerr << "streak: campaign run needs --store=FILE.jsonl\n";
        return 2;
    }

    const std::vector<campaign::RunRecord> records =
        campaign::runCampaign(spec, quiet ? nullptr : &std::cout);
    std::ofstream os(storePath, std::ios::app);
    if (!os) {
        std::cerr << "streak: cannot open " << storePath << '\n';
        return 1;
    }
    campaign::appendStore(records, os);
    std::cout << "campaign: appended " << records.size() << " record"
              << (records.size() == 1 ? "" : "s") << " to " << storePath
              << '\n';
    return 0;
}

int cmdCampaignDiff(int argc, char** argv) {
    if (argc < 4) return usage();
    const std::string currentPath = argv[3];
    std::string baselinePath;
    std::string benchPath;
    std::string verdictPath;
    campaign::DiffThresholds thresholds;
    bool quiet = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--baseline=", 0) == 0) {
            baselinePath = value("--baseline=");
        } else if (arg.rfind("--bench=", 0) == 0) {
            benchPath = value("--bench=");
        } else if (arg.rfind("--verdict=", 0) == 0) {
            verdictPath = value("--verdict=");
        } else if (arg.rfind("--counter-pct=", 0) == 0) {
            thresholds.counterGrowth =
                std::atof(value("--counter-pct=").c_str()) / 100.0;
        } else if (arg.rfind("--wall-pct=", 0) == 0) {
            thresholds.wallGrowth =
                std::atof(value("--wall-pct=").c_str()) / 100.0;
        } else if (arg.rfind("--min-wall=", 0) == 0) {
            thresholds.minWallSeconds =
                std::atof(value("--min-wall=").c_str());
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "streak: unknown option " << arg << '\n';
            return 2;
        }
    }
    if (baselinePath.empty() && benchPath.empty()) {
        std::cerr << "streak: campaign diff needs --baseline and/or"
                     " --bench\n";
        return 2;
    }

    const campaign::Store current = campaign::readStoreFile(currentPath);
    for (const std::string& problem : current.problems) {
        std::cerr << "streak: campaign: " << problem << '\n';
    }
    if (current.records.empty()) {
        std::cerr << "streak: " << currentPath
                  << " holds no valid campaign records\n";
        return 3;
    }

    std::vector<campaign::DiffReport> reports;
    if (!baselinePath.empty()) {
        const campaign::Store baseline =
            campaign::readStoreFile(baselinePath);
        for (const std::string& problem : baseline.problems) {
            std::cerr << "streak: campaign: " << problem << '\n';
        }
        reports.push_back(
            campaign::diffAgainstStore(baseline, current, thresholds));
    }
    if (!benchPath.empty()) {
        std::ifstream in(benchPath);
        if (!in) {
            std::cerr << "streak: cannot open " << benchPath << '\n';
            return 3;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        std::string parseError;
        const obs::json::Value bench =
            obs::json::parse(buffer.str(), &parseError);
        if (bench.isNull() && !parseError.empty()) {
            std::cerr << "streak: " << benchPath << ": " << parseError
                      << '\n';
            return 3;
        }
        reports.push_back(
            campaign::diffAgainstBench(bench, current, thresholds));
    }

    int regressionCount = 0;
    for (const campaign::DiffReport& report : reports) {
        if (!quiet) {
            for (const std::string& note : report.notes) {
                std::cout << "campaign: note (" << report.against
                          << "): " << note << '\n';
            }
        }
        for (const campaign::Regression& r : report.regressions) {
            std::cerr << "campaign: REGRESSION (" << report.against << ") "
                      << r.kind << ' ' << r.config << '/' << r.instance
                      << ' ' << r.metric << ": " << r.baseline << " -> "
                      << r.current << " (" << io::Table::fixed(
                             r.growthPercent, 1) << "%)\n";
        }
        regressionCount += static_cast<int>(report.regressions.size());
    }
    const obs::json::Value verdict = campaign::verdictJson(reports);
    if (!verdictPath.empty()) {
        std::ofstream os(verdictPath);
        if (!os) {
            std::cerr << "streak: cannot open " << verdictPath << '\n';
            return 1;
        }
        verdict.write(os, 2);
        os << '\n';
        if (!quiet) std::cout << "wrote " << verdictPath << '\n';
    }
    int compared = 0;
    for (const campaign::DiffReport& report : reports) {
        compared += report.comparedRuns;
    }
    std::cout << "campaign: " << compared << " comparison"
              << (compared == 1 ? "" : "s") << ", " << regressionCount
              << " regression" << (regressionCount == 1 ? "" : "s") << '\n';
    return regressionCount > 0 ? 8 : 0;
}

int cmdCampaign(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string sub = argv[2];
    if (sub == "run") return cmdCampaignRun(argc, argv);
    if (sub == "diff") return cmdCampaignDiff(argc, argv);
    std::cerr << "streak: unknown campaign subcommand " << sub << '\n';
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    streak::robust::armFaultFromEnv();
    try {
        if (cmd == "generate") return cmdGenerate(argc, argv);
        if (cmd == "info") return cmdInfo(argc, argv);
        if (cmd == "route") return cmdRoute(argc, argv);
        if (cmd == "eco") return cmdEco(argc, argv);
        if (cmd == "campaign") return cmdCampaign(argc, argv);
    } catch (const streak::robust::StreakException& e) {
        // Structured failures outside runStreak (e.g. reading the design
        // file) still map to their distinct exit codes.
        std::cerr << "streak: " << e.error().describe() << '\n';
        return streak::robust::exitCodeFor(e.error().kind);
    } catch (const std::exception& e) {
        std::cerr << "streak: " << e.what() << '\n';
        return 1;
    }
    return usage();
}
