// Project lint pass over the Streak library sources (DESIGN.md
// "Correctness tooling"). Registered as the `streak_lint` ctest so tier-1
// enforces the rules:
//
//   banned-function    std::rand / srand and the printf family have no
//                      place in library code (determinism, iostreams)
//   raw-new-delete     no raw new / delete; own memory via containers or
//                      smart pointers (`= delete` member syntax is fine)
//   pragma-once        every header starts its include guard life as
//                      #pragma once
//   relative-include   #include "../..." bypasses module boundaries; use
//                      the module-qualified path from src/
//   float-equality     == / != against a floating literal needs an
//                      epsilon helper (check::approxEqual) or an explicit
//                      waiver marker for exact-zero skips
//   bare-assert        use STREAK_ASSERT / STREAK_REQUIRE (contextual
//                      messages) instead of <cassert>
//   raw-timing         raw std::chrono clock reads outside src/obs and
//                      src/parallel; time code through obs::Stopwatch /
//                      spans so all wall time flows into the trace
//
// A finding on a line whose comment carries a `lint-ok` waiver naming the
// rule is suppressed — the marker doubles as in-source documentation of
// why the construct is deliberate.
//
// The rules run on the shared token-level lexer from tools/analyze, so
// — unlike the original line-regex pass — they can never fire on text
// inside string literals or comments. streak_analyze runs this same rule
// set (plus the determinism pack and layering) with waiver-rot checking;
// this binary stays the minimal fast tier-1 gate.
//
// Usage: streak_lint <source-dir>...   (exits non-zero on findings)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace {

namespace fs = std::filesystem;

bool readFile(const fs::path& p, std::string* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = std::move(ss).str();
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: streak_lint <source-dir>...\n";
        return 2;
    }
    std::vector<fs::path> paths;
    for (int a = 1; a < argc; ++a) {
        const fs::path root(argv[a]);
        if (!fs::exists(root)) {
            std::cerr << "streak_lint: no such directory: " << root << "\n";
            return 2;
        }
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file()) continue;
            const fs::path& p = entry.path();
            if (p.extension() == ".hpp" || p.extension() == ".cpp") {
                paths.push_back(p);
            }
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<streak::analyze::SourceFile> files;
    files.reserve(paths.size());
    std::vector<streak::analyze::Finding> findings;
    for (const fs::path& p : paths) {
        std::string text;
        if (!readFile(p, &text)) {
            findings.push_back({p.generic_string(), 0, "io",
                                "could not open file"});
            continue;
        }
        files.push_back({p.generic_string(), streak::analyze::lex(text)});
    }

    // Legacy tier: the seven ported rules with waivers honoured but no
    // waiver-rot check — streak_analyze owns the stricter policy.
    streak::analyze::AnalyzerOptions opts;
    opts.determinismRules = false;
    opts.layering = false;
    opts.unusedSuppressions = false;
    const std::vector<streak::analyze::Finding> ruleFindings =
        streak::analyze::analyze(files, nullptr, opts);
    findings.insert(findings.end(), ruleFindings.begin(), ruleFindings.end());

    for (const streak::analyze::Finding& f : findings) {
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    if (!findings.empty()) {
        std::cerr << "streak_lint: " << findings.size() << " finding(s) in "
                  << files.size() << " files\n";
        return 1;
    }
    std::cout << "streak_lint: " << files.size() << " files clean\n";
    return 0;
}
