// Project lint pass over the Streak library sources (DESIGN.md
// "Correctness tooling"). Registered as the `streak_lint` ctest so tier-1
// enforces the rules:
//
//   banned-function    std::rand / srand and the printf family have no
//                      place in library code (determinism, iostreams)
//   raw-new-delete     no raw new / delete; own memory via containers or
//                      smart pointers (`= delete` member syntax is fine)
//   pragma-once        every header starts its include guard life as
//                      #pragma once
//   relative-include   #include "../..." bypasses module boundaries; use
//                      the module-qualified path from src/
//   float-equality     == / != against a floating literal needs an
//                      epsilon helper (check::approxEqual) or an explicit
//                      `// lint-ok: float-eq` marker for exact-zero skips
//   bare-assert        use STREAK_ASSERT / STREAK_REQUIRE (contextual
//                      messages) instead of <cassert>
//   raw-timing         raw std::chrono clock reads outside src/obs and
//                      src/parallel; time code through obs::Stopwatch /
//                      spans so all wall time flows into the trace
//
// A finding on a line carrying `lint-ok: <rule>` in a comment is
// suppressed — the marker doubles as in-source documentation of why the
// construct is deliberate.
//
// Usage: streak_lint <source-dir>...   (exits non-zero on findings)

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
    fs::path file;
    int line = 0;
    std::string rule;
    std::string message;
};

bool isWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `word` occurs in `line` as a standalone token.
bool hasWord(const std::string& line, const std::string& word,
             size_t* pos = nullptr) {
    size_t from = 0;
    while ((from = line.find(word, from)) != std::string::npos) {
        const bool leftOk = from == 0 || !isWordChar(line[from - 1]);
        const size_t end = from + word.size();
        const bool rightOk = end >= line.size() || !isWordChar(line[end]);
        if (leftOk && rightOk) {
            if (pos != nullptr) *pos = from;
            return true;
        }
        from = end;
    }
    return false;
}

/// Replace comments and string/char literal contents with spaces so the
/// rules never fire on prose; preserves line structure and columns.
std::vector<std::string> stripCode(const std::vector<std::string>& lines) {
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool inBlockComment = false;
    for (const std::string& raw : lines) {
        std::string s = raw;
        for (size_t i = 0; i < s.size();) {
            if (inBlockComment) {
                if (s.compare(i, 2, "*/") == 0) {
                    s[i] = s[i + 1] = ' ';
                    i += 2;
                    inBlockComment = false;
                } else {
                    s[i++] = ' ';
                }
                continue;
            }
            if (s.compare(i, 2, "//") == 0) {
                for (size_t k = i; k < s.size(); ++k) s[k] = ' ';
                break;
            }
            if (s.compare(i, 2, "/*") == 0) {
                s[i] = s[i + 1] = ' ';
                i += 2;
                inBlockComment = true;
                continue;
            }
            if (s[i] == '"' || s[i] == '\'') {
                const char quote = s[i];
                ++i;
                while (i < s.size()) {
                    if (s[i] == '\\' && i + 1 < s.size()) {
                        s[i] = s[i + 1] = ' ';
                        i += 2;
                        continue;
                    }
                    if (s[i] == quote) {
                        ++i;
                        break;
                    }
                    s[i++] = ' ';
                }
                continue;
            }
            ++i;
        }
        out.push_back(std::move(s));
    }
    return out;
}

bool isFloatLiteralAt(const std::string& s, size_t pos, bool forward) {
    // forward: literal starts at/after pos; backward: literal ends at pos.
    if (forward) {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '-' || s[pos] == '+')) ++pos;
        size_t digits = pos;
        while (digits < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[digits])) != 0) {
            ++digits;
        }
        return digits < s.size() && digits > pos && s[digits] == '.';
    }
    size_t p = pos;
    while (p > 0 && s[p - 1] == ' ') --p;
    // Accept "...<digits>" preceded by '.' (e.g. 1.0, .5, 12.) or f suffix.
    size_t digits = p;
    while (digits > 0 &&
           (std::isdigit(static_cast<unsigned char>(s[digits - 1])) != 0 ||
            s[digits - 1] == 'f')) {
        --digits;
    }
    return digits > 0 && digits < p && s[digits - 1] == '.';
}

class Linter {
public:
    void lintFile(const fs::path& path) {
        std::ifstream in(path);
        if (!in) {
            add(path, 0, "io", "could not open file");
            return;
        }
        std::vector<std::string> raw;
        for (std::string line; std::getline(in, line);) {
            raw.push_back(std::move(line));
        }
        const std::vector<std::string> code = stripCode(raw);
        const bool isHeader = path.extension() == ".hpp";
        // The observability layer implements the sanctioned clocks and
        // the thread pool's per-task timing feeds RegionStats; everyone
        // else must go through obs::Stopwatch / spans.
        const std::string pathStr = path.generic_string();
        const bool timingExempt =
            pathStr.find("/obs/") != std::string::npos ||
            pathStr.find("/parallel/") != std::string::npos;

        if (isHeader) {
            const bool hasPragma =
                std::any_of(raw.begin(), raw.end(), [](const std::string& l) {
                    return l.find("#pragma once") != std::string::npos;
                });
            if (!hasPragma) {
                add(path, 1, "pragma-once", "header is missing #pragma once");
            }
        }

        for (size_t i = 0; i < code.size(); ++i) {
            const std::string& line = code[i];
            const int no = static_cast<int>(i) + 1;
            const auto suppressed = [&](const char* rule) {
                return raw[i].find(std::string("lint-ok: ") + rule) !=
                       std::string::npos;
            };

            for (const char* banned : {"printf", "fprintf", "sprintf",
                                       "snprintf", "srand"}) {
                if (hasWord(line, banned) && !suppressed("banned-function")) {
                    add(path, no, "banned-function",
                        std::string(banned) + " is banned in library code");
                }
            }
            if (line.find("std::rand") != std::string::npos &&
                !suppressed("banned-function")) {
                add(path, no, "banned-function",
                    "std::rand is banned (non-deterministic seeding, "
                    "poor distribution)");
            }

            size_t pos = 0;
            if (hasWord(line, "new", &pos) && !suppressed("raw-new-delete")) {
                add(path, no, "raw-new-delete",
                    "raw new is banned; use containers or smart pointers");
            }
            if (hasWord(line, "delete", &pos) &&
                !suppressed("raw-new-delete")) {
                // `= delete` (deleted member functions) is language syntax.
                size_t before = pos;
                while (before > 0 && line[before - 1] == ' ') --before;
                if (before == 0 || line[before - 1] != '=') {
                    add(path, no, "raw-new-delete",
                        "raw delete is banned; use containers or smart "
                        "pointers");
                }
            }

            // Include paths are string literals, which stripCode blanks
            // out — confirm the directive on the stripped line (so
            // comments don't count), then read the path from the raw one.
            const size_t inc = line.find("#include \"") != std::string::npos
                                   ? raw[i].find("#include \"")
                                   : std::string::npos;
            if (inc != std::string::npos) {
                const std::string rest = raw[i].substr(inc + 10);
                if (rest.rfind("../", 0) == 0 || rest.rfind("./", 0) == 0) {
                    add(path, no, "relative-include",
                        "relative include bypasses module boundaries; use "
                        "the module-qualified path");
                }
            }

            for (size_t op = 0; op + 1 < line.size(); ++op) {
                if ((line[op] != '=' && line[op] != '!') ||
                    line[op + 1] != '=') {
                    continue;
                }
                if (op > 0 && (line[op - 1] == '=' || line[op - 1] == '!' ||
                               line[op - 1] == '<' || line[op - 1] == '>')) {
                    continue;  // ===? no; skips <=, >=, != handled above
                }
                if (op + 2 < line.size() && line[op + 2] == '=') continue;
                const bool floatRhs = isFloatLiteralAt(line, op + 2, true);
                const bool floatLhs = op > 0 && isFloatLiteralAt(line, op, false);
                if ((floatRhs || floatLhs) && !suppressed("float-eq")) {
                    add(path, no, "float-equality",
                        "== / != against a float literal; use "
                        "check::approxEqual or mark `lint-ok: float-eq`");
                    break;
                }
            }

            if ((hasWord(line, "assert") ||
                 line.find("<cassert>") != std::string::npos) &&
                !suppressed("bare-assert")) {
                add(path, no, "bare-assert",
                    "bare assert() reports no context; use STREAK_ASSERT / "
                    "STREAK_REQUIRE / STREAK_INVARIANT");
            }

            if (!timingExempt && !suppressed("raw-timing")) {
                for (const char* clock :
                     {"steady_clock", "high_resolution_clock",
                      "system_clock"}) {
                    if (hasWord(line, clock)) {
                        add(path, no, "raw-timing",
                            std::string(clock) +
                                " outside src/obs and src/parallel; time "
                                "through obs::Stopwatch or spans");
                        break;
                    }
                }
            }
        }
    }

    [[nodiscard]] const std::vector<Finding>& findings() const {
        return findings_;
    }

private:
    void add(const fs::path& file, int line, std::string rule,
             std::string message) {
        findings_.push_back({file, line, std::move(rule), std::move(message)});
    }

    std::vector<Finding> findings_;
};

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: streak_lint <source-dir>...\n";
        return 2;
    }
    std::vector<fs::path> files;
    for (int a = 1; a < argc; ++a) {
        const fs::path root(argv[a]);
        if (!fs::exists(root)) {
            std::cerr << "streak_lint: no such directory: " << root << "\n";
            return 2;
        }
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file()) continue;
            const fs::path& p = entry.path();
            if (p.extension() == ".hpp" || p.extension() == ".cpp") {
                files.push_back(p);
            }
        }
    }
    std::sort(files.begin(), files.end());

    Linter linter;
    for (const fs::path& f : files) linter.lintFile(f);

    for (const Finding& f : linter.findings()) {
        std::cerr << f.file.string() << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    }
    if (!linter.findings().empty()) {
        std::cerr << "streak_lint: " << linter.findings().size()
                  << " finding(s) in " << files.size() << " files\n";
        return 1;
    }
    std::cout << "streak_lint: " << files.size() << " files clean\n";
    return 0;
}
