#!/usr/bin/env bash
# Correctness-tooling driver (DESIGN.md "Correctness tooling"):
#
#   1. project lint pass            (tools/streak_lint over src/)
#   2. clang-tidy curated ruleset   (skipped when clang-tidy is absent)
#   3. -Werror build                (CMake preset `werror`)
#   4. sanitizer smoke test         (preset `asan-ubsan`, flow_test)
#   5. ThreadSanitizer              (preset `tsan`, thread pool +
#                                    determinism tests)
#
# Usage:  tools/check.sh [--full]
#   --full   run the entire ctest suite (not just the smoke subsets)
#            under ASan/UBSan and TSan; slower but what CI should do.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] project lint pass =="
cmake --preset dev >/dev/null
cmake --build --preset dev --target streak_lint -j "$JOBS" >/dev/null
./build/tools/streak_lint src

echo "== [2/5] clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    # The dev preset exports compile_commands.json.
    mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${SOURCES[@]}"
else
    echo "clang-tidy not installed; skipping (rules live in .clang-tidy)"
fi

echo "== [3/5] -Werror build =="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"

echo "== [4/5] ASan/UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
if [[ "$FULL" == 1 ]]; then
    ctest --preset asan-ubsan -j "$JOBS"
else
    # Smoke: the end-to-end flow exercises every stage (and, with
    # STREAK_CHECKS=deep baked into the preset, every stage auditor).
    ./build-asan/tests/flow_test
fi

echo "== [5/5] ThreadSanitizer =="
cmake --preset tsan >/dev/null
if [[ "$FULL" == 1 ]]; then
    cmake --build --preset tsan -j "$JOBS"
    ctest --preset tsan -j "$JOBS"
else
    # The pool's own unit tests plus the thread-count invariance suite
    # cover every parallel seam in the flow.
    cmake --build --preset tsan -j "$JOBS" \
        --target thread_pool_test parallel_determinism_test
    ./build-tsan/tests/thread_pool_test
    ./build-tsan/tests/parallel_determinism_test
fi

echo "check.sh: all stages passed"
