#!/usr/bin/env bash
# Correctness-tooling driver (DESIGN.md "Correctness tooling"):
#
#   1. project lint pass            (tools/streak_lint over src/)
#   2. clang-tidy curated ruleset   (skipped when clang-tidy is absent)
#   3. -Werror build                (CMake preset `werror`)
#   4. sanitizer smoke test         (preset `asan-ubsan`, flow_test)
#   5. ThreadSanitizer              (preset `tsan`, thread pool +
#                                    determinism tests)
#   6. observability exports        (route a generated design with
#                                    --report/--trace, validate both with
#                                    tools/report_check)
#   7. hot-path kernel bench        (micro_kernels --report over the
#                                    shrunk synth suite; report_check
#                                    --bench enforces the >= 30% pops /
#                                    pivots drop and unchanged solutions)
#   8. static analysis              (tools/analyze: determinism rule
#                                    pack + module layering DAG over
#                                    src/ and tools/, SARIF artifact at
#                                    build/analyze.sarif)
#   9. chaos + deadline drill       (fault-injection sweep under
#                                    ASan/UBSan, then a --deadline= CLI
#                                    run whose report must validate with
#                                    the robust section present)
#  10. incremental ECO drill        (eco_test differential equivalence
#                                    suite, checkpoint-reader fuzz under
#                                    ASan/UBSan, then a checkpoint ->
#                                    delta -> `streak eco --cold-check`
#                                    CLI run whose report must validate
#                                    and re-solve strictly fewer groups
#                                    than a cold re-route)
#  11. campaign regression drill    (`streak campaign run` sweeps every
#                                    builtin config over the shrunk
#                                    synth1-7 into a JSONL store;
#                                    `campaign diff` must be clean
#                                    against the store itself and the
#                                    committed BENCH_streak.json, and
#                                    must flag an injected 2x maze-pop
#                                    regression with exit code 8)
#
# Usage:  tools/check.sh [--full]
#   --full   run the entire ctest suite (not just the smoke subsets)
#            under ASan/UBSan and TSan; slower but what CI should do.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/11] project lint pass =="
cmake --preset dev >/dev/null
cmake --build --preset dev --target streak_lint -j "$JOBS" >/dev/null
./build/tools/streak_lint src

echo "== [2/11] clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    # The dev preset exports compile_commands.json.
    mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${SOURCES[@]}"
else
    echo "clang-tidy not installed; skipping (rules live in .clang-tidy)"
fi

echo "== [3/11] -Werror build =="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"

echo "== [4/11] ASan/UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
if [[ "$FULL" == 1 ]]; then
    ctest --preset asan-ubsan -j "$JOBS"
else
    # Smoke: the end-to-end flow exercises every stage (and, with
    # STREAK_CHECKS=deep baked into the preset, every stage auditor).
    ./build-asan/tests/flow_test
fi

echo "== [5/11] ThreadSanitizer =="
cmake --preset tsan >/dev/null
if [[ "$FULL" == 1 ]]; then
    cmake --build --preset tsan -j "$JOBS"
    ctest --preset tsan -j "$JOBS"
else
    # The pool's own unit tests plus the thread-count invariance suite
    # cover every parallel seam in the flow.
    cmake --build --preset tsan -j "$JOBS" \
        --target thread_pool_test parallel_determinism_test
    ./build-tsan/tests/thread_pool_test
    ./build-tsan/tests/parallel_determinism_test
fi

echo "== [6/11] observability exports =="
cmake --build --preset dev --target streak_cli report_check -j "$JOBS" >/dev/null
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./build/tools/streak generate 1 "$OBS_TMP/synth1.streak" >/dev/null
./build/tools/streak route "$OBS_TMP/synth1.streak" \
    --report="$OBS_TMP/report.json" --trace="$OBS_TMP/trace.json" --quiet
./build/tools/report_check "$OBS_TMP/report.json" "$OBS_TMP/trace.json"

echo "== [7/11] hot-path kernel bench =="
cmake --build --preset dev --target micro_kernels -j "$JOBS" >/dev/null
# Counter harness over the shrunk synth suite: before/after runs of the
# maze-search and simplex kernels must produce identical solutions, and
# report_check --bench enforces the >= 30% pops / pivots drop. The
# committed BENCH_streak.json at the repo root is one such report, kept
# as the reference data point.
STREAK_BENCH_JSON="$OBS_TMP/bench.json" ./build/bench/micro_kernels --report
./build/tools/report_check --bench "$OBS_TMP/bench.json"

echo "== [8/11] static analysis =="
# Full rule set: the seven lint rules, the determinism pack, and the
# module layering DAG (tools/analyze/layers.txt), with waiver-rot
# checking. The SARIF artifact is written even on a clean run so CI
# always has it to upload.
cmake --build --preset dev --target streak_analyze -j "$JOBS" >/dev/null
./build/tools/analyze/streak_analyze \
    --layers tools/analyze/layers.txt \
    --sarif build/analyze.sarif \
    src tools

echo "== [9/11] chaos + deadline drill =="
# Fault-tolerance contract (DESIGN.md "Robustness"): sweep every
# cataloged fault site across the shrunk synth suites under ASan/UBSan —
# every run must end in an audited solution or a structured StreakError,
# never a crash. robust_test covers the deadline/cancellation plumbing.
cmake --build --preset asan-ubsan -j "$JOBS" \
    --target chaos_test robust_test >/dev/null
./build-asan/tests/chaos_test
./build-asan/tests/robust_test
# Deadline drill: a generous budget must change nothing, and the JSON
# run report must carry the robust section (deadline, degradations) that
# report_check validates.
./build/tools/streak route "$OBS_TMP/synth1.streak" \
    --deadline=60 --report="$OBS_TMP/deadline.json" --quiet
./build/tools/report_check "$OBS_TMP/deadline.json"

echo "== [10/11] incremental ECO drill =="
# Differential equivalence contract (DESIGN.md "Incremental ECO"): an
# incremental re-route of the affected-group closure is byte-identical
# to a from-scratch re-route of the mutated design.
cmake --build --preset dev --target eco_test -j "$JOBS" >/dev/null
./build/tests/eco_test
# Checkpoint-reader fuzz (truncation / bit flips / version skew) under
# the sanitizers: hostile input must fail structurally, never with UB.
cmake --build --preset asan-ubsan -j "$JOBS" --target fuzz_test >/dev/null
./build-asan/tests/fuzz_test --gtest_filter='CheckpointFuzz.*'
# CLI drill: checkpoint a routed suite, apply a one-pin ECO, verify the
# incremental result against a cold re-route, validate the report, and
# require the closure to be a strict subset of the design's groups.
./build/tools/streak generate 4 "$OBS_TMP/synth4.streak" >/dev/null
./build/tools/streak route "$OBS_TMP/synth4.streak" --no-post \
    --checkpoint="$OBS_TMP/synth4.ckpt" --quiet >/dev/null
PIN=$(grep -m1 '^PIN' "$OBS_TMP/synth4.streak")
printf 'MOVEPIN 0 0 0 %d %d\n' \
    "$(($(echo "$PIN" | cut -d' ' -f2) + 1))" \
    "$(echo "$PIN" | cut -d' ' -f3)" > "$OBS_TMP/fix.eco"
./build/tools/streak eco "$OBS_TMP/synth4.ckpt" \
    --deltas="$OBS_TMP/fix.eco" --cold-check \
    --report="$OBS_TMP/eco.json" | tee "$OBS_TMP/eco.out"
./build/tools/report_check "$OBS_TMP/eco.json"
grep -q 'byte-identical' "$OBS_TMP/eco.out"
read -r RESOLVED TOTAL < <(sed -n \
    's|^eco: re-solved \([0-9]*\)/\([0-9]*\) .*|\1 \2|p' "$OBS_TMP/eco.out")
if [[ "$RESOLVED" -ge "$TOTAL" ]]; then
    echo "check.sh: eco resolved $RESOLVED/$TOTAL groups (expected a" \
         "strict subset for a single-pin move)" >&2
    exit 1
fi

echo "== [11/11] campaign regression drill =="
# Sweep every builtin config (pd, pd-nopost, ilp, manual) over the
# shrunk synth suites at one thread into an append-only JSONL store,
# then diff: against the store itself and the committed kernel-bench
# baseline the verdict must be clean; with maze pops scaled 2x the diff
# must exit 8 (the campaign-regression code), proving the alarm fires.
./build/tools/streak campaign run --store="$OBS_TMP/campaign.jsonl" \
    --threads=1 --quiet
./build/tools/streak campaign diff "$OBS_TMP/campaign.jsonl" \
    --baseline="$OBS_TMP/campaign.jsonl" --bench=BENCH_streak.json \
    --verdict="$OBS_TMP/verdict.json"
./build/tools/streak campaign run --store="$OBS_TMP/drill.jsonl" \
    --suites=1 --configs=manual --threads=1 \
    --scale-counter=route/maze.pops:2 --quiet
DRILL_RC=0
./build/tools/streak campaign diff "$OBS_TMP/drill.jsonl" \
    --baseline="$OBS_TMP/campaign.jsonl" \
    --verdict="$OBS_TMP/drill-verdict.json" --quiet 2>/dev/null \
    || DRILL_RC=$?
if [[ "$DRILL_RC" -ne 8 ]]; then
    echo "check.sh: campaign diff missed the injected 2x maze-pop" \
         "regression (exit $DRILL_RC, expected 8)" >&2
    exit 1
fi

echo "check.sh: all stages passed"
