#!/usr/bin/env bash
# Correctness-tooling driver (DESIGN.md "Correctness tooling"):
#
#   1. project lint pass            (tools/streak_lint over src/)
#   2. clang-tidy curated ruleset   (skipped when clang-tidy is absent)
#   3. -Werror build                (CMake preset `werror`)
#   4. sanitizer smoke test         (preset `asan-ubsan`, flow_test)
#
# Usage:  tools/check.sh [--full]
#   --full   run the entire ctest suite (not just flow_test) under
#            ASan/UBSan; slower but what CI should do.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/4] project lint pass =="
cmake --preset dev >/dev/null
cmake --build --preset dev --target streak_lint -j "$JOBS" >/dev/null
./build/tools/streak_lint src

echo "== [2/4] clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    # The dev preset exports compile_commands.json.
    mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${SOURCES[@]}"
else
    echo "clang-tidy not installed; skipping (rules live in .clang-tidy)"
fi

echo "== [3/4] -Werror build =="
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$JOBS"

echo "== [4/4] ASan/UBSan =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
if [[ "$FULL" == 1 ]]; then
    ctest --preset asan-ubsan -j "$JOBS"
else
    # Smoke: the end-to-end flow exercises every stage (and, with
    # STREAK_CHECKS=deep baked into the preset, every stage auditor).
    ./build-asan/tests/flow_test
fi

echo "check.sh: all stages passed"
