// Validator for the observability exports (DESIGN.md "Observability"):
//
//   report_check <report.json> [<trace.json>]
//
// Checks the run report against the streak-run-report schema (header
// fields, required sections, a "flow/run" root span) and, when given,
// the chrome://tracing export for structural validity: every duration
// event carries ph/ts/pid/tid/name, and each (pid, tid) track's B/E
// events balance like a bracket sequence with matching names.
//
// Exits non-zero with a message per problem; check.sh runs it as the
// last stage over a fresh `streak route --report --trace` run.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "flow/report.hpp"
#include "obs/json.hpp"

namespace {

using streak::obs::json::Kind;
using streak::obs::json::Value;

int errors = 0;

void fail(const std::string& message) {
    std::cerr << "report_check: " << message << '\n';
    ++errors;
}

Value parseFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return Value();
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const Value doc = streak::obs::json::parse(buffer.str(), &error);
    if (doc.isNull() && !error.empty()) fail(path + ": " + error);
    return doc;
}

/// The key must exist and have the expected kind.
const Value* requireField(const Value& obj, const std::string& key, Kind kind,
                          const std::string& where) {
    const Value* v = obj.find(key);
    if (v == nullptr) {
        fail(where + ": missing field \"" + key + "\"");
        return nullptr;
    }
    if (v->kind() != kind) {
        fail(where + ": field \"" + key + "\" has the wrong type");
        return nullptr;
    }
    return v;
}

void checkSpanTree(const Value& span, const std::string& where) {
    requireField(span, "name", Kind::String, where);
    requireField(span, "track", Kind::Number, where);
    requireField(span, "startSeconds", Kind::Number, where);
    const Value* seconds = requireField(span, "seconds", Kind::Number, where);
    if (seconds != nullptr && seconds->asNumber() < 0.0) {
        fail(where + ": negative span duration");
    }
    if (const Value* children = span.find("children")) {
        if (children->kind() != Kind::Array) {
            fail(where + ": \"children\" is not an array");
            return;
        }
        for (size_t i = 0; i < children->asArray().size(); ++i) {
            checkSpanTree(children->asArray()[i],
                          where + "/child[" + std::to_string(i) + "]");
        }
    }
}

void checkReport(const std::string& path) {
    const Value doc = parseFile(path);
    if (doc.isNull()) return;
    if (doc.kind() != Kind::Object) {
        fail(path + ": top level is not an object");
        return;
    }
    const Value* schema =
        requireField(doc, "schema", Kind::String, path);
    if (schema != nullptr &&
        schema->asString() != streak::flow::kReportSchema) {
        fail(path + ": schema is \"" + schema->asString() + "\", expected \"" +
             streak::flow::kReportSchema + "\"");
    }
    const Value* version =
        requireField(doc, "schemaVersion", Kind::Number, path);
    if (version != nullptr &&
        static_cast<int>(version->asNumber()) !=
            streak::flow::kReportSchemaVersion) {
        fail(path + ": unsupported schemaVersion");
    }
    requireField(doc, "design", Kind::Object, path);
    requireField(doc, "options", Kind::Object, path);
    requireField(doc, "metrics", Kind::Object, path);
    requireField(doc, "counters", Kind::Object, path);
    requireField(doc, "histograms", Kind::Object, path);
    const Value* spans = requireField(doc, "spans", Kind::Array, path);
    if (spans == nullptr) return;
    if (spans->asArray().empty()) {
        fail(path + ": span tree is empty");
        return;
    }
    bool haveRun = false;
    for (const Value& root : spans->asArray()) {
        const Value* name = root.find("name");
        if (name != nullptr && name->kind() == Kind::String &&
            name->asString() == streak::stage::kRun) {
            haveRun = true;
        }
    }
    if (!haveRun) {
        fail(path + ": no root span named \"" +
             std::string(streak::stage::kRun) + "\"");
    }
    for (size_t i = 0; i < spans->asArray().size(); ++i) {
        checkSpanTree(spans->asArray()[i],
                      path + ":span[" + std::to_string(i) + "]");
    }
}

void checkTrace(const std::string& path) {
    const Value doc = parseFile(path);
    if (doc.isNull()) return;
    const Value* events = requireField(doc, "traceEvents", Kind::Array, path);
    if (events == nullptr) return;

    // Per-(pid, tid) stack of open B event names.
    std::map<std::pair<int, int>, std::vector<std::string>> open;
    int durations = 0;
    for (size_t i = 0; i < events->asArray().size(); ++i) {
        const Value& ev = events->asArray()[i];
        const std::string where = path + ":event[" + std::to_string(i) + "]";
        const Value* ph = requireField(ev, "ph", Kind::String, where);
        const Value* name = requireField(ev, "name", Kind::String, where);
        const Value* pid = requireField(ev, "pid", Kind::Number, where);
        const Value* tid = requireField(ev, "tid", Kind::Number, where);
        if (ph == nullptr || name == nullptr || pid == nullptr ||
            tid == nullptr) {
            continue;
        }
        const std::pair<int, int> track{static_cast<int>(pid->asNumber()),
                                        static_cast<int>(tid->asNumber())};
        if (ph->asString() == "M") continue;  // metadata (thread_name)
        if (ph->asString() != "B" && ph->asString() != "E") {
            fail(where + ": unexpected phase \"" + ph->asString() + "\"");
            continue;
        }
        requireField(ev, "ts", Kind::Number, where);
        ++durations;
        if (ph->asString() == "B") {
            open[track].push_back(name->asString());
        } else {
            auto& stack = open[track];
            if (stack.empty()) {
                fail(where + ": E event with no open B on its track");
            } else if (stack.back() != name->asString()) {
                fail(where + ": E \"" + name->asString() +
                     "\" does not match open B \"" + stack.back() + "\"");
                stack.pop_back();
            } else {
                stack.pop_back();
            }
        }
    }
    for (const auto& [track, stack] : open) {
        if (!stack.empty()) {
            fail(path + ": track " + std::to_string(track.first) + "/" +
                 std::to_string(track.second) + " has " +
                 std::to_string(stack.size()) + " unclosed B event(s)");
        }
    }
    if (durations == 0) fail(path + ": no duration events");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || argc > 3) {
        std::cerr << "usage: report_check <report.json> [<trace.json>]\n";
        return 2;
    }
    checkReport(argv[1]);
    if (argc == 3) checkTrace(argv[2]);
    if (errors > 0) {
        std::cerr << "report_check: " << errors << " problem(s)\n";
        return 1;
    }
    std::cout << "report_check: ok\n";
    return 0;
}
