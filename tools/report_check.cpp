// Validator for the observability exports (DESIGN.md "Observability"):
//
//   report_check <report.json> [<trace.json>]
//   report_check --bench <BENCH_streak.json>
//
// Checks the run report against the streak-run-report schema (header
// fields, required sections, a "flow/run" root span) and, when given,
// the chrome://tracing export for structural validity: every duration
// event carries ph/ts/pid/tid/name, and each (pid, tid) track's B/E
// events balance like a bracket sequence with matching names.
//
// --bench validates a `micro_kernels --report` kernel-bench document
// instead: the streak-kernel-bench schema (before/after sides with
// counters and solutions per kernel per design) plus the performance
// contract of the hot-path kernels — route/maze.pops and ilp/lp.pivots
// must drop by at least 30% in total across the shrunk synth suite, and
// no before/after pair may disagree on its solution.
//
// Exits non-zero with a message per problem; check.sh runs it as the
// last stage over a fresh `streak route --report --trace` run and over a
// fresh kernel-bench report.
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "flow/report.hpp"
#include "obs/json.hpp"

namespace {

using streak::obs::json::Kind;
using streak::obs::json::Value;

int errors = 0;

void fail(const std::string& message) {
    std::cerr << "report_check: " << message << '\n';
    ++errors;
}

Value parseFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        fail("cannot open " + path);
        return Value();
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const Value doc = streak::obs::json::parse(buffer.str(), &error);
    if (doc.isNull() && !error.empty()) fail(path + ": " + error);
    return doc;
}

/// The key must exist and have the expected kind.
const Value* requireField(const Value& obj, const std::string& key, Kind kind,
                          const std::string& where) {
    const Value* v = obj.find(key);
    if (v == nullptr) {
        fail(where + ": missing field \"" + key + "\"");
        return nullptr;
    }
    if (v->kind() != kind) {
        fail(where + ": field \"" + key + "\" has the wrong type");
        return nullptr;
    }
    return v;
}

void checkSpanTree(const Value& span, const std::string& where) {
    requireField(span, "name", Kind::String, where);
    requireField(span, "track", Kind::Number, where);
    requireField(span, "startSeconds", Kind::Number, where);
    const Value* seconds = requireField(span, "seconds", Kind::Number, where);
    if (seconds != nullptr && seconds->asNumber() < 0.0) {
        fail(where + ": negative span duration");
    }
    if (const Value* children = span.find("children")) {
        if (children->kind() != Kind::Array) {
            fail(where + ": \"children\" is not an array");
            return;
        }
        for (size_t i = 0; i < children->asArray().size(); ++i) {
            checkSpanTree(children->asArray()[i],
                          where + "/child[" + std::to_string(i) + "]");
        }
    }
}

void checkReport(const std::string& path) {
    const Value doc = parseFile(path);
    if (doc.isNull()) return;
    if (doc.kind() != Kind::Object) {
        fail(path + ": top level is not an object");
        return;
    }
    const Value* schema =
        requireField(doc, "schema", Kind::String, path);
    if (schema != nullptr &&
        schema->asString() != streak::flow::kReportSchema) {
        fail(path + ": schema is \"" + schema->asString() + "\", expected \"" +
             streak::flow::kReportSchema + "\"");
    }
    const Value* version =
        requireField(doc, "schemaVersion", Kind::Number, path);
    if (version != nullptr &&
        static_cast<int>(version->asNumber()) !=
            streak::flow::kReportSchemaVersion) {
        fail(path + ": unsupported schemaVersion");
    }
    requireField(doc, "design", Kind::Object, path);
    requireField(doc, "options", Kind::Object, path);
    requireField(doc, "metrics", Kind::Object, path);
    const Value* robust = requireField(doc, "robust", Kind::Object, path);
    if (robust != nullptr) {
        requireField(*robust, "deadlineSeconds", Kind::Number,
                     path + ":robust");
        requireField(*robust, "degraded", Kind::Bool, path + ":robust");
        const Value* rungs = requireField(*robust, "degradations",
                                          Kind::Array, path + ":robust");
        if (rungs != nullptr) {
            for (size_t i = 0; i < rungs->asArray().size(); ++i) {
                const std::string where =
                    path + ":robust/degradation[" + std::to_string(i) + "]";
                const Value& rung = rungs->asArray()[i];
                requireField(rung, "stage", Kind::String, where);
                requireField(rung, "rung", Kind::String, where);
                requireField(rung, "message", Kind::String, where);
            }
        }
    }
    requireField(doc, "counters", Kind::Object, path);
    requireField(doc, "histograms", Kind::Object, path);
    const Value* spans = requireField(doc, "spans", Kind::Array, path);
    if (spans == nullptr) return;
    if (spans->asArray().empty()) {
        fail(path + ": span tree is empty");
        return;
    }
    bool haveRun = false;
    for (const Value& root : spans->asArray()) {
        const Value* name = root.find("name");
        if (name != nullptr && name->kind() == Kind::String &&
            name->asString() == streak::stage::kRun) {
            haveRun = true;
        }
    }
    if (!haveRun) {
        fail(path + ": no root span named \"" +
             std::string(streak::stage::kRun) + "\"");
    }
    for (size_t i = 0; i < spans->asArray().size(); ++i) {
        checkSpanTree(spans->asArray()[i],
                      path + ":span[" + std::to_string(i) + "]");
    }
}

void checkTrace(const std::string& path) {
    const Value doc = parseFile(path);
    if (doc.isNull()) return;
    const Value* events = requireField(doc, "traceEvents", Kind::Array, path);
    if (events == nullptr) return;

    // Per-(pid, tid) stack of open B event names.
    std::map<std::pair<int, int>, std::vector<std::string>> open;
    int durations = 0;
    for (size_t i = 0; i < events->asArray().size(); ++i) {
        const Value& ev = events->asArray()[i];
        const std::string where = path + ":event[" + std::to_string(i) + "]";
        const Value* ph = requireField(ev, "ph", Kind::String, where);
        const Value* name = requireField(ev, "name", Kind::String, where);
        const Value* pid = requireField(ev, "pid", Kind::Number, where);
        const Value* tid = requireField(ev, "tid", Kind::Number, where);
        if (ph == nullptr || name == nullptr || pid == nullptr ||
            tid == nullptr) {
            continue;
        }
        const std::pair<int, int> track{static_cast<int>(pid->asNumber()),
                                        static_cast<int>(tid->asNumber())};
        if (ph->asString() == "M") continue;  // metadata (thread_name)
        if (ph->asString() != "B" && ph->asString() != "E") {
            fail(where + ": unexpected phase \"" + ph->asString() + "\"");
            continue;
        }
        requireField(ev, "ts", Kind::Number, where);
        ++durations;
        if (ph->asString() == "B") {
            open[track].push_back(name->asString());
        } else {
            auto& stack = open[track];
            if (stack.empty()) {
                fail(where + ": E event with no open B on its track");
            } else if (stack.back() != name->asString()) {
                fail(where + ": E \"" + name->asString() +
                     "\" does not match open B \"" + stack.back() + "\"");
                stack.pop_back();
            } else {
                stack.pop_back();
            }
        }
    }
    for (const auto& [track, stack] : open) {
        if (!stack.empty()) {
            fail(path + ": track " + std::to_string(track.first) + "/" +
                 std::to_string(track.second) + " has " +
                 std::to_string(stack.size()) + " unclosed B event(s)");
        }
    }
    if (durations == 0) fail(path + ": no duration events");
}

/// One side (before / after) of a kernel-bench entry.
const Value* checkBenchSide(const Value& entry, const std::string& key,
                            const std::string& where) {
    const Value* side = requireField(entry, key, Kind::Object, where);
    if (side == nullptr) return nullptr;
    requireField(*side, "variant", Kind::String, where + "/" + key);
    requireField(*side, "seconds", Kind::Number, where + "/" + key);
    requireField(*side, "counters", Kind::Object, where + "/" + key);
    requireField(*side, "solution", Kind::Object, where + "/" + key);
    return side;
}

/// The before/after runs must agree on every solution field (routed
/// bits, wirelength, vias, objective, ...): the kernel rewrites are
/// required to be outcome-preserving, not just faster.
void checkBenchSolutions(const Value& before, const Value& after,
                         const std::string& where) {
    const Value* sb = before.find("solution");
    const Value* sa = after.find("solution");
    if (sb == nullptr || sa == nullptr || sb->kind() != Kind::Object ||
        sa->kind() != Kind::Object) {
        return;  // already reported by checkBenchSide
    }
    for (const auto& [key, value] : sb->asObject().items()) {
        const Value* other = sa->find(key);
        if (other == nullptr || other->kind() != value.kind()) {
            fail(where + ": solution field \"" + key +
                 "\" missing or mistyped on the after side");
            continue;
        }
        bool same = true;
        if (value.kind() == Kind::Number) {
            same = std::abs(value.asNumber() - other->asNumber()) <= 1e-6;
        } else if (value.kind() == Kind::Bool) {
            same = value.asBool() == other->asBool();
        }
        if (!same) {
            fail(where + ": before/after disagree on solution field \"" +
                 key + "\"");
        }
    }
}

/// Total drop of a kernel's headline counter, from the totals section.
void checkBenchDrop(const Value& totals, const std::string& kernel,
                    const std::string& path) {
    const Value* section =
        requireField(totals, kernel, Kind::Object, path + ":totals");
    if (section == nullptr) return;
    const Value* drop = requireField(*section, "dropPercent", Kind::Number,
                                     path + ":totals/" + kernel);
    if (drop != nullptr && drop->asNumber() < 30.0) {
        fail(path + ": " + kernel + " counter drop is " +
             std::to_string(drop->asNumber()) +
             "%, below the 30% performance contract");
    }
}

void checkBench(const std::string& path) {
    const Value doc = parseFile(path);
    if (doc.isNull()) return;
    if (doc.kind() != Kind::Object) {
        fail(path + ": top level is not an object");
        return;
    }
    const Value* schema = requireField(doc, "schema", Kind::String, path);
    if (schema != nullptr && schema->asString() != "streak-kernel-bench") {
        fail(path + ": schema is \"" + schema->asString() +
             "\", expected \"streak-kernel-bench\"");
    }
    const Value* version =
        requireField(doc, "schemaVersion", Kind::Number, path);
    if (version != nullptr && static_cast<int>(version->asNumber()) != 1) {
        fail(path + ": unsupported schemaVersion");
    }
    const Value* kernels = requireField(doc, "kernels", Kind::Array, path);
    if (kernels != nullptr) {
        if (kernels->asArray().empty()) fail(path + ": no kernel entries");
        for (size_t i = 0; i < kernels->asArray().size(); ++i) {
            const Value& entry = kernels->asArray()[i];
            const std::string where =
                path + ":kernel[" + std::to_string(i) + "]";
            requireField(entry, "kernel", Kind::String, where);
            requireField(entry, "design", Kind::String, where);
            const Value* before = checkBenchSide(entry, "before", where);
            const Value* after = checkBenchSide(entry, "after", where);
            if (before != nullptr && after != nullptr) {
                checkBenchSolutions(*before, *after, where);
            }
        }
    }
    const Value* totals = requireField(doc, "totals", Kind::Object, path);
    if (totals != nullptr) {
        checkBenchDrop(*totals, "maze", path);
        checkBenchDrop(*totals, "lp", path);
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 3 && std::string(argv[1]) == "--bench") {
        checkBench(argv[2]);
        if (errors > 0) {
            std::cerr << "report_check: " << errors << " problem(s)\n";
            return 1;
        }
        std::cout << "report_check: ok\n";
        return 0;
    }
    if (argc < 2 || argc > 3) {
        std::cerr << "usage: report_check <report.json> [<trace.json>]\n"
                     "       report_check --bench <BENCH_streak.json>\n";
        return 2;
    }
    checkReport(argv[1]);
    if (argc == 3) checkTrace(argv[2]);
    if (errors > 0) {
        std::cerr << "report_check: " << errors << " problem(s)\n";
        return 1;
    }
    std::cout << "report_check: ok\n";
    return 0;
}
