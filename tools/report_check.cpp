// Validator for the observability exports (DESIGN.md "Observability"):
//
//   report_check [--eco] <report.json> [<trace.json>]
//   report_check --bench <BENCH_streak.json>
//
// Thin CLI over src/flow/report_check.hpp (the checks themselves are a
// library so the test suite can drive them on malformed input without
// spawning a process):
//
//   default    streak-run-report v1 — header fields, required sections
//              (design/options/metrics/robust/process/counters/
//              histograms/spans), a "flow/run" root span; with --eco the
//              eco section `streak eco --report` appends is required,
//              not merely validated when present. The optional second
//              argument is a chrome://tracing export checked for
//              structural validity (balanced per-track B/E events).
//   --bench    streak-kernel-bench v1 (`micro_kernels --report`):
//              before/after sides per kernel per design, solution
//              equality, and the >= 30% pops / pivots drop contract.
//
// Exits non-zero with a message per problem; check.sh runs it over fresh
// `streak route` / `streak eco` / kernel-bench exports.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "flow/report_check.hpp"

namespace {

/// Whole file as a string, or nullopt (with a message) when unreadable.
std::optional<std::string> slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "report_check: cannot open " << path << '\n';
        return std::nullopt;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int finish(const streak::flow::CheckResult& result) {
    for (const std::string& problem : result.problems) {
        std::cerr << "report_check: " << problem << '\n';
    }
    if (!result.ok()) {
        std::cerr << "report_check: " << result.problems.size()
                  << " problem(s)\n";
        return 1;
    }
    std::cout << "report_check: ok\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    bool bench = false;
    bool requireEco = false;
    std::vector<std::string> paths;
    for (const std::string& arg : args) {
        if (arg == "--bench") {
            bench = true;
        } else if (arg == "--eco") {
            requireEco = true;
        } else {
            paths.push_back(arg);
        }
    }
    if (bench && requireEco) {
        std::cerr << "report_check: --bench and --eco are exclusive\n";
        return 2;
    }
    if (paths.empty() || paths.size() > (bench ? 1u : 2u)) {
        std::cerr << "usage: report_check [--eco] <report.json> "
                     "[<trace.json>]\n"
                     "       report_check --bench <BENCH_streak.json>\n";
        return 2;
    }

    const std::optional<std::string> report = slurp(paths[0]);
    if (!report.has_value()) return 1;
    if (bench) {
        return finish(streak::flow::checkKernelBench(*report, paths[0]));
    }
    streak::flow::CheckResult result =
        streak::flow::checkRunReport(*report, paths[0], requireEco);
    if (paths.size() == 2) {
        const std::optional<std::string> trace = slurp(paths[1]);
        if (!trace.has_value()) return 1;
        streak::flow::CheckResult traceResult =
            streak::flow::checkChromeTrace(*trace, paths[1]);
        result.problems.insert(result.problems.end(),
                               traceResult.problems.begin(),
                               traceResult.problems.end());
    }
    return finish(result);
}
