// Interbit delay-skew analysis of a routed design: the timing view of the
// paper's source-to-sink distance deviation (families of corresponding
// sinks across the bits of one group, measured in Elmore delay instead of
// wire distance).
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "core/solution.hpp"
#include "timing/elmore.hpp"

namespace streak::timing {

struct GroupSkewReport {
    int groupIndex = 0;
    /// Largest delay spread over any family of corresponding sinks.
    double maxFamilySkew = 0.0;
    /// Largest single source-to-sink delay in the group.
    double maxDelay = 0.0;
};

/// Per-group interbit delay skew of a routed design. Families reuse the
/// distance-analysis correspondence (pin maps within objects, weighted-SV
/// matching across objects).
[[nodiscard]] std::vector<GroupSkewReport> analyzeGroupSkew(
    const RoutingProblem& prob, const RoutedDesign& routed,
    const ElmoreParameters& params = {});

}  // namespace streak::timing
