// Elmore delay analysis for routed signal bits.
//
// The paper motivates source-to-sink distance matching by the arrival-time
// deviation it causes at the receiving modules (Sec. II-C): this substrate
// makes that connection measurable. Wires get per-G-Cell RC, layer-change
// points a lumped via RC, sinks a load capacitance, and the driver an
// output resistance; per-sink Elmore delays then quantify interbit skew
// directly instead of through the distance proxy.
#pragma once

#include <vector>

#include "steiner/topology.hpp"

namespace streak::timing {

struct ElmoreParameters {
    double wireResistance = 1.0;   // per G-Cell of wire
    double wireCapacitance = 1.0;  // per G-Cell of wire
    double viaResistance = 2.0;    // per layer-change point
    double viaCapacitance = 0.5;   // per layer-change point
    double driverResistance = 10.0;
    double sinkLoad = 2.0;  // capacitance per sink pin
};

/// Elmore delay from the driver to every pin of the topology, index
/// aligned with topo.pins(). Unreachable pins get -1. The topology must
/// be a tree (cycles make Elmore delays ill-defined).
[[nodiscard]] std::vector<double> elmoreDelays(
    const steiner::Topology& topo, const ElmoreParameters& params = {});

/// Maximum pairwise delay difference ("skew") among the sinks of one bit.
[[nodiscard]] double sinkSkew(const steiner::Topology& topo,
                              const ElmoreParameters& params = {});

}  // namespace streak::timing
