#include "timing/elmore.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace streak::timing {

namespace {

using geom::Point;
using steiner::UnitEdge;
using steiner::UnitEdgeHash;

struct Node {
    Point pt;
    int parent = -1;      // index into nodes; -1 at the root
    double ownCap = 0.0;  // lumped capacitance at the point itself
    double edgeRes = 0.0; // resistance of the wire from the parent
    double edgeCap = 0.0; // capacitance of the wire from the parent
    double subtreeCap = 0.0;
    double delay = 0.0;
    std::vector<int> children;
};

}  // namespace

std::vector<double> elmoreDelays(const steiner::Topology& topo,
                                 const ElmoreParameters& params) {
    std::vector<double> out(topo.pins().size(), -1.0);

    // Lattice adjacency of the wire graph, from the sorted view: the BFS
    // node numbering (and with it the floating-point accumulation order
    // of subtree capacitances) follows the neighbour order, so hash-set
    // order would change delays in the last bits across toolchains.
    std::unordered_map<Point, std::vector<Point>> adj;
    for (const UnitEdge& e : topo.sortedWire()) {
        adj[e.at].push_back(e.other());
        adj[e.other()].push_back(e.at);
    }

    // Lumped capacitance at lattice points: via RC at layer-change points,
    // sink loads at pins.
    std::unordered_map<Point, double> pointCap;
    std::unordered_map<Point, double> pointRes;  // series via resistance
    for (const Point p : topo.viaPoints()) {
        pointCap[p] += params.viaCapacitance;
        pointRes[p] += params.viaResistance;
    }
    for (size_t i = 0; i < topo.pins().size(); ++i) {
        if (static_cast<int>(i) == topo.driverIndex()) continue;
        pointCap[topo.pins()[i]] += params.sinkLoad;
    }

    // BFS tree from the driver over unit edges.
    const Point root = topo.driverPin();
    std::vector<Node> nodes;
    std::unordered_map<Point, int> indexOf;
    const auto makeNode = [&](Point p, int parent) {
        Node n;
        n.pt = p;
        n.parent = parent;
        const auto capIt = pointCap.find(p);
        n.ownCap = capIt == pointCap.end() ? 0.0 : capIt->second;
        indexOf.emplace(p, static_cast<int>(nodes.size()));
        nodes.push_back(n);
        return static_cast<int>(nodes.size()) - 1;
    };
    makeNode(root, -1);
    std::deque<int> queue{0};
    while (!queue.empty()) {
        const int cur = queue.front();
        queue.pop_front();
        const auto it = adj.find(nodes[static_cast<size_t>(cur)].pt);
        if (it == adj.end()) continue;
        for (const Point q : it->second) {
            if (indexOf.contains(q)) continue;
            const int child = makeNode(q, cur);
            Node& cn = nodes[static_cast<size_t>(child)];
            cn.edgeRes = params.wireResistance;
            cn.edgeCap = params.wireCapacitance;
            // Series via resistance lumps into the edge entering the point.
            const auto resIt = pointRes.find(q);
            if (resIt != pointRes.end()) cn.edgeRes += resIt->second;
            nodes[static_cast<size_t>(cur)].children.push_back(child);
            queue.push_back(child);
        }
    }

    // Pass 1 (leaves to root): subtree capacitance.
    for (size_t i = nodes.size(); i-- > 0;) {
        Node& n = nodes[i];
        n.subtreeCap += n.ownCap + n.edgeCap / 2.0;
        if (n.parent >= 0) {
            nodes[static_cast<size_t>(n.parent)].subtreeCap +=
                n.subtreeCap + n.edgeCap / 2.0;
        }
    }
    // Pass 2 (root to children; BFS order == index order): delays. With
    // the pi wire model each edge's resistance charges exactly the cap at
    // and below its child node (the child-side half of the edge is already
    // inside subtreeCap; the source-side half hangs before the resistor).
    nodes[0].delay = params.driverResistance * nodes[0].subtreeCap;
    for (size_t i = 1; i < nodes.size(); ++i) {
        Node& n = nodes[i];
        n.delay = nodes[static_cast<size_t>(n.parent)].delay +
                  n.edgeRes * n.subtreeCap;
    }

    for (size_t i = 0; i < topo.pins().size(); ++i) {
        const auto it = indexOf.find(topo.pins()[i]);
        if (it != indexOf.end()) {
            out[i] = nodes[static_cast<size_t>(it->second)].delay;
        } else if (topo.pins()[i] == root) {
            out[i] = nodes[0].delay;
        }
    }
    return out;
}

double sinkSkew(const steiner::Topology& topo,
                const ElmoreParameters& params) {
    const std::vector<double> delays = elmoreDelays(topo, params);
    double lo = -1.0;
    double hi = -1.0;
    for (size_t i = 0; i < delays.size(); ++i) {
        if (static_cast<int>(i) == topo.driverIndex()) continue;
        if (delays[i] < 0.0) continue;
        if (lo < 0.0 || delays[i] < lo) lo = delays[i];
        if (delays[i] > hi) hi = delays[i];
    }
    return hi < 0.0 ? 0.0 : hi - lo;
}

}  // namespace streak::timing
