#include "timing/skew.hpp"

#include <algorithm>
#include <map>

#include "core/distance.hpp"

namespace streak::timing {

std::vector<GroupSkewReport> analyzeGroupSkew(const RoutingProblem& prob,
                                              const RoutedDesign& routed,
                                              const ElmoreParameters& params) {
    const std::vector<std::vector<FamilyMember>> families =
        buildSinkFamilies(prob, routed);

    // Per-bit Elmore delays, computed once per routed bit.
    std::map<int, std::vector<double>> delayCache;
    const auto delaysOf = [&](int routedBit) -> const std::vector<double>& {
        auto it = delayCache.find(routedBit);
        if (it == delayCache.end()) {
            it = delayCache
                     .emplace(routedBit,
                              elmoreDelays(
                                  routed.bits[static_cast<size_t>(routedBit)]
                                      .topo,
                                  params))
                     .first;
        }
        return it->second;
    };

    std::vector<GroupSkewReport> reports;
    reports.reserve(families.size());
    for (size_t g = 0; g < families.size(); ++g) {
        GroupSkewReport rep;
        rep.groupIndex = static_cast<int>(g);
        std::map<int, std::pair<double, double>> range;  // fam -> (min, max)
        for (const FamilyMember& m : families[g]) {
            const double d =
                delaysOf(m.routedBitIndex)[static_cast<size_t>(m.pinIndex)];
            if (d < 0.0) continue;
            rep.maxDelay = std::max(rep.maxDelay, d);
            auto [it, fresh] = range.try_emplace(m.familyId, d, d);
            if (!fresh) {
                it->second.first = std::min(it->second.first, d);
                it->second.second = std::max(it->second.second, d);
            }
        }
        for (const auto& [fam, mm] : range) {
            rep.maxFamilySkew =
                std::max(rep.maxFamilySkew, mm.second - mm.first);
        }
        reports.push_back(rep);
    }
    return reports;
}

}  // namespace streak::timing
