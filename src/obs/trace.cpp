#include "obs/trace.hpp"

namespace streak::obs {

namespace {

// Per-thread span context. Workers inherit the owning region's span via
// obs::WorkerBind; the flow thread builds its own stack naturally. Saved
// and restored together with the thread's session binding (session.cpp).
thread_local int tlCurrentSpan = -1;
thread_local int tlTrack = 0;

}  // namespace

void Tracer::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    epoch_ = std::chrono::steady_clock::now();
    tlCurrentSpan = -1;
}

int Tracer::beginSpan(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::chrono::duration<double> sinceEpoch =
        std::chrono::steady_clock::now() - epoch_;
    Span span;
    span.name = std::move(name);
    span.parent = tlCurrentSpan;
    span.thread = tlTrack;
    span.startSeconds = sinceEpoch.count();
    const int id = static_cast<int>(spans_.size());
    spans_.push_back(std::move(span));
    tlCurrentSpan = id;
    return id;
}

void Tracer::endSpan(int id) {
    std::lock_guard<std::mutex> lock(mutex_);
    // A reset() between begin and end (one flow run at a time) invalidates
    // outstanding ids; tolerate it rather than corrupting the new trace.
    if (id < 0 || id >= static_cast<int>(spans_.size())) return;
    Span& span = spans_[static_cast<size_t>(id)];
    const std::chrono::duration<double> sinceEpoch =
        std::chrono::steady_clock::now() - epoch_;
    span.endSeconds = sinceEpoch.count();
    if (tlCurrentSpan == id) tlCurrentSpan = span.parent;
}

void Tracer::addSpanArg(int id, std::string key, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || id >= static_cast<int>(spans_.size())) return;
    spans_[static_cast<size_t>(id)].args.emplace_back(std::move(key), value);
}

int Tracer::currentSpan() const { return tlCurrentSpan; }

Trace Tracer::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

Tracer::ThreadContext Tracer::threadContext() {
    return {tlCurrentSpan, tlTrack};
}

void Tracer::setThreadContext(ThreadContext context) {
    tlCurrentSpan = context.span;
    tlTrack = context.track;
}

double spanSeconds(const Trace& trace, std::string_view name) {
    double total = 0.0;
    for (const Span& s : trace) {
        if (s.name == name) total += s.seconds();
    }
    return total;
}

const Span* findSpan(const Trace& trace, std::string_view name) {
    for (const Span& s : trace) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

double spanArg(const Trace& trace, std::string_view name,
               std::string_view key, double fallback) {
    const Span* span = findSpan(trace, name);
    if (span == nullptr) return fallback;
    for (const auto& [k, v] : span->args) {
        if (k == key) return v;
    }
    return fallback;
}

}  // namespace streak::obs
