#include "obs/process.hpp"

#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace streak::obs {

ProcessInfo processInfo() {
    ProcessInfo info;
    info.hostname = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
        // macOS reports ru_maxrss in bytes.
        info.peakRssKb = static_cast<long long>(usage.ru_maxrss) / 1024;
#else
        info.peakRssKb = static_cast<long long>(usage.ru_maxrss);
#endif
    }
    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
        info.hostname = host;
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    info.hardwareThreads = hw == 0 ? 1 : static_cast<int>(hw);
    return info;
}

}  // namespace streak::obs
