#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace streak::obs::json {

Value::Value(Array a) : kind_(Kind::Array), array_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : kind_(Kind::Object), object_(std::make_shared<Object>(std::move(o))) {}

const Array& Value::asArray() const {
    static const Array kEmpty;
    return array_ ? *array_ : kEmpty;
}

const Object& Value::asObject() const {
    static const Object kEmpty;
    return object_ ? *object_ : kEmpty;
}

const Value* Value::find(std::string_view key) const {
    return kind_ == Kind::Object ? asObject().find(key) : nullptr;
}

Value& Object::set(std::string key, Value value) {
    for (auto& [k, v] : items_) {
        if (k == key) {
            v = std::move(value);
            return v;
        }
    }
    items_.emplace_back(std::move(key), std::move(value));
    return items_.back().second;
}

const Value* Object::find(std::string_view key) const {
    for (const auto& [k, v] : items_) {
        if (k == key) return &v;
    }
    return nullptr;
}

void writeEscaped(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

namespace {

void writeNumber(std::ostream& os, double n) {
    // Integers (the common case: counters, bucket counts) print exactly;
    // reals round-trip through shortest-form via max_digits10.
    if (std::nearbyint(n) == n && std::abs(n) < 9.007199254740992e15) {
        os << static_cast<long long>(n);
        return;
    }
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << n;
    os << tmp.str();
}

void writeIndent(std::ostream& os, int indent, int depth) {
    os << '\n';
    for (int i = 0; i < indent * depth; ++i) os << ' ';
}

void writeValue(std::ostream& os, const Value& v, int indent, int depth) {
    switch (v.kind()) {
        case Kind::Null: os << "null"; return;
        case Kind::Bool: os << (v.asBool() ? "true" : "false"); return;
        case Kind::Number: writeNumber(os, v.asNumber()); return;
        case Kind::String: writeEscaped(os, v.asString()); return;
        case Kind::Array: {
            const Array& a = v.asArray();
            if (a.empty()) {
                os << "[]";
                return;
            }
            os << '[';
            for (size_t i = 0; i < a.size(); ++i) {
                if (i > 0) os << ',';
                if (indent >= 0) writeIndent(os, indent, depth + 1);
                writeValue(os, a[i], indent, depth + 1);
            }
            if (indent >= 0) writeIndent(os, indent, depth);
            os << ']';
            return;
        }
        case Kind::Object: {
            const Object& o = v.asObject();
            if (o.size() == 0) {
                os << "{}";
                return;
            }
            os << '{';
            bool first = true;
            for (const auto& [key, val] : o.items()) {
                if (!first) os << ',';
                first = false;
                if (indent >= 0) writeIndent(os, indent, depth + 1);
                writeEscaped(os, key);
                os << (indent >= 0 ? ": " : ":");
                writeValue(os, val, indent, depth + 1);
            }
            if (indent >= 0) writeIndent(os, indent, depth);
            os << '}';
            return;
        }
    }
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parseDocument(std::string* error) {
        Value v = parseValue();
        skipWhitespace();
        if (!failed_ && pos_ != text_.size()) {
            failed_ = true;
            message_ = "trailing characters after the document";
        }
        if (failed_) {
            if (error != nullptr) {
                *error = message_ + " (at offset " + std::to_string(pos_) + ")";
            }
            return Value();
        }
        if (error != nullptr) error->clear();
        return v;
    }

private:
    void skipWhitespace() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    [[nodiscard]] bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value fail(std::string message) {
        if (!failed_) {
            failed_ = true;
            message_ = std::move(message);
        }
        return Value();
    }

    Value parseValue() {
        skipWhitespace();
        if (failed_ || pos_ >= text_.size()) return fail("unexpected end");
        const char c = text_[pos_];
        if (c == '{') return parseObject();
        if (c == '[') return parseArray();
        if (c == '"') return parseString();
        if (c == 't' || c == 'f') return parseKeyword();
        if (c == 'n') {
            if (text_.compare(pos_, 4, "null") == 0) {
                pos_ += 4;
                return Value();
            }
            return fail("bad keyword");
        }
        return parseNumber();
    }

    Value parseKeyword() {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return Value(true);
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return Value(false);
        }
        return fail("bad keyword");
    }

    Value parseNumber() {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        double out = 0.0;
        const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                               text_.data() + pos_, out);
        if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
            return fail("bad number");
        }
        return Value(out);
    }

    Value parseString() {
        if (!consume('"')) return fail("expected string");
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return Value(std::move(out));
            if (c == '\\') {
                if (pos_ >= text_.size()) break;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) return fail("bad \\u");
                        int code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code += h - '0';
                            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
                            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
                            else return fail("bad \\u digit");
                        }
                        // Reports only emit \u00xx controls; encode the
                        // BMP code point as UTF-8 without surrogate
                        // handling (unused by our writers).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        }
                        break;
                    }
                    default: return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    Value parseArray() {
        if (!consume('[')) return fail("expected array");
        Array out;
        skipWhitespace();
        if (consume(']')) return Value(std::move(out));
        for (;;) {
            out.push_back(parseValue());
            if (failed_) return Value();
            skipWhitespace();
            if (consume(']')) return Value(std::move(out));
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    Value parseObject() {
        if (!consume('{')) return fail("expected object");
        Object out;
        skipWhitespace();
        if (consume('}')) return Value(std::move(out));
        for (;;) {
            skipWhitespace();
            Value key = parseString();
            if (failed_) return Value();
            skipWhitespace();
            if (!consume(':')) return fail("expected ':'");
            out.set(key.asString(), parseValue());
            if (failed_) return Value();
            skipWhitespace();
            if (consume('}')) return Value(std::move(out));
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string message_;
};

}  // namespace

void Value::write(std::ostream& os, int indent) const {
    writeValue(os, *this, indent, 0);
    if (indent >= 0) os << '\n';
}

std::string Value::dump(int indent) const {
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

Value parse(std::string_view text, std::string* error) {
    return Parser(text).parseDocument(error);
}

}  // namespace streak::obs::json
