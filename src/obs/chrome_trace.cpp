#include "obs/chrome_trace.hpp"

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace streak::obs {

namespace {

json::Value event(const char* phase, const Span& span, double ts) {
    json::Object ev;
    ev.set("name", span.name);
    ev.set("ph", phase);
    ev.set("ts", ts * 1e6);  // trace-event timestamps are microseconds
    ev.set("pid", 1);
    ev.set("tid", span.thread);
    return json::Value(std::move(ev));
}

/// DFS over one thread track: emit B(span), children in begin order,
/// E(span) — balanced by construction because same-thread spans nest
/// properly (they are RAII scopes on that thread).
void emitSpan(const Trace& trace,
              const std::vector<std::vector<int>>& children, int index,
              json::Array* events) {
    const Span& span = trace[static_cast<size_t>(index)];
    if (span.endSeconds < 0.0) return;  // skip still-open spans

    json::Value begin = event("B", span, span.startSeconds);
    if (!span.args.empty()) {
        json::Object args;
        for (const auto& [key, value] : span.args) args.set(key, value);
        json::Object withArgs = begin.asObject();
        withArgs.set("args", json::Value(std::move(args)));
        begin = json::Value(std::move(withArgs));
    }
    events->push_back(std::move(begin));
    for (const int child : children[static_cast<size_t>(index)]) {
        emitSpan(trace, children, child, events);
    }
    events->push_back(event("E", span, span.endSeconds));
}

}  // namespace

void writeChromeTrace(const Trace& trace, std::ostream& os) {
    // Group spans into per-thread trees: a span whose parent ran on a
    // different thread (a task span under a region owner) becomes a root
    // of its worker's track.
    std::vector<std::vector<int>> children(trace.size());
    std::vector<int> roots;
    int maxThread = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        const Span& span = trace[i];
        maxThread = span.thread > maxThread ? span.thread : maxThread;
        const int p = span.parent;
        if (p >= 0 && p < static_cast<int>(trace.size()) &&
            trace[static_cast<size_t>(p)].thread == span.thread) {
            children[static_cast<size_t>(p)].push_back(static_cast<int>(i));
        } else {
            roots.push_back(static_cast<int>(i));
        }
    }

    json::Array events;
    for (int t = 0; t <= maxThread; ++t) {
        json::Object meta;
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", t);
        json::Object args;
        args.set("name", t == 0 ? std::string("flow")
                                : "worker-" + std::to_string(t));
        meta.set("args", json::Value(std::move(args)));
        events.push_back(json::Value(std::move(meta)));
    }
    for (const int root : roots) emitSpan(trace, children, root, &events);

    json::Object doc;
    doc.set("traceEvents", json::Value(std::move(events)));
    doc.set("displayTimeUnit", "ms");
    json::Value(std::move(doc)).write(os, 1);
}

}  // namespace streak::obs
