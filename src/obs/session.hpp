// Per-run observability sessions (DESIGN.md "Observability").
//
// A Session owns one counter/histogram Registry and one span Tracer
// (with its runtime detail gate). Everything instrumented code records
// goes to the *calling thread's bound session*, so two flow runs in one
// process — campaign sweeps, future streakd jobs — get fully independent
// metrics with no bleed between them:
//
//   auto session = std::make_shared<obs::Session>();
//   StreakOptions opts;
//   opts.session = session;            // runStreak binds it for the run
//   ...
//   // session->snapshotMetrics() now holds only this run's values.
//
// Binding is thread-local and RAII:
//
//   obs::SessionBind bind(*session);   // owner thread, e.g. runStreak
//   obs::WorkerBind  bind(*session, parentSpan, track);   // pool workers
//
// Both save and restore the previous binding *and* the thread's span
// context together — span ids are indices into the bound session's
// tracer, so the pair must always travel as one. When no session is
// bound, obs::session() resolves to the process-global default session,
// which keeps the historical process-global behaviour (and byte-identical
// output) for every existing call site, test, and bench.
#pragma once

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace streak::obs {

/// One isolated observability domain: counters + histograms + tracer +
/// detail gate. Thread-safe exactly like the global registry was; the
/// object must outlive every thread bound to it.
class Session {
public:
    Session() = default;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] Counter& counter(std::string_view name) {
        return registry_.counter(name);
    }
    [[nodiscard]] Histogram& histogram(std::string_view name,
                                       std::vector<long long> upperBounds) {
        return registry_.histogram(name, std::move(upperBounds));
    }
    [[nodiscard]] Snapshot snapshotMetrics() const {
        return registry_.snapshot();
    }

    [[nodiscard]] Tracer& tracer() { return tracer_; }
    [[nodiscard]] const Tracer& tracer() const { return tracer_; }

    /// Per-session runtime gate for hot-path instrumentation (lives on
    /// the tracer so STREAK_SPAN and counter flushes share one flag).
    [[nodiscard]] bool detailEnabled() const {
        return tracer_.detailEnabled();
    }
    void setDetailEnabled(bool enabled) { tracer_.setDetailEnabled(enabled); }

private:
    Registry registry_;
    Tracer tracer_;
};

/// The process-global default session — what unbound threads record into.
[[nodiscard]] Session& defaultSession();

/// The calling thread's bound session, or defaultSession() when unbound.
[[nodiscard]] Session& session();

/// RAII binding of a session to the calling thread (the flow/owner
/// thread). Enters with a clean span context (no open span, track 0) and
/// restores the previous session *and* span context on destruction, so
/// nested runs under different sessions unwind correctly.
class SessionBind {
public:
    explicit SessionBind(Session& session);
    ~SessionBind();
    SessionBind(const SessionBind&) = delete;
    SessionBind& operator=(const SessionBind&) = delete;

private:
    Session* savedSession_;
    Tracer::ThreadContext savedContext_;
};

/// RAII binding for pool worker threads: installs the owning region's
/// session plus (parentSpan, track) as the worker's span context, so
/// spans opened inside tasks attach under the region's span in the
/// *same* session the region's owner was bound to.
class WorkerBind {
public:
    WorkerBind(Session& session, int parentSpan, int track);
    ~WorkerBind();
    WorkerBind(const WorkerBind&) = delete;
    WorkerBind& operator=(const WorkerBind&) = delete;

private:
    Session* savedSession_;
    Tracer::ThreadContext savedContext_;
};

}  // namespace streak::obs
