// Process-level resource facts for run reports and campaign provenance
// (DESIGN.md "Observability").
//
// Everything here is inherently nondeterministic (it describes the host,
// not the computation), so it must never feed back into routing — it is
// exported only into the report's "process" section and the campaign
// store's host stanza.
#pragma once

#include <string>

namespace streak::obs {

struct ProcessInfo {
    /// Peak resident set size of this process in kilobytes (getrusage
    /// ru_maxrss; 0 when the platform cannot report it).
    long long peakRssKb = 0;
    /// Host name ("unknown" when the platform cannot report it).
    std::string hostname;
    /// std::thread::hardware_concurrency (>= 1).
    int hardwareThreads = 1;
};

[[nodiscard]] ProcessInfo processInfo();

}  // namespace streak::obs
