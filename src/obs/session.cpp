#include "obs/session.hpp"

namespace streak::obs {

namespace {

thread_local Session* tlSession = nullptr;

}  // namespace

Session& defaultSession() {
    static Session session;
    return session;
}

Session& session() {
    return tlSession != nullptr ? *tlSession : defaultSession();
}

Tracer& currentTracer() noexcept { return session().tracer(); }

SessionBind::SessionBind(Session& session)
    : savedSession_(tlSession), savedContext_(Tracer::threadContext()) {
    tlSession = &session;
    Tracer::setThreadContext({});
}

SessionBind::~SessionBind() {
    tlSession = savedSession_;
    Tracer::setThreadContext(savedContext_);
}

WorkerBind::WorkerBind(Session& session, int parentSpan, int track)
    : savedSession_(tlSession), savedContext_(Tracer::threadContext()) {
    tlSession = &session;
    Tracer::setThreadContext({parentSpan, track});
}

WorkerBind::~WorkerBind() {
    tlSession = savedSession_;
    Tracer::setThreadContext(savedContext_);
}

}  // namespace streak::obs
