// Named monotonic counters and value histograms (DESIGN.md
// "Observability").
//
// Counters follow the `stage/subsystem.metric` naming convention
// ("solve/bnb.nodes_explored", "route/maze.pops"). They hold plain
// integers updated by atomic adds — integer addition is commutative, so
// totals are byte-identical for every thread count and schedule. The
// determinism contract of the whole layer: counters never hold
// timestamps or anything else schedule-dependent; wall time lives only
// in spans.
//
// Hot-path usage pattern — resolve the handle once, accumulate locally,
// flush behind the runtime detail gate:
//
//   static obs::Counter& pops = obs::counter("route/maze.pops");
//   long long n = 0;
//   ... ++n in the loop ...
//   if (obs::detailEnabled()) pops.add(n);
//
// Histograms bucket values against fixed upper bounds; the last bucket
// is an unbounded overflow bucket (how the per-edge utilization
// distribution represents > 100% overflow).
//
// The registry is process-global; per-run values are obtained by
// snapshot deltas (runStreak snapshots on entry and exit), so
// instrumented code never needs resetting and handles stay valid for
// the process lifetime.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace streak::obs {

/// Monotonic counter; add() is safe from any thread.
class Counter {
public:
    void add(long long n) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] long long value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<long long> value_{0};
};

/// Fixed-bucket histogram; record() is safe from any thread.
class Histogram {
public:
    explicit Histogram(std::vector<long long> upperBounds);

    /// Count `value` into the first bucket with value <= bound, or the
    /// trailing overflow bucket.
    void record(long long value);

    [[nodiscard]] const std::vector<long long>& upperBounds() const {
        return upperBounds_;
    }
    /// Bucket counts; size() == upperBounds().size() + 1 (overflow last).
    [[nodiscard]] std::vector<long long> counts() const;
    [[nodiscard]] long long total() const {
        return total_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] long long sum() const {
        return sum_.load(std::memory_order_relaxed);
    }

private:
    std::vector<long long> upperBounds_;
    std::vector<std::atomic<long long>> buckets_;
    std::atomic<long long> total_{0};
    std::atomic<long long> sum_{0};
};

/// Registry handle for a counter; creates it on first use. The returned
/// reference is valid for the process lifetime.
[[nodiscard]] Counter& counter(std::string_view name);

/// Registry handle for a histogram; creates it (with these bounds) on
/// first use. Re-registration with different bounds keeps the original.
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   std::vector<long long> upperBounds);

/// Point-in-time copy of every registered counter and histogram, plus
/// delta arithmetic for per-run values.
struct Snapshot {
    struct HistogramValues {
        std::vector<long long> upperBounds;
        std::vector<long long> counts;  ///< bounds.size() + 1, overflow last
        long long total = 0;
        long long sum = 0;
    };

    std::map<std::string, long long> counters;
    std::map<std::string, HistogramValues> histograms;

    /// Everything this snapshot accumulated beyond `base` (counters /
    /// histograms absent from `base` count from zero).
    [[nodiscard]] Snapshot minus(const Snapshot& base) const;
};

/// Snapshot the whole registry.
[[nodiscard]] Snapshot snapshotMetrics();

}  // namespace streak::obs
