// Named monotonic counters and value histograms (DESIGN.md
// "Observability").
//
// Counters follow the `stage/subsystem.metric` naming convention
// ("solve/bnb.nodes_explored", "route/maze.pops"). They hold plain
// integers updated by atomic adds — integer addition is commutative, so
// totals are byte-identical for every thread count and schedule. The
// determinism contract of the whole layer: counters never hold
// timestamps or anything else schedule-dependent; wall time lives only
// in spans.
//
// Hot-path usage pattern — resolve the handle once per scope, accumulate
// locally, flush behind the runtime detail gate:
//
//   long long n = 0;
//   ... ++n in the loop ...
//   if (obs::detailEnabled()) obs::session().counter("route/maze.pops").add(n);
//
// Never cache a handle in a `static` local: handles belong to the
// Session (obs/session.hpp) that resolved them, and a static would pin
// the first run's session forever, bleeding later runs' metrics into it.
//
// Histograms bucket values against fixed upper bounds; the last bucket
// is an unbounded overflow bucket (how the per-edge utilization
// distribution represents > 100% overflow).
//
// Handles live in a Registry owned by an obs::Session. Registered
// entries are never removed, so references stay valid for the owning
// session's lifetime and instrumented code never needs resetting:
// per-run values are obtained by snapshot deltas (runStreak snapshots on
// entry and exit).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace streak::obs {

/// Monotonic counter; add() is safe from any thread.
class Counter {
public:
    void add(long long n) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] long long value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<long long> value_{0};
};

/// Fixed-bucket histogram; record() is safe from any thread.
class Histogram {
public:
    explicit Histogram(std::vector<long long> upperBounds);

    /// Count `value` into the first bucket with value <= bound, or the
    /// trailing overflow bucket.
    void record(long long value);

    [[nodiscard]] const std::vector<long long>& upperBounds() const {
        return upperBounds_;
    }
    /// Bucket counts; size() == upperBounds().size() + 1 (overflow last).
    [[nodiscard]] std::vector<long long> counts() const;
    [[nodiscard]] long long total() const {
        return total_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] long long sum() const {
        return sum_.load(std::memory_order_relaxed);
    }

private:
    std::vector<long long> upperBounds_;
    std::vector<std::atomic<long long>> buckets_;
    std::atomic<long long> total_{0};
    std::atomic<long long> sum_{0};
};

/// Point-in-time copy of every registered counter and histogram, plus
/// delta arithmetic for per-run values.
struct Snapshot {
    struct HistogramValues {
        std::vector<long long> upperBounds;
        std::vector<long long> counts;  ///< bounds.size() + 1, overflow last
        long long total = 0;
        long long sum = 0;
    };

    std::map<std::string, long long> counters;
    std::map<std::string, HistogramValues> histograms;

    /// Everything this snapshot accumulated beyond `base` (counters /
    /// histograms absent from `base` count from zero).
    [[nodiscard]] Snapshot minus(const Snapshot& base) const;
};

/// Name -> handle maps for one Session. Handles are heap-allocated once
/// and never freed while the registry lives, so references stay stable
/// while the maps grow under the lock.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Handle for a counter; creates it on first use. The returned
    /// reference is valid for the registry's lifetime.
    [[nodiscard]] Counter& counter(std::string_view name);

    /// Handle for a histogram; creates it (with these bounds) on first
    /// use. Re-registration with different bounds keeps the original.
    [[nodiscard]] Histogram& histogram(std::string_view name,
                                       std::vector<long long> upperBounds);

    /// Point-in-time copy of every registered counter and histogram.
    [[nodiscard]] Snapshot snapshot() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Free-function conveniences resolving through the calling thread's
// bound session (obs::session(); the process-global default session when
// none is bound). Instrumented modules should spell the session out —
// obs::session().counter(...) — which streak_analyze enforces outside
// src/obs; these wrappers exist for tests and benches working against
// the default session.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   std::vector<long long> upperBounds);
[[nodiscard]] Snapshot snapshotMetrics();

}  // namespace streak::obs
