// chrome://tracing / Perfetto exporter for a recorded span tree
// (DESIGN.md "Observability"): load the emitted file via chrome://tracing
// "Load" or ui.perfetto.dev to see the run on a timeline, one track per
// worker thread.
#pragma once

#include <ostream>

#include "obs/trace.hpp"

namespace streak::obs {

/// Write `trace` in the Trace Event Format: a JSON object whose
/// "traceEvents" array holds balanced B/E duration-event pairs (one pair
/// per span, pid 1, tid = the span's worker track, ts in microseconds
/// since the trace epoch) plus one thread_name metadata event per track.
/// Span args are attached to the B event. Still-open spans are skipped.
void writeChromeTrace(const Trace& trace, std::ostream& os);

}  // namespace streak::obs
