// Hierarchical span tracer (DESIGN.md "Observability").
//
// A span is a named wall-clock interval in the run's call tree:
//
//   {
//       STREAK_SPAN("solve/bnb");     // RAII; nests under the current span
//       ...
//   }
//
// Spans are thread-aware: `src/parallel`'s pool propagates the span that
// was current when a parallel region started to its worker threads, so a
// span opened inside a task attaches under the region's parent span and
// carries the worker's track id (0 = flow thread, 1.. = workers).
//
// Two tiers of instrumentation:
//
//   obs::SpanScope            direct API, always compiled and always
//                             recorded — for stage-granularity spans
//                             (a handful per run; these back the
//                             StreakResult stage timings)
//   STREAK_SPAN("name")       hot-path macro — compiled out entirely at
//                             STREAK_TRACE=0 and, when compiled in,
//                             gated behind the runtime detail flag
//                             (obs::detailEnabled(), a relaxed atomic
//                             load), so the disabled cost is near zero
//
// Each obs::Session (obs/session.hpp) owns one Tracer, sized for one
// flow run at a time within that session: runStreak() binds its session,
// resets the tracer on entry, and snapshots the span tree on exit. Spans
// from instrumented code reach the tracer of the calling thread's bound
// session (the process-global default session when none is bound).
// Timestamps live only in spans, never in counters, so counter values
// stay byte-identical across thread counts while spans remain free to
// differ.
//
// This module is also the project's one sanctioned home (with
// src/parallel) for raw std::chrono timing — tools/streak_lint rejects
// steady_clock use anywhere else; time code through obs::Stopwatch.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef STREAK_TRACE
#define STREAK_TRACE 1
#endif

namespace streak::obs {

/// One closed (or still-open, endSeconds < 0) interval in the span tree.
struct Span {
    std::string name;    ///< "stage/subsystem" taxonomy, e.g. "solve/bnb"
    int parent = -1;     ///< index into the owning Trace, -1 = root
    int thread = 0;      ///< track id: 0 = flow thread, 1.. = pool workers
    double startSeconds = 0.0;  ///< since the trace epoch (tracer reset)
    double endSeconds = -1.0;   ///< < 0 while the span is still open
    /// Numeric annotations (e.g. a stage's RegionStats), exported as
    /// chrome://tracing args and queried by StreakResult accessors.
    std::vector<std::pair<std::string, double>> args;

    [[nodiscard]] double seconds() const {
        return endSeconds < 0.0 ? 0.0 : endSeconds - startSeconds;
    }
};

/// A run's span tree: spans in begin order, parent links by index.
using Trace = std::vector<Span>;

/// Sum of the durations of every span with this exact name (0 if absent).
[[nodiscard]] double spanSeconds(const Trace& trace, std::string_view name);

/// First span with this name, or nullptr.
[[nodiscard]] const Span* findSpan(const Trace& trace, std::string_view name);

/// Value of a named arg on the first span with this name (fallback if
/// either is absent).
[[nodiscard]] double spanArg(const Trace& trace, std::string_view name,
                             std::string_view key, double fallback = 0.0);

class Tracer {
public:
    Tracer() = default;
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Runtime gate for hot-path instrumentation (STREAK_SPAN spans and
    /// counter flushes). Off by default; a relaxed atomic load to test.
    [[nodiscard]] bool detailEnabled() const {
        return detail_.load(std::memory_order_relaxed);
    }
    void setDetailEnabled(bool enabled) {
        detail_.store(enabled, std::memory_order_relaxed);
    }

    /// Drop all recorded spans and restart the epoch. The flow calls this
    /// on entry; only one run may trace at a time per session.
    void reset();

    /// Open a span under the calling thread's current span; returns its
    /// id. Always records (see the header comment for the two tiers).
    int beginSpan(std::string name);
    void endSpan(int id);
    void addSpanArg(int id, std::string key, double value);

    /// The calling thread's innermost open span (-1 when none).
    [[nodiscard]] int currentSpan() const;

    /// Copy of the span tree recorded since the last reset().
    [[nodiscard]] Trace snapshot() const;

    // --- thread span context (used by obs::SessionBind / WorkerBind) ---
    // Span ids are indices into the bound session's tracer; the context
    // is saved and restored together with the session binding so a
    // nested bind never mixes ids across tracers.
    struct ThreadContext {
        int span = -1;  ///< innermost open span id on this thread
        int track = 0;  ///< 0 = flow thread, 1.. = pool workers
    };
    [[nodiscard]] static ThreadContext threadContext();
    static void setThreadContext(ThreadContext context);

private:
    std::atomic<bool> detail_{false};
    mutable std::mutex mutex_;
    Trace spans_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/// Tracer of the calling thread's bound session (defined in session.cpp;
/// declared here so the inline span helpers below stay header-only).
[[nodiscard]] Tracer& currentTracer() noexcept;

/// Shorthand for currentTracer().detailEnabled().
[[nodiscard]] inline bool detailEnabled() {
    return currentTracer().detailEnabled();
}
inline void setDetailEnabled(bool enabled) {
    currentTracer().setDetailEnabled(enabled);
}

/// RAII span over the enclosing scope. Pass record = false to make the
/// scope a no-op (how STREAK_SPAN applies the runtime gate). The tracer
/// is resolved from the bound session at construction and kept, so the
/// span closes on the tracer that opened it even across a rebind.
class SpanScope {
public:
    explicit SpanScope(std::string name, bool record = true)
        : tracer_(record ? &currentTracer() : nullptr),
          id_(tracer_ != nullptr ? tracer_->beginSpan(std::move(name)) : -1) {}
    ~SpanScope() {
        if (id_ >= 0) tracer_->endSpan(id_);
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    [[nodiscard]] int id() const { return id_; }
    void addArg(std::string key, double value) {
        if (id_ >= 0) tracer_->addSpanArg(id_, std::move(key), value);
    }

private:
    Tracer* tracer_;
    int id_;
};

/// The project's stopwatch: every module that needs elapsed wall time
/// uses this instead of touching std::chrono directly (lint-enforced).
class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        const std::chrono::duration<double> d =
            std::chrono::steady_clock::now() - start_;
        return d.count();
    }
    void restart() { start_ = std::chrono::steady_clock::now(); }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace streak::obs

#if STREAK_TRACE >= 1
#define STREAK_OBS_CONCAT_IMPL_(a, b) a##b
#define STREAK_OBS_CONCAT_(a, b) STREAK_OBS_CONCAT_IMPL_(a, b)
/// Hot-path span: compiled out at STREAK_TRACE=0, runtime-gated otherwise.
#define STREAK_SPAN(name)                                     \
    const ::streak::obs::SpanScope STREAK_OBS_CONCAT_(        \
        streakSpan_, __LINE__)((name),                        \
                               ::streak::obs::detailEnabled())
#else
#define STREAK_SPAN(name) ((void)0)
#endif
