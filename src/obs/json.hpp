// Minimal zero-dependency JSON document model (DESIGN.md
// "Observability"): enough of RFC 8259 to write the run report /
// chrome://tracing exports and to parse them back in tests and the
// report validator (tools/report_check). Not a general-purpose library —
// no comments, no trailing commas, UTF-8 passed through untouched.
//
// Object keys keep insertion order on write (stable, diffable reports)
// and are also addressable by name.
#pragma once

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace streak::obs::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered object: (key, value) pairs plus a name index.
class Object {
public:
    Value& set(std::string key, Value value);
    [[nodiscard]] const Value* find(std::string_view key) const;
    [[nodiscard]] bool contains(std::string_view key) const {
        return find(key) != nullptr;
    }
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& items()
        const {
        return items_;
    }
    [[nodiscard]] size_t size() const { return items_.size(); }

private:
    std::vector<std::pair<std::string, Value>> items_;
};

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
public:
    Value() = default;  // null
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), number_(n) {}
    Value(int n) : kind_(Kind::Number), number_(n) {}
    Value(long n) : kind_(Kind::Number), number_(static_cast<double>(n)) {}
    Value(long long n) : kind_(Kind::Number), number_(static_cast<double>(n)) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char* s) : kind_(Kind::String), string_(s) {}
    Value(Array a);
    Value(Object o);

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
    [[nodiscard]] bool asBool() const { return bool_; }
    [[nodiscard]] double asNumber() const { return number_; }
    [[nodiscard]] const std::string& asString() const { return string_; }
    [[nodiscard]] const Array& asArray() const;
    [[nodiscard]] const Object& asObject() const;

    /// Member lookup; nullptr when not an object or the key is absent.
    [[nodiscard]] const Value* find(std::string_view key) const;

    /// Serialize. indent < 0 writes compact one-line JSON; >= 0 pretty-
    /// prints with that many leading spaces per level.
    void write(std::ostream& os, int indent = -1) const;
    [[nodiscard]] std::string dump(int indent = -1) const;

private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    // Indirection keeps Value movable/copyable despite the recursion.
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document. On failure returns a Null value and
/// stores a message in *error (when non-null); trailing garbage is an
/// error.
[[nodiscard]] Value parse(std::string_view text, std::string* error = nullptr);

/// JSON string escaping (quotes included).
void writeEscaped(std::ostream& os, std::string_view s);

}  // namespace streak::obs::json
