#include "obs/counters.hpp"

#include "check/assert.hpp"
#include "obs/session.hpp"

namespace streak::obs {

Histogram::Histogram(std::vector<long long> upperBounds)
    : upperBounds_(std::move(upperBounds)),
      buckets_(upperBounds_.size() + 1) {
    for (size_t i = 1; i < upperBounds_.size(); ++i) {
        STREAK_REQUIRE(upperBounds_[i - 1] < upperBounds_[i],
                       "histogram bounds must be strictly increasing "
                       "({} then {} at position {})",
                       upperBounds_[i - 1], upperBounds_[i], i);
    }
}

void Histogram::record(long long value) {
    size_t bucket = upperBounds_.size();  // overflow unless a bound fits
    for (size_t i = 0; i < upperBounds_.size(); ++i) {
        if (value <= upperBounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<long long> Histogram::counts() const {
    std::vector<long long> out;
    out.reserve(buckets_.size());
    for (const std::atomic<long long>& b : buckets_) {
        out.push_back(b.load(std::memory_order_relaxed));
    }
    return out;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
    return *counters_.emplace(std::string(name), std::make_unique<Counter>())
                .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<long long> upperBounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
    return *histograms_
                .emplace(std::string(name),
                         std::make_unique<Histogram>(std::move(upperBounds)))
                .first->second;
}

Snapshot Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const auto& [name, c] : counters_) {
        snap.counters.emplace(name, c->value());
    }
    for (const auto& [name, h] : histograms_) {
        Snapshot::HistogramValues v;
        v.upperBounds = h->upperBounds();
        v.counts = h->counts();
        v.total = h->total();
        v.sum = h->sum();
        snap.histograms.emplace(name, std::move(v));
    }
    return snap;
}

Counter& counter(std::string_view name) { return session().counter(name); }

Histogram& histogram(std::string_view name,
                     std::vector<long long> upperBounds) {
    return session().histogram(name, std::move(upperBounds));
}

Snapshot snapshotMetrics() { return session().snapshotMetrics(); }

Snapshot Snapshot::minus(const Snapshot& base) const {
    // Zero-delta entries are dropped: a counter another run bumped long
    // ago should not show up in this run's report.
    Snapshot out;
    for (const auto& [name, value] : counters) {
        const auto it = base.counters.find(name);
        const long long delta =
            value - (it == base.counters.end() ? 0 : it->second);
        if (delta != 0) out.counters.emplace(name, delta);
    }
    for (const auto& [name, values] : histograms) {
        HistogramValues v = values;
        const auto it = base.histograms.find(name);
        if (it != base.histograms.end()) {
            STREAK_ASSERT(it->second.counts.size() == v.counts.size(),
                          "histogram {} changed bucket count across "
                          "snapshots ({} vs {})",
                          name, it->second.counts.size(), v.counts.size());
            for (size_t i = 0; i < v.counts.size(); ++i) {
                v.counts[i] -= it->second.counts[i];
            }
            v.total -= it->second.total;
            v.sum -= it->second.sum;
        }
        if (v.total != 0) out.histograms.emplace(name, std::move(v));
    }
    return out;
}

}  // namespace streak::obs
