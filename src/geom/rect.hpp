// Axis-aligned integer rectangles (used for blockages and pin regions).
#pragma once

#include <algorithm>

#include "geom/point.hpp"

namespace streak::geom {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y] on the lattice.
struct Rect {
    Point lo;
    Point hi;

    friend auto operator<=>(const Rect&, const Rect&) = default;

    [[nodiscard]] bool contains(Point p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    [[nodiscard]] bool overlaps(const Rect& o) const {
        return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
    }

    [[nodiscard]] int width() const { return hi.x - lo.x; }
    [[nodiscard]] int height() const { return hi.y - lo.y; }

    /// Grow the rectangle to include `p`.
    void expand(Point p) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
    }

    /// Smallest rectangle containing both points.
    [[nodiscard]] static Rect bounding(Point a, Point b) {
        return {{std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)}};
    }
};

}  // namespace streak::geom
