// Basic integer lattice geometry used throughout Streak.
//
// All routing in Streak happens on a G-Cell lattice, so coordinates are
// plain ints. Points are small value types; pass by value.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace streak::geom {

/// A point on the 2-D G-Cell lattice.
struct Point {
    int x = 0;
    int y = 0;

    friend auto operator<=>(const Point&, const Point&) = default;
};

/// A point on the 3-D (layered) G-Cell lattice. `z` is the metal layer.
struct Point3 {
    int x = 0;
    int y = 0;
    int z = 0;

    friend auto operator<=>(const Point3&, const Point3&) = default;

    [[nodiscard]] Point xy() const { return {x, y}; }
};

/// Manhattan (rectilinear) distance — the wire-length metric on the grid.
[[nodiscard]] inline int manhattan(Point a, Point b) {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Manhattan distance in 3-D counting one unit per via level crossed.
[[nodiscard]] inline int manhattan(Point3 a, Point3 b) {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

inline std::ostream& operator<<(std::ostream& os, Point p) {
    return os << '(' << p.x << ',' << p.y << ')';
}

inline std::ostream& operator<<(std::ostream& os, Point3 p) {
    return os << '(' << p.x << ',' << p.y << ',' << p.z << ')';
}

}  // namespace streak::geom

template <>
struct std::hash<streak::geom::Point> {
    size_t operator()(streak::geom::Point p) const noexcept {
        return std::hash<std::int64_t>{}(
            (static_cast<std::int64_t>(p.x) << 32) ^ static_cast<std::uint32_t>(p.y));
    }
};

template <>
struct std::hash<streak::geom::Point3> {
    size_t operator()(streak::geom::Point3 p) const noexcept {
        auto h = std::hash<streak::geom::Point>{}(p.xy());
        return h * 1000003u + static_cast<size_t>(p.z);
    }
};
