// Rectilinear segments: the atoms of Streak topologies.
//
// A rectilinear connection (RC) in the paper is a straight horizontal or
// vertical wire between two lattice points. Segment provides the value
// type plus the orientation/overlap predicates the topology code needs.
#pragma once

#include <algorithm>
#include <optional>

#include "check/assert.hpp"
#include "geom/point.hpp"

namespace streak::geom {

/// A straight horizontal or vertical lattice segment. Degenerate (single
/// point) segments are allowed and count as both orientations.
struct Segment {
    Point a;
    Point b;

    friend auto operator<=>(const Segment&, const Segment&) = default;

    [[nodiscard]] bool rectilinear() const { return a.x == b.x || a.y == b.y; }
    [[nodiscard]] bool horizontal() const { return a.y == b.y; }
    [[nodiscard]] bool vertical() const { return a.x == b.x; }
    [[nodiscard]] bool degenerate() const { return a == b; }
    [[nodiscard]] int length() const { return manhattan(a, b); }

    /// Canonical form: endpoints ordered lexicographically.
    [[nodiscard]] Segment canonical() const {
        return a <= b ? Segment{a, b} : Segment{b, a};
    }

    /// True if lattice point `p` lies on this (rectilinear) segment.
    [[nodiscard]] bool covers(Point p) const {
        STREAK_ASSERT(rectilinear(),
                      "covers() on diagonal segment ({},{})-({},{})",
                      a.x, a.y, b.x, b.y);
        const Segment c = canonical();
        if (horizontal()) {
            return p.y == a.y && p.x >= c.a.x && p.x <= c.b.x;
        }
        return p.x == a.x && p.y >= c.a.y && p.y <= c.b.y;
    }
};

/// Overlap (shared extent, not mere touching) of two parallel segments.
/// Returns the shared sub-segment if it has positive length.
[[nodiscard]] inline std::optional<Segment> overlap(const Segment& s,
                                                    const Segment& t) {
    if (s.degenerate() || t.degenerate()) return std::nullopt;
    if (s.horizontal() != t.horizontal()) return std::nullopt;
    const Segment cs = s.canonical();
    const Segment ct = t.canonical();
    if (s.horizontal()) {
        if (cs.a.y != ct.a.y) return std::nullopt;
        const int lo = std::max(cs.a.x, ct.a.x);
        const int hi = std::min(cs.b.x, ct.b.x);
        if (lo >= hi) return std::nullopt;
        return Segment{{lo, cs.a.y}, {hi, cs.a.y}};
    }
    if (cs.a.x != ct.a.x) return std::nullopt;
    const int lo = std::max(cs.a.y, ct.a.y);
    const int hi = std::min(cs.b.y, ct.b.y);
    if (lo >= hi) return std::nullopt;
    return Segment{{cs.a.x, lo}, {cs.a.x, hi}};
}

}  // namespace streak::geom
