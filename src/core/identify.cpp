#include "core/identify.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace streak {

namespace {

/// Canonical per-bit pin ordering: driver first, then sinks sorted by
/// (SV, offset from driver). Bits with equal signatures are isomorphic and
/// their pins correspond rank-by-rank under this ordering.
struct CanonicalPins {
    /// order[r] = pin index holding canonical rank r.
    std::vector<int> order;
    /// signature entry per rank: (sv key material, for exactness the full
    /// SV array) — offsets are excluded so that bits with the same
    /// directional structure but different stretches still match.
    std::vector<SimilarityVector> signature;
};

CanonicalPins canonicalize(const Bit& bit) {
    const std::vector<SimilarityVector> svs = bitSimilarities(bit);
    const geom::Point d = bit.driverPin();

    struct Entry {
        SimilarityVector sv;
        int dx;
        int dy;
        int pin;
    };
    std::vector<Entry> entries;
    entries.reserve(bit.pins.size());
    for (int i = 0; i < bit.numPins(); ++i) {
        if (i == bit.driver) continue;
        const geom::Point p = bit.pins[static_cast<size_t>(i)];
        entries.push_back({svs[static_cast<size_t>(i)], p.x - d.x, p.y - d.y, i});
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.sv, a.dx, a.dy, a.pin) <
               std::tie(b.sv, b.dx, b.dy, b.pin);
    });

    CanonicalPins cp;
    cp.order.push_back(bit.driver);
    cp.signature.push_back(svs[static_cast<size_t>(bit.driver)]);
    for (const Entry& e : entries) {
        cp.order.push_back(e.pin);
        cp.signature.push_back(e.sv);
    }
    return cp;
}

}  // namespace

std::vector<RoutingObject> identifyObjects(const SignalGroup& group,
                                           int groupIndex) {
    // Stage 1: bucket by driver SV (cheap separator, Fig. 5(b) middle
    // level). Stage 2: inside each bucket, bucket by the full canonical
    // signature. std::map keys keep the result deterministic.
    struct Member {
        int bit;
        CanonicalPins canon;
    };
    std::map<std::vector<SimilarityVector>, std::vector<Member>> buckets;
    for (int b = 0; b < group.width(); ++b) {
        CanonicalPins cp = canonicalize(group.bits[static_cast<size_t>(b)]);
        auto key = cp.signature;  // driver SV is signature[0]: stage 1 is
                                  // the first comparison of the key
        buckets[std::move(key)].push_back({b, std::move(cp)});
    }

    std::vector<RoutingObject> objects;
    for (auto& [sig, members] : buckets) {
        RoutingObject obj;
        obj.groupIndex = groupIndex;
        for (const Member& m : members) obj.bitIndices.push_back(m.bit);

        // Representative: the bit whose driver is the median of the
        // object's driver positions (a center-region bit, Sec. III-B1).
        std::vector<std::pair<geom::Point, int>> drivers;
        for (size_t k = 0; k < members.size(); ++k) {
            drivers.emplace_back(
                group.bits[static_cast<size_t>(members[k].bit)].driverPin(),
                static_cast<int>(k));
        }
        std::sort(drivers.begin(), drivers.end());
        obj.representativeBit = drivers[drivers.size() / 2].second;

        // Pin maps: rank-by-rank correspondence through canonical orders.
        const CanonicalPins& repCanon =
            members[static_cast<size_t>(obj.representativeBit)].canon;
        for (const Member& m : members) {
            std::vector<int> map(m.canon.order.size(), -1);
            for (size_t rank = 0; rank < m.canon.order.size(); ++rank) {
                map[static_cast<size_t>(m.canon.order[rank])] =
                    repCanon.order[rank];
            }
            obj.pinMaps.push_back(std::move(map));
        }
        objects.push_back(std::move(obj));
    }
    return objects;
}

std::vector<RoutingObject> identifyObjects(const Design& design) {
    std::vector<RoutingObject> all;
    for (int g = 0; g < design.numGroups(); ++g) {
        auto objs = identifyObjects(design.groups[static_cast<size_t>(g)], g);
        all.insert(all.end(), std::make_move_iterator(objs.begin()),
                   std::make_move_iterator(objs.end()));
    }
    return all;
}

}  // namespace streak
