#include "core/pd_solver.hpp"

#include <algorithm>
#include <limits>

#include "check/audit.hpp"
#include "grid/routing_grid.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PdState {
public:
    explicit PdState(const RoutingProblem& prob)
        : prob_(prob), usage_(prob.design->grid),
          chosen_(static_cast<size_t>(prob.numObjects()), -1),
          decided_(static_cast<size_t>(prob.numObjects()), false) {
        alive_.reserve(static_cast<size_t>(prob.numObjects()));
        for (const auto& cands : prob.candidates) {
            alive_.emplace_back(cands.size(), true);
        }
    }

    PdResult run() {
        PdResult result;
        // Objects with no candidate at all are non-routable up front.
        for (int i = 0; i < prob_.numObjects(); ++i) {
            if (prob_.candidates[static_cast<size_t>(i)].empty()) {
                decided_[static_cast<size_t>(i)] = true;
            }
        }
        for (;;) {
            // Tick point: one poll per committed object (each iteration
            // sweeps every alive candidate).
            prob_.opts.control.checkpoint("pd/iteration");
            STREAK_FAULT_POINT("pd/iteration");
            // Line 5-6: pick the undecided object / candidate with the
            // minimum c(i, j) + c'(i, j) among currently feasible ones.
            int bestObj = -1;
            int bestCand = -1;
            double bestCost = kInf;
            for (int i = 0; i < prob_.numObjects(); ++i) {
                if (decided_[static_cast<size_t>(i)]) continue;
                const auto& cands = prob_.candidates[static_cast<size_t>(i)];
                for (size_t j = 0; j < cands.size(); ++j) {
                    if (!alive_[static_cast<size_t>(i)][j]) continue;
                    const double c = cands[j].cost +
                                     cPrime(i, static_cast<int>(j));
                    if (c < bestCost) {
                        bestCost = c;
                        bestObj = i;
                        bestCand = static_cast<int>(j);
                    }
                }
            }
            // Objects whose candidate sets drained are skipped (s_p = 1).
            bool anyUndecided = false;
            for (int i = 0; i < prob_.numObjects(); ++i) {
                if (decided_[static_cast<size_t>(i)] || i == bestObj) continue;
                const auto& alive = alive_[static_cast<size_t>(i)];
                if (std::none_of(alive.begin(), alive.end(),
                                 [](bool a) { return a; })) {
                    decided_[static_cast<size_t>(i)] = true;
                } else {
                    anyUndecided = true;
                }
            }
            if (bestObj < 0) break;  // everything decided or dead

            // Line 7: commit; the dual objective rises by the admitted
            // cost (alpha_{ij} hits its constraint (6b) bound).
            STREAK_ASSERT(!decided_[static_cast<size_t>(bestObj)],
                          "object {} picked twice by the primal-dual loop",
                          bestObj);
            ++result.iterations;
            result.dualBound +=
                minAliveBaseCost(bestObj);  // certified per-object bound
            chosen_[static_cast<size_t>(bestObj)] = bestCand;
            decided_[static_cast<size_t>(bestObj)] = true;

            // Line 8: update capacities.
            const RouteCandidate& cand =
                prob_.candidates[static_cast<size_t>(bestObj)]
                                [static_cast<size_t>(bestCand)];
            for (const auto& [edge, amount] : cand.edgeUse) {
                usage_.add(edge, amount);
            }
            for (const auto& [cell, amount] : cand.viaUse) {
                usage_.addVias(cell, amount);
            }
            // Line 9: remove primal solutions made infeasible by the
            // reduced capacities.
            pruneInfeasible();

            if (!anyUndecided) break;
        }

        result.solution.chosen = chosen_;
        result.solution.objective = solutionObjective(prob_, chosen_);
        // Counters are accumulated locally above and flushed once, so the
        // gate check is off the per-iteration path.
        if (obs::detailEnabled()) {
            obs::Session& sess = obs::session();
            sess.counter("solve/pd.iterations").add(result.iterations);
            sess.counter("solve/pd.pruned_candidates").add(prunedCandidates_);
        }
        // The dual bound certifies weak duality; a violation means the
        // capacity pruning admitted an infeasible pick somewhere.
        STREAK_INVARIANT(
            result.dualBound <= result.solution.objective + 1e-6,
            "dual bound {} exceeds primal objective {} after {} iterations",
            result.dualBound, result.solution.objective, result.iterations);
        STREAK_DEEP_AUDIT(check::auditSolution(prob_, result.solution));
        return result;
    }

private:
    /// Linearized pair cost c'(i, j) per Eq. (5): decided group mates
    /// contribute their exact pair cost; undecided ones their minimum
    /// feasible pair cost.
    [[nodiscard]] double cPrime(int i, int j) const {
        double total = 0.0;
        for (const int block : prob_.pairsOf[static_cast<size_t>(i)]) {
            const int p = prob_.pairOther(block, i);
            const int cp = chosen_[static_cast<size_t>(p)];
            if (cp >= 0) {
                total += prob_.pairCost(block, i, j, cp);
            } else if (!decided_[static_cast<size_t>(p)]) {
                double best = kInf;
                const auto& alive = alive_[static_cast<size_t>(p)];
                for (size_t q = 0; q < alive.size(); ++q) {
                    if (!alive[q]) continue;
                    best = std::min(best, prob_.pairCost(block, i, j,
                                                         static_cast<int>(q)));
                }
                if (best < kInf) total += best;
            }
        }
        return total;
    }

    [[nodiscard]] double minAliveBaseCost(int i) const {
        double best = kInf;
        const auto& cands = prob_.candidates[static_cast<size_t>(i)];
        for (size_t j = 0; j < cands.size(); ++j) {
            if (alive_[static_cast<size_t>(i)][j]) {
                best = std::min(best, cands[j].cost);
            }
        }
        return best < kInf ? best : 0.0;
    }

    void pruneInfeasible() {
        for (int i = 0; i < prob_.numObjects(); ++i) {
            if (decided_[static_cast<size_t>(i)]) continue;
            const auto& cands = prob_.candidates[static_cast<size_t>(i)];
            for (size_t j = 0; j < cands.size(); ++j) {
                if (!alive_[static_cast<size_t>(i)][j]) continue;
                for (const auto& [edge, amount] : cands[j].edgeUse) {
                    if (usage_.remaining(edge) < amount) {
                        alive_[static_cast<size_t>(i)][j] = false;
                        ++prunedCandidates_;
                        break;
                    }
                }
                if (!alive_[static_cast<size_t>(i)][j]) continue;
                for (const auto& [cell, amount] : cands[j].viaUse) {
                    if (usage_.viaRemaining(cell) < amount) {
                        alive_[static_cast<size_t>(i)][j] = false;
                        ++prunedCandidates_;
                        break;
                    }
                }
            }
        }
    }

    const RoutingProblem& prob_;
    grid::EdgeUsage usage_;
    std::vector<int> chosen_;
    std::vector<bool> decided_;
    std::vector<std::vector<bool>> alive_;
    long prunedCandidates_ = 0;
};

}  // namespace

PdResult solvePrimalDual(const RoutingProblem& prob) {
    STREAK_SPAN("solve/pd");
    return PdState(prob).run();
}

}  // namespace streak
