#include "core/candidate.hpp"

#include <algorithm>
#include <map>

#include "core/backbone.hpp"
#include "core/equiv.hpp"

namespace streak {

namespace {

void accumulateEdgeUse(const grid::RoutingGrid& grid,
                       const steiner::Topology& topo, int hLayer, int vLayer,
                       std::map<int, int>* use) {
    for (const steiner::UnitEdge& e : topo.wire()) {  // analyze-ok: unordered-iteration (counting into an ordered map)
        const int layer = e.horizontal ? hLayer : vLayer;
        if (grid.validEdge(layer, e.at.x, e.at.y)) {
            ++(*use)[grid.edgeId(layer, e.at.x, e.at.y)];
        }
    }
}

std::vector<std::pair<int, int>> toSorted(const std::map<int, int>& use) {
    return {use.begin(), use.end()};  // std::map iterates in key order
}

}  // namespace

std::vector<std::pair<int, int>> computeEdgeUse(
    const grid::RoutingGrid& grid, const std::vector<steiner::Topology>& bits,
    int hLayer, int vLayer) {
    std::map<int, int> use;
    for (const steiner::Topology& t : bits) {
        accumulateEdgeUse(grid, t, hLayer, vLayer, &use);
    }
    return toSorted(use);
}

std::vector<std::pair<int, int>> computeEdgeUse(const grid::RoutingGrid& grid,
                                                const steiner::Topology& topo,
                                                int hLayer, int vLayer) {
    std::map<int, int> use;
    accumulateEdgeUse(grid, topo, hLayer, vLayer, &use);
    return toSorted(use);
}

namespace {

void accumulateViaUse(const grid::RoutingGrid& grid,
                      const steiner::Topology& topo, std::map<int, int>* use) {
    for (const geom::Point p : topo.pins()) {
        if (grid.contains(p)) ++(*use)[grid.cellIndex(p)];
    }
    for (const geom::Point p : topo.viaPoints()) {
        if (grid.contains(p)) ++(*use)[grid.cellIndex(p)];
    }
}

}  // namespace

std::vector<std::pair<int, int>> computeViaUse(
    const grid::RoutingGrid& grid,
    const std::vector<steiner::Topology>& bits) {
    std::map<int, int> use;
    for (const steiner::Topology& t : bits) accumulateViaUse(grid, t, &use);
    return toSorted(use);
}

std::vector<std::pair<int, int>> computeViaUse(const grid::RoutingGrid& grid,
                                               const steiner::Topology& topo) {
    std::map<int, int> use;
    accumulateViaUse(grid, topo, &use);
    return toSorted(use);
}

std::vector<RouteCandidate> generateCandidates(const Design& design,
                                               const RoutingObject& object,
                                               const StreakOptions& opts) {
    const SignalGroup& group =
        design.groups[static_cast<size_t>(object.groupIndex)];
    const std::vector<steiner::Topology> backbones =
        generateBackbones(group, object, opts.backbone);

    // Layer pairs ordered by adjacency (|h - v|), then bottom-up: the
    // paper prefers neighbouring uni-directional layers to save vias.
    const std::vector<int> hLayers = design.grid.layersOf(grid::Dir::Horizontal);
    const std::vector<int> vLayers = design.grid.layersOf(grid::Dir::Vertical);
    std::vector<std::pair<int, int>> pairs;
    for (const int h : hLayers) {
        for (const int v : vLayers) pairs.emplace_back(h, v);
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) {
                         const int ga = std::abs(a.first - a.second);
                         const int gb = std::abs(b.first - b.second);
                         if (ga != gb) return ga < gb;
                         return a < b;
                     });
    if (static_cast<int>(pairs.size()) > opts.maxLayerPairs) {
        pairs.resize(static_cast<size_t>(opts.maxLayerPairs));
    }

    std::vector<RouteCandidate> out;
    for (size_t bb = 0; bb < backbones.size(); ++bb) {
        std::vector<steiner::Topology> bitTopos =
            equivalentTopologies(backbones[bb], group, object);
        long wl = 0;
        int vias2d = 0;  // bends; pin access stacks are per layer pair
        for (const steiner::Topology& t : bitTopos) {
            wl += t.wirelength();
            vias2d += t.bendCount();
        }
        const int pinAccess = [&] {
            int pins = 0;
            for (const steiner::Topology& t : bitTopos) {
                pins += static_cast<int>(t.pins().size());
            }
            return pins;
        }();

        for (const auto& [h, v] : pairs) {
            RouteCandidate cand;
            cand.backboneId = static_cast<int>(bb);
            cand.backbone = backbones[bb];
            cand.bitTopologies = bitTopos;
            cand.hLayer = h;
            cand.vLayer = v;
            cand.wirelength2d = wl;
            cand.viaCount = vias2d + pinAccess;
            cand.edgeUse = computeEdgeUse(design.grid, bitTopos, h, v);
            cand.viaUse = computeViaUse(design.grid, bitTopos);

            // Feasibility in an empty grid: a candidate that alone exceeds
            // some edge or via capacity can never be selected.
            bool fits = true;
            for (const auto& [edge, amount] : cand.edgeUse) {
                if (amount > design.grid.capacity(edge)) {
                    fits = false;
                    break;
                }
            }
            if (fits && design.grid.viaLimited()) {
                for (const auto& [cell, amount] : cand.viaUse) {
                    const int cap = design.grid.viaCapacity(cell);
                    if (cap >= 0 && amount > cap) {
                        fits = false;
                        break;
                    }
                }
            }
            if (!fits) continue;

            const int gap = std::abs(h - v) - 1;
            cand.cost = static_cast<double>(wl) +
                        opts.viaWeight * cand.viaCount +
                        opts.layerAdjacencyWeight * gap *
                            static_cast<double>(object.width());
            out.push_back(std::move(cand));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const RouteCandidate& a, const RouteCandidate& b) {
                         return a.cost < b.cost;
                     });
    return out;
}

}  // namespace streak
