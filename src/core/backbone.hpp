// Backbone structure construction (Sec. III-B1, Definition 2).
//
// A backbone is a topology prototype built over the representative bit of
// a routing object; every bit of the object later adopts an equivalent
// copy (equiv.hpp). The construction extends batched-iterated-1-Steiner
// with bend-aware candidate enumeration so the selection formulation sees
// several distinct prototypes per object.
#pragma once

#include <vector>

#include "core/identify.hpp"
#include "core/signal.hpp"
#include "steiner/rsmt.hpp"
#include "steiner/topology.hpp"

namespace streak {

struct BackboneOptions {
    int maxBackbones = 4;
    int bendPenalty = 2;  // lambda in wl + lambda * bends ranking
    bool useSteinerPoints = true;
};

/// Enumerate backbone candidates for `object` of `group`. At least one
/// backbone is always returned; all are trees over the representative
/// bit's pins.
[[nodiscard]] std::vector<steiner::Topology> generateBackbones(
    const SignalGroup& group, const RoutingObject& object,
    const BackboneOptions& opts = {});

}  // namespace streak
