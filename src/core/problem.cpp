#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/regularity.hpp"
#include "robust/fault.hpp"

namespace streak {

double RoutingProblem::costLowerBound() const {
    double lb = 0.0;
    for (const auto& cands : candidates) {
        if (cands.empty()) continue;  // forced non-route contributes M >= 0
        double best = cands.front().cost;
        for (const RouteCandidate& c : cands) best = std::min(best, c.cost);
        lb += best;
    }
    return lb;
}

namespace {

/// Pairwise regularity blocks of one group, in (a, b) member order. Pure
/// function of immutable problem state, so groups evaluate in parallel;
/// the caller splices the per-group results back in group index order.
std::vector<PairBlock> buildGroupPairBlocks(const RoutingProblem& prob,
                                            const std::vector<int>& members,
                                            const StreakOptions& opts) {
    std::vector<PairBlock> blocks;
    for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
            const int i = members[a];
            const int p = members[b];
            const auto& candsI = prob.candidates[static_cast<size_t>(i)];
            const auto& candsP = prob.candidates[static_cast<size_t>(p)];
            if (candsI.empty() || candsP.empty()) continue;

            // The Ratio() part depends only on the backbone pair; cache it
            // so layer-pair expansion does not multiply the matching work.
            std::map<std::pair<int, int>, double> ratioCache;
            PairBlock block;
            block.objA = i;
            block.objB = p;
            block.cost.assign(candsI.size(),
                              std::vector<double>(candsP.size(), 0.0));
            for (size_t j = 0; j < candsI.size(); ++j) {
                for (size_t q = 0; q < candsP.size(); ++q) {
                    const auto key = std::make_pair(candsI[j].backboneId,
                                                    candsP[q].backboneId);
                    auto it = ratioCache.find(key);
                    if (it == ratioCache.end()) {
                        it = ratioCache
                                 .emplace(key, regularityRatio(
                                                   candsI[j].backbone,
                                                   candsP[q].backbone))
                                 .first;
                    }
                    const double ratio = it->second;
                    double c = 0.0;
                    if (ratio <= 0.0) {
                        c = opts.noSharePenalty;
                    } else {
                        c = opts.irregularityWeight * (1.0 / ratio - 1.0);
                    }
                    c += opts.pairLayerWeight *
                         (std::abs(candsI[j].hLayer - candsP[q].hLayer) +
                          std::abs(candsI[j].vLayer - candsP[q].vLayer));
                    block.cost[j][q] = c;
                }
            }
            blocks.push_back(std::move(block));
        }
    }
    return blocks;
}

}  // namespace

RoutingProblem buildProblem(const Design& design, const StreakOptions& opts,
                            parallel::RegionStats* parallelStats) {
    RoutingProblem prob;
    prob.design = &design;
    prob.opts = opts;
    prob.objects = identifyObjects(design);

    prob.groupObjects.assign(static_cast<size_t>(design.numGroups()), {});
    for (size_t i = 0; i < prob.objects.size(); ++i) {
        prob.groupObjects[static_cast<size_t>(prob.objects[i].groupIndex)]
            .push_back(static_cast<int>(i));
    }

    parallel::ThreadPool pool(parallel::resolveThreads(opts.threads));
    pool.setControl(opts.control);

    // Per-object 3-D candidate expansion: independent across objects,
    // collected by object index.
    prob.candidates = pool.parallelMap<std::vector<RouteCandidate>>(
        static_cast<int>(prob.objects.size()), [&](int i) {
            STREAK_FAULT_POINT("build/candidates");
            return generateCandidates(
                design, prob.objects[static_cast<size_t>(i)], opts);
        });

    // Pairwise regularity costs between objects of one group: evaluated
    // per group in parallel, then spliced in group index order so block
    // ids and pairsOf lists match the sequential path exactly.
    prob.pairsOf.assign(prob.objects.size(), {});
    pool.orderedReduce<std::vector<PairBlock>>(
        static_cast<int>(prob.groupObjects.size()),
        [&](int g) {
            STREAK_FAULT_POINT("build/pairs");
            return buildGroupPairBlocks(
                prob, prob.groupObjects[static_cast<size_t>(g)], opts);
        },
        [&](int /*g*/, std::vector<PairBlock>&& blocks) {
            for (PairBlock& block : blocks) {
                const int blockId = static_cast<int>(prob.pairBlocks.size());
                prob.pairsOf[static_cast<size_t>(block.objA)].push_back(blockId);
                prob.pairsOf[static_cast<size_t>(block.objB)].push_back(blockId);
                prob.pairBlocks.push_back(std::move(block));
            }
        });

    if (parallelStats != nullptr) parallelStats->merge(pool.stats());
    return prob;
}

}  // namespace streak
