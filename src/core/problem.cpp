#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/regularity.hpp"

namespace streak {

double RoutingProblem::costLowerBound() const {
    double lb = 0.0;
    for (const auto& cands : candidates) {
        if (cands.empty()) continue;  // forced non-route contributes M >= 0
        double best = cands.front().cost;
        for (const RouteCandidate& c : cands) best = std::min(best, c.cost);
        lb += best;
    }
    return lb;
}

RoutingProblem buildProblem(const Design& design, const StreakOptions& opts) {
    RoutingProblem prob;
    prob.design = &design;
    prob.opts = opts;
    prob.objects = identifyObjects(design);

    prob.groupObjects.assign(static_cast<size_t>(design.numGroups()), {});
    for (size_t i = 0; i < prob.objects.size(); ++i) {
        prob.groupObjects[static_cast<size_t>(prob.objects[i].groupIndex)]
            .push_back(static_cast<int>(i));
    }

    prob.candidates.reserve(prob.objects.size());
    for (const RoutingObject& obj : prob.objects) {
        prob.candidates.push_back(generateCandidates(design, obj, opts));
    }

    // Pairwise regularity costs between objects of one group. The
    // Ratio() part depends only on the backbone pair; cache it so that
    // layer-pair expansion does not multiply the matching work.
    prob.pairsOf.assign(prob.objects.size(), {});
    for (const std::vector<int>& members : prob.groupObjects) {
        for (size_t a = 0; a < members.size(); ++a) {
            for (size_t b = a + 1; b < members.size(); ++b) {
                const int i = members[a];
                const int p = members[b];
                const auto& candsI = prob.candidates[static_cast<size_t>(i)];
                const auto& candsP = prob.candidates[static_cast<size_t>(p)];
                if (candsI.empty() || candsP.empty()) continue;

                std::map<std::pair<int, int>, double> ratioCache;
                PairBlock block;
                block.objA = i;
                block.objB = p;
                block.cost.assign(candsI.size(),
                                  std::vector<double>(candsP.size(), 0.0));
                for (size_t j = 0; j < candsI.size(); ++j) {
                    for (size_t q = 0; q < candsP.size(); ++q) {
                        const auto key = std::make_pair(candsI[j].backboneId,
                                                        candsP[q].backboneId);
                        auto it = ratioCache.find(key);
                        if (it == ratioCache.end()) {
                            it = ratioCache
                                     .emplace(key, regularityRatio(
                                                       candsI[j].backbone,
                                                       candsP[q].backbone))
                                     .first;
                        }
                        const double ratio = it->second;
                        double c = 0.0;
                        if (ratio <= 0.0) {
                            c = opts.noSharePenalty;
                        } else {
                            c = opts.irregularityWeight * (1.0 / ratio - 1.0);
                        }
                        c += opts.pairLayerWeight *
                             (std::abs(candsI[j].hLayer - candsP[q].hLayer) +
                              std::abs(candsI[j].vLayer - candsP[q].vLayer));
                        block.cost[j][q] = c;
                    }
                }
                const int blockId = static_cast<int>(prob.pairBlocks.size());
                prob.pairBlocks.push_back(std::move(block));
                prob.pairsOf[static_cast<size_t>(i)].push_back(blockId);
                prob.pairsOf[static_cast<size_t>(p)].push_back(blockId);
            }
        }
    }
    return prob;
}

}  // namespace streak
