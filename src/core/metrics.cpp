#include "core/metrics.hpp"

#include <map>

#include "core/regularity.hpp"
#include "steiner/rsmt.hpp"

namespace streak {

Metrics evaluate(const RoutingProblem& prob, const RoutedDesign& routed) {
    const Design& design = *prob.design;
    Metrics m;
    m.totalBits = design.numNets();
    m.routedBits = routed.routedBits();
    m.routability = m.totalBits == 0
                        ? 1.0
                        : static_cast<double>(m.routedBits) / m.totalBits;

    for (const RoutedBit& b : routed.bits) m.wirelength += b.topo.wirelength();
    // The paper reports whole-design wire-length: unrouted bits are
    // estimated with a rectilinear Steiner minimum tree.
    for (const auto& [objIdx, member] : routed.unroutedMembers) {
        const RoutingObject& obj = prob.objects[static_cast<size_t>(objIdx)];
        const SignalGroup& g =
            design.groups[static_cast<size_t>(obj.groupIndex)];
        const Bit& bit = g.bits[static_cast<size_t>(
            obj.bitIndices[static_cast<size_t>(member)])];
        steiner::EnumerateOptions eopts;
        eopts.maxCandidates = 1;
        const auto topos =
            steiner::enumerateTopologies(bit.pins, bit.driver, eopts);
        if (!topos.empty()) m.wirelength += topos.front().wirelength();
    }

    // Avg(Reg): per group, one representative topology per cluster.
    std::map<int, std::map<int, const steiner::Topology*>> groupClusters;
    for (const RoutedBit& b : routed.bits) {
        auto& clusters = groupClusters[b.groupIndex];
        clusters.emplace(b.clusterKey, &b.topo);  // keeps the first bit
    }
    double regSum = 0.0;
    int regGroups = 0;
    for (const auto& [group, clusters] : groupClusters) {
        if (clusters.size() < 2) continue;
        std::vector<const steiner::Topology*> reps;
        reps.reserve(clusters.size());
        for (const auto& [key, topo] : clusters) reps.push_back(topo);
        regSum += groupRegularity(reps);
        ++regGroups;
    }
    m.avgRegularity = regGroups == 0 ? 1.0 : regSum / regGroups;

    m.totalOverflow = routed.usage.totalOverflow();
    m.overflowedEdges = routed.usage.overflowedEdges();
    m.totalViaOverflow = routed.usage.totalViaOverflow();
    return m;
}

}  // namespace streak
