#include "core/similarity.hpp"

#include "check/assert.hpp"

namespace streak {

int directionIndex(geom::Point from, geom::Point to) {
    const int dx = to.x - from.x;
    const int dy = to.y - from.y;
    STREAK_ASSERT(dx != 0 || dy != 0,
                  "direction of zero-length move at ({},{})", from.x, from.y);
    if (dy == 0) return dx > 0 ? 0 : 4;
    if (dx == 0) return dy > 0 ? 2 : 6;
    if (dx > 0) return dy > 0 ? 1 : 7;
    return dy > 0 ? 3 : 5;
}

SimilarityVector pinSimilarity(const Bit& bit, int pinIndex) {
    SimilarityVector sv;
    const geom::Point self = bit.pins[static_cast<size_t>(pinIndex)];
    for (int i = 0; i < bit.numPins(); ++i) {
        if (i == pinIndex) continue;
        const geom::Point other = bit.pins[static_cast<size_t>(i)];
        if (other == self) continue;
        ++sv.v[static_cast<size_t>(directionIndex(self, other))];
    }
    return sv;
}

std::vector<SimilarityVector> bitSimilarities(const Bit& bit) {
    std::vector<SimilarityVector> out;
    out.reserve(bit.pins.size());
    for (int i = 0; i < bit.numPins(); ++i) out.push_back(pinSimilarity(bit, i));
    return out;
}

SimilarityVector weightedSimilarity(const std::vector<geom::Point>& points,
                                    int self, int driverIndex,
                                    int driverWeight) {
    SimilarityVector sv;
    const geom::Point p = points[static_cast<size_t>(self)];
    for (int i = 0; i < static_cast<int>(points.size()); ++i) {
        if (i == self) continue;
        const geom::Point q = points[static_cast<size_t>(i)];
        if (q == p) continue;
        const int w = i == driverIndex ? driverWeight : 1;
        sv.v[static_cast<size_t>(directionIndex(p, q))] += w;
    }
    return sv;
}

int svDistance(const SimilarityVector& a, const SimilarityVector& b) {
    int d = 0;
    for (size_t i = 0; i < a.v.size(); ++i) d += std::abs(a.v[i] - b.v[i]);
    return d;
}

std::uint64_t svKey(const SimilarityVector& sv) {
    std::uint64_t h = 1469598103934665603ull;
    for (const int c : sv.v) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace streak
