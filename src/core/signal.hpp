// The signal-group data model (Sec. II of the paper).
//
// A Design bundles a routing grid with user-defined signal groups. Each
// group is a set of performance-critical bits with pins in adjacent
// locations that must share common topologies; each bit is one net with a
// driver pin and one or more sinks.
#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "grid/routing_grid.hpp"

namespace streak {

/// One net of a signal group: a driver pin plus sinks on the G-Cell grid.
struct Bit {
    std::string name;
    std::vector<geom::Point> pins;
    int driver = 0;  // index into pins

    [[nodiscard]] geom::Point driverPin() const {
        return pins[static_cast<size_t>(driver)];
    }
    [[nodiscard]] int numPins() const { return static_cast<int>(pins.size()); }
};

/// A user-defined bundle of bits required to share common topologies
/// (Definition 1).
struct SignalGroup {
    std::string name;
    std::vector<Bit> bits;

    [[nodiscard]] int width() const { return static_cast<int>(bits.size()); }
};

/// A complete routing instance: grid plus signal groups.
struct Design {
    std::string name;
    grid::RoutingGrid grid;
    std::vector<SignalGroup> groups;

    [[nodiscard]] int numGroups() const { return static_cast<int>(groups.size()); }

    /// Total number of nets (bits) over all groups ("#Net" in Table I).
    [[nodiscard]] int numNets() const {
        int n = 0;
        for (const SignalGroup& g : groups) n += g.width();
        return n;
    }

    /// Maximum pin count over all nets ("Np_max").
    [[nodiscard]] int maxPins() const {
        int m = 0;
        for (const SignalGroup& g : groups) {
            for (const Bit& b : g.bits) m = std::max(m, b.numPins());
        }
        return m;
    }

    /// Maximum group width ("W_max").
    [[nodiscard]] int maxWidth() const {
        int m = 0;
        for (const SignalGroup& g : groups) m = std::max(m, g.width());
        return m;
    }

    /// Total pin count (x axis of the Fig. 13 scalability study).
    [[nodiscard]] long totalPins() const {
        long n = 0;
        for (const SignalGroup& g : groups) {
            for (const Bit& b : g.bits) n += b.numPins();
        }
        return n;
    }
};

}  // namespace streak
