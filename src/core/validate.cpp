#include "core/validate.hpp"

#include <set>
#include <unordered_map>

namespace streak {

namespace {

using Severity = ValidationIssue::Severity;

void add(std::vector<ValidationIssue>* issues, Severity sev,
         std::string message) {
    issues->push_back({sev, std::move(message)});
}

}  // namespace

std::vector<ValidationIssue> validateDesign(const Design& design) {
    std::vector<ValidationIssue> issues;

    // First group (by index) that claimed each pin location. Two groups
    // contending for one pin is usually a netlist extraction bug and at
    // best forces both through the same congested G-Cell.
    std::unordered_map<geom::Point, size_t> pinOwner;

    int maxCapacity = 0;
    for (int e = 0; e < design.grid.numEdges(); ++e) {
        maxCapacity = std::max(maxCapacity, design.grid.capacity(e));
    }

    for (size_t g = 0; g < design.groups.size(); ++g) {
        const SignalGroup& group = design.groups[g];
        const std::string where = "group '" + group.name + "'";
        if (group.bits.empty()) {
            add(&issues, Severity::Error, where + " has no bits");
            continue;
        }
        if (group.width() > maxCapacity) {
            add(&issues, Severity::Warning,
                where + " is wider (" + std::to_string(group.width()) +
                    ") than any edge capacity (" +
                    std::to_string(maxCapacity) +
                    "); whole-object routing may fail");
        }
        for (size_t b = 0; b < group.bits.size(); ++b) {
            const Bit& bit = group.bits[b];
            const std::string bitWhere = where + " bit '" + bit.name + "'";
            if (bit.pins.empty()) {
                add(&issues, Severity::Error, bitWhere + " has no pins");
                continue;
            }
            if (bit.driver < 0 || bit.driver >= bit.numPins()) {
                add(&issues, Severity::Error,
                    bitWhere + " driver index " + std::to_string(bit.driver) +
                        " out of range");
                continue;
            }
            if (bit.numPins() < 2) {
                add(&issues, Severity::Error,
                    bitWhere + " has fewer than 2 pins");
            }
            std::set<geom::Point> seen;
            for (const geom::Point p : bit.pins) {
                if (!design.grid.contains(p)) {
                    add(&issues, Severity::Error,
                        bitWhere + " pin (" + std::to_string(p.x) + "," +
                            std::to_string(p.y) + ") outside the grid");
                }
                if (!seen.insert(p).second) {
                    add(&issues, Severity::Warning,
                        bitWhere + " has duplicate pin (" +
                            std::to_string(p.x) + "," + std::to_string(p.y) +
                            ")");
                }
                const auto [owner, fresh] = pinOwner.emplace(p, g);
                if (!fresh && owner->second != g) {
                    add(&issues, Severity::Warning,
                        bitWhere + " pin (" + std::to_string(p.x) + "," +
                            std::to_string(p.y) + ") is also used by group '" +
                            design.groups[owner->second].name + "'");
                }
            }
        }
    }
    return issues;
}

bool isRoutable(const std::vector<ValidationIssue>& issues) {
    for (const ValidationIssue& i : issues) {
        if (i.severity == ValidationIssue::Severity::Error) return false;
    }
    return true;
}

}  // namespace streak
