// Knobs for the whole Streak flow, grouped in one place so benches and
// ablations can tweak a single struct.
#pragma once

#include <functional>
#include <memory>

#include "core/backbone.hpp"
#include "ilp/lp.hpp"
#include "obs/counters.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/control.hpp"
#include "robust/recovery.hpp"

namespace streak {

/// What StreakOptions::observer receives at the end of a run: the run's
/// span tree and its counter/histogram deltas (see DESIGN.md
/// "Observability"). The referenced data lives in the StreakResult being
/// returned; copy what you keep.
struct StreakObservation {
    const obs::Trace& trace;
    const obs::Snapshot& counters;
};

enum class SolverKind {
    PrimalDual,       // Alg. 2 (fast, near-ILP quality)
    Ilp,              // exact formulation (3), time-capped
    IlpHierarchical,  // two-stage topology-then-layering ILP (future-work
                      // divide-and-conquer extension; see hier_ilp.hpp)
};

struct StreakOptions {
    BackboneOptions backbone;

    // --- 3-D candidate expansion ---
    /// How many (hLayer, vLayer) pairs to expand each backbone into.
    int maxLayerPairs = 3;
    /// Cost per via (bend / pin access) in c(i, j).
    double viaWeight = 2.0;
    /// Extra cost per unit of |hLayer - vLayer| - 1 (non-adjacent trunk
    /// layers waste via stacks).
    double layerAdjacencyWeight = 1.0;

    // --- formulation (3) weights ---
    /// M: penalty for a non-routed object (3a). Must dominate any cost.
    double nonRoutePenaltyM = 1e6;
    /// Scale of the irregularity term 1/Ratio - 1 between group mates.
    double irregularityWeight = 50.0;
    /// Pair penalty when two objects share no RC at all (< M).
    double noSharePenalty = 1e3;
    /// Penalty per layer of difference between the trunk layers of two
    /// group mates ("...if the RCs are shared but the routed layers are
    /// not adjacent, a penalty proportional to the layer difference").
    double pairLayerWeight = 2.0;

    // --- solver selection ---
    SolverKind solver = SolverKind::PrimalDual;
    double ilpTimeLimitSeconds = 60.0;
    /// Simplex engine for the ILP's LP relaxations (Legacy is the
    /// explicit-bound-row oracle kept for cross-checks and benches).
    ilp::LpEngine lpEngine = ilp::LpEngine::Bounded;
    /// Warm-start child branch-and-bound nodes from the parent's final
    /// simplex basis (Bounded engine only).
    bool lpWarmStart = true;

    // --- parallel execution (DESIGN.md "Parallel execution") ---
    /// Worker threads for the parallel stages (candidate build, per-
    /// component ILP solves, distance analysis, refinement scoring).
    /// 0 = hardware concurrency, 1 = the exact legacy sequential path.
    /// Results are byte-identical for every value (ordered reductions).
    int threads = 0;

    // --- post optimization (Sec. IV) ---
    bool postOptimize = false;
    bool clusteringEnabled = true;   // Fig. 14 ablation switch
    bool refinementEnabled = true;   // Fig. 15 ablation switch
    /// Source-to-sink deviation threshold as a fraction of the group's
    /// maximum initial source-to-sink distance (the paper uses 50%).
    double distanceThresholdFraction = 0.5;
    /// Maximum shift distance explored when twisting detours (Alg. 4).
    int maxDetourShift = 12;

    // --- robustness (DESIGN.md "Robustness") ---
    /// Wall-clock budget for the whole run; <= 0 disables the deadline.
    /// When it expires, the active stage unwinds at its next tick point
    /// and the flow degrades per `recovery` (or returns a structured
    /// DeadlineExpired error when no fallback exists). A run that never
    /// hits the deadline is byte-identical to an unbudgeted one.
    double deadlineSeconds = 0.0;
    /// Optional external cancellation: share this token with whatever
    /// owns the run and call requestCancel() to unwind at the next tick.
    /// Cancellation is never absorbed by the degradation ladder.
    std::shared_ptr<robust::CancelToken> cancel;
    /// Per-stage fallback switches for the degradation ladder.
    robust::RecoveryPolicy recovery;
    /// Internal: armed by runStreak() from deadlineSeconds + cancel and
    /// carried down to every hot loop via the options copies the stages
    /// already receive. Leave default-constructed (idle) when calling
    /// stages directly.
    robust::Ticket control;

    // --- observability (DESIGN.md "Observability") ---
    /// Called once at the end of runStreak with the run's span tree and
    /// counter deltas. Setting it turns on detailed instrumentation
    /// (hot-path spans + counters) for the run, so benches can consume
    /// counters programmatically without touching the session's gate.
    std::function<void(const StreakObservation&)> observer;
    /// Observability session the run records into (counters, histograms,
    /// spans, detail gate). Null means the process-global default
    /// session, which preserves the historical behaviour; give each run
    /// its own session to keep metrics from concurrent or back-to-back
    /// runs fully isolated (campaign sweeps do this). The session must
    /// outlive the run.
    std::shared_ptr<obs::Session> session;
};

}  // namespace streak
