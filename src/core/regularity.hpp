// Regularity evaluation (Sec. III-B3, Eq. 2 and Eq. 9).
//
// Objects of one group cannot always share a single topology; the
// regularity ratio quantifies how similar two topologies are by matching
// their feature points (pins and bends) through driver-weighted similarity
// vectors and counting preserved rectilinear connections.
#pragma once

#include <vector>

#include "steiner/topology.hpp"

namespace streak {

/// Ratio(t1, t2) of Eq. (2): matched RCs over the smaller RC count, in
/// [0, 1]. Topologies without any RC (single-point bits) are trivially
/// regular (ratio 1).
[[nodiscard]] double regularityRatio(const steiner::Topology& t1,
                                     const steiner::Topology& t2);

/// Reg of Eq. (9): mean pairwise ratio over the given object solutions of
/// one group. Groups with fewer than two objects are trivially regular
/// (returns 1).
[[nodiscard]] double groupRegularity(
    const std::vector<const steiner::Topology*>& objectTopologies);

}  // namespace streak
