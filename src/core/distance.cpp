#include "core/distance.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "core/similarity.hpp"
#include "robust/fault.hpp"

namespace streak {

namespace {

/// Representative-bit pins of an object.
const Bit& representativeBit(const Design& design, const RoutingObject& obj) {
    const SignalGroup& g = design.groups[static_cast<size_t>(obj.groupIndex)];
    return g.bits[static_cast<size_t>(
        obj.bitIndices[static_cast<size_t>(obj.representativeBit)])];
}

/// Match each pin of `from` to the closest-SV pin of `to` (driver-weighted
/// SVs; many-to-one allowed, as for regularity matching).
std::vector<int> matchPins(const Bit& from, const Bit& to) {
    const int wf = from.numPins() + 1;
    const int wt = to.numPins() + 1;
    std::vector<SimilarityVector> fromSv, toSv;
    for (int i = 0; i < from.numPins(); ++i) {
        fromSv.push_back(weightedSimilarity(from.pins, i, from.driver, wf));
    }
    for (int i = 0; i < to.numPins(); ++i) {
        toSv.push_back(weightedSimilarity(to.pins, i, to.driver, wt));
    }
    std::vector<int> match(static_cast<size_t>(from.numPins()), 0);
    for (int i = 0; i < from.numPins(); ++i) {
        long bestKey = std::numeric_limits<long>::max();
        for (int j = 0; j < to.numPins(); ++j) {
            const long key =
                static_cast<long>(svDistance(fromSv[static_cast<size_t>(i)],
                                             toSv[static_cast<size_t>(j)])) *
                    1000000 +
                manhattan(from.pins[static_cast<size_t>(i)],
                          to.pins[static_cast<size_t>(j)]);
            if (key < bestKey) {
                bestKey = key;
                match[static_cast<size_t>(i)] = j;
            }
        }
    }
    // Drivers always correspond.
    match[static_cast<size_t>(from.driver)] = to.driver;
    return match;
}

/// Family members of one group (the SV pin-matching is the expensive
/// part); pure function of immutable state, safe to run per group in
/// parallel.
std::vector<FamilyMember> buildGroupFamilies(
    const RoutingProblem& prob, const RoutedDesign& routed, int g,
    const std::vector<int>* groupBits) {
    const Design& design = *prob.design;
    std::vector<FamilyMember> family;
    if (groupBits == nullptr) return family;

    // Canonical object: the group's first object.
    const std::vector<int>& objIds = prob.groupObjects[static_cast<size_t>(g)];
    const int canonObj = objIds.front();
    const Bit& canonRep =
        representativeBit(design, prob.objects[static_cast<size_t>(canonObj)]);

    // Per-object map: representative pin -> canonical pin.
    std::map<int, std::vector<int>> toCanon;
    for (const int o : objIds) {
        const RoutingObject& obj = prob.objects[static_cast<size_t>(o)];
        if (o == canonObj) {
            std::vector<int> id(static_cast<size_t>(canonRep.numPins()));
            for (size_t i = 0; i < id.size(); ++i) {
                id[i] = static_cast<int>(i);
            }
            toCanon.emplace(o, std::move(id));
        } else {
            toCanon.emplace(
                o, matchPins(representativeBit(design, obj), canonRep));
        }
    }

    for (const int r : *groupBits) {
        const RoutedBit& rb = routed.bits[static_cast<size_t>(r)];
        const RoutingObject& obj =
            prob.objects[static_cast<size_t>(rb.objectIndex)];
        const Bit& bit = design.groups[static_cast<size_t>(g)]
                             .bits[static_cast<size_t>(rb.bitIndex)];
        const std::vector<int>& pinMap =
            obj.pinMaps[static_cast<size_t>(rb.memberIndex)];
        const std::vector<int>& canonMap = toCanon.at(rb.objectIndex);
        for (int i = 0; i < bit.numPins(); ++i) {
            if (i == bit.driver) continue;
            const int fam =
                canonMap[static_cast<size_t>(pinMap[static_cast<size_t>(i)])];
            family.push_back({r, i, fam});
        }
    }
    return family;
}

std::vector<std::vector<FamilyMember>> buildSinkFamiliesWith(
    const RoutingProblem& prob, const RoutedDesign& routed,
    parallel::ThreadPool& pool) {
    std::map<int, std::vector<int>> bitsOfGroup;
    for (size_t r = 0; r < routed.bits.size(); ++r) {
        bitsOfGroup[routed.bits[r].groupIndex].push_back(static_cast<int>(r));
    }
    return pool.parallelMap<std::vector<FamilyMember>>(
        prob.design->numGroups(), [&](int g) {
            const auto itBits = bitsOfGroup.find(g);
            return buildGroupFamilies(
                prob, routed, g,
                itBits == bitsOfGroup.end() ? nullptr : &itBits->second);
        });
}

}  // namespace

std::vector<std::vector<FamilyMember>> buildSinkFamilies(
    const RoutingProblem& prob, const RoutedDesign& routed) {
    parallel::ThreadPool pool(parallel::resolveThreads(prob.opts.threads));
    return buildSinkFamiliesWith(prob, routed, pool);
}

std::vector<GroupDistanceReport> analyzeDistances(
    const RoutingProblem& prob, const RoutedDesign& routed,
    double thresholdFraction, const std::vector<int>* fixedThresholds,
    parallel::RegionStats* parallelStats) {
    STREAK_FAULT_POINT("distance/analyze");
    parallel::ThreadPool pool(parallel::resolveThreads(prob.opts.threads));
    pool.setControl(prob.opts.control);

    const std::vector<std::vector<FamilyMember>> allFamilies =
        buildSinkFamiliesWith(prob, routed, pool);

    // Groups analyze independently: a routed bit belongs to exactly one
    // group, so the per-bit BFS distance cache can live inside the task.
    const auto analyzeGroup = [&](int g) {
        std::map<int, std::vector<int>> distCache;
        const auto distancesOf = [&](int routedBit) -> const std::vector<int>& {
            auto it = distCache.find(routedBit);
            if (it == distCache.end()) {
                it = distCache
                         .emplace(routedBit,
                                  routed.bits[static_cast<size_t>(routedBit)]
                                      .topo.sourceToSinkDistances())
                         .first;
            }
            return it->second;
        };

        GroupDistanceReport rep;
        rep.groupIndex = g;

        struct Sample {
            int routedBit;
            int pin;
            int distance;
        };
        std::map<int, std::vector<Sample>> byFamily;
        int maxDst = 0;
        for (const FamilyMember& m : allFamilies[static_cast<size_t>(g)]) {
            const int dst =
                distancesOf(m.routedBitIndex)[static_cast<size_t>(m.pinIndex)];
            if (dst < 0) continue;
            byFamily[m.familyId].push_back({m.routedBitIndex, m.pinIndex, dst});
            maxDst = std::max(maxDst, dst);
        }

        rep.maxInitialDistance = maxDst;
        if (fixedThresholds != nullptr &&
            (*fixedThresholds)[static_cast<size_t>(g)] >= 0) {
            rep.threshold = (*fixedThresholds)[static_cast<size_t>(g)];
        } else {
            rep.threshold = static_cast<int>(thresholdFraction * maxDst);
        }

        for (const auto& [fam, samples] : byFamily) {
            if (samples.size() < 2) continue;
            int mx = 0;
            int mn = std::numeric_limits<int>::max();
            for (const Sample& s : samples) {
                mx = std::max(mx, s.distance);
                mn = std::min(mn, s.distance);
            }
            const int dev = mx - mn;
            rep.maxDeviation = std::max(rep.maxDeviation, dev);
            if (dev > rep.threshold) {
                ++rep.violatingFamilies;
                for (const Sample& s : samples) {
                    if (mx - s.distance > rep.threshold) {
                        rep.violations.push_back(
                            {s.routedBit, s.pin, s.distance, mx});
                    }
                }
            }
        }
        return rep;
    };

    std::vector<GroupDistanceReport> reports =
        pool.parallelMap<GroupDistanceReport>(prob.design->numGroups(),
                                              analyzeGroup);
    if (parallelStats != nullptr) parallelStats->merge(pool.stats());
    return reports;
}

int countViolatingGroups(const std::vector<GroupDistanceReport>& reports) {
    int count = 0;
    for (const GroupDistanceReport& r : reports) {
        if (r.violating()) ++count;
    }
    return count;
}

}  // namespace streak
