// Equivalent topology generation (Sec. III-B2, Algorithm 1).
//
// Given a backbone over the representative bit, every other bit of the
// object receives an equivalent topology: backbone bending points are
// re-aligned to the bit's corresponding pins (matched through similarity
// vectors during identification), and the same rectilinear connections
// are redrawn between them.
//
// Implementation note: every backbone coordinate lies on the Hanan grid of
// the representative pins, so aligning bends to mapped pins is exactly a
// coordinate-wise remap x -> x(bit pin with that x), y -> y(bit pin with
// that y). The remap preserves straightness and tree structure by
// construction.
#pragma once

#include "core/identify.hpp"
#include "core/signal.hpp"
#include "steiner/topology.hpp"

namespace streak {

/// Equivalent topology for the bit at `memberIndex` (into
/// object.bitIndices) given a backbone over the object's representative
/// bit. The returned topology's pins are the member bit's pins in the
/// member bit's own pin order.
[[nodiscard]] steiner::Topology equivalentTopology(
    const steiner::Topology& backbone, const SignalGroup& group,
    const RoutingObject& object, int memberIndex);

/// Equivalent topologies for every bit of the object (aligned with
/// object.bitIndices).
[[nodiscard]] std::vector<steiner::Topology> equivalentTopologies(
    const steiner::Topology& backbone, const SignalGroup& group,
    const RoutingObject& object);

}  // namespace streak
