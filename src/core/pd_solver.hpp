// Primal-dual selection flow (Sec. III-D, Algorithm 2).
//
// A progressive primal-dual scheme over the linearized formulation
// (Eq. 4-6): starting from the all-zero (primal infeasible, dual feasible)
// point, the cheapest feasible candidate — base cost c(i, j) plus the
// linearized pair cost c'(i, j) — is committed each iteration; capacities
// are updated, newly infeasible candidates are pruned, and c' values are
// refreshed for the affected group mates.
#pragma once

#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak {

struct PdResult {
    RoutingSolution solution;
    /// Lower bound certified by the dual construction (sum of per-object
    /// minimum admissible costs at commit time).
    double dualBound = 0.0;
    int iterations = 0;
};

[[nodiscard]] PdResult solvePrimalDual(const RoutingProblem& prob);

}  // namespace streak
