#include "core/ilp_router.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

#include "check/audit.hpp"
#include "check/ilp_audit.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"

namespace streak {

namespace {

/// Union-find over object indices.
class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    int find(int a) {
        while (parent_[static_cast<size_t>(a)] != a) {
            parent_[static_cast<size_t>(a)] =
                parent_[static_cast<size_t>(parent_[static_cast<size_t>(a)])];
            a = parent_[static_cast<size_t>(a)];
        }
        return a;
    }
    void unite(int a, int b) { parent_[static_cast<size_t>(find(a))] = find(b); }

private:
    std::vector<int> parent_;
};

/// Edges whose worst-case total demand exceeds capacity; only these need
/// capacity rows, and only they couple otherwise-independent objects.
std::map<int, std::vector<int>> constrainedEdges(const RoutingProblem& prob) {
    // maxUse[edge][object] = max tracks any candidate of the object may
    // put on the edge.
    std::map<int, std::map<int, int>> maxUse;
    for (int i = 0; i < prob.numObjects(); ++i) {
        for (const RouteCandidate& c : prob.candidates[static_cast<size_t>(i)]) {
            for (const auto& [edge, amount] : c.edgeUse) {
                int& slot = maxUse[edge][i];
                slot = std::max(slot, amount);
            }
        }
    }
    std::map<int, std::vector<int>> out;
    for (const auto& [edge, users] : maxUse) {
        long worst = 0;
        for (const auto& [obj, amount] : users) worst += amount;
        if (worst > prob.design->grid.capacity(edge)) {
            std::vector<int> objs;
            objs.reserve(users.size());
            for (const auto& [obj, amount] : users) objs.push_back(obj);
            out.emplace(edge, std::move(objs));
        }
    }
    return out;
}

/// Via analogue of constrainedEdges: cells whose worst-case via demand
/// exceeds the cell's via capacity (empty when the model is disabled).
std::map<int, std::vector<int>> constrainedViaCells(
    const RoutingProblem& prob) {
    std::map<int, std::vector<int>> out;
    if (!prob.design->grid.viaLimited()) return out;
    std::map<int, std::map<int, int>> maxUse;
    for (int i = 0; i < prob.numObjects(); ++i) {
        for (const RouteCandidate& c : prob.candidates[static_cast<size_t>(i)]) {
            for (const auto& [cell, amount] : c.viaUse) {
                int& slot = maxUse[cell][i];
                slot = std::max(slot, amount);
            }
        }
    }
    for (const auto& [cell, users] : maxUse) {
        const int cap = prob.design->grid.viaCapacity(cell);
        if (cap < 0) continue;
        long worst = 0;
        for (const auto& [obj, amount] : users) worst += amount;
        if (worst > cap) {
            std::vector<int> objs;
            objs.reserve(users.size());
            for (const auto& [obj, amount] : users) objs.push_back(obj);
            out.emplace(cell, std::move(objs));
        }
    }
    return out;
}

}  // namespace

namespace {

/// Objective contribution of a component under a given assignment.
double componentObjective(const RoutingProblem& prob,
                          const std::vector<int>& objs,
                          const std::vector<int>& chosen) {
    double total = 0.0;
    for (const int i : objs) {
        const int j = chosen[static_cast<size_t>(i)];
        if (j < 0) {
            total += prob.opts.nonRoutePenaltyM;
        } else {
            total += prob.candidates[static_cast<size_t>(i)]
                                    [static_cast<size_t>(j)].cost;
        }
    }
    std::vector<bool> inComp(chosen.size(), false);
    for (const int i : objs) inComp[static_cast<size_t>(i)] = true;
    for (const PairBlock& pb : prob.pairBlocks) {
        if (!inComp[static_cast<size_t>(pb.objA)]) continue;
        const int ja = chosen[static_cast<size_t>(pb.objA)];
        const int jb = chosen[static_cast<size_t>(pb.objB)];
        if (ja >= 0 && jb >= 0) {
            total += pb.cost[static_cast<size_t>(ja)][static_cast<size_t>(jb)];
        }
    }
    return total;
}

}  // namespace

IlpRouteResult solveIlpRouting(const RoutingProblem& prob,
                               double timeLimitSeconds,
                               const RoutingSolution* warmStart) {
    const auto start = std::chrono::steady_clock::now();
    const auto remaining = [&] {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return timeLimitSeconds - elapsed.count();
    };

    IlpRouteResult result;
    if (warmStart != nullptr) {
        STREAK_REQUIRE(static_cast<int>(warmStart->chosen.size()) ==
                           prob.numObjects(),
                       "warm start covers {} objects, problem has {}",
                       warmStart->chosen.size(), prob.numObjects());
        result.solution.chosen = warmStart->chosen;
    } else {
        result.solution.chosen.assign(static_cast<size_t>(prob.numObjects()),
                                      -1);
    }

    const std::map<int, std::vector<int>> tightEdges = constrainedEdges(prob);
    const std::map<int, std::vector<int>> tightCells =
        constrainedViaCells(prob);

    // Component decomposition: same-group objects interact through pair
    // costs; objects sharing a tight edge or via cell interact through
    // capacity.
    UnionFind uf(prob.numObjects());
    for (const std::vector<int>& members : prob.groupObjects) {
        for (size_t k = 1; k < members.size(); ++k) {
            uf.unite(members[0], members[k]);
        }
    }
    for (const auto& [edge, objs] : tightEdges) {
        for (size_t k = 1; k < objs.size(); ++k) uf.unite(objs[0], objs[k]);
    }
    for (const auto& [cell, objs] : tightCells) {
        for (size_t k = 1; k < objs.size(); ++k) uf.unite(objs[0], objs[k]);
    }
    std::map<int, std::vector<int>> componentMap;
    for (int i = 0; i < prob.numObjects(); ++i) {
        componentMap[uf.find(i)].push_back(i);
    }
    result.components = static_cast<int>(componentMap.size());

    // Smallest components first: under a shared time budget this proves
    // as many components optimal as possible before the limit bites.
    std::vector<std::pair<int, std::vector<int>>> components(
        componentMap.begin(), componentMap.end());
    std::stable_sort(components.begin(), components.end(),
                     [&](const auto& a, const auto& b) {
                         size_t ca = 0, cb = 0;
                         for (const int i : a.second) {
                             ca += prob.candidates[static_cast<size_t>(i)].size();
                         }
                         for (const int i : b.second) {
                             cb += prob.candidates[static_cast<size_t>(i)].size();
                         }
                         return ca < cb;
                     });

    for (const auto& [root, objs] : components) {
        ilp::Model model;
        // x variables per (object, candidate); s per object.
        std::map<std::pair<int, int>, int> xVar;
        std::map<int, int> sVar;
        for (const int i : objs) {
            const auto& cands = prob.candidates[static_cast<size_t>(i)];
            for (size_t j = 0; j < cands.size(); ++j) {
                xVar[{i, static_cast<int>(j)}] =
                    model.addVariable(cands[j].cost, /*integer=*/true);
            }
            sVar[i] = model.addVariable(prob.opts.nonRoutePenaltyM,
                                        /*integer=*/false);
        }
        // (3b): sum_j x_ij + s_i = 1.
        for (const int i : objs) {
            std::vector<std::pair<int, double>> row;
            const auto& cands = prob.candidates[static_cast<size_t>(i)];
            for (size_t j = 0; j < cands.size(); ++j) {
                row.emplace_back(xVar.at({i, static_cast<int>(j)}), 1.0);
            }
            row.emplace_back(sVar.at(i), 1.0);
            model.addRow(std::move(row), ilp::Sense::Equal, 1.0);
        }
        // (3c): capacity rows on tight edges touched by this component.
        for (const auto& [edge, users] : tightEdges) {
            std::vector<std::pair<int, double>> row;
            for (const int i : users) {
                if (uf.find(i) != root) continue;
                const auto& cands = prob.candidates[static_cast<size_t>(i)];
                for (size_t j = 0; j < cands.size(); ++j) {
                    const auto& use = cands[j].edgeUse;
                    const auto it = std::lower_bound(
                        use.begin(), use.end(), std::make_pair(edge, 0));
                    if (it != use.end() && it->first == edge) {
                        row.emplace_back(xVar.at({i, static_cast<int>(j)}),
                                         static_cast<double>(it->second));
                    }
                }
            }
            if (!row.empty()) {
                model.addRow(std::move(row), ilp::Sense::LessEqual,
                             static_cast<double>(prob.design->grid.capacity(edge)));
            }
        }
        // Via-capacity rows on tight cells touched by this component.
        for (const auto& [cell, users] : tightCells) {
            std::vector<std::pair<int, double>> row;
            for (const int i : users) {
                if (uf.find(i) != root) continue;
                const auto& cands = prob.candidates[static_cast<size_t>(i)];
                for (size_t j = 0; j < cands.size(); ++j) {
                    const auto& use = cands[j].viaUse;
                    const auto it = std::lower_bound(
                        use.begin(), use.end(), std::make_pair(cell, 0));
                    if (it != use.end() && it->first == cell) {
                        row.emplace_back(xVar.at({i, static_cast<int>(j)}),
                                         static_cast<double>(it->second));
                    }
                }
            }
            if (!row.empty()) {
                model.addRow(
                    std::move(row), ilp::Sense::LessEqual,
                    static_cast<double>(prob.design->grid.viaCapacity(cell)));
            }
        }
        // Linearized pair terms: y >= x_ij + x_pq - 1, cost >= 0.
        for (const PairBlock& pb : prob.pairBlocks) {
            if (uf.find(pb.objA) != root) continue;
            for (size_t j = 0; j < pb.cost.size(); ++j) {
                for (size_t q = 0; q < pb.cost[j].size(); ++q) {
                    const double c = pb.cost[j][q];
                    if (c <= 0.0) continue;
                    const int y = model.addVariable(c, /*integer=*/false);
                    model.addRow({{y, 1.0},
                                  {xVar.at({pb.objA, static_cast<int>(j)}), -1.0},
                                  {xVar.at({pb.objB, static_cast<int>(q)}), -1.0}},
                                 ilp::Sense::GreaterEqual, -1.0);
                }
            }
        }

        // The model as built must be structurally sound: the product-term
        // linearization only references x variables of this component and
        // every capacity row a valid candidate demand.
        STREAK_DEEP_AUDIT(check::auditIlpModel(model));

        const double left = remaining();
        if (left <= 0.0) {
            // Out of budget: the warm-start assignment (or non-route)
            // stands for this component.
            result.hitTimeLimit = true;
            continue;
        }
        ilp::BnbOptions bopts;
        bopts.timeLimitSeconds = left;
        if (warmStart != nullptr) {
            bopts.initialUpperBound =
                componentObjective(prob, objs, warmStart->chosen);
        }
        ilp::BnbStats stats;
        const ilp::Solution sol = ilp::solveIlp(model, bopts, &stats);
        result.nodesExplored += stats.nodesExplored;
        if (stats.hitLimit) result.hitTimeLimit = true;
        if (!sol.hasSolution()) continue;  // warm start (if any) stands
        for (const int i : objs) {
            result.solution.chosen[static_cast<size_t>(i)] = -1;
        }
        for (const auto& [key, var] : xVar) {
            if (sol.values[static_cast<size_t>(var)] > 0.5) {
                result.solution.chosen[static_cast<size_t>(key.first)] =
                    key.second;
            }
        }
    }

    result.solution.hitLimit = result.hitTimeLimit;
    result.solution.objective =
        solutionObjective(prob, result.solution.chosen);
    STREAK_DEEP_AUDIT(check::auditSolution(prob, result.solution));
    return result;
}

}  // namespace streak
