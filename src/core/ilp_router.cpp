#include "core/ilp_router.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "check/audit.hpp"
#include "check/ilp_audit.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak {

namespace {

/// Union-find over object indices.
class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    int find(int a) {
        while (parent_[static_cast<size_t>(a)] != a) {
            parent_[static_cast<size_t>(a)] =
                parent_[static_cast<size_t>(parent_[static_cast<size_t>(a)])];
            a = parent_[static_cast<size_t>(a)];
        }
        return a;
    }
    void unite(int a, int b) { parent_[static_cast<size_t>(find(a))] = find(b); }

private:
    std::vector<int> parent_;
};

/// Edges whose worst-case total demand exceeds capacity; only these need
/// capacity rows, and only they couple otherwise-independent objects.
std::map<int, std::vector<int>> constrainedEdges(const RoutingProblem& prob) {
    // maxUse[edge][object] = max tracks any candidate of the object may
    // put on the edge.
    std::map<int, std::map<int, int>> maxUse;
    for (int i = 0; i < prob.numObjects(); ++i) {
        for (const RouteCandidate& c : prob.candidates[static_cast<size_t>(i)]) {
            for (const auto& [edge, amount] : c.edgeUse) {
                int& slot = maxUse[edge][i];
                slot = std::max(slot, amount);
            }
        }
    }
    std::map<int, std::vector<int>> out;
    for (const auto& [edge, users] : maxUse) {
        long worst = 0;
        for (const auto& [obj, amount] : users) worst += amount;
        if (worst > prob.design->grid.capacity(edge)) {
            std::vector<int> objs;
            objs.reserve(users.size());
            for (const auto& [obj, amount] : users) objs.push_back(obj);
            out.emplace(edge, std::move(objs));
        }
    }
    return out;
}

/// Via analogue of constrainedEdges: cells whose worst-case via demand
/// exceeds the cell's via capacity (empty when the model is disabled).
std::map<int, std::vector<int>> constrainedViaCells(
    const RoutingProblem& prob) {
    std::map<int, std::vector<int>> out;
    if (!prob.design->grid.viaLimited()) return out;
    std::map<int, std::map<int, int>> maxUse;
    for (int i = 0; i < prob.numObjects(); ++i) {
        for (const RouteCandidate& c : prob.candidates[static_cast<size_t>(i)]) {
            for (const auto& [cell, amount] : c.viaUse) {
                int& slot = maxUse[cell][i];
                slot = std::max(slot, amount);
            }
        }
    }
    for (const auto& [cell, users] : maxUse) {
        const int cap = prob.design->grid.viaCapacity(cell);
        if (cap < 0) continue;
        long worst = 0;
        for (const auto& [obj, amount] : users) worst += amount;
        if (worst > cap) {
            std::vector<int> objs;
            objs.reserve(users.size());
            for (const auto& [obj, amount] : users) objs.push_back(obj);
            out.emplace(cell, std::move(objs));
        }
    }
    return out;
}

}  // namespace

namespace {

/// Objective contribution of a component under a given assignment.
double componentObjective(const RoutingProblem& prob,
                          const std::vector<int>& objs,
                          const std::vector<int>& chosen) {
    double total = 0.0;
    for (const int i : objs) {
        const int j = chosen[static_cast<size_t>(i)];
        if (j < 0) {
            total += prob.opts.nonRoutePenaltyM;
        } else {
            total += prob.candidates[static_cast<size_t>(i)]
                                    [static_cast<size_t>(j)].cost;
        }
    }
    std::vector<bool> inComp(chosen.size(), false);
    for (const int i : objs) inComp[static_cast<size_t>(i)] = true;
    for (const PairBlock& pb : prob.pairBlocks) {
        if (!inComp[static_cast<size_t>(pb.objA)]) continue;
        const int ja = chosen[static_cast<size_t>(pb.objA)];
        const int jb = chosen[static_cast<size_t>(pb.objB)];
        if (ja >= 0 && jb >= 0) {
            total += pb.cost[static_cast<size_t>(ja)][static_cast<size_t>(jb)];
        }
    }
    return total;
}

}  // namespace

namespace {

/// Outcome of one component's branch-and-bound, merged in component order.
struct ComponentOutcome {
    /// (object, candidate or -1) assignments; empty when the component
    /// found no solution and the warm start (if any) stands.
    std::vector<std::pair<int, int>> chosen;
    long nodesExplored = 0;
    bool hitTimeLimit = false;
};

}  // namespace

IlpRouteResult solveIlpRouting(const RoutingProblem& prob,
                               double timeLimitSeconds,
                               const RoutingSolution* warmStart) {
    IlpRouteResult result;
    if (warmStart != nullptr) {
        STREAK_REQUIRE(static_cast<int>(warmStart->chosen.size()) ==
                           prob.numObjects(),
                       "warm start covers {} objects, problem has {}",
                       warmStart->chosen.size(), prob.numObjects());
        result.solution.chosen = warmStart->chosen;
    } else {
        result.solution.chosen.assign(static_cast<size_t>(prob.numObjects()),
                                      -1);
    }

    const std::map<int, std::vector<int>> tightEdges = constrainedEdges(prob);
    const std::map<int, std::vector<int>> tightCells =
        constrainedViaCells(prob);

    // Component decomposition: same-group objects interact through pair
    // costs; objects sharing a tight edge or via cell interact through
    // capacity.
    UnionFind uf(prob.numObjects());
    for (const std::vector<int>& members : prob.groupObjects) {
        for (size_t k = 1; k < members.size(); ++k) {
            uf.unite(members[0], members[k]);
        }
    }
    for (const auto& [edge, objs] : tightEdges) {
        for (size_t k = 1; k < objs.size(); ++k) uf.unite(objs[0], objs[k]);
    }
    for (const auto& [cell, objs] : tightCells) {
        for (size_t k = 1; k < objs.size(); ++k) uf.unite(objs[0], objs[k]);
    }
    // Roots resolved up front: find() path-compresses, so the parallel
    // component solves below must only read the frozen root table.
    std::vector<int> rootOf(static_cast<size_t>(prob.numObjects()));
    std::map<int, std::vector<int>> componentMap;
    for (int i = 0; i < prob.numObjects(); ++i) {
        rootOf[static_cast<size_t>(i)] = uf.find(i);
        componentMap[rootOf[static_cast<size_t>(i)]].push_back(i);
    }
    result.components = static_cast<int>(componentMap.size());

    // Smallest components first (by total candidate count): stable across
    // runs, and the cheap proofs land before the expensive ones.
    std::vector<std::pair<int, std::vector<int>>> components(
        componentMap.begin(), componentMap.end());
    const auto weightOf = [&](const std::vector<int>& objs) {
        size_t w = 0;
        for (const int i : objs) {
            w += prob.candidates[static_cast<size_t>(i)].size();
        }
        return w;
    };
    std::stable_sort(components.begin(), components.end(),
                     [&](const auto& a, const auto& b) {
                         return weightOf(a.second) < weightOf(b.second);
                     });

    // Deterministic time-budget split: each component owns a share of the
    // wall-clock budget proportional to its candidate count. Unlike the
    // old "whatever is left on the clock" scheme this does not depend on
    // how fast earlier components happened to solve, so any thread count
    // (and any execution order) sees the same caps.
    std::vector<double> budget(components.size(), 0.0);
    {
        double totalWeight = 0.0;
        for (const auto& [root, objs] : components) {
            totalWeight += static_cast<double>(weightOf(objs)) + 1.0;
        }
        for (size_t c = 0; c < components.size(); ++c) {
            budget[c] = timeLimitSeconds *
                        (static_cast<double>(weightOf(components[c].second)) +
                         1.0) /
                        totalWeight;
        }
    }

    const auto solveComponent = [&](int comp) {
        // Worker-side span: nests under the owning region's span through
        // the thread pool's worker binding, one per independent component.
        STREAK_SPAN("ilp/component");
        STREAK_FAULT_POINT("ilp/solve");
        const int root = components[static_cast<size_t>(comp)].first;
        const std::vector<int>& objs =
            components[static_cast<size_t>(comp)].second;
        ComponentOutcome outcome;
        ilp::Model model;
        // x variables per (object, candidate); s per object.
        std::map<std::pair<int, int>, int> xVar;
        std::map<int, int> sVar;
        for (const int i : objs) {
            const auto& cands = prob.candidates[static_cast<size_t>(i)];
            for (size_t j = 0; j < cands.size(); ++j) {
                xVar[{i, static_cast<int>(j)}] =
                    model.addVariable(cands[j].cost, /*integer=*/true);
            }
            sVar[i] = model.addVariable(prob.opts.nonRoutePenaltyM,
                                        /*integer=*/false);
        }
        // (3b): sum_j x_ij + s_i = 1.
        for (const int i : objs) {
            std::vector<std::pair<int, double>> row;
            const auto& cands = prob.candidates[static_cast<size_t>(i)];
            for (size_t j = 0; j < cands.size(); ++j) {
                row.emplace_back(xVar.at({i, static_cast<int>(j)}), 1.0);
            }
            row.emplace_back(sVar.at(i), 1.0);
            model.addRow(std::move(row), ilp::Sense::Equal, 1.0);
        }
        // (3c): capacity rows on tight edges touched by this component.
        for (const auto& [edge, users] : tightEdges) {
            std::vector<std::pair<int, double>> row;
            for (const int i : users) {
                if (rootOf[static_cast<size_t>(i)] != root) continue;
                const auto& cands = prob.candidates[static_cast<size_t>(i)];
                for (size_t j = 0; j < cands.size(); ++j) {
                    const auto& use = cands[j].edgeUse;
                    const auto it = std::lower_bound(
                        use.begin(), use.end(), std::make_pair(edge, 0));
                    if (it != use.end() && it->first == edge) {
                        row.emplace_back(xVar.at({i, static_cast<int>(j)}),
                                         static_cast<double>(it->second));
                    }
                }
            }
            if (!row.empty()) {
                model.addRow(std::move(row), ilp::Sense::LessEqual,
                             static_cast<double>(prob.design->grid.capacity(edge)));
            }
        }
        // Via-capacity rows on tight cells touched by this component.
        for (const auto& [cell, users] : tightCells) {
            std::vector<std::pair<int, double>> row;
            for (const int i : users) {
                if (rootOf[static_cast<size_t>(i)] != root) continue;
                const auto& cands = prob.candidates[static_cast<size_t>(i)];
                for (size_t j = 0; j < cands.size(); ++j) {
                    const auto& use = cands[j].viaUse;
                    const auto it = std::lower_bound(
                        use.begin(), use.end(), std::make_pair(cell, 0));
                    if (it != use.end() && it->first == cell) {
                        row.emplace_back(xVar.at({i, static_cast<int>(j)}),
                                         static_cast<double>(it->second));
                    }
                }
            }
            if (!row.empty()) {
                model.addRow(
                    std::move(row), ilp::Sense::LessEqual,
                    static_cast<double>(prob.design->grid.viaCapacity(cell)));
            }
        }
        // Linearized pair terms: y >= x_ij + x_pq - 1, cost >= 0.
        for (const PairBlock& pb : prob.pairBlocks) {
            if (rootOf[static_cast<size_t>(pb.objA)] != root) continue;
            for (size_t j = 0; j < pb.cost.size(); ++j) {
                for (size_t q = 0; q < pb.cost[j].size(); ++q) {
                    const double c = pb.cost[j][q];
                    if (c <= 0.0) continue;
                    const int y = model.addVariable(c, /*integer=*/false);
                    model.addRow({{y, 1.0},
                                  {xVar.at({pb.objA, static_cast<int>(j)}), -1.0},
                                  {xVar.at({pb.objB, static_cast<int>(q)}), -1.0}},
                                 ilp::Sense::GreaterEqual, -1.0);
                }
            }
        }

        // The model as built must be structurally sound: the product-term
        // linearization only references x variables of this component and
        // every capacity row a valid candidate demand.
        STREAK_DEEP_AUDIT(check::auditIlpModel(model));

        ilp::BnbOptions bopts;
        bopts.timeLimitSeconds = budget[static_cast<size_t>(comp)];
        bopts.lpEngine = prob.opts.lpEngine;
        bopts.lpWarmStart = prob.opts.lpWarmStart;
        bopts.control = prob.opts.control;
        if (warmStart != nullptr) {
            bopts.initialUpperBound =
                componentObjective(prob, objs, warmStart->chosen);
        }
        ilp::BnbStats stats;
        const ilp::Solution sol = ilp::solveIlp(model, bopts, &stats);
        outcome.nodesExplored = stats.nodesExplored;
        outcome.hitTimeLimit = stats.hitLimit;
        if (!sol.hasSolution()) return outcome;  // warm start (if any) stands
        std::map<int, int> pick;
        for (const int i : objs) pick[i] = -1;
        for (const auto& [key, var] : xVar) {
            if (sol.values[static_cast<size_t>(var)] > 0.5) {
                pick[key.first] = key.second;
            }
        }
        outcome.chosen.assign(pick.begin(), pick.end());
        return outcome;
    };

    if (obs::detailEnabled()) {
        obs::session()
            .counter("ilp/router.components")
            .add(static_cast<long long>(components.size()));
    }

    // Components solve in parallel; outcomes merge in the (deterministic)
    // sorted component order, each touching a disjoint slice of `chosen`.
    parallel::ThreadPool pool(parallel::resolveThreads(prob.opts.threads));
    pool.setControl(prob.opts.control);
    pool.orderedReduce<ComponentOutcome>(
        static_cast<int>(components.size()), solveComponent,
        [&](int /*comp*/, ComponentOutcome&& outcome) {
            result.nodesExplored += outcome.nodesExplored;
            if (outcome.hitTimeLimit) result.hitTimeLimit = true;
            for (const auto& [obj, cand] : outcome.chosen) {
                result.solution.chosen[static_cast<size_t>(obj)] = cand;
            }
        });
    result.parallelStats.merge(pool.stats());

    result.solution.hitLimit = result.hitTimeLimit;
    result.solution.objective =
        solutionObjective(prob, result.solution.chosen);
    STREAK_DEEP_AUDIT(check::auditSolution(prob, result.solution));
    return result;
}

}  // namespace streak
