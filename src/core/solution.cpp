#include "core/solution.hpp"

#include <map>

namespace streak {

double solutionObjective(const RoutingProblem& prob,
                         const std::vector<int>& chosen) {
    double total = 0.0;
    for (int i = 0; i < prob.numObjects(); ++i) {
        const int j = chosen[static_cast<size_t>(i)];
        if (j < 0) {
            total += prob.opts.nonRoutePenaltyM;
        } else {
            total += prob.candidates[static_cast<size_t>(i)]
                                    [static_cast<size_t>(j)].cost;
        }
    }
    for (const PairBlock& pb : prob.pairBlocks) {
        const int ja = chosen[static_cast<size_t>(pb.objA)];
        const int jb = chosen[static_cast<size_t>(pb.objB)];
        if (ja >= 0 && jb >= 0) {
            total += pb.cost[static_cast<size_t>(ja)][static_cast<size_t>(jb)];
        }
    }
    return total;
}

int makeCapacityFeasible(const RoutingProblem& prob, RoutingSolution* sol) {
    const grid::RoutingGrid& grid = prob.design->grid;
    std::vector<long> usage(static_cast<size_t>(grid.numEdges()), 0);
    // edge -> objects currently using it, with amounts. Ordered map: the
    // victim-dropping loop below walks it, and which objects survive an
    // over-capacity edge depends on the walk order.
    std::map<int, std::vector<std::pair<int, int>>> users;
    for (int i = 0; i < prob.numObjects(); ++i) {
        const int j = sol->chosen[static_cast<size_t>(i)];
        if (j < 0) continue;
        for (const auto& [edge, amount] :
             prob.candidates[static_cast<size_t>(i)][static_cast<size_t>(j)]
                 .edgeUse) {
            usage[static_cast<size_t>(edge)] += amount;
            users[edge].emplace_back(i, amount);
        }
    }
    std::vector<long> viaUsage(static_cast<size_t>(grid.numCells()), 0);
    std::map<int, std::vector<std::pair<int, int>>> viaUsers;
    if (grid.viaLimited()) {
        for (int i = 0; i < prob.numObjects(); ++i) {
            const int j = sol->chosen[static_cast<size_t>(i)];
            if (j < 0) continue;
            for (const auto& [cell, amount] :
                 prob.candidates[static_cast<size_t>(i)]
                                [static_cast<size_t>(j)].viaUse) {
                viaUsage[static_cast<size_t>(cell)] += amount;
                viaUsers[cell].emplace_back(i, amount);
            }
        }
    }

    int unrouted = 0;
    const auto dropObject = [&](int victim) {
        const int j = sol->chosen[static_cast<size_t>(victim)];
        const RouteCandidate& cand =
            prob.candidates[static_cast<size_t>(victim)]
                           [static_cast<size_t>(j)];
        for (const auto& [e2, a2] : cand.edgeUse) {
            usage[static_cast<size_t>(e2)] -= a2;
        }
        for (const auto& [c2, a2] : cand.viaUse) {
            viaUsage[static_cast<size_t>(c2)] -= a2;
        }
        sol->chosen[static_cast<size_t>(victim)] = -1;
        ++unrouted;
    };
    const auto heaviestRoutedUser =
        [&](const std::vector<std::pair<int, int>>& objs) {
            int victim = -1;
            int victimAmount = 0;
            for (const auto& [obj, amount] : objs) {
                if (sol->chosen[static_cast<size_t>(obj)] >= 0 &&
                    amount > victimAmount) {
                    victim = obj;
                    victimAmount = amount;
                }
            }
            return victim;
        };

    for (const auto& [edge, objs] : users) {
        while (usage[static_cast<size_t>(edge)] > grid.capacity(edge)) {
            const int victim = heaviestRoutedUser(objs);
            if (victim < 0) break;  // already unrouted by another edge
            dropObject(victim);
        }
    }
    for (const auto& [cell, objs] : viaUsers) {
        const int cap = grid.viaCapacity(cell);
        if (cap < 0) continue;
        while (viaUsage[static_cast<size_t>(cell)] > cap) {
            const int victim = heaviestRoutedUser(objs);
            if (victim < 0) break;
            dropObject(victim);
        }
    }
    sol->objective = solutionObjective(prob, sol->chosen);
    return unrouted;
}

RoutedDesign materialize(const RoutingProblem& prob,
                         const RoutingSolution& sol) {
    RoutedDesign rd(prob.design->grid);
    for (int i = 0; i < prob.numObjects(); ++i) {
        const RoutingObject& obj = prob.objects[static_cast<size_t>(i)];
        const int j = sol.chosen[static_cast<size_t>(i)];
        if (j < 0) {
            for (int k = 0; k < obj.width(); ++k) {
                rd.unroutedMembers.emplace_back(i, k);
            }
            continue;
        }
        const RouteCandidate& cand =
            prob.candidates[static_cast<size_t>(i)][static_cast<size_t>(j)];
        for (int k = 0; k < obj.width(); ++k) {
            RoutedBit bit;
            bit.groupIndex = obj.groupIndex;
            bit.bitIndex = obj.bitIndices[static_cast<size_t>(k)];
            bit.objectIndex = i;
            bit.memberIndex = k;
            bit.clusterKey = i;
            bit.topo = cand.bitTopologies[static_cast<size_t>(k)];
            bit.hLayer = cand.hLayer;
            bit.vLayer = cand.vLayer;
            rd.bits.push_back(std::move(bit));
        }
        for (const auto& [edge, amount] : cand.edgeUse) {
            rd.usage.add(edge, amount);
        }
        for (const auto& [cell, amount] : cand.viaUse) {
            rd.usage.addVias(cell, amount);
        }
    }
    return rd;
}

}  // namespace streak
