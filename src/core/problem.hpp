// The assembled routing problem: objects, candidate sets and the pairwise
// regularity costs of formulation (3), ready for either solver.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "core/identify.hpp"
#include "core/options.hpp"
#include "core/signal.hpp"
#include "parallel/thread_pool.hpp"

namespace streak {

/// Pairwise candidate costs c(i, j, p, q) between two group mates:
/// cost[j][q] for candidates j of objA and q of objB.
struct PairBlock {
    int objA = 0;
    int objB = 0;  // objA < objB
    std::vector<std::vector<double>> cost;
};

struct RoutingProblem {
    const Design* design = nullptr;
    StreakOptions opts;
    std::vector<RoutingObject> objects;
    /// candidates[i] = candidate set of object i (may be empty).
    std::vector<std::vector<RouteCandidate>> candidates;
    /// groupObjects[g] = object ids belonging to group g.
    std::vector<std::vector<int>> groupObjects;
    std::vector<PairBlock> pairBlocks;
    /// pairsOf[i] = indices into pairBlocks that involve object i.
    std::vector<std::vector<int>> pairsOf;

    [[nodiscard]] int numObjects() const { return static_cast<int>(objects.size()); }

    /// c(i, j, p, q) lookup through a pair block (either orientation).
    [[nodiscard]] double pairCost(int block, int obj, int candOfObj,
                                  int candOfOther) const {
        const PairBlock& pb = pairBlocks[static_cast<size_t>(block)];
        if (obj == pb.objA) {
            return pb.cost[static_cast<size_t>(candOfObj)]
                          [static_cast<size_t>(candOfOther)];
        }
        return pb.cost[static_cast<size_t>(candOfOther)]
                      [static_cast<size_t>(candOfObj)];
    }

    /// The other endpoint of a pair block.
    [[nodiscard]] int pairOther(int block, int obj) const {
        const PairBlock& pb = pairBlocks[static_cast<size_t>(block)];
        return obj == pb.objA ? pb.objB : pb.objA;
    }

    /// Lower bound on formulation (3): sum of per-object minimum base
    /// costs (pair terms and M are non-negative). Used by tests to check
    /// weak duality of both solvers.
    [[nodiscard]] double costLowerBound() const;
};

/// Run identification, backbone/equivalent-topology generation, 3-D
/// expansion and pair-cost precomputation for a design. Candidate
/// generation and pair-cost blocks parallelize over objects / groups
/// (`opts.threads`); the result is identical for every thread count.
/// `parallelStats`, when given, accumulates the stage's region stats.
[[nodiscard]] RoutingProblem buildProblem(
    const Design& design, const StreakOptions& opts,
    parallel::RegionStats* parallelStats = nullptr);

}  // namespace streak
