// Exact route selection via 0/1 ILP (Sec. III-C, formulation (3)).
//
// The quadratic regularity terms x_ij * x_pq are linearized with
// continuous product variables y >= x_ij + x_pq - 1, y >= 0 (valid because
// all pair costs are non-negative). Independent connected components —
// objects linked by group membership or by contended edges — are solved
// separately, sharing one time budget; hitting it reproduces the paper's
// ">3600 s" rows (at our scale, a smaller default).
#pragma once

#include "core/problem.hpp"
#include "core/solution.hpp"
#include "parallel/thread_pool.hpp"

namespace streak {

struct IlpRouteResult {
    RoutingSolution solution;
    long nodesExplored = 0;
    int components = 0;
    bool hitTimeLimit = false;
    /// Stats of the per-component parallel solve (`opts.threads` workers).
    parallel::RegionStats parallelStats;
};

/// `warmStart` (typically the primal-dual result) seeds every component
/// with a known solution: the branch-and-bound only searches for strictly
/// better selections and the warm choice is kept when the time limit cuts
/// a component short — mirroring how a commercial solver's MIP start
/// behaves under the paper's 3600 s cap.
///
/// Components solve in parallel (`prob.opts.threads`); the shared time
/// budget is split deterministically across components in proportion to
/// their candidate counts, so — as long as no component exhausts its
/// share — the result is byte-identical for every thread count.
[[nodiscard]] IlpRouteResult solveIlpRouting(
    const RoutingProblem& prob, double timeLimitSeconds,
    const RoutingSolution* warmStart = nullptr);

}  // namespace streak
