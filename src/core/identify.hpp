// Hierarchical identification of signal isomorphism (Sec. III-A).
//
// Partitions each signal group into routing objects: maximal subsets of
// bits whose pins carry pairwise-identical similarity vectors, so every
// bit in an object can adopt an equivalent topology. Identification is
// hierarchical — bits are first bucketed by the driver's SV (cheap), then
// by the full per-pin SV signature — matching the paper's two-level
// strategy (Fig. 5(b)).
#pragma once

#include <vector>

#include "core/signal.hpp"
#include "core/similarity.hpp"

namespace streak {

/// One routing object: a set of isomorphic bits of one group.
struct RoutingObject {
    int groupIndex = 0;
    std::vector<int> bitIndices;  // into group.bits
    int representativeBit = 0;    // into bitIndices (a center-region bit)
    /// pinMaps[k][i] = pin index in the representative bit corresponding to
    /// pin i of bitIndices[k]. pinMaps is aligned with bitIndices; the
    /// representative maps to itself.
    std::vector<std::vector<int>> pinMaps;

    [[nodiscard]] int width() const { return static_cast<int>(bitIndices.size()); }
};

/// Partition `group` (at index `groupIndex` in its design) into routing
/// objects. Deterministic; preserves bit order inside objects.
[[nodiscard]] std::vector<RoutingObject> identifyObjects(
    const SignalGroup& group, int groupIndex);

/// Convenience: identify every group of a design; objects are concatenated
/// in group order.
[[nodiscard]] std::vector<RoutingObject> identifyObjects(const Design& design);

}  // namespace streak
