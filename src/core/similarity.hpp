// The quadrant-based similarity vector model (Sec. II-D, Eq. 1).
//
// SV(p) records, for a pin p of a bit, how many of the bit's other pins
// lie in each of eight directions around p (the four axes and the four
// open quadrants), in counter-clockwise order starting at +x:
//   index 0: +x axis, 1: quadrant I, 2: +y axis, 3: quadrant II,
//   index 4: -x axis, 5: quadrant III, 6: -y axis, 7: quadrant IV.
//
// Pins with equal SVs across bits correspond to each other; this single
// mechanism drives isomorphism identification, equivalent-topology pin
// mapping, regularity matching and distance-deviation families.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/signal.hpp"
#include "geom/point.hpp"

namespace streak {

struct SimilarityVector {
    std::array<int, 8> v{};

    friend auto operator<=>(const SimilarityVector&,
                            const SimilarityVector&) = default;
};

/// Direction index (0..7) of `to` as seen from `from`; the points must
/// differ.
[[nodiscard]] int directionIndex(geom::Point from, geom::Point to);

/// SV of pin `pinIndex` within its bit (Eq. 1). Coincident pins are not
/// counted in any direction.
[[nodiscard]] SimilarityVector pinSimilarity(const Bit& bit, int pinIndex);

/// SVs for every pin of the bit, index-aligned with bit.pins.
[[nodiscard]] std::vector<SimilarityVector> bitSimilarities(const Bit& bit);

/// Driver-weighted SV over an arbitrary point set (used for regularity
/// matching, Sec. III-B3): the driver point contributes `driverWeight`
/// instead of 1, emphasizing each point's position relative to the driver.
/// `self` is the index of the point the SV is computed for.
[[nodiscard]] SimilarityVector weightedSimilarity(
    const std::vector<geom::Point>& points, int self, int driverIndex,
    int driverWeight);

/// L1 distance between two similarity vectors ("closest SV" matching).
[[nodiscard]] int svDistance(const SimilarityVector& a,
                             const SimilarityVector& b);

/// Order-independent 64-bit key (for hashing/bucketing identical SVs).
[[nodiscard]] std::uint64_t svKey(const SimilarityVector& sv);

}  // namespace streak
