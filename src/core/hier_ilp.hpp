// Hierarchical two-stage ILP (the paper's future-work direction: divide
// the routing problem and solve subproblems to improve ILP scalability).
//
// Stage 1 decides each object's *topology*: the candidate set is reduced
// to the cheapest layer pair per backbone, which shrinks the quadratic
// pair terms dramatically. Stage 2 fixes the chosen backbones and decides
// the *layering* among the full candidates. Each stage is an exact ILP on
// a much smaller model, so the cascade scales well beyond where the flat
// formulation times out, at a small optimality cost.
#pragma once

#include "core/ilp_router.hpp"
#include "core/problem.hpp"

namespace streak {

/// A candidate-filtered view of a problem, with index maps back into the
/// original candidate sets.
struct FilteredProblem {
    RoutingProblem prob;
    /// toOriginal[i][j] = original candidate index of filtered candidate j.
    std::vector<std::vector<int>> toOriginal;
};

/// Restrict every object's candidate set to `keep[i]` (indices into the
/// original set, order preserved). Pair-cost blocks are sliced to match.
[[nodiscard]] FilteredProblem filterProblem(
    const RoutingProblem& src, const std::vector<std::vector<int>>& keep);

/// Two-stage hierarchical ILP; interface mirrors solveIlpRouting.
[[nodiscard]] IlpRouteResult solveIlpHierarchical(
    const RoutingProblem& prob, double timeLimitSeconds,
    const RoutingSolution* warmStart = nullptr);

}  // namespace streak
