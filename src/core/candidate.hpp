// 3-D route candidates for routing objects.
//
// Every backbone is expanded per bit (equivalent topologies) and onto
// pairs of uni-directional layers; the result carries its cost c(i, j)
// and per-edge track demand u_el(i, j) used by formulation (3).
#pragma once

#include <vector>

#include "core/identify.hpp"
#include "core/options.hpp"
#include "core/signal.hpp"
#include "steiner/topology.hpp"

namespace streak {

struct RouteCandidate {
    int backboneId = 0;  // which backbone this candidate came from
    steiner::Topology backbone;
    /// Equivalent topologies, aligned with object.bitIndices.
    std::vector<steiner::Topology> bitTopologies;
    int hLayer = 0;  // layer of all horizontal trunks
    int vLayer = 1;  // layer of all vertical trunks
    double cost = 0.0;          // c(i, j)
    long wirelength2d = 0;      // total over bits
    int viaCount = 0;           // total over bits (bends + pin stacks)
    /// Track demand per 3-D edge: sorted (edgeId, tracks) pairs.
    std::vector<std::pair<int, int>> edgeUse;
    /// Via-slot demand per G-Cell (pin access stacks + layer-change
    /// points): sorted (cellIndex, slots) pairs. Only enforced when the
    /// grid's via model is enabled.
    std::vector<std::pair<int, int>> viaUse;
};

/// Compute the sorted per-edge track demand of a set of bit topologies on
/// the given layer pair. Exposed for the post-optimization stages.
[[nodiscard]] std::vector<std::pair<int, int>> computeEdgeUse(
    const grid::RoutingGrid& grid, const std::vector<steiner::Topology>& bits,
    int hLayer, int vLayer);

/// Edge demand of a single topology (convenience wrapper).
[[nodiscard]] std::vector<std::pair<int, int>> computeEdgeUse(
    const grid::RoutingGrid& grid, const steiner::Topology& topo, int hLayer,
    int vLayer);

/// Via-slot demand of a set of bit topologies: one slot per pin (access
/// stack) plus one per layer-change point. Sorted (cellIndex, slots).
[[nodiscard]] std::vector<std::pair<int, int>> computeViaUse(
    const grid::RoutingGrid& grid, const std::vector<steiner::Topology>& bits);

/// Via demand of a single topology.
[[nodiscard]] std::vector<std::pair<int, int>> computeViaUse(
    const grid::RoutingGrid& grid, const steiner::Topology& topo);

/// Enumerate candidates for one object: backbones x layer pairs, filtered
/// to those that fit edge capacities in an empty grid. Sorted by cost.
[[nodiscard]] std::vector<RouteCandidate> generateCandidates(
    const Design& design, const RoutingObject& object,
    const StreakOptions& opts);

}  // namespace streak
