#include "core/hier_ilp.hpp"

#include <algorithm>
#include <set>

namespace streak {

FilteredProblem filterProblem(const RoutingProblem& src,
                              const std::vector<std::vector<int>>& keep) {
    FilteredProblem out;
    out.prob.design = src.design;
    out.prob.opts = src.opts;
    out.prob.objects = src.objects;
    out.prob.groupObjects = src.groupObjects;
    out.toOriginal = keep;

    out.prob.candidates.reserve(src.candidates.size());
    for (size_t i = 0; i < src.candidates.size(); ++i) {
        std::vector<RouteCandidate> cands;
        cands.reserve(keep[i].size());
        for (const int j : keep[i]) {
            cands.push_back(src.candidates[i][static_cast<size_t>(j)]);
        }
        out.prob.candidates.push_back(std::move(cands));
    }

    out.prob.pairsOf.assign(src.objects.size(), {});
    for (const PairBlock& pb : src.pairBlocks) {
        const auto& keepA = keep[static_cast<size_t>(pb.objA)];
        const auto& keepB = keep[static_cast<size_t>(pb.objB)];
        if (keepA.empty() || keepB.empty()) continue;
        PairBlock nb;
        nb.objA = pb.objA;
        nb.objB = pb.objB;
        nb.cost.reserve(keepA.size());
        for (const int ja : keepA) {
            std::vector<double> row;
            row.reserve(keepB.size());
            for (const int jb : keepB) {
                row.push_back(pb.cost[static_cast<size_t>(ja)]
                                     [static_cast<size_t>(jb)]);
            }
            nb.cost.push_back(std::move(row));
        }
        const int id = static_cast<int>(out.prob.pairBlocks.size());
        out.prob.pairBlocks.push_back(std::move(nb));
        out.prob.pairsOf[static_cast<size_t>(pb.objA)].push_back(id);
        out.prob.pairsOf[static_cast<size_t>(pb.objB)].push_back(id);
    }
    return out;
}

namespace {

/// Translate a solution in original indices into filtered indices: the
/// same candidate if kept, else any kept candidate with the same backbone
/// (a valid warm start of equal topology), else none.
RoutingSolution mapWarmStart(const RoutingProblem& src,
                             const FilteredProblem& filtered,
                             const RoutingSolution& warm) {
    RoutingSolution out;
    out.chosen.assign(warm.chosen.size(), -1);
    for (size_t i = 0; i < warm.chosen.size(); ++i) {
        const int jOld = warm.chosen[i];
        if (jOld < 0) continue;
        const auto& keep = filtered.toOriginal[i];
        const auto exact = std::find(keep.begin(), keep.end(), jOld);
        if (exact != keep.end()) {
            out.chosen[i] = static_cast<int>(exact - keep.begin());
            continue;
        }
        const int bb = src.candidates[i][static_cast<size_t>(jOld)].backboneId;
        for (size_t j = 0; j < keep.size(); ++j) {
            if (src.candidates[i][static_cast<size_t>(keep[j])].backboneId ==
                bb) {
                out.chosen[i] = static_cast<int>(j);
                break;
            }
        }
    }
    // Remapping can move a candidate to different layers; drop whatever no
    // longer fits so the warm start is a genuine feasible solution.
    makeCapacityFeasible(filtered.prob, &out);
    return out;
}

RoutingSolution mapBack(const FilteredProblem& filtered,
                        const RoutingSolution& sol) {
    RoutingSolution out;
    out.chosen.assign(sol.chosen.size(), -1);
    for (size_t i = 0; i < sol.chosen.size(); ++i) {
        if (sol.chosen[i] >= 0) {
            out.chosen[i] =
                filtered.toOriginal[i][static_cast<size_t>(sol.chosen[i])];
        }
    }
    out.hitLimit = sol.hitLimit;
    return out;
}

}  // namespace

IlpRouteResult solveIlpHierarchical(const RoutingProblem& prob,
                                    double timeLimitSeconds,
                                    const RoutingSolution* warmStart) {
    // Stage 1: topology selection — cheapest layer pair per backbone.
    std::vector<std::vector<int>> stage1Keep(prob.candidates.size());
    for (size_t i = 0; i < prob.candidates.size(); ++i) {
        std::set<int> seen;
        for (size_t j = 0; j < prob.candidates[i].size(); ++j) {
            if (seen.insert(prob.candidates[i][j].backboneId).second) {
                stage1Keep[i].push_back(static_cast<int>(j));
            }
        }
    }
    const FilteredProblem stage1 = filterProblem(prob, stage1Keep);
    RoutingSolution warm1;
    const RoutingSolution* warm1Ptr = nullptr;
    if (warmStart != nullptr) {
        warm1 = mapWarmStart(prob, stage1, *warmStart);
        warm1Ptr = &warm1;
    }
    IlpRouteResult r1 =
        solveIlpRouting(stage1.prob, timeLimitSeconds / 2.0, warm1Ptr);

    // Stage-1 result expressed in original candidate indices.
    const RoutingSolution r1Original = mapBack(stage1, r1.solution);

    // Stage 2: layering — candidates restricted to the stage-1 backbone
    // (all candidates when stage 1 left the object unrouted, so stage 2
    // can still rescue it).
    std::vector<std::vector<int>> stage2Keep(prob.candidates.size());
    for (size_t i = 0; i < prob.candidates.size(); ++i) {
        const int j1 = r1Original.chosen[i];
        if (j1 < 0) {
            for (size_t j = 0; j < prob.candidates[i].size(); ++j) {
                stage2Keep[i].push_back(static_cast<int>(j));
            }
            continue;
        }
        const int bb = prob.candidates[i][static_cast<size_t>(j1)].backboneId;
        for (size_t j = 0; j < prob.candidates[i].size(); ++j) {
            if (prob.candidates[i][j].backboneId == bb) {
                stage2Keep[i].push_back(static_cast<int>(j));
            }
        }
    }
    const FilteredProblem stage2 = filterProblem(prob, stage2Keep);
    const RoutingSolution warm2 = mapWarmStart(prob, stage2, r1Original);
    IlpRouteResult r2 =
        solveIlpRouting(stage2.prob, timeLimitSeconds / 2.0, &warm2);

    IlpRouteResult out;
    out.solution = mapBack(stage2, r2.solution);
    out.solution.objective = solutionObjective(prob, out.solution.chosen);
    out.nodesExplored = r1.nodesExplored + r2.nodesExplored;
    out.components = r2.components;
    out.hitTimeLimit = r1.hitTimeLimit || r2.hitTimeLimit;
    out.parallelStats.merge(r1.parallelStats);
    out.parallelStats.merge(r2.parallelStats);

    // MIP-start contract: never return worse than the warm start. The
    // stage-1 candidate reduction can strand a warm start behind capacity
    // repairs; if the cascade ends up costlier, the original stands.
    if (warmStart != nullptr) {
        const double warmObjective = solutionObjective(prob, warmStart->chosen);
        if (warmObjective < out.solution.objective) {
            out.solution.chosen = warmStart->chosen;
            out.solution.objective = warmObjective;
        }
    }
    out.solution.hitLimit = out.hitTimeLimit;
    return out;
}

}  // namespace streak
