// Evaluation metrics reported in Tables I / II: routability, total
// wire-length (with RSMT estimates for unrouted bits, as in the paper),
// average group regularity (Eq. 9) and overflow.
#pragma once

#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak {

struct Metrics {
    int totalBits = 0;
    int routedBits = 0;
    /// Routed bits / total bits ("Route" column).
    double routability = 0.0;
    /// 2-D wire-length of routed bits plus RSMT estimates for unrouted
    /// ones ("WL" column; whole-design view as in the paper).
    long wirelength = 0;
    /// Mean Eq. (9) regularity over groups with >= 2 routed clusters
    /// ("Avg(Reg)").
    double avgRegularity = 1.0;
    long totalOverflow = 0;
    int overflowedEdges = 0;
    /// Via-slot overflow over G-Cells (pin-access model; 0 when disabled).
    long totalViaOverflow = 0;
};

[[nodiscard]] Metrics evaluate(const RoutingProblem& prob,
                               const RoutedDesign& routed);

}  // namespace streak
