#include "core/regularity.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "core/similarity.hpp"

namespace streak {

namespace {

struct MatchView {
    std::vector<geom::Point> points;
    std::vector<SimilarityVector> svs;
    steiner::TopoStructure st;
};

MatchView makeView(const steiner::Topology& t) {
    MatchView mv;
    mv.st = t.structure();
    mv.points.reserve(mv.st.nodes.size());
    int driverNode = -1;
    for (size_t i = 0; i < mv.st.nodes.size(); ++i) {
        mv.points.push_back(mv.st.nodes[i].pt);
        if (mv.st.nodes[i].pinIndex == t.driverIndex()) {
            driverNode = static_cast<int>(i);
        }
    }
    const int weight = static_cast<int>(mv.points.size()) + 1;
    mv.svs.reserve(mv.points.size());
    for (size_t i = 0; i < mv.points.size(); ++i) {
        mv.svs.push_back(weightedSimilarity(mv.points, static_cast<int>(i),
                                            driverNode, weight));
    }
    return mv;
}

}  // namespace

double regularityRatio(const steiner::Topology& t1,
                       const steiner::Topology& t2) {
    const MatchView a = makeView(t1);
    const MatchView b = makeView(t2);
    const int nrc = std::min(a.st.numRCs(), b.st.numRCs());
    if (nrc == 0) return 1.0;  // trivially shared (no connections to differ)

    // Closest-SV matching of every node of t1 to a node of t2 (many-to-one
    // allowed — a bend can map to a sink, Fig. 3(a) discussion). Ties break
    // towards geometric proximity for determinism.
    std::vector<int> match(a.points.size(), -1);
    for (size_t i = 0; i < a.points.size(); ++i) {
        int best = -1;
        long bestKey = std::numeric_limits<long>::max();
        for (size_t j = 0; j < b.points.size(); ++j) {
            const long key =
                static_cast<long>(svDistance(a.svs[i], b.svs[j])) * 1000000 +
                manhattan(a.points[i], b.points[j]);
            if (key < bestKey) {
                bestKey = key;
                best = static_cast<int>(j);
            }
        }
        match[i] = best;
    }

    std::set<std::pair<int, int>> rcSet;
    for (const auto& [u, v] : b.st.rcs) {
        rcSet.insert({std::min(u, v), std::max(u, v)});
    }
    int matched = 0;
    for (const auto& [u, v] : a.st.rcs) {
        const int mu = match[static_cast<size_t>(u)];
        const int mv = match[static_cast<size_t>(v)];
        if (mu == mv) continue;
        if (rcSet.contains({std::min(mu, mv), std::max(mu, mv)})) ++matched;
    }
    return std::min(1.0, static_cast<double>(matched) / nrc);
}

double groupRegularity(
    const std::vector<const steiner::Topology*>& objectTopologies) {
    const int n = static_cast<int>(objectTopologies.size());
    if (n < 2) return 1.0;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        for (int p = i + 1; p < n; ++p) {
            sum += regularityRatio(*objectTopologies[static_cast<size_t>(i)],
                                   *objectTopologies[static_cast<size_t>(p)]);
        }
    }
    return 2.0 * sum / (static_cast<double>(n) * (n - 1));
}

}  // namespace streak
