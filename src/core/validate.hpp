// Design lint: structural checks a routing run assumes. Returns
// human-readable findings instead of throwing so front ends (CLI, file
// loader) can report everything at once.
#pragma once

#include <string>
#include <vector>

#include "core/signal.hpp"

namespace streak {

struct ValidationIssue {
    enum class Severity { Error, Warning };
    Severity severity = Severity::Error;
    std::string message;
};

/// Check the design: pins inside the grid, sane driver indices, no
/// single-pin nets, no empty groups, duplicate pins (warning), groups
/// wider than any edge capacity (warning — whole-object routing will
/// need clustering).
[[nodiscard]] std::vector<ValidationIssue> validateDesign(const Design& design);

/// True if no Error-severity issue is present.
[[nodiscard]] bool isRoutable(const std::vector<ValidationIssue>& issues);

}  // namespace streak
