#include "core/equiv.hpp"

#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace streak {

namespace {

/// Map one coordinate axis: for each distinct backbone coordinate, find
/// the nearest representative pin on that axis and carry the (usually
/// zero, by the Hanan property) offset over to the mapped member pin.
std::unordered_map<int, int> buildAxisMap(
    const std::vector<int>& coords, const std::vector<int>& repCoords,
    const std::vector<int>& memberCoords) {
    std::unordered_map<int, int> map;
    for (const int c : coords) {
        if (map.contains(c)) continue;
        int bestPin = 0;
        int bestDist = std::numeric_limits<int>::max();
        for (size_t i = 0; i < repCoords.size(); ++i) {
            const int d = std::abs(repCoords[i] - c);
            if (d < bestDist) {
                bestDist = d;
                bestPin = static_cast<int>(i);
            }
        }
        const int offset = c - repCoords[static_cast<size_t>(bestPin)];
        map.emplace(c, memberCoords[static_cast<size_t>(bestPin)] + offset);
    }
    return map;
}

}  // namespace

steiner::Topology equivalentTopology(const steiner::Topology& backbone,
                                     const SignalGroup& group,
                                     const RoutingObject& object,
                                     int memberIndex) {
    const Bit& member = group.bits[static_cast<size_t>(
        object.bitIndices[static_cast<size_t>(memberIndex)])];
    const std::vector<int>& pinMap =
        object.pinMaps[static_cast<size_t>(memberIndex)];
    const std::vector<geom::Point>& repPins = backbone.pins();

    // memberOfRep[r] = member pin corresponding to representative pin r.
    std::vector<int> memberOfRep(repPins.size(), -1);
    for (size_t i = 0; i < pinMap.size(); ++i) {
        memberOfRep[static_cast<size_t>(pinMap[i])] = static_cast<int>(i);
    }

    // Axis-wise coordinate pools: representative pin coordinate -> the
    // corresponding member pin coordinate.
    std::vector<int> repXs, repYs, memXs, memYs;
    for (size_t r = 0; r < repPins.size(); ++r) {
        const int m = memberOfRep[r];
        if (m < 0) continue;  // cannot happen for proper objects
        repXs.push_back(repPins[r].x);
        repYs.push_back(repPins[r].y);
        memXs.push_back(member.pins[static_cast<size_t>(m)].x);
        memYs.push_back(member.pins[static_cast<size_t>(m)].y);
    }

    // Remap at the *structure* level: only the feature nodes (pins, bends,
    // junctions) move, and each straight RC is redrawn between its mapped
    // endpoints. Feature-node coordinates lie on the Hanan grid of the
    // representative pins, so the axis maps are exact there; remapping
    // interior wire coordinates instead would create overhangs whenever
    // bits of one object are stretched differently.
    const steiner::TopoStructure st = backbone.structure();
    std::vector<int> xs, ys;
    {
        std::unordered_set<int> xSeen, ySeen;
        const auto note = [&](geom::Point p) {
            if (xSeen.insert(p.x).second) xs.push_back(p.x);
            if (ySeen.insert(p.y).second) ys.push_back(p.y);
        };
        for (const auto& n : st.nodes) note(n.pt);
        for (const geom::Point p : repPins) note(p);
    }
    const auto xMap = buildAxisMap(xs, repXs, memXs);
    const auto yMap = buildAxisMap(ys, repYs, memYs);
    const auto mapPt = [&](geom::Point p) -> geom::Point {
        return {xMap.at(p.x), yMap.at(p.y)};
    };

    steiner::Topology out(member.pins, member.driver);
    for (const auto& [u, v] : st.rcs) {
        out.addSegment({mapPt(st.nodes[static_cast<size_t>(u)].pt),
                        mapPt(st.nodes[static_cast<size_t>(v)].pt)});
    }
    // If a mapped pin landed away from the member's actual pin (possible
    // when two representative pins share a coordinate but their member
    // counterparts do not), stitch it in with a short L-shape.
    for (size_t i = 0; i < member.pins.size(); ++i) {
        const int r = pinMap[i];
        const geom::Point mapped = mapPt(repPins[static_cast<size_t>(r)]);
        const geom::Point actual = member.pins[i];
        if (mapped != actual) {
            out.addLShape(actual, mapped, {mapped.x, actual.y});
        }
    }
    return out;
}

std::vector<steiner::Topology> equivalentTopologies(
    const steiner::Topology& backbone, const SignalGroup& group,
    const RoutingObject& object) {
    std::vector<steiner::Topology> out;
    out.reserve(object.bitIndices.size());
    for (int k = 0; k < object.width(); ++k) {
        out.push_back(equivalentTopology(backbone, group, object, k));
    }
    return out;
}

}  // namespace streak
