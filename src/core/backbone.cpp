#include "core/backbone.hpp"

namespace streak {

std::vector<steiner::Topology> generateBackbones(const SignalGroup& group,
                                                 const RoutingObject& object,
                                                 const BackboneOptions& opts) {
    const int repBit =
        object.bitIndices[static_cast<size_t>(object.representativeBit)];
    const Bit& rep = group.bits[static_cast<size_t>(repBit)];
    steiner::EnumerateOptions eopts;
    eopts.maxCandidates = opts.maxBackbones;
    eopts.bendPenalty = opts.bendPenalty;
    eopts.useSteinerPoints = opts.useSteinerPoints;
    return steiner::enumerateTopologies(rep.pins, rep.driver, eopts);
}

}  // namespace streak
