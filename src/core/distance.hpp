// Source-to-sink distance deviation analysis (Sec. II-C / IV-C).
//
// Corresponding sinks of the bits in one group form a *family*: within an
// object the correspondence is the identification pin map; across objects
// the representatives' pins are matched by driver-weighted similarity
// vectors. A group violates ("Vio(dst)") when some family's max-min
// distance spread exceeds the threshold (a fraction — the paper uses 50% —
// of the group's maximum initial source-to-sink distance).
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "core/solution.hpp"
#include "parallel/thread_pool.hpp"

namespace streak {

/// A sink whose distance is short enough to break its family's bound; the
/// refinement stage (Alg. 4) lengthens exactly these connections.
struct PinDeviation {
    int routedBitIndex = 0;  // into RoutedDesign::bits
    int pinIndex = 0;        // into the bit's pins
    int distance = 0;        // current source-to-sink distance
    int familyMax = 0;       // longest distance in the family
};

struct GroupDistanceReport {
    int groupIndex = 0;
    int maxInitialDistance = 0;
    int threshold = 0;  // absolute units
    int violatingFamilies = 0;
    int maxDeviation = 0;
    std::vector<PinDeviation> violations;

    [[nodiscard]] bool violating() const { return violatingFamilies > 0; }
};

/// Analyze every group of a routed design. When `fixedThresholds` is
/// given (group-indexed, -1 = compute), those thresholds are reused —
/// Table II compares post-refinement violations against the *initial*
/// thresholds. Groups analyze in parallel (`prob.opts.threads`) with
/// reports collected by group index, so the output is independent of the
/// thread count; `parallelStats` accumulates the stage's region stats.
[[nodiscard]] std::vector<GroupDistanceReport> analyzeDistances(
    const RoutingProblem& prob, const RoutedDesign& routed,
    double thresholdFraction,
    const std::vector<int>* fixedThresholds = nullptr,
    parallel::RegionStats* parallelStats = nullptr);

/// Number of groups with at least one violating family ("Vio(dst)").
[[nodiscard]] int countViolatingGroups(
    const std::vector<GroupDistanceReport>& reports);

/// One sink of one routed bit tagged with its correspondence family.
struct FamilyMember {
    int routedBitIndex = 0;  // into RoutedDesign::bits
    int pinIndex = 0;        // into the bit's pins (never the driver)
    int familyId = 0;        // canonical pin id within the group
};

/// The sink-correspondence families of every group (group-indexed): pin
/// maps within objects, driver-weighted SV matching across objects. Both
/// the distance analysis and the timing-skew analysis consume this.
[[nodiscard]] std::vector<std::vector<FamilyMember>> buildSinkFamilies(
    const RoutingProblem& prob, const RoutedDesign& routed);

}  // namespace streak
