// Solver output: one selected candidate per routing object (or none), and
// the materialized per-bit routed design the post-optimization stages and
// metrics operate on.
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "grid/routing_grid.hpp"
#include "steiner/topology.hpp"

namespace streak {

struct RoutingSolution {
    /// chosen[i] = selected candidate index for object i, or -1 (s_i = 1).
    std::vector<int> chosen;
    /// Value of objective (3a) including M terms and pair terms.
    double objective = 0.0;
    bool hitLimit = false;
};

/// Objective (3a) of a solution: candidate costs + M per unrouted object +
/// pairwise costs between chosen group mates.
[[nodiscard]] double solutionObjective(const RoutingProblem& prob,
                                       const std::vector<int>& chosen);

/// Un-route objects greedily until no edge capacity is exceeded (used to
/// repair remapped warm starts before handing them to a solver). Returns
/// the number of objects unrouted.
int makeCapacityFeasible(const RoutingProblem& prob, RoutingSolution* sol);

/// One routed bit in the final design.
struct RoutedBit {
    int groupIndex = 0;
    int bitIndex = 0;     // into group.bits
    int objectIndex = 0;  // owning routing object
    int memberIndex = 0;  // position of bitIndex within the object
    /// Regularity cluster: bits sharing one topology shape. Solver-routed
    /// bits use their object index; post-clustering assigns fresh keys.
    int clusterKey = 0;
    steiner::Topology topo;
    int hLayer = 0;
    int vLayer = 1;
};

/// The concrete routed design: every routed bit with its topology and
/// trunk layers, the aggregate track usage, and the leftovers.
struct RoutedDesign {
    explicit RoutedDesign(const grid::RoutingGrid& grid) : usage(grid) {}

    grid::EdgeUsage usage;
    std::vector<RoutedBit> bits;
    /// (objectIndex, memberIndex) pairs of bits that are not routed.
    std::vector<std::pair<int, int>> unroutedMembers;

    [[nodiscard]] int routedBits() const { return static_cast<int>(bits.size()); }
};

/// Expand a per-object solution into per-bit routes with track usage.
[[nodiscard]] RoutedDesign materialize(const RoutingProblem& prob,
                                       const RoutingSolution& sol);

}  // namespace streak
