#include "grid/routing_grid.hpp"

#include <stdexcept>

namespace streak::grid {

RoutingGrid::RoutingGrid(int width, int height, int numLayers,
                         int defaultCapacity)
    : width_(width), height_(height), numLayers_(numLayers),
      defaultCapacity_(defaultCapacity) {
    if (width < 2 || height < 2) {
        throw std::invalid_argument("RoutingGrid: need at least 2x2 G-Cells");
    }
    if (numLayers < 2) {
        throw std::invalid_argument("RoutingGrid: need at least 2 layers");
    }
    layerDir_.reserve(static_cast<size_t>(numLayers));
    layerOffset_.reserve(static_cast<size_t>(numLayers));
    int offset = 0;
    for (int l = 0; l < numLayers; ++l) {
        const Dir d = (l % 2 == 0) ? Dir::Horizontal : Dir::Vertical;
        layerDir_.push_back(d);
        layerOffset_.push_back(offset);
        offset += d == Dir::Horizontal ? (width - 1) * height : width * (height - 1);
    }
    capacity_.assign(static_cast<size_t>(offset), defaultCapacity);
}

std::vector<int> RoutingGrid::layersOf(Dir d) const {
    std::vector<int> out;
    for (int l = 0; l < numLayers_; ++l) {
        if (layerDir_[l] == d) out.push_back(l);
    }
    return out;
}

void RoutingGrid::setViaCapacity(int capacity) {
    viaCapacity_.assign(static_cast<size_t>(numCells()), capacity);
}

void RoutingGrid::setViaCapacityAt(int cell, int capacity) {
    if (viaCapacity_.empty()) {
        throw std::logic_error(
            "setViaCapacityAt: enable the via model with setViaCapacity "
            "first");
    }
    viaCapacity_[static_cast<size_t>(cell)] = capacity;
}

void RoutingGrid::addViaBlockage(const geom::Rect& area,
                                 int remainingCapacity) {
    if (viaCapacity_.empty()) {
        throw std::logic_error(
            "addViaBlockage: enable the via model with setViaCapacity first");
    }
    for (int y = area.lo.y; y <= area.hi.y; ++y) {
        for (int x = area.lo.x; x <= area.hi.x; ++x) {
            if (x < 0 || x >= width_ || y < 0 || y >= height_) continue;
            int& cap = viaCapacity_[static_cast<size_t>(cellIndex(x, y))];
            if (cap > remainingCapacity) cap = remainingCapacity;
        }
    }
}

void RoutingGrid::addBlockage(const geom::Rect& area, int layer,
                              int remainingCapacity) {
    for (int y = area.lo.y; y <= area.hi.y; ++y) {
        for (int x = area.lo.x; x <= area.hi.x; ++x) {
            if (validEdge(layer, x, y)) {
                const int e = edgeId(layer, x, y);
                if (capacity_[e] > remainingCapacity) {
                    capacity_[e] = remainingCapacity;
                }
            }
        }
    }
}

void RoutingGrid::removeBlockage(const geom::Rect& area, int layer) {
    resizeCapacity(area, layer, defaultCapacity_);
}

void RoutingGrid::resizeCapacity(const geom::Rect& area, int layer,
                                 int capacity) {
    for (int y = area.lo.y; y <= area.hi.y; ++y) {
        for (int x = area.lo.x; x <= area.hi.x; ++x) {
            if (validEdge(layer, x, y)) {
                capacity_[edgeId(layer, x, y)] = capacity;
            }
        }
    }
}

std::vector<int> RoutingGrid::edgesOnSegment(const geom::Segment& seg,
                                             int layer) const {
    std::vector<int> out;
    appendEdgesOnSegment(seg, layer, &out);
    return out;
}

void RoutingGrid::appendEdgesOnSegment(const geom::Segment& seg, int layer,
                                       std::vector<int>* out) const {
    if (seg.degenerate()) return;
    const geom::Segment c = seg.canonical();
    if (c.horizontal()) {
        STREAK_ASSERT(layerDir_[layer] == Dir::Horizontal,
                      "horizontal segment routed on vertical layer {}", layer);
        for (int x = c.a.x; x < c.b.x; ++x) {
            out->push_back(edgeId(layer, x, c.a.y));
        }
    } else {
        STREAK_ASSERT(layerDir_[layer] == Dir::Vertical,
                      "vertical segment routed on horizontal layer {}", layer);
        for (int y = c.a.y; y < c.b.y; ++y) {
            out->push_back(edgeId(layer, c.a.x, y));
        }
    }
}

RoutingGrid::EdgeCoord RoutingGrid::edgeCoord(int edge) const {
    int layer = numLayers_ - 1;
    while (layer > 0 && layerOffset_[layer] > edge) --layer;
    const int local = edge - layerOffset_[layer];
    const int stride =
        layerDir_[layer] == Dir::Horizontal ? width_ - 1 : width_;
    return {layer, local % stride, local / stride};
}

long EdgeUsage::totalOverflow() const {
    long total = 0;
    for (size_t e = 0; e < usage_.size(); ++e) {
        const int over = usage_[e] - grid_->capacity(static_cast<int>(e));
        if (over > 0) total += over;
    }
    return total;
}

long EdgeUsage::totalViaOverflow() const {
    if (!grid_->viaLimited()) return 0;
    long total = 0;
    for (size_t c = 0; c < viaUsage_.size(); ++c) {
        const int cap = grid_->viaCapacity(static_cast<int>(c));
        if (cap >= 0 && viaUsage_[c] > cap) total += viaUsage_[c] - cap;
    }
    return total;
}

int EdgeUsage::overflowedEdges() const {
    int count = 0;
    for (size_t e = 0; e < usage_.size(); ++e) {
        if (usage_[e] > grid_->capacity(static_cast<int>(e))) ++count;
    }
    return count;
}

}  // namespace streak::grid
