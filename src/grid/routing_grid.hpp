// The 3-D global-routing grid model (Sec. II-B of the paper).
//
// Each metal layer is a W x H array of G-Cells. Layers are uni-directional:
// a Horizontal layer only provides edges (x,y)-(x+1,y), a Vertical layer
// only (x,y)-(x,y+1). Every edge has a track capacity; blockages lower it.
#pragma once

#include <cstddef>
#include <vector>

#include "check/assert.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/segment.hpp"

namespace streak::grid {

enum class Dir { Horizontal, Vertical };

[[nodiscard]] constexpr Dir opposite(Dir d) {
    return d == Dir::Horizontal ? Dir::Vertical : Dir::Horizontal;
}

/// Immutable-shape 3-D routing grid: dimensions, layer directions and
/// per-edge capacities. Routing *usage* lives in EdgeUsage so that many
/// tentative solutions can share one grid.
class RoutingGrid {
public:
    /// Build a grid of `width` x `height` G-Cells and `numLayers` layers,
    /// every edge starting at `defaultCapacity` tracks. Layer 0 is
    /// horizontal and directions alternate, matching common uni-directional
    /// metal stacks.
    RoutingGrid(int width, int height, int numLayers, int defaultCapacity);

    [[nodiscard]] int width() const { return width_; }
    [[nodiscard]] int height() const { return height_; }
    [[nodiscard]] int numLayers() const { return numLayers_; }
    [[nodiscard]] Dir layerDir(int layer) const { return layerDir_[layer]; }

    /// Layers of the given direction, bottom-up.
    [[nodiscard]] std::vector<int> layersOf(Dir d) const;

    /// Total number of 3-D edges across all layers.
    [[nodiscard]] int numEdges() const { return static_cast<int>(capacity_.size()); }

    /// Edge id for the edge leaving G-Cell (x, y) in the layer's direction:
    /// (x,y)-(x+1,y) on horizontal layers, (x,y)-(x,y+1) on vertical ones.
    [[nodiscard]] int edgeId(int layer, int x, int y) const {
        STREAK_ASSERT(validEdge(layer, x, y),
                      "edge (layer {}, {},{}) outside the {}x{}x{} grid",
                      layer, x, y, width_, height_, numLayers_);
        const int stride =
            layerDir_[layer] == Dir::Horizontal ? width_ - 1 : width_;
        return layerOffset_[layer] + y * stride + x;
    }

    [[nodiscard]] bool validEdge(int layer, int x, int y) const {
        if (layer < 0 || layer >= numLayers_) return false;
        if (layerDir_[layer] == Dir::Horizontal) {
            return x >= 0 && x < width_ - 1 && y >= 0 && y < height_;
        }
        return x >= 0 && x < width_ && y >= 0 && y < height_ - 1;
    }

    [[nodiscard]] bool contains(geom::Point p) const {
        return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
    }

    [[nodiscard]] int capacity(int edge) const { return capacity_[edge]; }
    void setCapacity(int edge, int cap) { capacity_[edge] = cap; }

    /// Track capacity every edge starts with at construction time (the
    /// value blockage removal restores).
    [[nodiscard]] int defaultCapacity() const { return defaultCapacity_; }

    /// Reduce the capacity of every edge on `layer` whose *source* G-Cell
    /// lies inside `area` to `remainingCapacity` (a routing blockage).
    void addBlockage(const geom::Rect& area, int layer, int remainingCapacity);

    /// Restore every edge on `layer` whose source G-Cell lies inside
    /// `area` to the construction default capacity (the ECO undo of
    /// addBlockage; overlapping blockages inside `area` are lifted too).
    void removeBlockage(const geom::Rect& area, int layer);

    /// Set every edge on `layer` whose source G-Cell lies inside `area`
    /// to exactly `capacity` (ECO capacity resize; may raise or lower).
    void resizeCapacity(const geom::Rect& area, int layer, int capacity);

    // --- pin accessibility (via capacity) model -------------------------
    // Every G-Cell column offers a bounded number of via slots for pin
    // access stacks and layer changes. Unlimited (-1) by default; enable
    // with setViaCapacity(). This implements the paper's future-work item
    // "take pin accessibility into consideration".

    /// Number of G-Cells (via columns).
    [[nodiscard]] int numCells() const { return width_ * height_; }

    [[nodiscard]] int cellIndex(int x, int y) const { return y * width_ + x; }
    [[nodiscard]] int cellIndex(geom::Point p) const {
        return cellIndex(p.x, p.y);
    }

    /// Via slots available at a cell; -1 means unlimited.
    [[nodiscard]] int viaCapacity(int cell) const {
        return viaCapacity_.empty() ? -1 : viaCapacity_[static_cast<size_t>(cell)];
    }
    [[nodiscard]] bool viaLimited() const { return !viaCapacity_.empty(); }

    /// Enable the via model with a uniform per-cell capacity.
    void setViaCapacity(int capacity);
    /// Dent the via capacity inside `area` (e.g. over a macro).
    void addViaBlockage(const geom::Rect& area, int remainingCapacity);
    /// Set one cell's via capacity exactly (checkpoint restore). The via
    /// model must already be enabled with setViaCapacity().
    void setViaCapacityAt(int cell, int capacity);

    /// Edge ids covered by a rectilinear segment routed on `layer`.
    /// The segment orientation must match the layer direction (degenerate
    /// segments yield no edges).
    [[nodiscard]] std::vector<int> edgesOnSegment(const geom::Segment& seg,
                                                  int layer) const;

    /// Append the edge ids covered by `seg` on `layer` to `out`.
    void appendEdgesOnSegment(const geom::Segment& seg, int layer,
                              std::vector<int>* out) const;

    /// Recover the (layer, x, y) triple for an edge id. Mostly for
    /// reporting / debugging; O(numLayers).
    struct EdgeCoord {
        int layer;
        int x;
        int y;
    };
    [[nodiscard]] EdgeCoord edgeCoord(int edge) const;

private:
    int width_;
    int height_;
    int numLayers_;
    int defaultCapacity_ = 0;
    std::vector<Dir> layerDir_;
    std::vector<int> layerOffset_;  // first edge id of each layer
    std::vector<int> capacity_;
    std::vector<int> viaCapacity_;  // empty = via model disabled
};

/// Mutable per-edge routing usage on top of a RoutingGrid.
class EdgeUsage {
public:
    explicit EdgeUsage(const RoutingGrid& grid)
        : grid_(&grid), usage_(static_cast<size_t>(grid.numEdges()), 0),
          viaUsage_(static_cast<size_t>(grid.numCells()), 0) {}

    [[nodiscard]] const RoutingGrid& grid() const { return *grid_; }
    [[nodiscard]] int usage(int edge) const { return usage_[edge]; }
    [[nodiscard]] int remaining(int edge) const {
        return grid_->capacity(edge) - usage_[edge];
    }

    void add(int edge, int amount) { usage_[edge] += amount; }
    void remove(int edge, int amount) {
        usage_[edge] -= amount;
        STREAK_ASSERT(usage_[edge] >= 0,
                      "edge {} usage went negative ({}) after removing {}",
                      edge, usage_[edge], amount);
    }

    // Via-slot accounting (active when the grid's via model is enabled).
    [[nodiscard]] int viaUsage(int cell) const {
        return viaUsage_[static_cast<size_t>(cell)];
    }
    /// Remaining via slots; unlimited cells report a large number.
    [[nodiscard]] int viaRemaining(int cell) const {
        const int cap = grid_->viaCapacity(cell);
        if (cap < 0) return 1 << 28;
        return cap - viaUsage_[static_cast<size_t>(cell)];
    }
    void addVias(int cell, int amount) {
        viaUsage_[static_cast<size_t>(cell)] += amount;
    }
    void removeVias(int cell, int amount) {
        viaUsage_[static_cast<size_t>(cell)] -= amount;
        STREAK_ASSERT(viaUsage_[static_cast<size_t>(cell)] >= 0,
                      "cell {} via usage went negative ({}) after removing {}",
                      cell, viaUsage_[static_cast<size_t>(cell)], amount);
    }

    /// Total overflow: sum over edges of max(usage - capacity, 0).
    [[nodiscard]] long totalOverflow() const;

    /// Number of edges whose usage exceeds capacity.
    [[nodiscard]] int overflowedEdges() const;

    /// Total via overflow over cells (0 when the via model is disabled).
    [[nodiscard]] long totalViaOverflow() const;

    void clear() {
        usage_.assign(usage_.size(), 0);
        viaUsage_.assign(viaUsage_.size(), 0);
    }

private:
    const RoutingGrid* grid_;
    std::vector<int> usage_;
    std::vector<int> viaUsage_;
};

}  // namespace streak::grid
