#include "track/tracks.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace streak::track {

namespace {

/// A panel is one row of a horizontal layer or one column of a vertical
/// layer: the set of parallel tracks a trunk can sit on.
struct PanelKey {
    int layer;
    int line;  // y for horizontal layers, x for vertical ones

    friend auto operator<=>(const PanelKey&, const PanelKey&) = default;
};

struct Item {
    int routedBit;
    int clusterKey;
    int memberIndex;
    geom::Segment seg;  // canonical
    int lo, hi;         // edge range [lo, hi) along the panel
};

/// Edge range covered by a canonical segment along its panel.
std::pair<int, int> edgeRange(const geom::Segment& seg) {
    if (seg.horizontal()) return {seg.a.x, seg.b.x};
    return {seg.a.y, seg.b.y};
}

}  // namespace

TrackAssignment assignTracks(const RoutedDesign& routed) {
    const grid::RoutingGrid& grid = routed.usage.grid();
    TrackAssignment out;

    // Bucket every straight trunk into its panel.
    std::map<PanelKey, std::vector<Item>> panels;
    for (size_t r = 0; r < routed.bits.size(); ++r) {
        const RoutedBit& bit = routed.bits[r];
        const steiner::TopoStructure st = bit.topo.structure();
        for (const auto& [u, v] : st.rcs) {
            const geom::Segment seg =
                geom::Segment{st.nodes[static_cast<size_t>(u)].pt,
                              st.nodes[static_cast<size_t>(v)].pt}
                    .canonical();
            if (seg.degenerate()) continue;
            Item item;
            item.routedBit = static_cast<int>(r);
            item.clusterKey = bit.clusterKey;
            item.memberIndex = bit.memberIndex;
            item.seg = seg;
            std::tie(item.lo, item.hi) = edgeRange(seg);
            const PanelKey key = seg.horizontal()
                                     ? PanelKey{bit.hLayer, seg.a.y}
                                     : PanelKey{bit.vLayer, seg.a.x};
            panels[key].push_back(item);
        }
    }

    for (auto& [key, items] : panels) {
        // Cluster mates in member order first, so they can take
        // neighbouring tracks; position breaks ties deterministically.
        std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
            return std::tie(a.clusterKey, a.memberIndex, a.lo, a.routedBit) <
                   std::tie(b.clusterKey, b.memberIndex, b.lo, b.routedBit);
        });

        const bool horizontal = grid.layerDir(key.layer) == grid::Dir::Horizontal;
        const auto edgeCapacity = [&](int along) {
            return horizontal ? grid.capacity(grid.edgeId(key.layer, along, key.line))
                              : grid.capacity(grid.edgeId(key.layer, key.line, along));
        };
        int maxTracks = 0;
        for (const Item& it : items) {
            for (int e = it.lo; e < it.hi; ++e) {
                maxTracks = std::max(maxTracks, edgeCapacity(e));
            }
        }

        // occupancy[t] = assigned edge ranges on track t.
        std::vector<std::vector<std::pair<int, int>>> occupancy(
            static_cast<size_t>(maxTracks));
        const auto fits = [&](int t, const Item& it) {
            if (t < 0 || t >= maxTracks) return false;
            for (int e = it.lo; e < it.hi; ++e) {
                if (t >= edgeCapacity(e)) return false;
            }
            for (const auto& [lo, hi] : occupancy[static_cast<size_t>(t)]) {
                if (lo < it.hi && it.lo < hi) return false;
            }
            return true;
        };

        // Last track taken by the previous member of each cluster.
        std::map<int, int> lastTrackOfCluster;
        for (const Item& it : items) {
            int chosen = -1;
            const auto prev = lastTrackOfCluster.find(it.clusterKey);
            if (prev != lastTrackOfCluster.end()) {
                // Prefer the neighbouring tracks of the previous member.
                for (const int t : {prev->second + 1, prev->second - 1,
                                    prev->second}) {
                    if (fits(t, it)) {
                        chosen = t;
                        break;
                    }
                }
            }
            if (chosen < 0) {
                for (int t = 0; t < maxTracks; ++t) {
                    if (fits(t, it)) {
                        chosen = t;
                        break;
                    }
                }
            }
            if (chosen >= 0) {
                occupancy[static_cast<size_t>(chosen)].emplace_back(it.lo,
                                                                    it.hi);
                lastTrackOfCluster[it.clusterKey] = chosen;
            } else {
                ++out.unplaced;
            }
            out.wires.push_back(
                {it.routedBit, it.seg, key.layer, chosen});
        }
    }
    return out;
}

double trackOrderliness(const RoutedDesign& routed,
                        const TrackAssignment& assignment) {
    // Per panel, per cluster: member -> track (longest trunk wins when a
    // bit has several trunks in one panel).
    struct Slot {
        int track = -1;
        int length = -1;
    };
    std::map<std::tuple<int, int, int, int>, Slot> slots;  // (layer,line,cluster,member)
    for (const AssignedWire& w : assignment.wires) {
        if (w.track < 0) continue;
        const RoutedBit& bit =
            routed.bits[static_cast<size_t>(w.routedBitIndex)];
        const int line = w.segment.horizontal() ? w.segment.a.y : w.segment.a.x;
        Slot& s = slots[{w.layer, line, bit.clusterKey, bit.memberIndex}];
        if (w.segment.length() > s.length) {
            s.length = w.segment.length();
            s.track = w.track;
        }
    }

    // Walk consecutive members within (layer, line, cluster).
    int pairs = 0;
    int adjacent = 0;
    auto it = slots.begin();
    while (it != slots.end()) {
        const auto& [layer, line, cluster, member] = it->first;
        auto next = std::next(it);
        if (next != slots.end()) {
            const auto& [nl, nline, ncluster, nmember] = next->first;
            if (nl == layer && nline == line && ncluster == cluster) {
                ++pairs;
                if (std::abs(next->second.track - it->second.track) == 1) {
                    ++adjacent;
                }
            }
        }
        it = next;
    }
    return pairs == 0 ? 1.0
                      : static_cast<double>(adjacent) / static_cast<double>(pairs);
}

}  // namespace streak::track
