// Track assignment: from G-Cell routes to concrete track indices.
//
// The paper's regularity objective exists so that the bits of a group can
// ultimately sit on *adjacent, ordered tracks* (Fig. 1). This substrate
// performs that next step of the flow: every straight trunk of every
// routed bit is assigned a track index within its layer panel such that
// no two wires share a track over the same edge — preferring consecutive
// tracks, in bit order, for the bits of one regularity cluster. The
// orderliness metric quantifies how much of that preference the router's
// topology choices made achievable.
#pragma once

#include <vector>

#include "core/solution.hpp"
#include "geom/segment.hpp"

namespace streak::track {

struct AssignedWire {
    int routedBitIndex = 0;  // into RoutedDesign::bits
    geom::Segment segment;   // straight trunk (canonical form)
    int layer = 0;
    int track = -1;  // -1 = could not be placed within capacity
};

struct TrackAssignment {
    std::vector<AssignedWire> wires;
    /// Trunks that did not fit any single track over their full extent.
    /// Edge capacity bounds wires *per edge*; a full-length trunk needs
    /// one free track across every covered edge, so a small residue can
    /// remain that a detailed router would resolve with doglegs.
    int unplaced = 0;
};

/// Assign tracks to every straight trunk of the routed design. Bits are
/// processed panel by panel in (clusterKey, memberIndex) order so cluster
/// mates compete for neighbouring tracks first.
[[nodiscard]] TrackAssignment assignTracks(const RoutedDesign& routed);

/// Orderliness in [0, 1]: over all pairs of consecutive cluster members
/// whose trunks share a panel, the fraction assigned to adjacent tracks
/// (|track difference| == 1). Returns 1 when no such pair exists.
[[nodiscard]] double trackOrderliness(const RoutedDesign& routed,
                                      const TrackAssignment& assignment);

}  // namespace streak::track
