#include "route/maze.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "check/assert.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak::route {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Local tallies for one route() call, flushed once on exit (any path)
/// so the search loop never touches the registry.
struct SearchTally {
    long long pops = 0;
    long long pushes = 0;
    long long windowGrowths = 0;
    long long windowFallbacks = 0;

    ~SearchTally() {
        if (!obs::detailEnabled()) return;
        obs::Session& sess = obs::session();
        sess.counter("route/maze.pops").add(pops);
        sess.counter("route/maze.pushes").add(pushes);
        sess.counter("route/maze.window_growths").add(windowGrowths);
        sess.counter("route/maze.window_fallbacks").add(windowFallbacks);
    }
};

/// Inclusive G-Cell rectangle the current search may expand into.
struct Window {
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    [[nodiscard]] bool contains(int x, int y) const {
        return x >= x0 && x <= x1 && y >= y0 && y <= y1;
    }
};

}  // namespace

void SearchState::ensure(int numNodes) {
    if (static_cast<int>(stamp_.size()) >= numNodes) return;
    stamp_.assign(static_cast<size_t>(numNodes), 0);
    treeStamp_.assign(static_cast<size_t>(numNodes), 0);
    dist_.resize(static_cast<size_t>(numNodes));
    parent_.resize(static_cast<size_t>(numNodes));
    parentEdge_.resize(static_cast<size_t>(numNodes));
    searchEpoch_ = 0;
    netEpoch_ = 0;
}

std::optional<RoutedNet> MazeRouter::route(const std::vector<geom::Point>& pins,
                                           int driver) {
    return route(pins, driver, &scratch_);
}

std::optional<RoutedNet> MazeRouter::route(const std::vector<geom::Point>& pins,
                                           int driver, SearchState* state) {
    STREAK_FAULT_POINT("maze/search");
    // Tick point: strided over heap pops, the search's unit of work.
    robust::TickGate gate(opts_.control, "maze/pop");
    SearchTally tally;
    const grid::RoutingGrid& g = usage_->grid();
    STREAK_REQUIRE(state != nullptr, "maze route called without a SearchState");
    STREAK_REQUIRE(!pins.empty(), "maze route called with no pins");
    STREAK_REQUIRE(driver >= 0 && driver < static_cast<int>(pins.size()),
                   "driver index {} outside the {} pins", driver, pins.size());
    for (const geom::Point p : pins) {
        STREAK_REQUIRE(g.contains(p),
                       "pin ({},{}) outside the {}x{} grid", p.x, p.y,
                       g.width(), g.height());
    }
    const int W = g.width();
    const int H = g.height();
    const int L = g.numLayers();
    const int numNodes = W * H * L;
    const auto nodeId = [&](int x, int y, int l) { return (l * H + y) * W + x; };
    const auto nodeX = [&](int n) { return n % W; };
    const auto nodeY = [&](int n) { return (n / W) % H; };
    const auto nodeL = [&](int n) { return n / (W * H); };

    state->ensure(numNodes);
    if (state->netEpoch_ == std::numeric_limits<int>::max()) {
        std::fill(state->treeStamp_.begin(), state->treeStamp_.end(), 0);
        state->netEpoch_ = 0;
    }
    const int netEpoch = ++state->netEpoch_;
    const auto inTree = [&](int n) {
        return state->treeStamp_[static_cast<size_t>(n)] == netEpoch;
    };
    std::vector<int>& treeNodes = state->treeNodes_;
    treeNodes.clear();
    const auto addTree = [&](int n) {
        if (!inTree(n)) {
            state->treeStamp_[static_cast<size_t>(n)] = netEpoch;
            treeNodes.push_back(n);
        }
    };

    const auto edgeCost = [&](int edge) -> double {
        if (usage_->remaining(edge) < 1) {
            if (!opts_.allowOverflow || g.capacity(edge) == 0) return kInf;
            return opts_.overflowCost;
        }
        const double cap = std::max(1, g.capacity(edge));
        const double ratio = static_cast<double>(usage_->usage(edge)) / cap;
        return 1.0 + opts_.congestionPenalty * ratio * ratio;
    };

    RoutedNet net;
    for (int l = 0; l < L; ++l) {
        addTree(nodeId(pins[static_cast<size_t>(driver)].x,
                       pins[static_cast<size_t>(driver)].y, l));
    }

    // Targets ordered nearest-to-driver first (greedy sequential Steiner).
    std::vector<int> order;
    for (int i = 0; i < static_cast<int>(pins.size()); ++i) {
        if (i != driver) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int da = manhattan(pins[static_cast<size_t>(a)],
                                 pins[static_cast<size_t>(driver)]);
        const int db = manhattan(pins[static_cast<size_t>(b)],
                                 pins[static_cast<size_t>(driver)]);
        if (da != db) return da < db;
        return a < b;
    });

    // Admissible per-step lower bounds for the heuristic. Wire edges cost
    // 1 + congestionPenalty * ratio^2 >= 1 (>= overflowCost on overflow
    // when allowed), vias cost exactly viaCost; the guards keep the bound
    // valid for pathological option values too.
    double wireMin = opts_.congestionPenalty < 0.0 ? 0.0 : 1.0;
    if (opts_.allowOverflow) {
        wireMin = std::min(wireMin, std::max(0.0, opts_.overflowCost));
    }
    const double viaMin = std::max(0.0, opts_.viaCost);

    // Edges committed so far for this net (rolled back on failure).
    std::vector<int>& committed = state->committed_;
    committed.clear();
    const auto rollback = [&] {
        for (const int e : committed) usage_->remove(e, 1);
    };

    const auto heapAfter = [](const SearchState::HeapEntry& a,
                              const SearchState::HeapEntry& b) {
        // Min-heap on (f, g, node): deterministic pop order independent
        // of insertion order, and equal-f ties resolve smaller-g first so
        // every canonical predecessor finalizes before the sink pops.
        return std::tie(a.f, a.g, a.node) > std::tie(b.f, b.g, b.node);
    };

    for (const int target : order) {
        const geom::Point tp = pins[static_cast<size_t>(target)];
        if (inTree(nodeId(tp.x, tp.y, 0))) continue;

        const auto heur = [&](int x, int y, int l) -> double {
            if (!opts_.useAstar) return 0.0;
            const int dx = std::abs(x - tp.x);
            const int dy = std::abs(y - tp.y);
            int vias = 0;
            if (dx > 0 && dy > 0) {
                vias = 1;  // must use both directions -> one layer change
            } else if (dx > 0) {
                vias = g.layerDir(l) == grid::Dir::Horizontal ? 0 : 1;
            } else if (dy > 0) {
                vias = g.layerDir(l) == grid::Dir::Vertical ? 0 : 1;
            }
            return wireMin * (dx + dy) + viaMin * vias;
        };

        // Search window: tree bbox ∪ sink, inflated by a margin that
        // doubles until the in-window result is provably grid-optimal.
        int bx0 = tp.x;
        int bx1 = tp.x;
        int by0 = tp.y;
        int by1 = tp.y;
        for (const int n : treeNodes) {
            bx0 = std::min(bx0, nodeX(n));
            bx1 = std::max(bx1, nodeX(n));
            by0 = std::min(by0, nodeY(n));
            by1 = std::max(by1, nodeY(n));
        }

        long margin =
            opts_.useWindow ? std::max(1L, static_cast<long>(opts_.windowMargin))
                            : 0;
        bool fullGrid = !opts_.useWindow;
        int reached = -1;
        for (;;) {
            Window win{0, 0, W - 1, H - 1};
            if (!fullGrid) {
                win.x0 = static_cast<int>(std::max(0L, bx0 - margin));
                win.y0 = static_cast<int>(std::max(0L, by0 - margin));
                win.x1 = static_cast<int>(
                    std::min(static_cast<long>(W - 1), bx1 + margin));
                win.y1 = static_cast<int>(
                    std::min(static_cast<long>(H - 1), by1 + margin));
                if (win.x0 == 0 && win.y0 == 0 && win.x1 == W - 1 &&
                    win.y1 == H - 1) {
                    fullGrid = true;
                }
            }

            if (state->searchEpoch_ == std::numeric_limits<int>::max()) {
                std::fill(state->stamp_.begin(), state->stamp_.end(), 0);
                state->searchEpoch_ = 0;
            }
            const int epoch = ++state->searchEpoch_;
            std::vector<SearchState::HeapEntry>& heap = state->heap_;
            heap.clear();
            // Best lower bound on any source-to-sink path the window cut
            // off; the in-window result is exact iff it beats this.
            double minPrunedF = kInf;

            // Seed only the tree nodes inside the window (always the full
            // tree on the full-grid pass); pruned seeds still count into
            // the bound so a too-small window can never flip an outcome.
            for (const int n : treeNodes) {
                const int x = nodeX(n);
                const int y = nodeY(n);
                if (!win.contains(x, y)) {
                    minPrunedF = std::min(minPrunedF, heur(x, y, nodeL(n)));
                    continue;
                }
                state->stamp_[static_cast<size_t>(n)] = epoch;
                state->dist_[static_cast<size_t>(n)] = 0.0;
                state->parent_[static_cast<size_t>(n)] = -1;
                state->parentEdge_[static_cast<size_t>(n)] = -1;
                heap.push_back({heur(x, y, nodeL(n)), 0.0, n});
                std::push_heap(heap.begin(), heap.end(), heapAfter);
                ++tally.pushes;
            }

            reached = -1;
            double reachedCost = kInf;
            while (!heap.empty()) {
                std::pop_heap(heap.begin(), heap.end(), heapAfter);
                const SearchState::HeapEntry top = heap.back();
                heap.pop_back();
                ++tally.pops;
                gate.tick();
                if (top.g > state->dist_[static_cast<size_t>(top.node)]) {
                    continue;  // stale duplicate
                }
                const int x = nodeX(top.node);
                const int y = nodeY(top.node);
                const int l = nodeL(top.node);
                if (x == tp.x && y == tp.y) {
                    reached = top.node;
                    reachedCost = top.g;
                    break;
                }
                const auto relax = [&](int nn, int nx, int ny, double cost,
                                       int viaEdge) {
                    const double nd = top.g + cost;
                    if (!win.contains(nx, ny)) {
                        // f = g + h of the node the window cut off: a
                        // lower bound on finishing through it.
                        minPrunedF =
                            std::min(minPrunedF, nd + heur(nx, ny, nodeL(nn)));
                        return;
                    }
                    const size_t sn = static_cast<size_t>(nn);
                    if (state->stamp_[sn] != epoch) {
                        state->stamp_[sn] = epoch;
                        state->dist_[sn] = kInf;
                        state->parent_[sn] = -1;
                        state->parentEdge_[sn] = -1;
                    }
                    if (nd < state->dist_[sn]) {
                        state->dist_[sn] = nd;
                        state->parent_[sn] = top.node;
                        state->parentEdge_[sn] = viaEdge;
                        heap.push_back({nd + heur(nx, ny, nodeL(nn)), nd, nn});
                        std::push_heap(heap.begin(), heap.end(), heapAfter);
                        ++tally.pushes;
                    } else if (nd == state->dist_[sn] && cost > 0.0 &&
                               top.node < state->parent_[sn]) {
                        // Canonical equal-cost parent: the smallest
                        // predecessor id wins, making the routed tree a
                        // pure function of the distance field — identical
                        // for A*/Dijkstra and windowed/full searches.
                        // (Skipped for zero-cost moves, where the rule
                        // could orient a tie both ways.)
                        state->parent_[sn] = top.node;
                        state->parentEdge_[sn] = viaEdge;
                    }
                };
                // Wire moves along the layer's direction.
                if (g.layerDir(l) == grid::Dir::Horizontal) {
                    if (x + 1 < W) {
                        const int e = g.edgeId(l, x, y);
                        const double c = edgeCost(e);
                        if (c < kInf) relax(nodeId(x + 1, y, l), x + 1, y, c, e);
                    }
                    if (x > 0) {
                        const int e = g.edgeId(l, x - 1, y);
                        const double c = edgeCost(e);
                        if (c < kInf) relax(nodeId(x - 1, y, l), x - 1, y, c, e);
                    }
                } else {
                    if (y + 1 < H) {
                        const int e = g.edgeId(l, x, y);
                        const double c = edgeCost(e);
                        if (c < kInf) relax(nodeId(x, y + 1, l), x, y + 1, c, e);
                    }
                    if (y > 0) {
                        const int e = g.edgeId(l, x, y - 1);
                        const double c = edgeCost(e);
                        if (c < kInf) relax(nodeId(x, y - 1, l), x, y - 1, c, e);
                    }
                }
                // Via moves (stay inside the column, hence the window).
                if (l + 1 < L) {
                    relax(nodeId(x, y, l + 1), x, y, opts_.viaCost, -1);
                }
                if (l > 0) relax(nodeId(x, y, l - 1), x, y, opts_.viaCost, -1);
            }

            if (fullGrid) break;  // exact by construction
            if (reached >= 0 && reachedCost < minPrunedF) break;  // proven
            if (reached < 0 && minPrunedF == kInf) {
                break;  // nothing was pruned: unreachable on the full grid
            }
            ++tally.windowGrowths;
            margin *= 2;
            if (margin > static_cast<long>(W) + static_cast<long>(H)) {
                fullGrid = true;
                ++tally.windowFallbacks;
            }
        }

        if (reached < 0) {
            rollback();
            return std::nullopt;
        }
        // Trace back, commit edges, extend the tree.
        int n = reached;
        while (state->parent_[static_cast<size_t>(n)] >= 0 && !inTree(n)) {
            const int e = state->parentEdge_[static_cast<size_t>(n)];
            if (e >= 0) {
                usage_->add(e, 1);
                committed.push_back(e);
                net.edges.push_back(e);
                ++net.wirelength2d;
            } else {
                ++net.viaCount;
            }
            addTree(n);
            n = state->parent_[static_cast<size_t>(n)];
        }
        // Make the whole target column part of the tree so later sinks can
        // tap the net at any layer of this pin.
        for (int l = 0; l < L; ++l) addTree(nodeId(tp.x, tp.y, l));
    }
    return net;
}

}  // namespace streak::route
