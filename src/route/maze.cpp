#include "route/maze.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "check/assert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace streak::route {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
    double dist;
    int node;
    bool operator<(const QueueEntry& o) const { return dist > o.dist; }
};

/// Local push/pop tallies for one route() call, flushed once on exit
/// (any path) so the Dijkstra loop never touches the registry.
struct SearchTally {
    long long pops = 0;
    long long pushes = 0;

    ~SearchTally() {
        if (!obs::detailEnabled()) return;
        obs::counter("route/maze.pops").add(pops);
        obs::counter("route/maze.pushes").add(pushes);
    }
};

}  // namespace

std::optional<RoutedNet> MazeRouter::route(const std::vector<geom::Point>& pins,
                                           int driver) {
    SearchTally tally;
    const grid::RoutingGrid& g = usage_->grid();
    STREAK_REQUIRE(!pins.empty(), "maze route called with no pins");
    STREAK_REQUIRE(driver >= 0 && driver < static_cast<int>(pins.size()),
                   "driver index {} outside the {} pins", driver, pins.size());
    for (const geom::Point p : pins) {
        STREAK_REQUIRE(g.contains(p),
                       "pin ({},{}) outside the {}x{} grid", p.x, p.y,
                       g.width(), g.height());
    }
    const int W = g.width();
    const int H = g.height();
    const int L = g.numLayers();
    const int numNodes = W * H * L;
    const auto nodeId = [&](int x, int y, int l) { return (l * H + y) * W + x; };
    const auto nodeX = [&](int n) { return n % W; };
    const auto nodeY = [&](int n) { return (n / W) % H; };
    const auto nodeL = [&](int n) { return n / (W * H); };

    const auto edgeCost = [&](int edge) -> double {
        if (usage_->remaining(edge) < 1) {
            if (!opts_.allowOverflow || g.capacity(edge) == 0) return kInf;
            return opts_.overflowCost;
        }
        const double cap = std::max(1, g.capacity(edge));
        const double ratio = static_cast<double>(usage_->usage(edge)) / cap;
        return 1.0 + opts_.congestionPenalty * ratio * ratio;
    };

    RoutedNet net;
    std::vector<bool> inTree(static_cast<size_t>(numNodes), false);
    std::vector<int> treeNodes;
    for (int l = 0; l < L; ++l) {
        const int n = nodeId(pins[static_cast<size_t>(driver)].x,
                             pins[static_cast<size_t>(driver)].y, l);
        inTree[static_cast<size_t>(n)] = true;
        treeNodes.push_back(n);
    }

    // Targets ordered nearest-to-driver first (greedy sequential Steiner).
    std::vector<int> order;
    for (int i = 0; i < static_cast<int>(pins.size()); ++i) {
        if (i != driver) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int da = manhattan(pins[static_cast<size_t>(a)],
                                 pins[static_cast<size_t>(driver)]);
        const int db = manhattan(pins[static_cast<size_t>(b)],
                                 pins[static_cast<size_t>(driver)]);
        if (da != db) return da < db;
        return a < b;
    });

    std::vector<double> dist(static_cast<size_t>(numNodes));
    std::vector<int> parent(static_cast<size_t>(numNodes));
    std::vector<int> parentEdge(static_cast<size_t>(numNodes));

    // Edges committed so far for this net (rolled back on failure).
    std::vector<int> committed;
    const auto rollback = [&] {
        for (const int e : committed) usage_->remove(e, 1);
    };

    for (const int target : order) {
        const geom::Point tp = pins[static_cast<size_t>(target)];
        if (inTree[static_cast<size_t>(nodeId(tp.x, tp.y, 0))]) continue;

        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(parent.begin(), parent.end(), -1);
        std::fill(parentEdge.begin(), parentEdge.end(), -1);
        std::priority_queue<QueueEntry> pq;
        for (const int n : treeNodes) {
            dist[static_cast<size_t>(n)] = 0.0;
            pq.push({0.0, n});
            ++tally.pushes;
        }

        int reached = -1;
        while (!pq.empty()) {
            const QueueEntry top = pq.top();
            pq.pop();
            ++tally.pops;
            if (top.dist > dist[static_cast<size_t>(top.node)]) continue;
            const int x = nodeX(top.node);
            const int y = nodeY(top.node);
            const int l = nodeL(top.node);
            if (x == tp.x && y == tp.y) {
                reached = top.node;
                break;
            }
            const auto relax = [&](int nn, double cost, int viaEdge) {
                const double nd = top.dist + cost;
                if (nd < dist[static_cast<size_t>(nn)]) {
                    dist[static_cast<size_t>(nn)] = nd;
                    parent[static_cast<size_t>(nn)] = top.node;
                    parentEdge[static_cast<size_t>(nn)] = viaEdge;
                    pq.push({nd, nn});
                    ++tally.pushes;
                }
            };
            // Wire moves along the layer's direction.
            if (g.layerDir(l) == grid::Dir::Horizontal) {
                if (x + 1 < W) {
                    const int e = g.edgeId(l, x, y);
                    const double c = edgeCost(e);
                    if (c < kInf) relax(nodeId(x + 1, y, l), c, e);
                }
                if (x > 0) {
                    const int e = g.edgeId(l, x - 1, y);
                    const double c = edgeCost(e);
                    if (c < kInf) relax(nodeId(x - 1, y, l), c, e);
                }
            } else {
                if (y + 1 < H) {
                    const int e = g.edgeId(l, x, y);
                    const double c = edgeCost(e);
                    if (c < kInf) relax(nodeId(x, y + 1, l), c, e);
                }
                if (y > 0) {
                    const int e = g.edgeId(l, x, y - 1);
                    const double c = edgeCost(e);
                    if (c < kInf) relax(nodeId(x, y - 1, l), c, e);
                }
            }
            // Via moves.
            if (l + 1 < L) relax(nodeId(x, y, l + 1), opts_.viaCost, -1);
            if (l > 0) relax(nodeId(x, y, l - 1), opts_.viaCost, -1);
        }
        if (reached < 0) {
            rollback();
            return std::nullopt;
        }
        // Trace back, commit edges, extend the tree.
        int n = reached;
        while (parent[static_cast<size_t>(n)] >= 0 &&
               !inTree[static_cast<size_t>(n)]) {
            const int e = parentEdge[static_cast<size_t>(n)];
            if (e >= 0) {
                usage_->add(e, 1);
                committed.push_back(e);
                net.edges.push_back(e);
                ++net.wirelength2d;
            } else {
                ++net.viaCount;
            }
            if (!inTree[static_cast<size_t>(n)]) {
                inTree[static_cast<size_t>(n)] = true;
                treeNodes.push_back(n);
            }
            n = parent[static_cast<size_t>(n)];
        }
        // Make the whole target column part of the tree so later sinks can
        // tap the net at any layer of this pin.
        for (int l = 0; l < L; ++l) {
            const int col = nodeId(tp.x, tp.y, l);
            if (!inTree[static_cast<size_t>(col)]) {
                inTree[static_cast<size_t>(col)] = true;
                treeNodes.push_back(col);
            }
        }
    }
    return net;
}

}  // namespace streak::route
