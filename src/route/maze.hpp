// Congestion-aware 3-D maze (Dijkstra) router.
//
// Substrate for the baseline "manual design" surrogate: multi-terminal
// nets are routed pin-by-pin onto the layered grid, with per-edge wire
// cost, via cost, and a soft congestion penalty that steers paths away
// from nearly-full edges. Full edges are hard-avoided.
#pragma once

#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "grid/routing_grid.hpp"

namespace streak::route {

struct MazeOptions {
    double viaCost = 2.0;
    /// Extra cost multiplier as an edge approaches capacity:
    /// cost *= 1 + congestionPenalty * (usage / capacity)^2.
    double congestionPenalty = 4.0;
    /// When true, full edges stay usable at `overflowCost` instead of
    /// being forbidden — models a hand design that overshoots capacity in
    /// hotspots (the Fig. 11(a)/12(a) behaviour) rather than detouring.
    bool allowOverflow = false;
    double overflowCost = 8.0;
};

/// One routed net: the 3-D edges used (grid edge ids), plus summary
/// numbers. Vias are implicit (layer changes at shared (x, y) columns).
struct RoutedNet {
    std::vector<int> edges;  // 3-D routing edge ids (committed to usage)
    int wirelength2d = 0;
    int viaCount = 0;
};

class MazeRouter {
public:
    MazeRouter(grid::EdgeUsage* usage, const MazeOptions& opts = {})
        : usage_(usage), opts_(opts) {}

    /// Route a multi-pin net: connects all pins into one tree, starting
    /// from `driver`. Pins are 2-D; any layer above a pin is reachable
    /// (via stacks are free in distance but charged viaCost each level).
    /// On success the path is committed to the usage map.
    [[nodiscard]] std::optional<RoutedNet> route(
        const std::vector<geom::Point>& pins, int driver);

private:
    grid::EdgeUsage* usage_;
    MazeOptions opts_;
};

}  // namespace streak::route
