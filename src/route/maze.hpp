// Congestion-aware 3-D maze router: A* over the layered grid.
//
// Substrate for the baseline "manual design" surrogate: multi-terminal
// nets are routed pin-by-pin onto the layered grid, with per-edge wire
// cost, via cost, and a soft congestion penalty that steers paths away
// from nearly-full edges. Full edges are hard-avoided.
//
// Two hot-path optimizations over the naive Dijkstra formulation, both
// exact (DESIGN.md "Performance" for the arguments):
//
//   A* heuristic       admissible+consistent lower bound (Manhattan wire
//                      distance plus the minimum via count forced by the
//                      layer directions), with deterministic
//                      (f, g, node) pop ordering and a canonical
//                      equal-cost parent rule, so the routed tree is a
//                      pure function of the cost field — byte-identical
//                      whether the heuristic is on or off
//   search window      search restricted to the bounding box of the
//                      partial tree plus the sink, inflated by a margin
//                      that doubles until the window-optimal path is
//                      *provably* grid-optimal (found cost strictly
//                      below the best f-value pruned at the window
//                      boundary) — never changes the outcome of a
//                      routable sink, and unreachable sinks still fail
//
// Per-search state (distance / parent labels, the heap) lives in an
// epoch-stamped SearchState scratch object that is reused across sinks
// and across route() calls instead of being reallocated and O(W*H*L)
// re-filled per sink. MazeRouter owns one by default; callers running
// one router per worker thread can pass their own.
#pragma once

#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "grid/routing_grid.hpp"
#include "robust/control.hpp"

namespace streak::route {

struct MazeOptions {
    double viaCost = 2.0;
    /// Extra cost multiplier as an edge approaches capacity:
    /// cost *= 1 + congestionPenalty * (usage / capacity)^2.
    double congestionPenalty = 4.0;
    /// When true, full edges stay usable at `overflowCost` instead of
    /// being forbidden — models a hand design that overshoots capacity in
    /// hotspots (the Fig. 11(a)/12(a) behaviour) rather than detouring.
    bool allowOverflow = false;
    double overflowCost = 8.0;

    /// Guide the search with the admissible distance heuristic. Off
    /// means h = 0, i.e. plain Dijkstra — same result, more heap pops
    /// (kept as the oracle for tests and before/after benches).
    bool useAstar = true;
    /// Restrict each sink search to a bounding-box window around the
    /// partial tree and the sink, growing it until provably optimal.
    /// Off searches the full grid directly (the oracle / "before" mode).
    bool useWindow = true;
    /// Initial window inflation margin in G-Cells; each retry doubles it.
    int windowMargin = 8;

    /// Deadline/cancellation ticket polled every ~1024 heap pops (idle
    /// by default; never influences pop order or the routed tree).
    robust::Ticket control;
};

/// One routed net: the 3-D edges used (grid edge ids), plus summary
/// numbers. Vias are implicit (layer changes at shared (x, y) columns).
struct RoutedNet {
    std::vector<int> edges;  // 3-D routing edge ids (committed to usage)
    int wirelength2d = 0;
    int viaCount = 0;
};

/// Epoch-stamped per-search scratch: node labels survive across searches
/// and are invalidated by bumping the epoch instead of O(numNodes)
/// std::fill per sink. One instance per concurrently-searching thread;
/// reusable across nets and grids (arrays grow lazily).
class SearchState {
public:
    /// Size the label arrays for `numNodes` grid nodes (no-op when
    /// already large enough; resets the epochs when the grid grew).
    void ensure(int numNodes);

private:
    friend class MazeRouter;

    struct HeapEntry {
        double f;  // g + heuristic (== g when A* is off)
        double g;  // cost from the tree
        int node;
    };

    // Per-node labels, valid only where stamp == searchEpoch.
    std::vector<int> stamp_;
    std::vector<double> dist_;
    std::vector<int> parent_;
    std::vector<int> parentEdge_;
    // Tree membership per route() call, valid where treeStamp == netEpoch.
    std::vector<int> treeStamp_;
    std::vector<int> treeNodes_;
    std::vector<int> committed_;  // edges committed for the current net
    std::vector<HeapEntry> heap_;
    int searchEpoch_ = 0;
    int netEpoch_ = 0;
};

class MazeRouter {
public:
    MazeRouter(grid::EdgeUsage* usage, const MazeOptions& opts = {})
        : usage_(usage), opts_(opts) {}

    /// Route a multi-pin net: connects all pins into one tree, starting
    /// from `driver`. Pins are 2-D; any layer above a pin is reachable
    /// (via stacks are free in distance but charged viaCost each level).
    /// On success the path is committed to the usage map.
    [[nodiscard]] std::optional<RoutedNet> route(
        const std::vector<geom::Point>& pins, int driver);

    /// Same, searching through caller-owned scratch (one SearchState per
    /// worker thread when routers share a thread pool).
    [[nodiscard]] std::optional<RoutedNet> route(
        const std::vector<geom::Point>& pins, int driver, SearchState* state);

private:
    grid::EdgeUsage* usage_;
    MazeOptions opts_;
    SearchState scratch_;  // default scratch for the single-thread case
};

}  // namespace streak::route
