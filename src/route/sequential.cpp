#include "route/sequential.hpp"

#include "check/assert.hpp"
#include "obs/trace.hpp"
#include "steiner/rsmt.hpp"

namespace streak::route {

namespace {

/// Try to place a Steiner topology directly onto a pair of layers (the
/// hand-routing style: straight trunks on neighbouring layers). Returns
/// true and commits usage on success.
bool patternRoute(const Design& design, grid::EdgeUsage* usage,
                  const steiner::Topology& topo, long* wirelength,
                  long* viaCount) {
    const grid::RoutingGrid& g = design.grid;
    for (const int h : g.layersOf(grid::Dir::Horizontal)) {
        for (const int v : g.layersOf(grid::Dir::Vertical)) {
            bool fits = true;
            for (const steiner::UnitEdge& e : topo.wire()) {  // analyze-ok: unordered-iteration (all-of check; order cannot escape)
                const int layer = e.horizontal ? h : v;
                if (!g.validEdge(layer, e.at.x, e.at.y) ||
                    usage->remaining(g.edgeId(layer, e.at.x, e.at.y)) < 1) {
                    fits = false;
                    break;
                }
            }
            if (!fits) continue;
            for (const steiner::UnitEdge& e : topo.wire()) {  // analyze-ok: unordered-iteration (commutative usage adds)
                const int layer = e.horizontal ? h : v;
                usage->add(g.edgeId(layer, e.at.x, e.at.y), 1);
            }
            *wirelength += topo.wirelength();
            *viaCount += topo.bendCount() +
                         static_cast<long>(topo.pins().size());
            return true;
        }
    }
    return false;
}

}  // namespace

SequentialResult routeSequential(const Design& design,
                                 const MazeOptions& opts, bool mazeOnly) {
    const obs::Stopwatch watch;
    SequentialResult result(design.grid);
    MazeRouter router(&result.usage, opts);
    // One epoch-stamped scratch for every net in the pass: label arrays
    // are allocated once and invalidated by epoch bump, not re-filled.
    // (Workers in a future parallel pass would each own one.)
    SearchState scratch;

    for (const SignalGroup& group : design.groups) {
        for (const Bit& bit : group.bits) {
            ++result.totalBits;
            // Min-wire-length pattern route first (what a designer draws:
            // the best Steiner tree on free tracks), maze as fallback.
            if (!mazeOnly) {
                steiner::EnumerateOptions eopts;
                eopts.maxCandidates = 3;
                const auto candidates =
                    steiner::enumerateTopologies(bit.pins, bit.driver, eopts);
                bool placed = false;
                for (const steiner::Topology& t : candidates) {
                    if (patternRoute(design, &result.usage, t,
                                     &result.wirelength, &result.viaCount)) {
                        placed = true;
                        break;
                    }
                }
                if (placed) {
                    ++result.routedBits;
                    continue;
                }
            }
            const auto net = router.route(bit.pins, bit.driver, &scratch);
            if (net) {
                ++result.routedBits;
                result.wirelength += net->wirelength2d;
                result.viaCount += net->viaCount;
            } else {
                // Whole-design wire-length view: estimate with an RSMT,
                // matching how the Streak metrics count unrouted bits.
                steiner::EnumerateOptions eopts;
                eopts.maxCandidates = 1;
                const auto topos =
                    steiner::enumerateTopologies(bit.pins, bit.driver, eopts);
                if (!topos.empty()) {
                    result.wirelength += topos.front().wirelength();
                }
            }
        }
    }
    result.seconds = watch.seconds();
    STREAK_ASSERT(result.routedBits <= result.totalBits,
                  "routed {} of {} bits", result.routedBits, result.totalBits);
    // Unless overflow is an explicitly modelled hand-design behaviour,
    // the committed usage must respect every track capacity.
    STREAK_INVARIANT(opts.allowOverflow || result.usage.totalOverflow() == 0,
                     "sequential router overflowed {} tracks across {} edges",
                     result.usage.totalOverflow(),
                     result.usage.overflowedEdges());
    return result;
}

}  // namespace streak::route
