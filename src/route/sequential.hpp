// Sequential bit-by-bit group router: the "manual design" surrogate.
//
// This is the classic-bus-router baseline the paper's evaluation compares
// against (Table I "Manual Design"): every bit is routed individually for
// minimum wire-length with congestion-aware maze routing, with no
// interbit regularity objective. It doubles as the ICC-style finishing
// pass for groups Streak leaves unrouted.
#pragma once

#include "core/signal.hpp"
#include "grid/routing_grid.hpp"
#include "route/maze.hpp"

namespace streak::route {

struct SequentialResult {
    grid::EdgeUsage usage;
    int totalBits = 0;
    int routedBits = 0;
    long wirelength = 0;  // 2-D, routed bits only + RSMT estimate for rest
    long viaCount = 0;
    double seconds = 0.0;

    explicit SequentialResult(const grid::RoutingGrid& grid) : usage(grid) {}

    [[nodiscard]] double routability() const {
        return totalBits == 0 ? 1.0
                              : static_cast<double>(routedBits) / totalBits;
    }
};

/// Route every bit of the design sequentially (group order, bit order).
/// `mazeOnly` skips the pattern-route shortcut and sends every bit
/// through the maze search — the kernel-bench semantics, used by the
/// campaign runner so its maze counters stay comparable to the
/// committed BENCH_streak.json baselines.
[[nodiscard]] SequentialResult routeSequential(const Design& design,
                                               const MazeOptions& opts = {},
                                               bool mazeOnly = false);

}  // namespace streak::route
