#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace streak::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
        for (const auto& row : rows_) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
               << cells[c];
        }
        os << " |\n";
    };
    line(headers_);
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(width[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) line(row);
}

std::string Table::percent(double fraction, int decimals) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
    return ss.str();
}

std::string Table::fixed(double value, int decimals) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << value;
    return ss.str();
}

}  // namespace streak::io
