#include "io/heatmap.hpp"

#include <algorithm>
#include <ostream>

namespace streak::io {

std::vector<std::vector<double>> congestionGrid(const grid::EdgeUsage& usage) {
    const grid::RoutingGrid& g = usage.grid();
    std::vector<std::vector<double>> cells(
        static_cast<size_t>(g.height()),
        std::vector<double>(static_cast<size_t>(g.width()), 0.0));
    for (int l = 0; l < g.numLayers(); ++l) {
        for (int y = 0; y < g.height(); ++y) {
            for (int x = 0; x < g.width(); ++x) {
                if (!g.validEdge(l, x, y)) continue;
                const int e = g.edgeId(l, x, y);
                const int cap = g.capacity(e);
                if (cap <= 0) continue;
                const double ratio =
                    static_cast<double>(usage.usage(e)) / cap;
                cells[static_cast<size_t>(y)][static_cast<size_t>(x)] =
                    std::max(cells[static_cast<size_t>(y)][static_cast<size_t>(x)],
                             ratio);
            }
        }
    }
    return cells;
}

void writeAsciiHeatmap(const grid::EdgeUsage& usage, std::ostream& os,
                       int maxCols) {
    const auto cells = congestionGrid(usage);
    const int h = static_cast<int>(cells.size());
    const int w = h == 0 ? 0 : static_cast<int>(cells[0].size());
    const int stride = std::max(1, (w + maxCols - 1) / maxCols);
    const auto shade = [](double c) {
        if (c > 1.0) return 'X';
        if (c > 0.9) return '#';
        if (c > 0.6) return '+';
        if (c > 0.3) return ':';
        if (c > 0.05) return '.';
        return ' ';
    };
    for (int y = h - 1; y >= 0; y -= stride) {
        for (int x = 0; x < w; x += stride) {
            double peak = 0.0;
            for (int dy = 0; dy < stride && y - dy >= 0; ++dy) {
                for (int dx = 0; dx < stride && x + dx < w; ++dx) {
                    peak = std::max(
                        peak, cells[static_cast<size_t>(y - dy)]
                                   [static_cast<size_t>(x + dx)]);
                }
            }
            os << shade(peak);
        }
        os << '\n';
    }
}

void writeCsvHeatmap(const grid::EdgeUsage& usage, std::ostream& os) {
    const auto cells = congestionGrid(usage);
    os << "y,x,congestion\n";
    for (size_t y = 0; y < cells.size(); ++y) {
        for (size_t x = 0; x < cells[y].size(); ++x) {
            os << y << ',' << x << ',' << cells[y][x] << '\n';
        }
    }
}

}  // namespace streak::io
