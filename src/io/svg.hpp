// SVG rendering of routed designs: one colour per trunk-layer pair, pins
// as dots, blockage-dented cells shaded. For visual inspection of
// regularity (the parallel-track patterns of Figs. 1/3) and debugging.
#pragma once

#include <iosfwd>

#include "core/solution.hpp"

namespace streak::io {

struct SvgOptions {
    int cellSize = 10;  // pixels per G-Cell
    bool drawGridLines = false;
    bool shadeBlockages = true;
};

/// Render the routed bits of a design to SVG.
void writeSvg(const RoutedDesign& routed, std::ostream& os,
              const SvgOptions& opts = {});

}  // namespace streak::io
