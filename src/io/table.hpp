// Fixed-width table printing for the bench binaries (Tables I / II rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streak::io {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream& os) const;

    /// Format helpers.
    [[nodiscard]] static std::string percent(double fraction, int decimals = 2);
    [[nodiscard]] static std::string fixed(double value, int decimals = 2);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace streak::io
