// Text serialization of designs.
//
// Format (line oriented, '#' comments):
//   STREAK 1
//   GRID <width> <height> <layers> <defaultCapacity>
//   BLOCKAGE <lox> <loy> <hix> <hiy> <layer> <remainingCap>
//   VIACAP <capacityPerCell>                (enables the pin-access model)
//   VIABLOCKAGE <lox> <loy> <hix> <hiy> <remainingCap>
//   GROUP <name> <numBits>
//   BIT <name> <numPins> <driverIndex>
//   PIN <x> <y>
#pragma once

#include <iosfwd>
#include <string>

#include "core/signal.hpp"

namespace streak::io {

void writeDesign(const Design& design, std::ostream& os);
void writeDesignFile(const Design& design, const std::string& path);

/// Throws a robust::StreakException (kind invalid-input, site "io/read")
/// on malformed input; messages carry (line, column) context. The
/// exception derives from std::runtime_error, so legacy catch sites
/// keep working.
[[nodiscard]] Design readDesign(std::istream& is);
[[nodiscard]] Design readDesignFile(const std::string& path);

}  // namespace streak::io
