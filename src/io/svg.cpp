#include "io/svg.hpp"

#include <array>
#include <ostream>

namespace streak::io {

namespace {

/// Colour per (hLayer, vLayer) pair index, cycling.
const std::array<const char*, 8> kPalette = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
    "#9467bd", "#8c564b", "#17becf", "#bcbd22"};

}  // namespace

void writeSvg(const RoutedDesign& routed, std::ostream& os,
              const SvgOptions& opts) {
    const grid::RoutingGrid& g = routed.usage.grid();
    const int s = opts.cellSize;
    const int w = g.width() * s;
    const int h = g.height() * s;
    // SVG y grows downward; flip so y=0 is at the bottom like the grid.
    const auto px = [&](int x) { return x * s + s / 2; };
    const auto py = [&](int y) { return h - (y * s + s / 2); };

    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
       << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
       << "\">\n";
    os << "<rect width=\"" << w << "\" height=\"" << h
       << "\" fill=\"white\"/>\n";

    if (opts.shadeBlockages) {
        // Shade cells whose outgoing edges are (partially) blocked,
        // detected as capacity below the die-wide maximum.
        int maxCap = 0;
        for (int e = 0; e < g.numEdges(); ++e) {
            maxCap = std::max(maxCap, g.capacity(e));
        }
        for (int l = 0; l < g.numLayers(); ++l) {
            for (int y = 0; y < g.height(); ++y) {
                for (int x = 0; x < g.width(); ++x) {
                    if (!g.validEdge(l, x, y)) continue;
                    if (g.capacity(g.edgeId(l, x, y)) * 2 < maxCap) {
                        os << "<rect x=\"" << x * s << "\" y=\""
                           << h - (y + 1) * s << "\" width=\"" << s
                           << "\" height=\"" << s
                           << "\" fill=\"#eeeeee\"/>\n";
                    }
                }
            }
        }
    }

    if (opts.drawGridLines) {
        os << "<g stroke=\"#f0f0f0\" stroke-width=\"1\">\n";
        for (int x = 0; x <= g.width(); ++x) {
            os << "<line x1=\"" << x * s << "\" y1=\"0\" x2=\"" << x * s
               << "\" y2=\"" << h << "\"/>\n";
        }
        for (int y = 0; y <= g.height(); ++y) {
            os << "<line x1=\"0\" y1=\"" << y * s << "\" x2=\"" << w
               << "\" y2=\"" << y * s << "\"/>\n";
        }
        os << "</g>\n";
    }

    for (const RoutedBit& bit : routed.bits) {
        const size_t colour = static_cast<size_t>(
            (bit.hLayer * g.numLayers() + bit.vLayer) % kPalette.size());
        os << "<g stroke=\"" << kPalette[colour]
           << "\" stroke-width=\"2\" stroke-linecap=\"round\">\n";
        // Sorted so the emitted SVG is byte-identical across toolchains.
        for (const steiner::UnitEdge& e : bit.topo.sortedWire()) {
            const geom::Point a = e.at;
            const geom::Point b = e.other();
            os << "<line x1=\"" << px(a.x) << "\" y1=\"" << py(a.y)
               << "\" x2=\"" << px(b.x) << "\" y2=\"" << py(b.y) << "\"/>\n";
        }
        os << "</g>\n";
        for (size_t p = 0; p < bit.topo.pins().size(); ++p) {
            const geom::Point pin = bit.topo.pins()[p];
            const bool isDriver =
                static_cast<int>(p) == bit.topo.driverIndex();
            os << "<circle cx=\"" << px(pin.x) << "\" cy=\"" << py(pin.y)
               << "\" r=\"" << (isDriver ? 3 : 2) << "\" fill=\""
               << (isDriver ? "#000000" : kPalette[colour]) << "\"/>\n";
        }
    }
    os << "</svg>\n";
}

}  // namespace streak::io
