#include "io/design_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace streak::io {

namespace {

/// Parse failures are structured invalid-input errors: the CLI maps
/// them to exit code 3 and prints the (line, column) context. line 0
/// means "no position" (e.g. a missing record noticed at end of input).
[[noreturn]] void fail(const std::string& what, int line = 0, int column = 0) {
    std::string msg = "readDesign: " + what;
    if (line > 0) {
        msg += " (line " + std::to_string(line);
        if (column > 0) msg += ", column " + std::to_string(column);
        msg += ")";
    }
    robust::StreakError err;
    err.kind = robust::ErrorKind::InvalidInput;
    err.site = "io/read";
    err.message = std::move(msg);
    robust::raise(std::move(err));
}

/// 1-based column where a field extraction stopped. After a failed
/// `>>`, tellg() is -1; the useful position is then the line's end
/// (truncated record) rather than nothing.
int columnOf(std::istringstream& ss, const std::string& line) {
    ss.clear();
    const auto pos = ss.tellg();
    if (pos < 0) return static_cast<int>(line.size()) + 1;
    return static_cast<int>(pos) + 1;
}

}  // namespace

void writeDesign(const Design& design, std::ostream& os) {
    os << "STREAK 1\n";
    os << "# design: " << design.name << '\n';
    const grid::RoutingGrid& g = design.grid;
    // Default capacity is not recoverable once blockages applied; emit the
    // grid with per-edge capacity deltas below.
    os << "GRID " << g.width() << ' ' << g.height() << ' ' << g.numLayers();
    // Use the maximum capacity as the default and re-emit dents.
    int defaultCap = 0;
    for (int e = 0; e < g.numEdges(); ++e) {
        defaultCap = std::max(defaultCap, g.capacity(e));
    }
    os << ' ' << defaultCap << '\n';
    for (int e = 0; e < g.numEdges(); ++e) {
        if (g.capacity(e) != defaultCap) {
            const auto c = g.edgeCoord(e);
            os << "BLOCKAGE " << c.x << ' ' << c.y << ' ' << c.x << ' ' << c.y
               << ' ' << c.layer << ' ' << g.capacity(e) << '\n';
        }
    }
    if (g.viaLimited()) {
        int defaultVia = 0;
        for (int c = 0; c < g.numCells(); ++c) {
            defaultVia = std::max(defaultVia, g.viaCapacity(c));
        }
        os << "VIACAP " << defaultVia << '\n';
        for (int y = 0; y < g.height(); ++y) {
            for (int x = 0; x < g.width(); ++x) {
                const int cap = g.viaCapacity(g.cellIndex(x, y));
                if (cap != defaultVia) {
                    os << "VIABLOCKAGE " << x << ' ' << y << ' ' << x << ' '
                       << y << ' ' << cap << '\n';
                }
            }
        }
    }
    for (const SignalGroup& group : design.groups) {
        os << "GROUP " << group.name << ' ' << group.width() << '\n';
        for (const Bit& bit : group.bits) {
            os << "BIT " << bit.name << ' ' << bit.numPins() << ' '
               << bit.driver << '\n';
            for (const geom::Point p : bit.pins) {
                os << "PIN " << p.x << ' ' << p.y << '\n';
            }
        }
    }
}

void writeDesignFile(const Design& design, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("writeDesignFile: cannot open " + path);
    writeDesign(design, os);
}

Design readDesign(std::istream& is) {
    STREAK_FAULT_POINT("io/read");
    std::string line;
    int lineNo = 0;
    // Header.
    for (;;) {
        if (!std::getline(is, line)) fail("missing header");
        ++lineNo;
        if (line.empty() || line[0] == '#') continue;
        break;
    }
    {
        std::istringstream ss(line);
        std::string magic;
        int version = 0;
        ss >> magic >> version;
        if (magic != "STREAK" || version != 1) {
            fail("bad header: " + line, lineNo, 1);
        }
    }

    int width = 0, height = 0, layers = 0, cap = 0;
    bool haveGrid = false;
    std::string pendingName = "design";

    // Parse body into a staging structure, then build.
    struct PendingBit {
        std::string name;
        int driver = 0;
        std::vector<geom::Point> pins;
        int expectedPins = 0;
        int line = 0;  // where the BIT record was declared
    };
    struct PendingGroup {
        std::string name;
        std::vector<PendingBit> bits;
        int expectedBits = 0;
        int line = 0;  // where the GROUP record was declared
    };
    std::vector<PendingGroup> groups;
    struct Blockage {
        geom::Rect rect;
        int layer;
        int remaining;
    };
    std::vector<Blockage> blockages;
    int viaCap = -1;
    struct ViaBlockage {
        geom::Rect rect;
        int remaining;
    };
    std::vector<ViaBlockage> viaBlockages;

    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "GRID") {
            ss >> width >> height >> layers >> cap;
            if (!ss) fail("bad GRID line", lineNo, columnOf(ss, line));
            haveGrid = true;
        } else if (kind == "BLOCKAGE") {
            Blockage b{};
            ss >> b.rect.lo.x >> b.rect.lo.y >> b.rect.hi.x >> b.rect.hi.y >>
                b.layer >> b.remaining;
            if (!ss) fail("bad BLOCKAGE line", lineNo, columnOf(ss, line));
            blockages.push_back(b);
        } else if (kind == "VIACAP") {
            ss >> viaCap;
            if (!ss) fail("bad VIACAP line", lineNo, columnOf(ss, line));
        } else if (kind == "VIABLOCKAGE") {
            ViaBlockage b{};
            ss >> b.rect.lo.x >> b.rect.lo.y >> b.rect.hi.x >> b.rect.hi.y >>
                b.remaining;
            if (!ss) fail("bad VIABLOCKAGE line", lineNo, columnOf(ss, line));
            viaBlockages.push_back(b);
        } else if (kind == "GROUP") {
            PendingGroup g;
            ss >> g.name >> g.expectedBits;
            if (!ss) fail("bad GROUP line", lineNo, columnOf(ss, line));
            g.line = lineNo;
            groups.push_back(std::move(g));
        } else if (kind == "BIT") {
            if (groups.empty()) fail("BIT before GROUP", lineNo, 1);
            PendingBit b;
            ss >> b.name >> b.expectedPins >> b.driver;
            if (!ss) fail("bad BIT line", lineNo, columnOf(ss, line));
            b.line = lineNo;
            groups.back().bits.push_back(std::move(b));
        } else if (kind == "PIN") {
            if (groups.empty() || groups.back().bits.empty()) {
                fail("PIN before BIT", lineNo, 1);
            }
            geom::Point p{};
            ss >> p.x >> p.y;
            if (!ss) fail("bad PIN line", lineNo, columnOf(ss, line));
            groups.back().bits.back().pins.push_back(p);
        } else {
            fail("unknown record: " + kind, lineNo, 1);
        }
    }
    if (!haveGrid) fail("missing GRID");

    Design design{pendingName, grid::RoutingGrid(width, height, layers, cap), {}};
    for (const Blockage& b : blockages) {
        design.grid.addBlockage(b.rect, b.layer, b.remaining);
    }
    if (viaCap >= 0) {
        design.grid.setViaCapacity(viaCap);
        for (const ViaBlockage& b : viaBlockages) {
            design.grid.addViaBlockage(b.rect, b.remaining);
        }
    } else if (!viaBlockages.empty()) {
        fail("VIABLOCKAGE without VIACAP");
    }
    for (PendingGroup& pg : groups) {
        if (static_cast<int>(pg.bits.size()) != pg.expectedBits) {
            fail("group " + pg.name + " bit count mismatch: declared " +
                     std::to_string(pg.expectedBits) + ", found " +
                     std::to_string(pg.bits.size()),
                 pg.line);
        }
        SignalGroup g;
        g.name = std::move(pg.name);
        for (PendingBit& pb : pg.bits) {
            if (static_cast<int>(pb.pins.size()) != pb.expectedPins) {
                fail("bit " + pb.name + " pin count mismatch: declared " +
                         std::to_string(pb.expectedPins) + ", found " +
                         std::to_string(pb.pins.size()),
                     pb.line);
            }
            if (pb.driver < 0 ||
                pb.driver >= static_cast<int>(pb.pins.size())) {
                fail("bit " + pb.name + " driver out of range", pb.line);
            }
            g.bits.push_back(
                {std::move(pb.name), std::move(pb.pins), pb.driver});
        }
        design.groups.push_back(std::move(g));
    }
    return design;
}

Design readDesignFile(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        robust::StreakError err;
        err.kind = robust::ErrorKind::InvalidInput;
        err.site = "io/read";
        err.message = "readDesignFile: cannot open " + path;
        robust::raise(std::move(err));
    }
    return readDesign(is);
}

}  // namespace streak::io
