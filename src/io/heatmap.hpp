// Congestion heat maps (Figs. 11-12).
//
// Renders per-G-Cell congestion (max edge utilization across layers) as an
// ASCII shade map for terminal inspection and as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/routing_grid.hpp"

namespace streak::io {

/// Per-G-Cell congestion in [0, inf): the maximum usage/capacity ratio of
/// the edges leaving the cell, over all layers. > 1 means overflow.
[[nodiscard]] std::vector<std::vector<double>> congestionGrid(
    const grid::EdgeUsage& usage);

/// ASCII rendering: ' ' empty, '.' light, ':' moderate, '+' busy, '#'
/// near-full, 'X' overflow. One row per G-Cell row (top row = max y).
void writeAsciiHeatmap(const grid::EdgeUsage& usage, std::ostream& os,
                       int maxCols = 96);

/// CSV rows y,x,congestion.
void writeCsvHeatmap(const grid::EdgeUsage& usage, std::ostream& os);

}  // namespace streak::io
