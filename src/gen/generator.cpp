#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace streak::gen {

namespace {

int clampTo(int v, int lo, int hi) { return std::max(lo, std::min(hi, v)); }

/// A routing style: sink offsets relative to the driver (shared by every
/// bit of the style, so identification groups them into one object).
struct Style {
    std::vector<geom::Point> sinkOffsets;
};

Style makeStyle(std::mt19937* rng, const SuiteSpec& spec, bool multipin,
                int mainDir) {
    // mainDir: 0 = +x, 1 = +y, 2 = -x, 3 = -y.
    std::uniform_int_distribution<int> lenDist(8, std::max(
        9, std::min(spec.gridWidth, spec.gridHeight) / 2));
    std::uniform_int_distribution<int> lateralDist(-4, 4);
    const int numSinks =
        multipin ? std::uniform_int_distribution<int>(2, spec.maxPins - 1)(*rng)
                 : 1;
    Style style;
    for (int s = 0; s < numSinks; ++s) {
        const int len = lenDist(*rng);
        const int lat = s == 0 ? 0 : lateralDist(*rng);
        geom::Point off{};
        switch (mainDir) {
            case 0: off = {len, lat}; break;
            case 1: off = {lat, len}; break;
            case 2: off = {-len, lat}; break;
            default: off = {lat, -len}; break;
        }
        if (off == geom::Point{0, 0}) off.x = 1;
        style.sinkOffsets.push_back(off);
    }
    // Dedupe coincident sinks.
    std::sort(style.sinkOffsets.begin(), style.sinkOffsets.end());
    style.sinkOffsets.erase(
        std::unique(style.sinkOffsets.begin(), style.sinkOffsets.end()),
        style.sinkOffsets.end());
    return style;
}

/// A second routing style *related* to the base style (as in Fig. 1: the
/// styles of one group share most of their shape): one sink is deflected
/// laterally, which changes its similarity quadrant and therefore splits
/// the group into two routing objects while keeping the trunks alike.
Style makeVariantStyle(std::mt19937* rng, const Style& base, int mainDir) {
    Style variant = base;
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(variant.sinkOffsets.size()) - 1);
    std::uniform_int_distribution<int> deflect(2, 5);
    geom::Point& off = variant.sinkOffsets[static_cast<size_t>(pick(*rng))];
    const int d = deflect(*rng);
    const bool mainHorizontal = mainDir == 0 || mainDir == 2;
    if (mainHorizontal) {
        off.y += off.y >= 0 ? d : -d;
    } else {
        off.x += off.x >= 0 ? d : -d;
    }
    std::sort(variant.sinkOffsets.begin(), variant.sinkOffsets.end());
    return variant;
}

/// Shrink a bit's sink offsets towards the driver, preserving every
/// direction (and hence the similarity vectors): the bit stays in its
/// object but its source-to-sink distances deviate, creating the Vio(dst)
/// targets of Table II.
std::vector<geom::Point> stretchOffsets(const std::vector<geom::Point>& offs,
                                        double factor) {
    std::vector<geom::Point> out;
    out.reserve(offs.size());
    const auto scale = [&](int v) {
        if (v == 0) return 0;
        const int s = static_cast<int>(std::lround(v * factor));
        if (s == 0) return v > 0 ? 1 : -1;
        return s;
    };
    for (const geom::Point o : offs) out.push_back({scale(o.x), scale(o.y)});
    return out;
}

}  // namespace

Design generate(const SuiteSpec& spec) {
    if (spec.maxPins < 2) {
        throw std::invalid_argument("SuiteSpec: maxPins must be >= 2");
    }
    std::mt19937 rng(spec.seed);
    Design design{spec.name,
                  grid::RoutingGrid(spec.gridWidth, spec.gridHeight,
                                    spec.numLayers, spec.capacity),
                  {}};
    if (spec.viaCapacity >= 0) design.grid.setViaCapacity(spec.viaCapacity);

    std::uniform_int_distribution<int> widthDist(spec.minGroupWidth,
                                                 spec.maxGroupWidth);
    std::uniform_int_distribution<int> dirDist(0, 3);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    for (int g = 0; g < spec.numGroups; ++g) {
        SignalGroup group;
        group.name = "sg" + std::to_string(g);
        const int width = widthDist(rng);
        const int mainDir = dirDist(rng);
        const bool multipin =
            spec.maxPins > 2 && unit(rng) < spec.multipinFraction;
        const bool twoStyles = width >= 4 && unit(rng) < spec.twoStyleFraction;

        // Bundle geometry: drivers sit on adjacent tracks perpendicular to
        // the main routing direction.
        const bool mainHorizontal = mainDir == 0 || mainDir == 2;
        const geom::Point perp = mainHorizontal ? geom::Point{0, 1}
                                                : geom::Point{1, 0};
        const int margin = std::min(spec.gridWidth, spec.gridHeight) / 3;
        std::uniform_int_distribution<int> xDist(margin / 2,
                                                 spec.gridWidth - margin / 2);
        std::uniform_int_distribution<int> yDist(margin / 2,
                                                 spec.gridHeight - margin / 2);
        const geom::Point base{xDist(rng), yDist(rng)};

        const Style styleA = makeStyle(&rng, spec, multipin, mainDir);
        const Style styleB =
            twoStyles ? makeVariantStyle(&rng, styleA, mainDir) : styleA;
        const int splitAt = twoStyles ? width / 2 : width;
        std::uniform_real_distribution<double> stretchFactor(0.35, 0.7);

        for (int k = 0; k < width; ++k) {
            const Style& style = k < splitAt ? styleA : styleB;
            std::vector<geom::Point> offsets = style.sinkOffsets;
            if (unit(rng) < spec.stretchFraction) {
                offsets = stretchOffsets(offsets, stretchFactor(rng));
            }
            Bit bit;
            bit.name = group.name + "_b" + std::to_string(k);
            const geom::Point driver{
                clampTo(base.x + k * perp.x, 1, spec.gridWidth - 2),
                clampTo(base.y + k * perp.y, 1, spec.gridHeight - 2)};
            bit.pins.push_back(driver);
            bit.driver = 0;
            for (const geom::Point off : offsets) {
                const geom::Point sink{
                    clampTo(driver.x + off.x, 1, spec.gridWidth - 2),
                    clampTo(driver.y + off.y, 1, spec.gridHeight - 2)};
                if (sink != driver) bit.pins.push_back(sink);
            }
            if (bit.pins.size() < 2) {
                // Clamping collapsed every sink; give the bit a minimal
                // two-pin connection so it stays a real net.
                bit.pins.push_back({clampTo(driver.x + 3, 1, spec.gridWidth - 2),
                                    driver.y});
            }
            group.bits.push_back(std::move(bit));
        }
        design.groups.push_back(std::move(group));
    }

    // Blockages: capacity dents on random layers.
    std::uniform_int_distribution<int> bx(0, spec.gridWidth - 2);
    std::uniform_int_distribution<int> by(0, spec.gridHeight - 2);
    std::uniform_int_distribution<int> bs(2, std::max(3, spec.blockageMaxSize));
    std::uniform_int_distribution<int> bl(0, spec.numLayers - 1);
    for (int b = 0; b < spec.numBlockages; ++b) {
        const geom::Point lo{bx(rng), by(rng)};
        const geom::Point hi{clampTo(lo.x + bs(rng), 0, spec.gridWidth - 1),
                             clampTo(lo.y + bs(rng), 0, spec.gridHeight - 1)};
        design.grid.addBlockage({lo, hi}, bl(rng), spec.blockageRemainingCap);
    }
    return design;
}

SuiteSpec synthSpec(int index) {
    SuiteSpec s;
    s.name = "synth" + std::to_string(index);
    s.seed = static_cast<std::uint32_t>(1000 + index);
    switch (index) {
        case 1:  // Industry1-like: small two-pin suite
            s.gridWidth = s.gridHeight = 56;
            s.capacity = 14;
            s.numGroups = 26;
            s.minGroupWidth = 4;
            s.maxGroupWidth = 12;
            s.maxPins = 2;
            s.numBlockages = 6;
            break;
        case 2:  // Industry2-like: largest two-pin suite
            s.gridWidth = s.gridHeight = 80;
            s.capacity = 14;
            s.numGroups = 50;
            s.minGroupWidth = 6;
            s.maxGroupWidth = 18;
            s.maxPins = 2;
            s.numBlockages = 8;
            break;
        case 3:  // Industry3-like: two-pin, congested (ILP-hostile)
            s.gridWidth = s.gridHeight = 44;
            s.capacity = 8;
            s.numGroups = 26;
            s.minGroupWidth = 4;
            s.maxGroupWidth = 10;
            s.maxPins = 2;
            s.numBlockages = 16;
            s.blockageMaxSize = 10;
            break;
        case 4:  // Industry4-like: few wide two-pin groups
            s.gridWidth = s.gridHeight = 56;
            s.capacity = 14;
            s.numGroups = 16;
            s.minGroupWidth = 8;
            s.maxGroupWidth = 20;
            s.maxPins = 2;
            s.numBlockages = 4;
            break;
        case 5:  // Industry5-like: many multipin groups, Np_max = 14
            s.gridWidth = s.gridHeight = 80;
            s.capacity = 12;
            s.numGroups = 58;
            s.minGroupWidth = 4;
            s.maxGroupWidth = 10;
            s.maxPins = 14;
            s.multipinFraction = 0.6;
            s.numBlockages = 10;
            break;
        case 6:  // Industry6-like: wide multipin groups, congested
            s.gridWidth = s.gridHeight = 64;
            s.capacity = 12;
            s.numGroups = 40;
            s.minGroupWidth = 6;
            s.maxGroupWidth = 26;
            s.maxPins = 9;
            s.multipinFraction = 0.6;
            s.numBlockages = 16;
            s.blockageMaxSize = 10;
            break;
        case 7:  // Industry7-like: multipin, low congestion
            s.gridWidth = s.gridHeight = 64;
            s.capacity = 16;
            s.numGroups = 18;
            s.minGroupWidth = 8;
            s.maxGroupWidth = 20;
            s.maxPins = 7;
            s.multipinFraction = 0.5;
            s.numBlockages = 3;
            break;
        default:
            throw std::invalid_argument("synthSpec: index must be in [1, 7]");
    }
    return s;
}

Design makeSynth(int index) { return generate(synthSpec(index)); }

SuiteSpec shrunkSynthSpec(int index) {
    SuiteSpec spec = synthSpec(index);
    spec.name += "-shrunk";
    spec.numGroups = std::max(4, spec.numGroups / 4);
    spec.minGroupWidth = std::min(spec.minGroupWidth, 4);
    spec.maxGroupWidth = std::min(spec.maxGroupWidth, 6);
    // Multipin candidate sets grow combinatorially; trim the pin count so
    // even the legacy-engine sweeps stay well inside the time limit.
    spec.maxPins = std::min(spec.maxPins, 3);
    return spec;
}

std::vector<SuiteSpec> scalabilitySpecs(bool multipin, int steps) {
    std::vector<SuiteSpec> specs;
    for (int i = 0; i < steps; ++i) {
        SuiteSpec s = synthSpec(multipin ? 5 : 2);
        const double scale = (i + 1) / static_cast<double>(steps);
        s.name = std::string(multipin ? "scale_mp_" : "scale_2p_") +
                 std::to_string(i + 1);
        s.numGroups = std::max(4, static_cast<int>(s.numGroups * scale));
        if (multipin && i + 1 == steps) {
            // The paper's largest case enriches the biggest suite with
            // pseudo pins and pseudo bits; emulate by raising pin counts
            // and widths.
            s.maxPins += 4;
            s.maxGroupWidth += 6;
            s.multipinFraction = 0.8;
        }
        s.seed = static_cast<std::uint32_t>(7000 + i + (multipin ? 100 : 0));
        specs.push_back(std::move(s));
    }
    return specs;
}

}  // namespace streak::gen
