// Synthetic signal-group design generator.
//
// The paper evaluates on seven proprietary 10nm industrial benchmarks;
// this generator is the substitution (see DESIGN.md): deterministic
// synthetic designs with the same structure — bundles of bits with
// adjacent pins, a mix of routing styles per group (so identification
// yields several objects), two-pin and multipin suites, and blockages for
// congestion — scaled to sizes where the in-house ILP is usable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/signal.hpp"

namespace streak::gen {

struct SuiteSpec {
    std::string name;
    int gridWidth = 64;
    int gridHeight = 64;
    int numLayers = 6;
    int capacity = 12;

    int numGroups = 20;
    int minGroupWidth = 4;   // bits per group
    int maxGroupWidth = 12;  // "W_max" knob
    /// Maximum pins per bit ("Np_max"); 2 = classic two-pin buses.
    int maxPins = 2;
    /// Fraction of groups containing multipin bits (when maxPins > 2).
    double multipinFraction = 0.5;
    /// Probability that a group splits into two routing styles (Fig. 1).
    double twoStyleFraction = 0.4;
    /// Probability that a bit's sinks are pulled closer to the driver
    /// (direction-preserving), creating source-to-sink deviation.
    double stretchFraction = 0.12;

    int numBlockages = 6;
    int blockageMaxSize = 8;       // G-Cells per side
    int blockageRemainingCap = 1;  // tracks left under a blockage

    /// Per-G-Cell via-slot capacity (pin-access model); -1 disables.
    int viaCapacity = -1;

    std::uint32_t seed = 1;
};

/// Generate a design from the spec. Deterministic in the seed.
[[nodiscard]] Design generate(const SuiteSpec& spec);

/// Specs mirroring the structure of Table I's Industry1-7 (two-pin suites
/// 1-4, multipin suites 5-7; suite 3 and 6 congested). `index` in [1, 7].
[[nodiscard]] SuiteSpec synthSpec(int index);

/// Convenience: generate synth<index>.
[[nodiscard]] Design makeSynth(int index);

/// synthSpec(index) scaled down ("synthN-shrunk") so full before/after
/// ILP sweeps finish in seconds — the shared recipe behind the kernel
/// bench (BENCH_streak.json), the campaign runner's default instance
/// family, and check.sh's drills. Counter trajectories are only
/// comparable across those consumers because they all route the *same*
/// shrunk designs.
[[nodiscard]] SuiteSpec shrunkSynthSpec(int index);

/// Size series for the Fig. 13 scalability study: the base suite scaled
/// by group count (and, for the multipin series, enriched with pseudo
/// pins/bits, as the paper does to enlarge Industry2).
[[nodiscard]] std::vector<SuiteSpec> scalabilitySpecs(bool multipin,
                                                      int steps);

}  // namespace streak::gen
