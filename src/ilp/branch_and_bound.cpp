#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "check/ilp_audit.hpp"
#include "ilp/lp.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak::ilp {

namespace {

constexpr double kIntTol = 1e-6;

struct Node {
    double bound;                    // parent LP bound (lower bound)
    std::vector<std::int8_t> fixed;  // -1 free, 0 / 1 fixed
    /// Parent's final simplex basis: both children re-solve phase-2-only
    /// from it (same rows, one variable's bounds tightened). Null at the
    /// root and when warm starts are off.
    std::shared_ptr<const LpBasis> warm;

    bool operator<(const Node& o) const { return bound > o.bound; }  // min-heap
};

/// Model copy with node fixings applied as tight bounds.
Model applyFixings(const Model& base, const std::vector<std::int8_t>& fixed) {
    Model m;
    for (int v = 0; v < base.numVariables(); ++v) {
        double lo = base.lower(v);
        double hi = base.upper(v);
        const auto f = fixed[static_cast<size_t>(v)];
        if (base.isInteger(v) && f >= 0) lo = hi = static_cast<double>(f);
        m.addVariable(base.objectiveCoeff(v), base.isInteger(v), lo, hi);
    }
    for (const Row& r : base.rows()) m.addRow(r);
    m.objectiveConstant = base.objectiveConstant;
    return m;
}

}  // namespace

Solution solveIlp(const Model& model, const BnbOptions& opts, BnbStats* stats) {
    STREAK_SPAN("ilp/bnb");
    const obs::Stopwatch watch;
    const auto timeUp = [&] { return watch.seconds() > opts.timeLimitSeconds; };

    Solution incumbent;
    incumbent.status = SolveStatus::Limit;
    // A warm-start bound prunes but is not itself a returnable solution;
    // the caller keeps its warm start when we return empty-handed.
    double incumbentObj = opts.initialUpperBound;
    bool haveIncumbent = false;
    bool provenInfeasible = true;  // until a node is feasible at LP level

    std::priority_queue<Node> open;
    Node root;
    root.bound = -kInfinity;
    root.fixed.assign(static_cast<size_t>(model.numVariables()), -1);
    open.push(std::move(root));
    long nodes = 0;
    bool limitHit = false;
    double bestOpenBound = -kInfinity;
    // Pruning tallies, accumulated locally and flushed once at the end so
    // the search loop never touches the registry (and totals stay
    // identical for any number of concurrent component solves).
    long prunedBound = 0;
    long prunedInfeasible = 0;

    while (!open.empty()) {
        // Tick point: one poll per node (each node pays an LP solve).
        opts.control.checkpoint("bnb/node");
        STREAK_FAULT_POINT("bnb/node");
        if (nodes >= opts.maxNodes || timeUp()) {
            limitHit = true;
            bestOpenBound = open.top().bound;
            break;
        }
        Node node = open.top();
        open.pop();
        if (node.bound >= incumbentObj - opts.gapTolerance &&
            incumbentObj < kInfinity) {
            break;  // best-bound search: everything else is worse too
        }
        ++nodes;

        const Model sub = applyFixings(model, node.fixed);
        const bool useBounded = opts.lpEngine == LpEngine::Bounded;
        auto finalBasis = std::make_shared<LpBasis>();
        Solution lp;
        if (useBounded) {
            LpOptions lpOpts;
            lpOpts.control = opts.control;
            if (opts.lpWarmStart) {
                lpOpts.warmBasis = node.warm.get();
                lpOpts.basisOut = finalBasis.get();
            }
            lp = solveLp(sub, lpOpts);
        } else {
            lp = solveLpLegacy(sub);
        }
        // Basis sanity / primal feasibility of every relaxation the tree
        // trusts for pruning decisions.
        STREAK_DEEP_AUDIT(check::auditLp(sub, lp));
        if (lp.status == SolveStatus::Infeasible) {
            ++prunedInfeasible;
            continue;
        }
        if (lp.status == SolveStatus::Unbounded) {
            Solution out;
            out.status = SolveStatus::Unbounded;
            if (stats) *stats = {nodes, false, -kInfinity};
            return out;
        }
        provenInfeasible = false;
        if (lp.objective >= incumbentObj - opts.gapTolerance) {
            ++prunedBound;
            continue;
        }

        // Find the most fractional integer variable (distance to the
        // nearest integer, i.e. closeness to 0.5).
        int branchVar = -1;
        double bestScore = kIntTol;
        for (int v = 0; v < model.numVariables(); ++v) {
            if (!model.isInteger(v)) continue;
            const double x = lp.values[static_cast<size_t>(v)];
            const double dist = std::abs(x - std::round(x));
            if (dist > bestScore) {
                bestScore = dist;
                branchVar = v;
            }
        }
        if (branchVar < 0) {
            // Integral: new incumbent.
            if (lp.objective < incumbentObj) {
                incumbentObj = lp.objective;
                incumbent = lp;
                haveIncumbent = true;
            }
            continue;
        }
        const std::shared_ptr<const LpBasis> childWarm =
            (useBounded && opts.lpWarmStart && !finalBasis->empty())
                ? std::shared_ptr<const LpBasis>(std::move(finalBasis))
                : nullptr;
        for (const std::int8_t val : {std::int8_t{1}, std::int8_t{0}}) {
            Node child;
            child.bound = lp.objective;
            child.fixed = node.fixed;
            child.fixed[static_cast<size_t>(branchVar)] = val;
            child.warm = childWarm;
            open.push(std::move(child));
        }
    }

    if (obs::detailEnabled()) {
        obs::Session& sess = obs::session();
        sess.counter("ilp/bnb.nodes_explored").add(nodes);
        sess.counter("ilp/bnb.pruned_bound").add(prunedBound);
        sess.counter("ilp/bnb.pruned_infeasible").add(prunedInfeasible);
    }

    if (stats) {
        stats->nodesExplored = nodes;
        stats->hitLimit = limitHit;
        stats->bestBound =
            limitHit ? bestOpenBound
                     : (incumbentObj < kInfinity ? incumbentObj : bestOpenBound);
    }

    if (haveIncumbent) {
        incumbent.status = limitHit ? SolveStatus::Feasible : SolveStatus::Optimal;
        return incumbent;
    }
    Solution out;
    out.status = (provenInfeasible && !limitHit &&
                  opts.initialUpperBound == kInfinity)
                     ? SolveStatus::Infeasible
                     : SolveStatus::Limit;
    return out;
}

}  // namespace streak::ilp
