// Dense two-phase primal simplex for the LP relaxations used by the
// branch-and-bound ILP solver. Small and deterministic; adequate for the
// per-component subproblems Streak produces.
//
// Two engines (DESIGN.md "Performance"):
//
//   Bounded   the default: bounded-variable simplex on a flat row-major
//             tableau. Finite upper bounds are handled by nonbasic-at-
//             upper statuses and bound flips instead of one explicit
//             `<=` row + artificial per bounded variable, which roughly
//             halves the row count on Streak's 0/1 selection models and
//             shrinks every pivot's row sweep. Supports basis warm
//             starts: branch-and-bound re-solves a child node phase-2
//             only from the parent's final basis, falling back to a cold
//             two-phase solve when the warmed basis is stale.
//   Legacy    the original formulation (upper bounds as rows), kept
//             compiled as the cross-check oracle for tests and
//             before/after benches.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "robust/control.hpp"

namespace streak::ilp {

/// Which simplex formulation solves the LP relaxations.
enum class LpEngine {
    Bounded,  ///< bounded-variable simplex, warm-startable (default)
    Legacy,   ///< explicit upper-bound rows (oracle / "before" mode)
};

/// A simplex basis snapshot, valid for any model with the same rows (in
/// the same order, with the same senses) and the same variable count —
/// exactly what branch-and-bound produces, where children differ from
/// the parent only in variable bounds.
struct LpBasis {
    /// Basic column per row, in the bounded engine's column layout:
    /// [0, n) structural, [n, n+numSlack) slacks in row order, then one
    /// artificial per row.
    std::vector<int> basic;
    /// Per *structural* variable: nonbasic at its upper bound (rather
    /// than at its lower bound). Slacks and artificials are never at an
    /// upper bound (theirs is infinite / zero).
    std::vector<std::uint8_t> atUpper;

    [[nodiscard]] bool empty() const { return basic.empty(); }
};

struct LpOptions {
    /// When set, try a phase-2-only solve from this basis; cold-solves
    /// if the basis is singular or infeasible for the current bounds.
    const LpBasis* warmBasis = nullptr;
    /// When set, receives the final basis of an Optimal solve (left
    /// untouched otherwise) for warm-starting the next solve.
    LpBasis* basisOut = nullptr;
    /// Deadline/cancellation ticket polled every few hundred pivots
    /// (idle by default; never influences pivot choices).
    robust::Ticket control;
};

/// Solve the model as a *continuous* LP (integrality flags ignored) with
/// the bounded-variable engine. Finite bounds are handled by shifting
/// lower bounds to zero and keeping upper bounds implicit in the simplex.
/// Status is Optimal, Infeasible, or Unbounded.
[[nodiscard]] Solution solveLp(const Model& model);
[[nodiscard]] Solution solveLp(const Model& model, const LpOptions& opts);

/// The original explicit-row formulation, kept as the equivalence oracle.
[[nodiscard]] Solution solveLpLegacy(const Model& model);

}  // namespace streak::ilp
