// Dense two-phase primal simplex for the LP relaxations used by the
// branch-and-bound ILP solver. Small and deterministic; adequate for the
// per-component subproblems Streak produces.
#pragma once

#include "ilp/model.hpp"

namespace streak::ilp {

/// Solve the model as a *continuous* LP (integrality flags ignored).
/// Finite non-zero lower/upper bounds are handled by shifting / bound rows.
/// Status is Optimal, Infeasible, or Unbounded.
[[nodiscard]] Solution solveLp(const Model& model);

}  // namespace streak::ilp
