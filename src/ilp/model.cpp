#include "ilp/model.hpp"

#include <stdexcept>

namespace streak::ilp {

int Model::addVariable(double objectiveCoeff, bool integer, double lower,
                       double upper) {
    if (lower > upper) {
        throw std::invalid_argument("Model::addVariable: lower > upper");
    }
    if (integer && (lower < 0.0 || upper > 1.0) && upper != kInfinity) {
        throw std::invalid_argument(
            "Model::addVariable: integer variables must be binary");
    }
    objective_.push_back(objectiveCoeff);
    integer_.push_back(integer);
    lower_.push_back(lower);
    upper_.push_back(integer && upper == kInfinity ? 1.0 : upper);
    return static_cast<int>(objective_.size()) - 1;
}

}  // namespace streak::ilp
