#include "ilp/lp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/assert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace streak::ilp {

namespace {

constexpr double kEps = 1e-9;

/// Dense two-phase primal simplex on the tableau
///   min c^T x  s.t.  A x = b,  x >= 0,  b >= 0.
/// Columns [0, n) are structural; one artificial per row is appended.
/// The reduced-cost row is kept in canonical form and updated on pivots.
class SimplexTableau {
public:
    SimplexTableau(int numStructural, int numRows)
        : n_(numStructural), m_(numRows),
          a_(static_cast<size_t>(numRows),
             std::vector<double>(static_cast<size_t>(numStructural + numRows),
                                 0.0)),
          b_(static_cast<size_t>(numRows), 0.0),
          basis_(static_cast<size_t>(numRows), -1) {}

    void setCoeff(int row, int col, double v) {
        a_[static_cast<size_t>(row)][static_cast<size_t>(col)] = v;
    }
    void setRhs(int row, double v) { b_[static_cast<size_t>(row)] = v; }

    /// Phase 1 + Phase 2. On Optimal, `x` receives the structural solution
    /// and `obj` the objective value.
    SolveStatus solve(const std::vector<double>& cost, std::vector<double>* x,
                      double* obj) {
        const int total = n_ + m_;
        for (int r = 0; r < m_; ++r) {
            a_[static_cast<size_t>(r)][static_cast<size_t>(n_ + r)] = 1.0;
            basis_[static_cast<size_t>(r)] = n_ + r;
        }
        // Phase 1: minimize the sum of artificials.
        std::vector<double> phase1(static_cast<size_t>(total), 0.0);
        for (int c = n_; c < total; ++c) phase1[static_cast<size_t>(c)] = 1.0;
        if (!runSimplex(phase1)) return SolveStatus::Unbounded;
        if (objectiveOf(phase1) > 1e-6) return SolveStatus::Infeasible;

        // Drive remaining artificials out of the basis where possible;
        // rows where no structural pivot exists are redundant.
        for (int r = 0; r < m_; ++r) {
            if (basis_[static_cast<size_t>(r)] < n_) continue;
            for (int c = 0; c < n_; ++c) {
                if (std::abs(a_[static_cast<size_t>(r)][static_cast<size_t>(c)]) >
                    1e-7) {
                    pivot(r, c);
                    break;
                }
            }
        }

        // Phase 2: real costs; artificials get a huge cost so they stay 0.
        std::vector<double> phase2(static_cast<size_t>(total), 0.0);
        for (int c = 0; c < n_; ++c) {
            phase2[static_cast<size_t>(c)] = cost[static_cast<size_t>(c)];
        }
        for (int c = n_; c < total; ++c) phase2[static_cast<size_t>(c)] = 1e12;
        if (!runSimplex(phase2)) return SolveStatus::Unbounded;

        x->assign(static_cast<size_t>(n_), 0.0);
        for (int r = 0; r < m_; ++r) {
            const int bc = basis_[static_cast<size_t>(r)];
            if (bc < n_) (*x)[static_cast<size_t>(bc)] = b_[static_cast<size_t>(r)];
        }
        *obj = 0.0;
        for (int c = 0; c < n_; ++c) {
            *obj += cost[static_cast<size_t>(c)] * (*x)[static_cast<size_t>(c)];
        }
        return SolveStatus::Optimal;
    }

    /// Pivots performed across both phases (flushed to the counter
    /// registry by solveLp, keeping the pivot loop registry-free).
    [[nodiscard]] long pivots() const { return pivots_; }

private:
    [[nodiscard]] double objectiveOf(const std::vector<double>& cost) const {
        double v = 0.0;
        for (int r = 0; r < m_; ++r) {
            v += cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])] *
                 b_[static_cast<size_t>(r)];
        }
        return v;
    }

    /// Primal simplex with the given cost vector. Maintains the reduced
    /// cost row incrementally. Returns false on unboundedness.
    bool runSimplex(const std::vector<double>& cost) {
        const size_t total = cost.size();
        // Canonicalize the reduced-cost row against the current basis.
        red_ = cost;
        for (int r = 0; r < m_; ++r) {
            const double cb =
                cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
            if (cb == 0.0) continue;  // lint-ok: float-equality
            const auto& row = a_[static_cast<size_t>(r)];
            for (size_t c = 0; c < total; ++c) red_[c] -= cb * row[c];
        }

        const long maxIter = 20L * (m_ + static_cast<long>(total)) + 2000;
        for (long iterations = 0;; ++iterations) {
            if (iterations > maxIter) break;  // stall guard
            const bool useBland = iterations > maxIter / 2;

            int entering = -1;
            double best = -1e-7;
            for (size_t c = 0; c < total; ++c) {
                if (red_[c] < best) {
                    entering = static_cast<int>(c);
                    if (useBland) break;
                    best = red_[c];
                }
            }
            if (entering < 0) return true;  // optimal

            int leaving = -1;
            double bestRatio = 0.0;
            for (int r = 0; r < m_; ++r) {
                const double arc =
                    a_[static_cast<size_t>(r)][static_cast<size_t>(entering)];
                if (arc > kEps) {
                    const double ratio = b_[static_cast<size_t>(r)] / arc;
                    if (leaving < 0 || ratio < bestRatio - kEps ||
                        (ratio < bestRatio + kEps &&
                         basis_[static_cast<size_t>(r)] <
                             basis_[static_cast<size_t>(leaving)])) {
                        leaving = r;
                        bestRatio = ratio;
                    }
                }
            }
            if (leaving < 0) return false;  // unbounded
            pivot(leaving, entering);
        }
        return true;
    }

    void pivot(int row, int col) {
        ++pivots_;
        auto& prow = a_[static_cast<size_t>(row)];
        const double pv = prow[static_cast<size_t>(col)];
        STREAK_ASSERT(std::abs(pv) > kEps,
                      "pivot on near-zero element {} at row {}, column {}",
                      pv, row, col);
        const size_t width = prow.size();
        for (double& v : prow) v /= pv;
        b_[static_cast<size_t>(row)] /= pv;
        for (int r = 0; r < m_; ++r) {
            if (r == row) continue;
            auto& rr = a_[static_cast<size_t>(r)];
            const double factor = rr[static_cast<size_t>(col)];
            if (factor == 0.0) continue;  // lint-ok: float-equality
            for (size_t c = 0; c < width; ++c) rr[c] -= factor * prow[c];
            rr[static_cast<size_t>(col)] = 0.0;  // fight round-off drift
            b_[static_cast<size_t>(r)] -= factor * b_[static_cast<size_t>(row)];
        }
        if (!red_.empty()) {
            const double factor = red_[static_cast<size_t>(col)];
            if (factor != 0.0) {  // lint-ok: float-equality
                for (size_t c = 0; c < width; ++c) red_[c] -= factor * prow[c];
                red_[static_cast<size_t>(col)] = 0.0;
            }
        }
        basis_[static_cast<size_t>(row)] = col;
    }

    int n_;
    int m_;
    std::vector<std::vector<double>> a_;
    std::vector<double> b_;
    std::vector<double> red_;
    std::vector<int> basis_;
    long pivots_ = 0;
};

}  // namespace

Solution solveLp(const Model& model) {
    // Shift variables so every lower bound becomes 0, emit bound rows for
    // finite upper bounds, add slack/surplus columns to reach Ax = b with
    // b >= 0.
    const int n = model.numVariables();
    std::vector<double> shift(static_cast<size_t>(n), 0.0);
    double constant = model.objectiveConstant;
    for (int v = 0; v < n; ++v) {
        shift[static_cast<size_t>(v)] = model.lower(v);
        constant += model.objectiveCoeff(v) * model.lower(v);
    }

    struct NormRow {
        std::vector<std::pair<int, double>> coeffs;
        Sense sense;
        double rhs;
    };
    std::vector<NormRow> rows;
    rows.reserve(model.rows().size());
    for (const Row& r : model.rows()) {
        NormRow nr{r.coeffs, r.sense, r.rhs};
        for (const auto& [v, coef] : r.coeffs) {
            nr.rhs -= coef * shift[static_cast<size_t>(v)];
        }
        rows.push_back(std::move(nr));
    }
    for (int v = 0; v < n; ++v) {
        const double ub = model.upper(v);
        if (ub < kInfinity) {
            rows.push_back(
                {{{v, 1.0}}, Sense::LessEqual, ub - shift[static_cast<size_t>(v)]});
        }
    }

    const int m = static_cast<int>(rows.size());
    int numSlack = 0;
    for (const NormRow& r : rows) {
        if (r.sense != Sense::Equal) ++numSlack;
    }
    const int structural = n + numSlack;
    SimplexTableau tableau(structural, m);
    std::vector<double> cost(static_cast<size_t>(structural), 0.0);
    for (int v = 0; v < n; ++v) {
        cost[static_cast<size_t>(v)] = model.objectiveCoeff(v);
    }

    int slackCol = n;
    for (int i = 0; i < m; ++i) {
        NormRow& r = rows[static_cast<size_t>(i)];
        double sign = 1.0;
        if (r.rhs < 0.0) {
            sign = -1.0;
            r.rhs = -r.rhs;
            if (r.sense == Sense::LessEqual) r.sense = Sense::GreaterEqual;
            else if (r.sense == Sense::GreaterEqual) r.sense = Sense::LessEqual;
        }
        for (const auto& [v, coef] : r.coeffs) tableau.setCoeff(i, v, sign * coef);
        tableau.setRhs(i, r.rhs);
        if (r.sense == Sense::LessEqual) {
            tableau.setCoeff(i, slackCol++, 1.0);
        } else if (r.sense == Sense::GreaterEqual) {
            tableau.setCoeff(i, slackCol++, -1.0);
        }
    }

    Solution sol;
    std::vector<double> x;
    double obj = 0.0;
    sol.status = tableau.solve(cost, &x, &obj);
    if (obs::detailEnabled()) {
        obs::counter("ilp/lp.solves").add(1);
        obs::counter("ilp/lp.pivots").add(tableau.pivots());
    }
    if (sol.status != SolveStatus::Optimal) return sol;
    sol.values.assign(static_cast<size_t>(n), 0.0);
    for (int v = 0; v < n; ++v) {
        sol.values[static_cast<size_t>(v)] =
            x[static_cast<size_t>(v)] + shift[static_cast<size_t>(v)];
    }
    sol.objective = obj + constant;
    return sol;
}

}  // namespace streak::ilp
