#include "ilp/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "check/assert.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak::ilp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kPivotTol = 1e-7;
constexpr double kFeasTol = 1e-7;

/// Local solve tallies, flushed once per solve call (any exit path) so
/// the pivot loops never touch the counter registry.
struct LpTally {
    long long solves = 0;
    long long pivots = 0;
    long long boundFlips = 0;
    long long warmStarts = 0;
    long long warmFallbacks = 0;

    ~LpTally() {
        if (!obs::detailEnabled()) return;
        obs::Session& sess = obs::session();
        sess.counter("ilp/lp.solves").add(solves);
        sess.counter("ilp/lp.pivots").add(pivots);
        sess.counter("ilp/lp.bound_flips").add(boundFlips);
        sess.counter("ilp/lp.warm_starts").add(warmStarts);
        sess.counter("ilp/lp.warm_fallbacks").add(warmFallbacks);
    }
};

// ---------------------------------------------------------------------------
// Bounded-variable simplex (the default engine)
// ---------------------------------------------------------------------------

/// Dense bounded-variable primal simplex on the flat row-major tableau
///   min c^T x   s.t.  A x = b,  0 <= x_j <= u_j
/// with u_j possibly infinite. Nonbasic variables sit at one of their
/// bounds; a variable whose cheapest move runs into its opposite bound is
/// *flipped* there in O(m) without a pivot. Column layout:
/// [0, nStruct) structural + slack columns, then one artificial per row
/// (the layout every warm-started child shares with its parent).
class BoundedSimplex {
public:
    BoundedSimplex(int nStruct, int numRows)
        : n_(nStruct), m_(numRows), total_(nStruct + numRows),
          a_(static_cast<size_t>(numRows) *
                 static_cast<size_t>(nStruct + numRows),
             0.0),
          b_(static_cast<size_t>(numRows), 0.0),
          upper_(static_cast<size_t>(nStruct + numRows),
                 std::numeric_limits<double>::infinity()),
          atUpper_(static_cast<size_t>(nStruct + numRows), 0),
          basis_(static_cast<size_t>(numRows), -1),
          inBasis_(static_cast<size_t>(nStruct + numRows), 0) {}

    double* row(int r) {
        return &a_[static_cast<size_t>(r) * static_cast<size_t>(total_)];
    }
    void setRhs(int r, double v) { b_[static_cast<size_t>(r)] = v; }
    void setUpper(int col, double u) { upper_[static_cast<size_t>(col)] = u; }
    /// Initial basic column for a row (the slack for `<=` rows, else the
    /// row's artificial); only meaningful before a cold solve().
    void setInitialBasis(int r, int col) {
        basis_[static_cast<size_t>(r)] = col;
        inBasis_[static_cast<size_t>(col)] = 1;
    }

    [[nodiscard]] long pivots() const { return pivots_; }
    [[nodiscard]] long boundFlips() const { return boundFlips_; }

    /// Deadline/cancellation ticket polled every few pivots; a trip
    /// throws out of the pivot loop (LpOptions::control).
    void setControl(const robust::Ticket& control) { control_ = control; }

    /// Cold solve: phase 1 (minimize the artificial sum, pricing *all*
    /// columns — restricting phase-1 pricing could misreport
    /// infeasibility) then phase 2 (structural pricing only, artificials
    /// pinned to zero).
    SolveStatus solve(const std::vector<double>& cost, std::vector<double>* x,
                      double* obj) {
        xB_ = b_;  // nonbasics all start at their lower bound 0
        std::vector<double> phase1(static_cast<size_t>(total_), 0.0);
        for (int c = n_; c < total_; ++c) phase1[static_cast<size_t>(c)] = 1.0;
        if (!runSimplex(phase1, total_)) return SolveStatus::Unbounded;
        double infeas = 0.0;
        for (int r = 0; r < m_; ++r) {
            if (basis_[static_cast<size_t>(r)] >= n_) {
                infeas += std::max(0.0, xB_[static_cast<size_t>(r)]);
            }
        }
        if (infeas > 1e-6) return SolveStatus::Infeasible;
        driveOutArtificials();
        return phase2(cost, x, obj);
    }

    /// Warm solve: adopt `basis`, refactorize, and go straight to phase
    /// 2. Returns false — caller must rebuild a fresh tableau and
    /// cold-solve — when the basis is singular for the current matrix or
    /// infeasible for the current bounds.
    bool warmSolve(const LpBasis& basis, const std::vector<double>& cost,
                   std::vector<double>* x, double* obj, SolveStatus* status) {
        if (static_cast<int>(basis.basic.size()) != m_) return false;
        if (static_cast<int>(basis.atUpper.size()) > n_) return false;
        std::fill(inBasis_.begin(), inBasis_.end(), 0);
        for (const int col : basis.basic) {
            if (col < 0 || col >= total_) return false;
            if (inBasis_[static_cast<size_t>(col)]) return false;  // duplicate
            inBasis_[static_cast<size_t>(col)] = 1;
        }
        // Adopt nonbasic statuses (they shape xB below). A parent
        // at-upper variable whose bound the child fixed to zero collapses
        // to at-lower; both bounds are zero so the value is unchanged.
        std::fill(atUpper_.begin(), atUpper_.end(), 0);
        for (int j = 0; j < static_cast<int>(basis.atUpper.size()); ++j) {
            if (!basis.atUpper[static_cast<size_t>(j)]) continue;
            if (inBasis_[static_cast<size_t>(j)]) return false;
            const double u = upper_[static_cast<size_t>(j)];
            if (!std::isfinite(u)) return false;
            if (u > 0.0) atUpper_[static_cast<size_t>(j)] = 1;
        }
        // Refactorize: Gauss-Jordan canonicalization over the warm basis
        // columns (honest pivot work, counted in `pivots`).
        for (int r = 0; r < m_; ++r) {
            const int col = basis.basic[static_cast<size_t>(r)];
            if (std::abs(valueAt(r, col)) <= kPivotTol) return false;  // singular
            basis_[static_cast<size_t>(r)] = col;
            pivot(r, col);
        }
        // Basic values under the adopted nonbasic statuses.
        xB_ = b_;
        for (int j = 0; j < n_; ++j) {
            if (!atUpper_[static_cast<size_t>(j)]) continue;
            const double u = upper_[static_cast<size_t>(j)];
            for (int r = 0; r < m_; ++r) {
                xB_[static_cast<size_t>(r)] -= valueAt(r, j) * u;
            }
        }
        // Primal feasibility under the *current* bounds. Artificials are
        // capped at zero from here on: a basic artificial that must be
        // positive means the warmed basis cannot represent a feasible
        // point, and the cold two-phase path should decide feasibility.
        for (int c = n_; c < total_; ++c) upper_[static_cast<size_t>(c)] = 0.0;
        for (int r = 0; r < m_; ++r) {
            const double v = xB_[static_cast<size_t>(r)];
            const double u =
                upper_[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
            if (v < -kFeasTol || v > u + kFeasTol) return false;
            xB_[static_cast<size_t>(r)] = std::clamp(v, 0.0, std::max(0.0, u));
        }
        *status = phase2(cost, x, obj);
        return true;
    }

    void exportBasis(LpBasis* out) const {
        out->basic = basis_;
        out->atUpper.assign(static_cast<size_t>(n_), 0);
        for (int j = 0; j < n_; ++j) {
            out->atUpper[static_cast<size_t>(j)] =
                atUpper_[static_cast<size_t>(j)];
        }
    }

private:
    [[nodiscard]] double valueAt(int r, int c) const {
        return a_[static_cast<size_t>(r) * static_cast<size_t>(total_) +
                  static_cast<size_t>(c)];
    }

    SolveStatus phase2(const std::vector<double>& cost, std::vector<double>* x,
                       double* obj) {
        // Artificials are pinned at zero (upper bound 0) and excluded
        // from pricing — no big-M cost needed.
        for (int c = n_; c < total_; ++c) upper_[static_cast<size_t>(c)] = 0.0;
        std::vector<double> phase2cost(static_cast<size_t>(total_), 0.0);
        for (int c = 0; c < n_; ++c) {
            phase2cost[static_cast<size_t>(c)] = cost[static_cast<size_t>(c)];
        }
        if (!runSimplex(phase2cost, n_)) return SolveStatus::Unbounded;

        x->assign(static_cast<size_t>(n_), 0.0);
        for (int j = 0; j < n_; ++j) {
            if (atUpper_[static_cast<size_t>(j)]) {
                (*x)[static_cast<size_t>(j)] = upper_[static_cast<size_t>(j)];
            }
        }
        for (int r = 0; r < m_; ++r) {
            const int bc = basis_[static_cast<size_t>(r)];
            if (bc < n_) {
                (*x)[static_cast<size_t>(bc)] = xB_[static_cast<size_t>(r)];
            }
        }
        *obj = 0.0;
        for (int j = 0; j < n_; ++j) {
            *obj += cost[static_cast<size_t>(j)] * (*x)[static_cast<size_t>(j)];
        }
        return SolveStatus::Optimal;
    }

    /// After phase 1, pivot basic artificials onto structural columns
    /// where possible; rows with no structural pivot are redundant. The
    /// entering column keeps its current value (0 or its upper bound) and
    /// the leaving artificial sits at ~0, so no variable actually moves:
    /// every basic value is preserved and row `r` takes the entering
    /// column's bound value.
    void driveOutArtificials() {
        for (int r = 0; r < m_; ++r) {
            const int leaving = basis_[static_cast<size_t>(r)];
            if (leaving < n_) continue;
            for (int c = 0; c < n_; ++c) {
                if (inBasis_[static_cast<size_t>(c)]) continue;
                if (std::abs(valueAt(r, c)) <= kPivotTol) continue;
                const double vc = atUpper_[static_cast<size_t>(c)]
                                      ? upper_[static_cast<size_t>(c)]
                                      : 0.0;
                inBasis_[static_cast<size_t>(leaving)] = 0;
                inBasis_[static_cast<size_t>(c)] = 1;
                basis_[static_cast<size_t>(r)] = c;
                atUpper_[static_cast<size_t>(c)] = 0;
                pivot(r, c);
                xB_[static_cast<size_t>(r)] = vc;
                break;
            }
        }
    }

    /// Bounded-variable primal simplex with the given cost vector,
    /// pricing columns [0, pricingLimit). Deterministic Dantzig rule
    /// (largest violation, smallest index on ties) with a Bland-style
    /// smallest-index fallback after maxIter/2. Returns false on
    /// unboundedness.
    bool runSimplex(const std::vector<double>& cost, int pricingLimit) {
        // Canonicalize the reduced-cost row against the current basis.
        red_ = cost;
        for (int r = 0; r < m_; ++r) {
            const double cb =
                cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
            if (cb == 0.0) continue;  // lint-ok: float-equality
            const double* pr = row(r);
            for (int c = 0; c < total_; ++c) {
                red_[static_cast<size_t>(c)] -= cb * pr[static_cast<size_t>(c)];
            }
        }

        const long maxIter = 20L * (m_ + static_cast<long>(total_)) + 2000;
        for (long iterations = 0;; ++iterations) {
            if (iterations > maxIter) break;  // stall guard
            // Tick point: a pivot sweeps O(m * total) entries, so a
            // strided clock poll is invisible next to the work.
            if ((iterations & 63) == 0) control_.checkpoint("lp/pivot");
            const bool useBland = iterations > maxIter / 2;

            // Entering: nonbasic at lower with negative reduced cost, or
            // nonbasic at a positive upper with positive reduced cost.
            // Fixed columns (upper == 0: phase-2 artificials, B&B
            // fixings) cannot move and are never priced in.
            int entering = -1;
            bool fromUpper = false;
            double best = 1e-7;
            for (int c = 0; c < pricingLimit; ++c) {
                const size_t sc = static_cast<size_t>(c);
                if (inBasis_[sc]) continue;
                if (upper_[sc] <= 0.0) continue;
                const double violation = atUpper_[sc] ? red_[sc] : -red_[sc];
                if (violation > best) {
                    entering = c;
                    fromUpper = atUpper_[sc] != 0;
                    if (useBland) break;
                    best = violation;
                }
            }
            if (entering < 0) return true;  // optimal

            // Ratio test. The entering variable moves off its bound by
            // t >= 0; basic variable in row r changes by -dir * a_re * t
            // where dir = +1 leaving the lower bound, -1 the upper.
            const double dir = fromUpper ? -1.0 : 1.0;
            const double uEnter = upper_[static_cast<size_t>(entering)];
            int leavingRow = -1;
            bool leavingToUpper = false;
            double bestT = std::numeric_limits<double>::infinity();
            for (int r = 0; r < m_; ++r) {
                const double delta = dir * valueAt(r, entering);
                const size_t sr = static_cast<size_t>(r);
                if (delta > kEps) {  // this basic decreases toward 0
                    const double t = xB_[sr] / delta;
                    if (leavingRow < 0 || t < bestT - kEps ||
                        (t < bestT + kEps &&
                         basis_[sr] < basis_[static_cast<size_t>(leavingRow)])) {
                        leavingRow = r;
                        leavingToUpper = false;
                        bestT = t;
                    }
                } else if (delta < -kEps) {  // increases toward its upper
                    const double ub =
                        upper_[static_cast<size_t>(basis_[sr])];
                    if (!std::isfinite(ub)) continue;
                    const double t = (ub - xB_[sr]) / (-delta);
                    if (leavingRow < 0 || t < bestT - kEps ||
                        (t < bestT + kEps &&
                         basis_[sr] < basis_[static_cast<size_t>(leavingRow)])) {
                        leavingRow = r;
                        leavingToUpper = true;
                        bestT = t;
                    }
                }
            }

            if (uEnter <= bestT) {
                // Bound flip: the entering variable reaches its opposite
                // bound before any basic blocks. O(m), no pivot.
                if (!std::isfinite(uEnter)) return false;  // unbounded
                for (int r = 0; r < m_; ++r) {
                    xB_[static_cast<size_t>(r)] -=
                        dir * valueAt(r, entering) * uEnter;
                }
                atUpper_[static_cast<size_t>(entering)] = fromUpper ? 0 : 1;
                ++boundFlips_;
                continue;
            }
            if (leavingRow < 0) return false;  // unbounded
            const double t = std::max(0.0, bestT);

            // Move the basics, settle the leaving variable on its bound,
            // then pivot the entering column into the basis.
            for (int r = 0; r < m_; ++r) {
                xB_[static_cast<size_t>(r)] -= dir * valueAt(r, entering) * t;
            }
            const int leaving = basis_[static_cast<size_t>(leavingRow)];
            const size_t sl = static_cast<size_t>(leaving);
            if (leavingToUpper) {
                atUpper_[sl] = 1;
                xB_[static_cast<size_t>(leavingRow)] = upper_[sl];  // exact
            } else {
                atUpper_[sl] = 0;
                xB_[static_cast<size_t>(leavingRow)] = 0.0;  // exact
            }
            inBasis_[sl] = 0;
            inBasis_[static_cast<size_t>(entering)] = 1;
            basis_[static_cast<size_t>(leavingRow)] = entering;
            pivot(leavingRow, entering);
            xB_[static_cast<size_t>(leavingRow)] = fromUpper ? uEnter - t : t;
        }
        return true;
    }

    /// Row elimination making column `col` the `row`-th unit vector.
    /// Updates the reduced-cost row when present. Does NOT touch xB_:
    /// basic values are maintained directly by the callers (b_ only
    /// tracks the canonical all-nonbasics-at-zero rhs).
    void pivot(int row_, int col) {
        ++pivots_;
        double* prow = row(row_);
        const double pv = prow[static_cast<size_t>(col)];
        STREAK_ASSERT(std::abs(pv) > kEps,
                      "pivot on near-zero element {} at row {}, column {}",
                      pv, row_, col);
        for (int c = 0; c < total_; ++c) prow[static_cast<size_t>(c)] /= pv;
        b_[static_cast<size_t>(row_)] /= pv;
        for (int r = 0; r < m_; ++r) {
            if (r == row_) continue;
            double* rr = row(r);
            const double factor = rr[static_cast<size_t>(col)];
            if (factor == 0.0) continue;  // lint-ok: float-equality
            for (int c = 0; c < total_; ++c) {
                rr[static_cast<size_t>(c)] -=
                    factor * prow[static_cast<size_t>(c)];
            }
            rr[static_cast<size_t>(col)] = 0.0;  // fight round-off drift
            b_[static_cast<size_t>(r)] -= factor * b_[static_cast<size_t>(row_)];
        }
        if (!red_.empty()) {
            const double factor = red_[static_cast<size_t>(col)];
            if (factor != 0.0) {  // lint-ok: float-equality
                for (int c = 0; c < total_; ++c) {
                    red_[static_cast<size_t>(c)] -=
                        factor * prow[static_cast<size_t>(c)];
                }
                red_[static_cast<size_t>(col)] = 0.0;
            }
        }
    }

    int n_;      // structural + slack columns
    int m_;      // rows
    int total_;  // n_ + one artificial per row
    std::vector<double> a_;   // flat row-major tableau, width total_
    std::vector<double> b_;   // canonical rhs (all nonbasics at 0)
    std::vector<double> xB_;  // actual basic values (bounds-aware)
    std::vector<double> red_;
    std::vector<double> upper_;
    std::vector<std::uint8_t> atUpper_;
    std::vector<int> basis_;
    std::vector<std::uint8_t> inBasis_;
    long pivots_ = 0;
    long boundFlips_ = 0;
    robust::Ticket control_;  // idle unless LpOptions carried one
};

/// Shared shift-to-zero-lower-bound preprocessing for the bounded
/// engine. Rows keep their original order; rhs-negative rows are scaled
/// by -1 (sense flipped) so every artificial starts nonnegative. The
/// column layout — structural, then one slack per inequality row in row
/// order, then one artificial per row — depends only on the senses and
/// the row order, so a parent and a child model (same rows, different
/// bounds) always agree on it even when the scaling differs.
struct PreparedLp {
    int n = 0;         // model variables
    int numSlack = 0;  // inequality rows
    int m = 0;         // rows
    double constant = 0.0;
    std::vector<double> shift;
    std::vector<double> upper;  // shifted upper bound per variable
    struct NormRow {
        std::vector<std::pair<int, double>> coeffs;
        Sense sense;
        double rhs;
    };
    std::vector<NormRow> rows;
    bool contradictoryBounds = false;
};

PreparedLp prepare(const Model& model) {
    PreparedLp p;
    p.n = model.numVariables();
    p.constant = model.objectiveConstant;
    p.shift.assign(static_cast<size_t>(p.n), 0.0);
    p.upper.assign(static_cast<size_t>(p.n), kInfinity);
    for (int v = 0; v < p.n; ++v) {
        const double lo = model.lower(v);
        p.shift[static_cast<size_t>(v)] = lo;
        p.constant += model.objectiveCoeff(v) * lo;
        const double ub = model.upper(v);
        if (ub < kInfinity) {
            const double u = ub - lo;
            if (u < -kFeasTol) p.contradictoryBounds = true;
            p.upper[static_cast<size_t>(v)] = std::max(0.0, u);
        }
    }
    p.rows.reserve(model.rows().size());
    for (const Row& r : model.rows()) {
        PreparedLp::NormRow nr{r.coeffs, r.sense, r.rhs};
        for (const auto& [v, coef] : nr.coeffs) {
            nr.rhs -= coef * p.shift[static_cast<size_t>(v)];
        }
        if (nr.rhs < 0.0) {
            nr.rhs = -nr.rhs;
            for (auto& [v, coef] : nr.coeffs) coef = -coef;
            if (nr.sense == Sense::LessEqual) {
                nr.sense = Sense::GreaterEqual;
            } else if (nr.sense == Sense::GreaterEqual) {
                nr.sense = Sense::LessEqual;
            }
        }
        p.rows.push_back(std::move(nr));
    }
    p.m = static_cast<int>(p.rows.size());
    for (const PreparedLp::NormRow& r : p.rows) {
        if (r.sense != Sense::Equal) ++p.numSlack;
    }
    return p;
}

/// Build the bounded tableau from a prepared model. The initial basis is
/// only meaningful for cold solves (the slack for `<=` rows, else the
/// row's artificial); warm solves overwrite it.
void buildBounded(const PreparedLp& p, BoundedSimplex* s) {
    const int nStruct = p.n + p.numSlack;
    int slackCol = p.n;
    for (int i = 0; i < p.m; ++i) {
        const PreparedLp::NormRow& r = p.rows[static_cast<size_t>(i)];
        double* row = s->row(i);
        for (const auto& [v, coef] : r.coeffs) {
            row[static_cast<size_t>(v)] += coef;
        }
        s->setRhs(i, r.rhs);
        const int art = nStruct + i;
        row[static_cast<size_t>(art)] = 1.0;
        if (r.sense == Sense::LessEqual) {
            row[static_cast<size_t>(slackCol)] = 1.0;
            s->setInitialBasis(i, slackCol++);
        } else if (r.sense == Sense::GreaterEqual) {
            row[static_cast<size_t>(slackCol++)] = -1.0;
            s->setInitialBasis(i, art);
        } else {
            s->setInitialBasis(i, art);
        }
    }
    for (int v = 0; v < p.n; ++v) {
        s->setUpper(v, p.upper[static_cast<size_t>(v)]);
    }
}

// ---------------------------------------------------------------------------
// Legacy engine (explicit upper-bound rows) — the equivalence oracle
// ---------------------------------------------------------------------------

/// Dense two-phase primal simplex on the tableau
///   min c^T x  s.t.  A x = b,  x >= 0,  b >= 0.
/// Columns [0, n) are structural; one artificial per row is appended.
/// The reduced-cost row is kept in canonical form and updated on pivots.
class SimplexTableau {
public:
    SimplexTableau(int numStructural, int numRows)
        : n_(numStructural), m_(numRows),
          a_(static_cast<size_t>(numRows),
             std::vector<double>(static_cast<size_t>(numStructural + numRows),
                                 0.0)),
          b_(static_cast<size_t>(numRows), 0.0),
          basis_(static_cast<size_t>(numRows), -1) {}

    void setCoeff(int row, int col, double v) {
        a_[static_cast<size_t>(row)][static_cast<size_t>(col)] = v;
    }
    void setRhs(int row, double v) { b_[static_cast<size_t>(row)] = v; }

    /// Phase 1 + Phase 2. On Optimal, `x` receives the structural solution
    /// and `obj` the objective value.
    SolveStatus solve(const std::vector<double>& cost, std::vector<double>* x,
                      double* obj) {
        const int total = n_ + m_;
        for (int r = 0; r < m_; ++r) {
            a_[static_cast<size_t>(r)][static_cast<size_t>(n_ + r)] = 1.0;
            basis_[static_cast<size_t>(r)] = n_ + r;
        }
        // Phase 1: minimize the sum of artificials (pricing all columns).
        std::vector<double> phase1(static_cast<size_t>(total), 0.0);
        for (int c = n_; c < total; ++c) phase1[static_cast<size_t>(c)] = 1.0;
        if (!runSimplex(phase1, total)) return SolveStatus::Unbounded;
        if (objectiveOf(phase1) > 1e-6) return SolveStatus::Infeasible;

        // Drive remaining artificials out of the basis where possible;
        // rows where no structural pivot exists are redundant.
        for (int r = 0; r < m_; ++r) {
            if (basis_[static_cast<size_t>(r)] < n_) continue;
            for (int c = 0; c < n_; ++c) {
                if (std::abs(a_[static_cast<size_t>(r)][static_cast<size_t>(c)]) >
                    1e-7) {
                    pivot(r, c);
                    break;
                }
            }
        }

        // Phase 2: real costs. Artificial columns are excluded from
        // entering selection (they can never profitably re-enter), which
        // also retires the old 1e12 big-M cost hack: any artificial still
        // basic sits at ~0 on a redundant row and carries zero cost.
        std::vector<double> phase2(static_cast<size_t>(total), 0.0);
        for (int c = 0; c < n_; ++c) {
            phase2[static_cast<size_t>(c)] = cost[static_cast<size_t>(c)];
        }
        if (!runSimplex(phase2, n_)) return SolveStatus::Unbounded;

        x->assign(static_cast<size_t>(n_), 0.0);
        for (int r = 0; r < m_; ++r) {
            const int bc = basis_[static_cast<size_t>(r)];
            if (bc < n_) (*x)[static_cast<size_t>(bc)] = b_[static_cast<size_t>(r)];
        }
        *obj = 0.0;
        for (int c = 0; c < n_; ++c) {
            *obj += cost[static_cast<size_t>(c)] * (*x)[static_cast<size_t>(c)];
        }
        return SolveStatus::Optimal;
    }

    /// Pivots performed across both phases (flushed to the counter
    /// registry by solveLpLegacy, keeping the pivot loop registry-free).
    [[nodiscard]] long pivots() const { return pivots_; }

private:
    [[nodiscard]] double objectiveOf(const std::vector<double>& cost) const {
        double v = 0.0;
        for (int r = 0; r < m_; ++r) {
            v += cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])] *
                 b_[static_cast<size_t>(r)];
        }
        return v;
    }

    /// Primal simplex with the given cost vector, pricing columns
    /// [0, pricingLimit). Maintains the reduced cost row incrementally.
    /// Returns false on unboundedness.
    bool runSimplex(const std::vector<double>& cost, int pricingLimit) {
        const size_t total = cost.size();
        // Canonicalize the reduced-cost row against the current basis.
        red_ = cost;
        for (int r = 0; r < m_; ++r) {
            const double cb =
                cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
            if (cb == 0.0) continue;  // lint-ok: float-equality
            const auto& row = a_[static_cast<size_t>(r)];
            for (size_t c = 0; c < total; ++c) red_[c] -= cb * row[c];
        }

        const long maxIter = 20L * (m_ + static_cast<long>(total)) + 2000;
        for (long iterations = 0;; ++iterations) {
            if (iterations > maxIter) break;  // stall guard
            const bool useBland = iterations > maxIter / 2;

            int entering = -1;
            double best = -1e-7;
            for (int c = 0; c < pricingLimit; ++c) {
                if (red_[static_cast<size_t>(c)] < best) {
                    entering = c;
                    if (useBland) break;
                    best = red_[static_cast<size_t>(c)];
                }
            }
            if (entering < 0) return true;  // optimal

            int leaving = -1;
            double bestRatio = 0.0;
            for (int r = 0; r < m_; ++r) {
                const double arc =
                    a_[static_cast<size_t>(r)][static_cast<size_t>(entering)];
                if (arc > kEps) {
                    const double ratio = b_[static_cast<size_t>(r)] / arc;
                    if (leaving < 0 || ratio < bestRatio - kEps ||
                        (ratio < bestRatio + kEps &&
                         basis_[static_cast<size_t>(r)] <
                             basis_[static_cast<size_t>(leaving)])) {
                        leaving = r;
                        bestRatio = ratio;
                    }
                }
            }
            if (leaving < 0) return false;  // unbounded
            pivot(leaving, entering);
        }
        return true;
    }

    void pivot(int row, int col) {
        ++pivots_;
        auto& prow = a_[static_cast<size_t>(row)];
        const double pv = prow[static_cast<size_t>(col)];
        STREAK_ASSERT(std::abs(pv) > kEps,
                      "pivot on near-zero element {} at row {}, column {}",
                      pv, row, col);
        const size_t width = prow.size();
        for (double& v : prow) v /= pv;
        b_[static_cast<size_t>(row)] /= pv;
        for (int r = 0; r < m_; ++r) {
            if (r == row) continue;
            auto& rr = a_[static_cast<size_t>(r)];
            const double factor = rr[static_cast<size_t>(col)];
            if (factor == 0.0) continue;  // lint-ok: float-equality
            for (size_t c = 0; c < width; ++c) rr[c] -= factor * prow[c];
            rr[static_cast<size_t>(col)] = 0.0;  // fight round-off drift
            b_[static_cast<size_t>(r)] -= factor * b_[static_cast<size_t>(row)];
        }
        if (!red_.empty()) {
            const double factor = red_[static_cast<size_t>(col)];
            if (factor != 0.0) {  // lint-ok: float-equality
                for (size_t c = 0; c < width; ++c) red_[c] -= factor * prow[c];
                red_[static_cast<size_t>(col)] = 0.0;
            }
        }
        basis_[static_cast<size_t>(row)] = col;
    }

    int n_;
    int m_;
    std::vector<std::vector<double>> a_;
    std::vector<double> b_;
    std::vector<double> red_;
    std::vector<int> basis_;
    long pivots_ = 0;
};

}  // namespace

Solution solveLp(const Model& model) { return solveLp(model, LpOptions{}); }

Solution solveLp(const Model& model, const LpOptions& opts) {
    STREAK_FAULT_POINT("lp/solve");
    LpTally tally;
    tally.solves = 1;
    const PreparedLp p = prepare(model);
    Solution sol;
    if (p.contradictoryBounds) {
        sol.status = SolveStatus::Infeasible;
        return sol;
    }
    const int nStruct = p.n + p.numSlack;

    std::vector<double> cost(static_cast<size_t>(nStruct), 0.0);
    for (int v = 0; v < p.n; ++v) {
        cost[static_cast<size_t>(v)] = model.objectiveCoeff(v);
    }

    std::vector<double> x;
    double obj = 0.0;
    bool solved = false;

    if (opts.warmBasis != nullptr && !opts.warmBasis->empty()) {
        BoundedSimplex warm(nStruct, p.m);
        warm.setControl(opts.control);
        buildBounded(p, &warm);
        SolveStatus st{};
        if (warm.warmSolve(*opts.warmBasis, cost, &x, &obj, &st)) {
            tally.warmStarts = 1;
            tally.pivots = warm.pivots();
            tally.boundFlips = warm.boundFlips();
            sol.status = st;
            if (st == SolveStatus::Optimal && opts.basisOut != nullptr) {
                warm.exportBasis(opts.basisOut);
            }
            solved = true;
        } else {
            tally.warmFallbacks = 1;
            tally.pivots = warm.pivots();
        }
    }

    if (!solved) {
        BoundedSimplex cold(nStruct, p.m);
        cold.setControl(opts.control);
        buildBounded(p, &cold);
        sol.status = cold.solve(cost, &x, &obj);
        tally.pivots += cold.pivots();
        tally.boundFlips += cold.boundFlips();
        if (sol.status == SolveStatus::Optimal && opts.basisOut != nullptr) {
            cold.exportBasis(opts.basisOut);
        }
    }

    if (sol.status != SolveStatus::Optimal) return sol;
    sol.values.assign(static_cast<size_t>(p.n), 0.0);
    for (int v = 0; v < p.n; ++v) {
        sol.values[static_cast<size_t>(v)] =
            x[static_cast<size_t>(v)] + p.shift[static_cast<size_t>(v)];
    }
    sol.objective = obj + p.constant;
    return sol;
}

Solution solveLpLegacy(const Model& model) {
    // Shift variables so every lower bound becomes 0, emit bound rows for
    // finite upper bounds, add slack/surplus columns to reach Ax = b with
    // b >= 0.
    LpTally tally;
    tally.solves = 1;
    const int n = model.numVariables();
    std::vector<double> shift(static_cast<size_t>(n), 0.0);
    double constant = model.objectiveConstant;
    for (int v = 0; v < n; ++v) {
        shift[static_cast<size_t>(v)] = model.lower(v);
        constant += model.objectiveCoeff(v) * model.lower(v);
    }

    struct NormRow {
        std::vector<std::pair<int, double>> coeffs;
        Sense sense;
        double rhs;
    };
    std::vector<NormRow> rows;
    rows.reserve(model.rows().size());
    for (const Row& r : model.rows()) {
        NormRow nr{r.coeffs, r.sense, r.rhs};
        for (const auto& [v, coef] : r.coeffs) {
            nr.rhs -= coef * shift[static_cast<size_t>(v)];
        }
        rows.push_back(std::move(nr));
    }
    for (int v = 0; v < n; ++v) {
        const double ub = model.upper(v);
        if (ub < kInfinity) {
            rows.push_back({{{v, 1.0}},
                            Sense::LessEqual,
                            ub - shift[static_cast<size_t>(v)]});
        }
    }

    const int m = static_cast<int>(rows.size());
    int numSlack = 0;
    for (const NormRow& r : rows) {
        if (r.sense != Sense::Equal) ++numSlack;
    }
    const int structural = n + numSlack;
    SimplexTableau tableau(structural, m);
    std::vector<double> cost(static_cast<size_t>(structural), 0.0);
    for (int v = 0; v < n; ++v) {
        cost[static_cast<size_t>(v)] = model.objectiveCoeff(v);
    }

    int slackCol = n;
    for (int i = 0; i < m; ++i) {
        NormRow& r = rows[static_cast<size_t>(i)];
        double sign = 1.0;
        if (r.rhs < 0.0) {
            sign = -1.0;
            r.rhs = -r.rhs;
            if (r.sense == Sense::LessEqual) r.sense = Sense::GreaterEqual;
            else if (r.sense == Sense::GreaterEqual) r.sense = Sense::LessEqual;
        }
        for (const auto& [v, coef] : r.coeffs) tableau.setCoeff(i, v, sign * coef);
        tableau.setRhs(i, r.rhs);
        if (r.sense == Sense::LessEqual) {
            tableau.setCoeff(i, slackCol++, 1.0);
        } else if (r.sense == Sense::GreaterEqual) {
            tableau.setCoeff(i, slackCol++, -1.0);
        }
    }

    Solution sol;
    std::vector<double> x;
    double obj = 0.0;
    sol.status = tableau.solve(cost, &x, &obj);
    tally.pivots = tableau.pivots();
    if (sol.status != SolveStatus::Optimal) return sol;
    sol.values.assign(static_cast<size_t>(n), 0.0);
    for (int v = 0; v < n; ++v) {
        sol.values[static_cast<size_t>(v)] =
            x[static_cast<size_t>(v)] + shift[static_cast<size_t>(v)];
    }
    sol.objective = obj + constant;
    return sol;
}

}  // namespace streak::ilp
