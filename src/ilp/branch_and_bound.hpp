// 0/1 branch-and-bound ILP solver over the simplex LP relaxation.
//
// Best-bound node selection, most-fractional branching, optional time /
// node limits (used to reproduce the paper's ">3600 s" ILP timeout rows).
#pragma once

#include "ilp/lp.hpp"
#include "ilp/model.hpp"

namespace streak::ilp {

struct BnbOptions {
    double timeLimitSeconds = 60.0;
    long maxNodes = 1000000;
    /// Absolute incumbent-vs-bound gap considered proven optimal.
    double gapTolerance = 1e-6;
    /// Known upper bound from a warm-start solution (e.g. a primal-dual
    /// result): nodes at or above it are pruned, so the search only looks
    /// for strictly better solutions. +inf disables.
    double initialUpperBound = kInfinity;
    /// Simplex engine for the LP relaxations (Legacy is the slower
    /// explicit-bound-row oracle, kept for cross-checks and benches).
    LpEngine lpEngine = LpEngine::Bounded;
    /// Re-solve child nodes phase-2-only from the parent's final simplex
    /// basis (Bounded engine only); stale bases cold-solve automatically.
    bool lpWarmStart = true;
    /// Deadline/cancellation ticket polled once per node (and threaded
    /// into every LP relaxation solve). Unlike timeLimitSeconds — which
    /// ends the search with the incumbent — a trip unwinds the solve
    /// with a structured StreakError.
    robust::Ticket control;
};

struct BnbStats {
    long nodesExplored = 0;
    bool hitLimit = false;
    double bestBound = 0.0;
};

/// Minimize the model with its integer variables restricted to {0, 1}.
/// Status: Optimal (proven), Feasible (incumbent, limit hit), Infeasible,
/// or Limit (limit hit before any incumbent).
[[nodiscard]] Solution solveIlp(const Model& model, const BnbOptions& opts = {},
                                BnbStats* stats = nullptr);

}  // namespace streak::ilp
