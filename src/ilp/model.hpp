// A small linear / 0-1 integer programming model.
//
// This is the in-house substitute for the commercial ILP solver the paper
// uses (GUROBI): a plain dense model description consumed by the simplex
// LP solver (lp.hpp) and the branch-and-bound ILP solver
// (branch_and_bound.hpp).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace streak::ilp {

enum class Sense { LessEqual, Equal, GreaterEqual };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Sparse row: sum coeff_k * x_{var_k}  (sense)  rhs.
struct Row {
    std::vector<std::pair<int, double>> coeffs;
    Sense sense = Sense::LessEqual;
    double rhs = 0.0;
};

/// Minimization model. Variables are continuous in [lower, upper] unless
/// flagged integer (then they must be binary: bounds within [0, 1]).
class Model {
public:
    /// Add a variable; returns its index.
    int addVariable(double objectiveCoeff, bool integer, double lower = 0.0,
                    double upper = kInfinity);

    void addRow(Row row) { rows_.push_back(std::move(row)); }
    void addRow(std::vector<std::pair<int, double>> coeffs, Sense sense,
                double rhs) {
        rows_.push_back({std::move(coeffs), sense, rhs});
    }

    [[nodiscard]] int numVariables() const { return static_cast<int>(objective_.size()); }
    [[nodiscard]] int numRows() const { return static_cast<int>(rows_.size()); }
    [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
    [[nodiscard]] double objectiveCoeff(int v) const { return objective_[static_cast<size_t>(v)]; }
    [[nodiscard]] bool isInteger(int v) const { return integer_[static_cast<size_t>(v)]; }
    [[nodiscard]] double lower(int v) const { return lower_[static_cast<size_t>(v)]; }
    [[nodiscard]] double upper(int v) const { return upper_[static_cast<size_t>(v)]; }

    double objectiveConstant = 0.0;

private:
    std::vector<double> objective_;
    std::vector<bool> integer_;
    std::vector<double> lower_;
    std::vector<double> upper_;
    std::vector<Row> rows_;
};

enum class SolveStatus {
    Optimal,      // proven optimal
    Feasible,     // feasible incumbent, limit hit before proof
    Infeasible,   // proven infeasible
    Unbounded,    // LP unbounded below
    Limit,        // limit hit with no incumbent
};

struct Solution {
    SolveStatus status = SolveStatus::Limit;
    double objective = 0.0;
    std::vector<double> values;

    [[nodiscard]] bool hasSolution() const {
        return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
    }
};

}  // namespace streak::ilp
