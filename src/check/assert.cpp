#include "check/assert.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace streak::check {

namespace {

int parseLevel(const char* text) {
    const std::string s(text);
    if (s == "off" || s == "0") return 0;
    if (s == "cheap" || s == "1") return 1;
    if (s == "deep" || s == "2") return 2;
    return -1;
}

int initialLevel() {
    if (const char* env = std::getenv("STREAK_CHECKS")) {
        const int parsed = parseLevel(env);
        if (parsed >= 0) return parsed;
        std::cerr << "streak: ignoring unrecognized STREAK_CHECKS value '"
                  << env << "' (want off|cheap|deep)\n";
    }
    return kCompiledLevel;
}

std::atomic<int>& levelStore() {
    static std::atomic<int> level{initialLevel()};
    return level;
}

std::atomic<FailureHandler>& handlerStore() {
    static std::atomic<FailureHandler> handler{nullptr};
    return handler;
}

}  // namespace

Level runtimeLevel() { return static_cast<Level>(levelStore().load()); }

void setRuntimeLevel(Level level) {
    levelStore().store(static_cast<int>(level));
}

FailureHandler setFailureHandler(FailureHandler handler) {
    return handlerStore().exchange(handler);
}

void throwingFailureHandler(const std::string& message) {
    throw CheckFailure(message);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& detail) {
    std::ostringstream os;
    os << "streak " << kind << " failed: " << expr;
    if (!detail.empty()) os << "\n  " << detail;
    os << "\n  at " << file << ':' << line << '\n';
    const std::string message = os.str();
    if (const FailureHandler handler = handlerStore().load()) {
        handler(message);  // may throw (tests); falls through otherwise
    }
    // Checks may fire concurrently from pool workers: emit the fully
    // formatted message as one serialized write + flush so reports never
    // interleave, then abort.
    {
        static std::mutex mutex;
        const std::lock_guard<std::mutex> lock(mutex);
        std::cerr.write(message.data(),
                        static_cast<std::streamsize>(message.size()));
        std::cerr.flush();
    }
    std::abort();
}

std::string AuditResult::summary(size_t maxShown) const {
    std::ostringstream os;
    os << (subject.empty() ? "audit" : subject) << ": " << issues.size()
       << (full() ? "+" : "") << " issue(s)";
    const size_t shown = issues.size() < maxShown ? issues.size() : maxShown;
    for (size_t i = 0; i < shown; ++i) os << "\n  - " << issues[i];
    if (issues.size() > shown) {
        os << "\n  - ... " << (issues.size() - shown) << " more";
    }
    return os.str();
}

void enforce(const AuditResult& result, const char* expr, const char* file,
             int line) {
    if (result.ok()) return;
    fail("audit", expr, file, line, result.summary());
}

}  // namespace streak::check
