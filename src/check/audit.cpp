#include "check/audit.hpp"

#include <algorithm>
#include <cmath>

#include "core/candidate.hpp"

namespace streak::check {

namespace {

constexpr double kObjectiveEps = 1e-6;

/// "edge 17 (layer 2, (3,4))" — the contextual id reports point at.
std::string edgeContext(const grid::RoutingGrid& grid, int edge) {
    const grid::RoutingGrid::EdgeCoord c = grid.edgeCoord(edge);
    return format("edge {} (layer {}, ({},{}))", edge, c.layer, c.x, c.y);
}

bool validLayerPair(const grid::RoutingGrid& grid, int hLayer, int vLayer) {
    return hLayer >= 0 && hLayer < grid.numLayers() && vLayer >= 0 &&
           vLayer < grid.numLayers() &&
           grid.layerDir(hLayer) == grid::Dir::Horizontal &&
           grid.layerDir(vLayer) == grid::Dir::Vertical;
}

void auditDemandList(const grid::RoutingGrid& grid,
                     const std::vector<std::pair<int, int>>& demand, int limit,
                     const char* what, int obj, int cand, AuditResult* r) {
    int prev = -1;
    for (const auto& [id, amount] : demand) {
        if (id <= prev) {
            r->addf("object {} candidate {}: {} demand not sorted/unique at {}",
                    obj, cand, what, id);
        }
        prev = id;
        if (id < 0 || id >= limit) {
            r->addf("object {} candidate {}: {} id {} out of range [0,{})", obj,
                    cand, what, id, limit);
        }
        if (amount <= 0) {
            r->addf("object {} candidate {}: {} {} has non-positive demand {}",
                    obj, cand, what, id, amount);
        }
        if (r->full()) return;
    }
    (void)grid;
}

}  // namespace

AuditResult auditProblem(const RoutingProblem& prob) {
    AuditResult r;
    r.subject = "problem";
    if (prob.design == nullptr) {
        r.addf("design pointer is null");
        return r;
    }
    const grid::RoutingGrid& grid = prob.design->grid;
    const int numObjects = prob.numObjects();
    const int numGroups = prob.design->numGroups();
    if (static_cast<int>(prob.candidates.size()) != numObjects) {
        r.addf("candidate sets ({}) != objects ({})", prob.candidates.size(),
               numObjects);
        return r;
    }

    for (int i = 0; i < numObjects && !r.full(); ++i) {
        const RoutingObject& obj = prob.objects[static_cast<size_t>(i)];
        if (obj.groupIndex < 0 || obj.groupIndex >= numGroups) {
            r.addf("object {}: group index {} out of range [0,{})", i,
                   obj.groupIndex, numGroups);
            continue;
        }
        const SignalGroup& group =
            prob.design->groups[static_cast<size_t>(obj.groupIndex)];
        for (const int bit : obj.bitIndices) {
            if (bit < 0 || bit >= group.width()) {
                r.addf("object {}: bit index {} outside group '{}' ({} bits)",
                       i, bit, group.name, group.width());
            }
        }
        const auto& cands = prob.candidates[static_cast<size_t>(i)];
        for (size_t j = 0; j < cands.size() && !r.full(); ++j) {
            const RouteCandidate& c = cands[j];
            if (!std::isfinite(c.cost) || c.cost < 0.0) {
                r.addf("object {} candidate {}: cost {} not finite and >= 0",
                       i, j, c.cost);
            }
            if (static_cast<int>(c.bitTopologies.size()) != obj.width()) {
                r.addf("object {} candidate {}: {} bit topologies for a "
                       "{}-bit object",
                       i, j, c.bitTopologies.size(), obj.width());
            }
            if (!validLayerPair(grid, c.hLayer, c.vLayer)) {
                r.addf("object {} candidate {}: layer pair (h={}, v={}) "
                       "invalid for this stack",
                       i, j, c.hLayer, c.vLayer);
            }
            auditDemandList(grid, c.edgeUse, grid.numEdges(), "edge", i,
                            static_cast<int>(j), &r);
            auditDemandList(grid, c.viaUse, grid.numCells(), "via cell", i,
                            static_cast<int>(j), &r);
        }
    }

    if (static_cast<int>(prob.groupObjects.size()) != numGroups) {
        r.addf("groupObjects has {} entries for {} groups",
               prob.groupObjects.size(), numGroups);
    } else {
        for (int g = 0; g < numGroups && !r.full(); ++g) {
            for (const int id : prob.groupObjects[static_cast<size_t>(g)]) {
                if (id < 0 || id >= numObjects) {
                    r.addf("group {}: object id {} out of range", g, id);
                } else if (prob.objects[static_cast<size_t>(id)].groupIndex !=
                           g) {
                    r.addf("group {}: object {} claims group {}", g, id,
                           prob.objects[static_cast<size_t>(id)].groupIndex);
                }
            }
        }
    }

    for (size_t b = 0; b < prob.pairBlocks.size() && !r.full(); ++b) {
        const PairBlock& pb = prob.pairBlocks[b];
        if (pb.objA < 0 || pb.objB >= numObjects || pb.objA >= pb.objB) {
            r.addf("pair block {}: endpoints ({}, {}) invalid", b, pb.objA,
                   pb.objB);
            continue;
        }
        const size_t candsA = prob.candidates[static_cast<size_t>(pb.objA)].size();
        const size_t candsB = prob.candidates[static_cast<size_t>(pb.objB)].size();
        if (pb.cost.size() != candsA) {
            r.addf("pair block {}: {} cost rows for {} candidates of object {}",
                   b, pb.cost.size(), candsA, pb.objA);
            continue;
        }
        for (const auto& row : pb.cost) {
            if (row.size() != candsB) {
                r.addf("pair block {}: cost row width {} != {} candidates of "
                       "object {}",
                       b, row.size(), candsB, pb.objB);
                break;
            }
            for (const double c : row) {
                if (!std::isfinite(c) || c < 0.0) {
                    r.addf("pair block {}: cost {} not finite and >= 0", b, c);
                    break;
                }
            }
        }
    }

    if (static_cast<int>(prob.pairsOf.size()) != numObjects) {
        r.addf("pairsOf has {} entries for {} objects", prob.pairsOf.size(),
               numObjects);
    } else {
        const int numBlocks = static_cast<int>(prob.pairBlocks.size());
        for (int i = 0; i < numObjects && !r.full(); ++i) {
            for (const int block : prob.pairsOf[static_cast<size_t>(i)]) {
                if (block < 0 || block >= numBlocks) {
                    r.addf("object {}: pair block index {} out of range", i,
                           block);
                } else {
                    const PairBlock& pb =
                        prob.pairBlocks[static_cast<size_t>(block)];
                    if (pb.objA != i && pb.objB != i) {
                        r.addf("object {}: listed pair block {} joins ({}, {})",
                               i, block, pb.objA, pb.objB);
                    }
                }
            }
        }
    }
    return r;
}

AuditResult auditSolution(const RoutingProblem& prob,
                          const RoutingSolution& sol) {
    AuditResult r;
    r.subject = "solution";
    if (prob.design == nullptr) {
        r.addf("design pointer is null");
        return r;
    }
    const grid::RoutingGrid& grid = prob.design->grid;
    const int numObjects = prob.numObjects();
    if (static_cast<int>(sol.chosen.size()) != numObjects) {
        r.addf("chosen has {} entries for {} objects", sol.chosen.size(),
               numObjects);
        return r;
    }

    bool indicesOk = true;
    std::vector<long> usage(static_cast<size_t>(grid.numEdges()), 0);
    std::vector<long> vias(static_cast<size_t>(grid.numCells()), 0);
    for (int i = 0; i < numObjects; ++i) {
        const int j = sol.chosen[static_cast<size_t>(i)];
        const auto& cands = prob.candidates[static_cast<size_t>(i)];
        if (j < -1 || j >= static_cast<int>(cands.size())) {
            r.addf("object {}: chosen candidate {} out of range (have {})", i,
                   j, cands.size());
            indicesOk = false;
            continue;
        }
        if (j < 0) continue;
        const RouteCandidate& cand = cands[static_cast<size_t>(j)];
        for (const auto& [edge, amount] : cand.edgeUse) {
            usage[static_cast<size_t>(edge)] += amount;
        }
        for (const auto& [cell, amount] : cand.viaUse) {
            vias[static_cast<size_t>(cell)] += amount;
        }
    }

    for (int e = 0; e < grid.numEdges() && !r.full(); ++e) {
        if (usage[static_cast<size_t>(e)] > grid.capacity(e)) {
            r.addf("{}: demand {} exceeds capacity {}", edgeContext(grid, e),
                   usage[static_cast<size_t>(e)], grid.capacity(e));
        }
    }
    if (grid.viaLimited()) {
        for (int cell = 0; cell < grid.numCells() && !r.full(); ++cell) {
            const int cap = grid.viaCapacity(cell);
            if (cap >= 0 && vias[static_cast<size_t>(cell)] > cap) {
                r.addf("via cell {} ({},{}): demand {} exceeds capacity {}",
                       cell, cell % grid.width(), cell / grid.width(),
                       vias[static_cast<size_t>(cell)], cap);
            }
        }
    }

    if (indicesOk) {
        const double expected = solutionObjective(prob, sol.chosen);
        if (!approxEqual(sol.objective, expected, kObjectiveEps)) {
            r.addf("cached objective {} != recomputed objective {}",
                   sol.objective, expected);
        }
    }
    return r;
}

AuditResult auditRoutedDesign(const RoutingProblem& prob,
                              const RoutedDesign& routed) {
    AuditResult r;
    r.subject = "routed design";
    if (prob.design == nullptr) {
        r.addf("design pointer is null");
        return r;
    }
    const grid::RoutingGrid& grid = prob.design->grid;
    if (&routed.usage.grid() != &grid) {
        r.addf("usage is bound to a different grid than the problem's design");
        return r;
    }
    const int numObjects = prob.numObjects();

    // How often each (object, member) slot is accounted for; must end at
    // exactly 1 across routed bits + the unrouted list.
    std::vector<std::vector<int>> covered;
    covered.reserve(static_cast<size_t>(numObjects));
    for (const RoutingObject& obj : prob.objects) {
        covered.emplace_back(static_cast<size_t>(obj.width()), 0);
    }

    std::vector<long> expectedUse(static_cast<size_t>(grid.numEdges()), 0);
    std::vector<long> expectedVias(static_cast<size_t>(grid.numCells()), 0);

    for (size_t b = 0; b < routed.bits.size() && !r.full(); ++b) {
        const RoutedBit& bit = routed.bits[b];
        if (bit.objectIndex < 0 || bit.objectIndex >= numObjects) {
            r.addf("bit {}: object index {} out of range", b, bit.objectIndex);
            continue;
        }
        const RoutingObject& obj =
            prob.objects[static_cast<size_t>(bit.objectIndex)];
        if (bit.memberIndex < 0 || bit.memberIndex >= obj.width()) {
            r.addf("bit {}: member index {} outside object {} (width {})", b,
                   bit.memberIndex, bit.objectIndex, obj.width());
            continue;
        }
        ++covered[static_cast<size_t>(bit.objectIndex)]
                 [static_cast<size_t>(bit.memberIndex)];
        if (bit.groupIndex != obj.groupIndex ||
            bit.bitIndex !=
                obj.bitIndices[static_cast<size_t>(bit.memberIndex)]) {
            r.addf("bit {}: (group {}, bit {}) disagrees with object {} "
                   "member {} (group {}, bit {})",
                   b, bit.groupIndex, bit.bitIndex, bit.objectIndex,
                   bit.memberIndex, obj.groupIndex,
                   obj.bitIndices[static_cast<size_t>(bit.memberIndex)]);
            continue;
        }
        const Bit& designBit =
            prob.design->groups[static_cast<size_t>(bit.groupIndex)]
                .bits[static_cast<size_t>(bit.bitIndex)];
        if (!bit.topo.connected()) {
            r.addf("bit {} (group {} '{}'): topology is disconnected or "
                   "misses a pin",
                   b, bit.groupIndex, designBit.name);
        }
        std::vector<geom::Point> topoPins = bit.topo.pins();
        std::vector<geom::Point> designPins = designBit.pins;
        std::sort(topoPins.begin(), topoPins.end());
        std::sort(designPins.begin(), designPins.end());
        if (topoPins != designPins) {
            r.addf("bit {} (group {} '{}'): topology pins differ from the "
                   "design's pins",
                   b, bit.groupIndex, designBit.name);
        } else if (bit.topo.driverPin() != designBit.driverPin()) {
            r.addf("bit {} (group {} '{}'): topology driver ({},{}) != "
                   "design driver ({},{})",
                   b, bit.groupIndex, designBit.name, bit.topo.driverPin().x,
                   bit.topo.driverPin().y, designBit.driverPin().x,
                   designBit.driverPin().y);
        }
        if (!validLayerPair(grid, bit.hLayer, bit.vLayer)) {
            r.addf("bit {}: layer pair (h={}, v={}) invalid for this stack",
                   b, bit.hLayer, bit.vLayer);
            continue;
        }
        for (const auto& [edge, amount] :
             computeEdgeUse(grid, bit.topo, bit.hLayer, bit.vLayer)) {
            expectedUse[static_cast<size_t>(edge)] += amount;
        }
        if (grid.viaLimited()) {
            for (const auto& [cell, amount] : computeViaUse(grid, bit.topo)) {
                expectedVias[static_cast<size_t>(cell)] += amount;
            }
        }
    }

    for (int e = 0; e < grid.numEdges() && !r.full(); ++e) {
        const long recorded = routed.usage.usage(e);
        if (recorded != expectedUse[static_cast<size_t>(e)]) {
            r.addf("{}: recorded usage {} != demand {} recomputed from bit "
                   "topologies",
                   edgeContext(grid, e), recorded,
                   expectedUse[static_cast<size_t>(e)]);
        }
        if (recorded > grid.capacity(e)) {
            r.addf("{}: usage {} overflows capacity {}", edgeContext(grid, e),
                   recorded, grid.capacity(e));
        }
    }
    if (grid.viaLimited()) {
        for (int cell = 0; cell < grid.numCells() && !r.full(); ++cell) {
            const long recorded = routed.usage.viaUsage(cell);
            if (recorded != expectedVias[static_cast<size_t>(cell)]) {
                r.addf("via cell {} ({},{}): recorded usage {} != recomputed "
                       "{}",
                       cell, cell % grid.width(), cell / grid.width(),
                       recorded, expectedVias[static_cast<size_t>(cell)]);
            }
            const int cap = grid.viaCapacity(cell);
            if (cap >= 0 && recorded > cap) {
                r.addf("via cell {} ({},{}): usage {} overflows capacity {}",
                       cell, cell % grid.width(), cell / grid.width(),
                       recorded, cap);
            }
        }
    }

    for (const auto& [objIdx, member] : routed.unroutedMembers) {
        if (objIdx < 0 || objIdx >= numObjects || member < 0 ||
            member >= prob.objects[static_cast<size_t>(objIdx)].width()) {
            r.addf("unrouted member (object {}, member {}) out of range",
                   objIdx, member);
            continue;
        }
        ++covered[static_cast<size_t>(objIdx)][static_cast<size_t>(member)];
    }
    for (int i = 0; i < numObjects && !r.full(); ++i) {
        const auto& slots = covered[static_cast<size_t>(i)];
        for (size_t k = 0; k < slots.size(); ++k) {
            if (slots[k] != 1) {
                r.addf("object {} member {}: accounted {} times across "
                       "routed bits and the unrouted list (want exactly 1)",
                       i, k, slots[k]);
            }
        }
    }
    return r;
}

}  // namespace streak::check
