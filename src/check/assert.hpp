// Runtime-contract macros and the check-level machinery (DESIGN.md
// "Correctness tooling").
//
// Three macro tiers, all with formatted context messages:
//
//   STREAK_REQUIRE(cond, "fmt", ...)    precondition on a public entry point
//   STREAK_ASSERT(cond, "fmt", ...)     internal consistency, cheap to test
//   STREAK_INVARIANT(cond, "fmt", ...)  expensive structural invariant
//
// The compile-time level is the STREAK_CHECKS macro (0 = off, 1 = cheap,
// 2 = deep; CMake option STREAK_CHECKS=off|cheap|deep, default cheap).
// REQUIRE and ASSERT fire whenever the compiled level is at least cheap.
// INVARIANT — and the STREAK_DEEP_AUDIT hook used at stage boundaries —
// additionally need the *runtime* level to be deep: the runtime level
// defaults to the compiled level and can be raised or lowered through the
// STREAK_CHECKS environment variable or check::setRuntimeLevel(), so a
// cheap production build can still run its deep auditors under a test
// harness. Compiling with STREAK_CHECKS=0 removes every check.
//
// Messages use a tiny "{}" formatter; the format string must be a string
// literal:
//
//   STREAK_ASSERT(usage >= 0, "edge {} usage went negative ({})", e, usage);
//
// On failure the installed FailureHandler receives the full message
// (expression, formatted context, file:line). The default handler prints
// to stderr and aborts; tests install check::throwingFailureHandler to
// turn failures into catchable check::CheckFailure exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef STREAK_CHECKS
#define STREAK_CHECKS 1
#endif

namespace streak::check {

enum class Level : int { Off = 0, Cheap = 1, Deep = 2 };

inline constexpr int kCompiledLevel = STREAK_CHECKS;

/// Effective runtime level: env STREAK_CHECKS (off/cheap/deep or 0/1/2)
/// read once, else the compiled level; overridable via setRuntimeLevel.
[[nodiscard]] Level runtimeLevel();
void setRuntimeLevel(Level level);

/// True when deep checks should execute: the build retains checks and the
/// runtime level is Deep.
[[nodiscard]] inline bool deepChecksEnabled() {
    if constexpr (kCompiledLevel == 0) {
        return false;
    } else {
        return runtimeLevel() >= Level::Deep;
    }
}

namespace detail {

inline void formatInto(std::ostringstream& os, const char* fmt) { os << fmt; }

template <typename T, typename... Rest>
void formatInto(std::ostringstream& os, const char* fmt, const T& value,
                const Rest&... rest) {
    while (*fmt != '\0') {
        if (fmt[0] == '{' && fmt[1] == '}') {
            os << value;
            formatInto(os, fmt + 2, rest...);
            return;
        }
        os << *fmt++;
    }
    // More arguments than "{}" slots: append them so context is never lost.
    os << " [" << value;
    ((os << ", " << rest), ...);
    os << ']';
}

}  // namespace detail

/// "{}"-style formatting: format("edge {}", 3) == "edge 3". Surplus
/// arguments are appended in brackets rather than dropped.
template <typename... Args>
[[nodiscard]] std::string format(const char* fmt, const Args&... args) {
    std::ostringstream os;
    detail::formatInto(os, fmt, args...);
    return os.str();
}

/// What a failing check throws under the throwing handler.
class CheckFailure : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

using FailureHandler = void (*)(const std::string& message);

/// Install a failure handler; returns the previous one. Passing nullptr
/// restores the default (print to stderr + abort). A handler may throw; if
/// it returns normally the process still aborts.
FailureHandler setFailureHandler(FailureHandler handler);

/// Handler that throws CheckFailure with the failure message (for tests).
[[noreturn]] void throwingFailureHandler(const std::string& message);

/// Report a failed check: builds the message, invokes the handler, aborts
/// if the handler returns.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& detail);

/// Result of a deep auditor: a list of human-readable findings. Empty
/// means the audited structure is consistent. Auditors stop collecting
/// once kMaxIssues findings accumulate (the structure is corrupt either
/// way; avoid flooding).
struct AuditResult {
    static constexpr size_t kMaxIssues = 64;

    std::string subject;
    std::vector<std::string> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] bool full() const { return issues.size() >= kMaxIssues; }

    template <typename... Args>
    void addf(const char* fmt, const Args&... args) {
        if (!full()) issues.push_back(format(fmt, args...));
    }

    /// Findings joined into one message (at most `maxShown` shown).
    [[nodiscard]] std::string summary(size_t maxShown = 8) const;
};

/// Fail (through the handler) when an audit found issues.
void enforce(const AuditResult& result, const char* expr, const char* file,
             int line);

/// Epsilon helper the lint pass points float == comparisons at.
[[nodiscard]] constexpr bool approxEqual(double a, double b,
                                         double eps = 1e-9) {
    const double diff = a > b ? a - b : b - a;
    const double mag = (a > 0 ? a : -a) > (b > 0 ? b : -b) ? (a > 0 ? a : -a)
                                                           : (b > 0 ? b : -b);
    return diff <= eps * (mag > 1.0 ? mag : 1.0);
}

}  // namespace streak::check

#define STREAK_CHECK_IMPL_(kind, cond, ...)                                  \
    do {                                                                     \
        if (!(cond)) [[unlikely]] {                                          \
            ::streak::check::fail(kind, #cond, __FILE__, __LINE__,           \
                                  ::streak::check::format("" __VA_ARGS__));  \
        }                                                                    \
    } while (false)

#if STREAK_CHECKS >= 1

#define STREAK_ASSERT(cond, ...) STREAK_CHECK_IMPL_("assertion", cond, __VA_ARGS__)
#define STREAK_REQUIRE(cond, ...) \
    STREAK_CHECK_IMPL_("precondition", cond, __VA_ARGS__)
#define STREAK_INVARIANT(cond, ...)                                          \
    do {                                                                     \
        if (::streak::check::deepChecksEnabled() && !(cond)) [[unlikely]] {  \
            ::streak::check::fail("invariant", #cond, __FILE__, __LINE__,    \
                                  ::streak::check::format("" __VA_ARGS__));  \
        }                                                                    \
    } while (false)
/// Evaluate an auditor expression at a stage boundary and fail on
/// findings; skipped entirely unless deep checks are enabled.
#define STREAK_DEEP_AUDIT(auditExpr)                                         \
    do {                                                                     \
        if (::streak::check::deepChecksEnabled()) [[unlikely]] {             \
            ::streak::check::enforce((auditExpr), #auditExpr, __FILE__,      \
                                     __LINE__);                              \
        }                                                                    \
    } while (false)

#else  // STREAK_CHECKS == 0: compile the condition away (unevaluated).

#define STREAK_ASSERT(cond, ...) ((void)sizeof(!(cond)))
#define STREAK_REQUIRE(cond, ...) ((void)sizeof(!(cond)))
#define STREAK_INVARIANT(cond, ...) ((void)sizeof(!(cond)))
#define STREAK_DEEP_AUDIT(auditExpr) ((void)0)

#endif
