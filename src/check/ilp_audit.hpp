// Deep auditors over the in-house LP/ILP substrate (DESIGN.md
// "Correctness tooling"). Compiled into streak_ilp (the library owning
// Model/Solution) so check/ stays dependency-free.
#pragma once

#include "check/assert.hpp"
#include "ilp/model.hpp"

namespace streak::check {

/// Structural audit of a model before solving: finite objective
/// coefficients, consistent bounds (integer variables binary), row
/// coefficients referencing valid variables with finite values, finite
/// right-hand sides, and no trivially unsatisfiable empty row — the
/// shape the routing linearization (product terms of the quadratic
/// regularity objective) must produce.
[[nodiscard]] AuditResult auditIlpModel(const ilp::Model& model);

/// Audit an LP/ILP solution against its model: value vector sized to the
/// model, every value finite and within bounds, every row primal-feasible
/// within epsilon, integrality respected for integer variables (when the
/// solution claims to be integral), and the reported objective equal to
/// c^T x + constant within epsilon. Solutions without values (Infeasible
/// / Unbounded / Limit) audit clean by definition.
[[nodiscard]] AuditResult auditLp(const ilp::Model& model,
                                  const ilp::Solution& solution,
                                  bool requireIntegral = false);

}  // namespace streak::check
