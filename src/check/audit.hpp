// Deep auditors over the core routing state (DESIGN.md "Correctness
// tooling"). Each returns an AuditResult listing every inconsistency
// found; flow/solver stage boundaries run them through STREAK_DEEP_AUDIT.
//
// The implementations live in audit.cpp, which is compiled into
// streak_core (the library owning the audited types) so the dependency
// graph stays acyclic: check/assert.hpp itself depends on nothing.
#pragma once

#include "check/assert.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak::check {

/// Structural audit of a built RoutingProblem: object/group/candidate
/// cross-references in range, candidate costs finite and non-negative,
/// per-edge demand sorted with valid edge ids, pair blocks consistent
/// with candidate-set sizes, pairsOf index closed.
[[nodiscard]] AuditResult auditProblem(const RoutingProblem& prob);

/// Audit a per-object solver solution: chosen candidate indices in range,
/// accumulated track demand within every edge capacity, via demand within
/// via capacity (when the via model is enabled), and the cached objective
/// consistent with solutionObjective().
[[nodiscard]] AuditResult auditSolution(const RoutingProblem& prob,
                                        const RoutingSolution& sol);

/// Audit a materialized (and possibly post-optimized) RoutedDesign: every
/// routed bit's topology is connected and covers exactly its design pins
/// on a valid layer pair, recorded per-edge usage equals the recomputed
/// demand of all bit topologies edge by edge, nothing overflows capacity,
/// and routed bits + unrouted members partition the object members.
/// Via-slot usage is compared only when the grid's via model is enabled —
/// the post stages do not maintain via bookkeeping otherwise.
[[nodiscard]] AuditResult auditRoutedDesign(const RoutingProblem& prob,
                                            const RoutedDesign& routed);

}  // namespace streak::check
