#include "check/ilp_audit.hpp"

#include <cmath>
#include <limits>

namespace streak::check {

namespace {

constexpr double kFeasEps = 1e-6;

/// Row-relative tolerance: absolute for small magnitudes, relative above 1.
double tol(double reference) {
    const double mag = std::abs(reference);
    return kFeasEps * (mag > 1.0 ? mag : 1.0);
}

}  // namespace

AuditResult auditIlpModel(const ilp::Model& model) {
    AuditResult r;
    r.subject = "ilp model";
    const int n = model.numVariables();
    for (int v = 0; v < n && !r.full(); ++v) {
        if (!std::isfinite(model.objectiveCoeff(v))) {
            r.addf("variable {}: objective coefficient {} not finite", v,
                   model.objectiveCoeff(v));
        }
        const double lo = model.lower(v);
        const double hi = model.upper(v);
        if (std::isnan(lo) || std::isnan(hi) || lo > hi) {
            r.addf("variable {}: bounds [{}, {}] inconsistent", v, lo, hi);
        }
        if (model.isInteger(v) && (lo < -kFeasEps || hi > 1.0 + kFeasEps)) {
            r.addf("variable {}: integer but bounds [{}, {}] not binary", v,
                   lo, hi);
        }
    }
    if (!std::isfinite(model.objectiveConstant)) {
        r.addf("objective constant {} not finite", model.objectiveConstant);
    }
    const auto& rows = model.rows();
    for (size_t i = 0; i < rows.size() && !r.full(); ++i) {
        const ilp::Row& row = rows[i];
        if (!std::isfinite(row.rhs)) {
            r.addf("row {}: rhs {} not finite", i, row.rhs);
        }
        if (row.coeffs.empty()) {
            const bool impossible =
                (row.sense == ilp::Sense::LessEqual && row.rhs < 0.0) ||
                (row.sense == ilp::Sense::GreaterEqual && row.rhs > 0.0) ||
                (row.sense == ilp::Sense::Equal &&
                 row.rhs != 0.0);  // lint-ok: float-eq (exact emptiness test)
            if (impossible) {
                r.addf("row {}: empty but unsatisfiable (rhs {})", i, row.rhs);
            }
            continue;
        }
        for (const auto& [var, coeff] : row.coeffs) {
            if (var < 0 || var >= n) {
                r.addf("row {}: references variable {} outside [0,{})", i,
                       var, n);
            }
            if (!std::isfinite(coeff)) {
                r.addf("row {}: coefficient {} on variable {} not finite", i,
                       coeff, var);
            }
        }
    }
    return r;
}

AuditResult auditLp(const ilp::Model& model, const ilp::Solution& solution,
                    bool requireIntegral) {
    AuditResult r;
    r.subject = "lp solution";
    if (!solution.hasSolution()) return r;  // nothing claimed, nothing owed

    const int n = model.numVariables();
    if (static_cast<int>(solution.values.size()) != n) {
        r.addf("value vector has {} entries for {} variables",
               solution.values.size(), n);
        return r;
    }

    double objective = model.objectiveConstant;
    for (int v = 0; v < n && !r.full(); ++v) {
        const double x = solution.values[static_cast<size_t>(v)];
        if (!std::isfinite(x)) {
            r.addf("variable {}: value {} not finite", v, x);
            continue;
        }
        const double lo = model.lower(v);
        const double hi = model.upper(v);
        if (x < lo - tol(lo)) {
            r.addf("variable {}: value {} below lower bound {}", v, x, lo);
        }
        if (hi < ilp::kInfinity && x > hi + tol(hi)) {
            r.addf("variable {}: value {} above upper bound {}", v, x, hi);
        }
        if (requireIntegral && model.isInteger(v) &&
            std::abs(x - std::round(x)) > kFeasEps) {
            r.addf("variable {}: value {} not integral", v, x);
        }
        objective += model.objectiveCoeff(v) * x;
    }

    const auto& rows = model.rows();
    for (size_t i = 0; i < rows.size() && !r.full(); ++i) {
        const ilp::Row& row = rows[i];
        double lhs = 0.0;
        for (const auto& [var, coeff] : row.coeffs) {
            if (var < 0 || var >= n) {
                lhs = std::numeric_limits<double>::quiet_NaN();
                break;
            }
            lhs += coeff * solution.values[static_cast<size_t>(var)];
        }
        if (std::isnan(lhs)) {
            r.addf("row {}: references an out-of-range variable", i);
            continue;
        }
        const double slack = row.rhs - lhs;
        const bool violated =
            (row.sense == ilp::Sense::LessEqual && slack < -tol(row.rhs)) ||
            (row.sense == ilp::Sense::GreaterEqual && slack > tol(row.rhs)) ||
            (row.sense == ilp::Sense::Equal &&
             std::abs(slack) > tol(row.rhs));
        if (violated) {
            r.addf("row {}: lhs {} violates rhs {} (sense {})", i, lhs,
                   row.rhs,
                   row.sense == ilp::Sense::LessEqual      ? "<="
                   : row.sense == ilp::Sense::GreaterEqual ? ">="
                                                           : "==");
        }
    }

    if (!approxEqual(solution.objective, objective, kFeasEps)) {
        r.addf("reported objective {} != recomputed c^T x + constant = {}",
               solution.objective, objective);
    }
    return r;
}

}  // namespace streak::check
