// Post-routing refinement (Sec. IV-C, Algorithm 4, Fig. 10).
//
// Sinks whose source-to-sink distance falls too far below their family's
// maximum get capacity-legal twisting detours: the violating pin's
// terminal rectilinear connection is shifted sideways (vertical shifting
// for horizontal connections and vice versa), adding 2*s of wire per
// shift s, until the deviation drops under the threshold. Only the
// violating connection moves; the rest of the topology — and hence its
// regularity — is preserved.
#pragma once

#include "core/distance.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak::post {

struct RefinementResult {
    int violatingGroupsBefore = 0;
    int violatingGroupsAfter = 0;
    int pinsConsidered = 0;
    int pinsFixed = 0;
    long addedWirelength = 0;
    /// Initial per-group thresholds (reused for the "after" analysis).
    std::vector<int> thresholds;
    /// Group-indexed violation flags of the "after" analysis (1 = the
    /// group still violates). The incremental-ECO stitcher sums carried
    /// and re-solved groups from these instead of the aggregate count.
    std::vector<char> groupViolatingAfter;
    /// Stats of the parallel distance analyses and detour waves.
    parallel::RegionStats parallelStats;
};

/// Refine `routed` in place. Thresholds derive from the initial distances
/// per the paper (thresholdFraction of the max initial source-to-sink
/// distance per group).
///
/// Groups whose detour search regions touch disjoint G-Cell rectangles
/// refine concurrently (`prob.opts.threads`); conflicting groups are
/// ordered into waves that preserve the sequential group order, so the
/// refined design is byte-identical for every thread count.
RefinementResult refineDistances(const RoutingProblem& prob,
                                 RoutedDesign* routed);

}  // namespace streak::post
