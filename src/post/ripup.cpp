#include "post/ripup.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/audit.hpp"
#include "grid/routing_grid.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

namespace streak::post {

namespace {

/// Usage bookkeeping for a per-object solution. The blocker queries run
/// once per unrouted object per round, so their scratch (tight-edge and
/// blocker lists) is owned here and reused instead of being reallocated
/// per call; blockers always come back sorted ascending.
class UsageState {
public:
    explicit UsageState(const RoutingProblem& prob)
        : prob_(prob), usage_(prob.design->grid) {
        for (int i = 0; i < prob.numObjects(); ++i) add(i, -1);
    }

    void syncFrom(const std::vector<int>& chosen) {
        usage_.clear();
        for (size_t i = 0; i < chosen.size(); ++i) {
            add(static_cast<int>(i), chosen[i]);
        }
    }

    void add(int obj, int cand) {
        if (cand < 0) return;
        const RouteCandidate& c =
            prob_.candidates[static_cast<size_t>(obj)][static_cast<size_t>(cand)];
        for (const auto& [edge, amount] : c.edgeUse) usage_.add(edge, amount);
        for (const auto& [cell, amount] : c.viaUse) {
            usage_.addVias(cell, amount);
        }
    }
    void remove(int obj, int cand) {
        if (cand < 0) return;
        const RouteCandidate& c =
            prob_.candidates[static_cast<size_t>(obj)][static_cast<size_t>(cand)];
        for (const auto& [edge, amount] : c.edgeUse) {
            usage_.remove(edge, amount);
        }
        for (const auto& [cell, amount] : c.viaUse) {
            usage_.removeVias(cell, amount);
        }
    }

    [[nodiscard]] bool fits(const RouteCandidate& c) const {
        for (const auto& [edge, amount] : c.edgeUse) {
            if (usage_.remaining(edge) < amount) return false;
        }
        for (const auto& [cell, amount] : c.viaUse) {
            if (usage_.viaRemaining(cell) < amount) return false;
        }
        return true;
    }

    /// Objects whose committed routes keep candidate `c` from fitting,
    /// sorted ascending (the processing order of the rip cascade).
    [[nodiscard]] const std::vector<int>& blockersOf(
        const RouteCandidate& c, const std::vector<int>& chosen) {
        blockers_.clear();
        tightEdges_.clear();
        for (const auto& [edge, amount] : c.edgeUse) {
            if (usage_.remaining(edge) < amount) tightEdges_.push_back(edge);
        }
        if (tightEdges_.empty()) return blockers_;
        std::sort(tightEdges_.begin(), tightEdges_.end());
        for (size_t i = 0; i < chosen.size(); ++i) {
            if (chosen[i] < 0) continue;
            const RouteCandidate& other =
                prob_.candidates[i][static_cast<size_t>(chosen[i])];
            for (const auto& [edge, amount] : other.edgeUse) {
                if (std::binary_search(tightEdges_.begin(), tightEdges_.end(),
                                       edge)) {
                    blockers_.push_back(static_cast<int>(i));
                    break;
                }
            }
        }
        return blockers_;
    }

private:
    const RoutingProblem& prob_;
    grid::EdgeUsage usage_;
    std::vector<int> tightEdges_;
    std::vector<int> blockers_;
};

}  // namespace

RipupResult ripupAndReroute(const RoutingProblem& prob, RoutingSolution* sol,
                            int maxRounds) {
    STREAK_SPAN("post/ripup");
    RipupResult result;
    UsageState state(prob);
    state.syncFrom(sol->chosen);
    std::vector<std::uint8_t> everRipped(
        static_cast<size_t>(prob.numObjects()), 0);

    int roundsRun = 0;
    for (int round = 0; round < maxRounds; ++round) {
        ++roundsRun;
        bool progress = false;
        for (int i = 0; i < prob.numObjects(); ++i) {
            if (sol->chosen[static_cast<size_t>(i)] >= 0) continue;
            const auto& cands = prob.candidates[static_cast<size_t>(i)];
            if (cands.empty()) continue;

            // Direct fit first (capacity may have been freed by earlier
            // rips).
            bool placed = false;
            for (size_t j = 0; j < cands.size() && !placed; ++j) {
                if (state.fits(cands[j])) {
                    sol->chosen[static_cast<size_t>(i)] = static_cast<int>(j);
                    state.add(i, static_cast<int>(j));
                    ++result.objectsRecovered;
                    placed = true;
                    progress = true;
                }
            }
            if (placed) continue;

            // Rip the blockers of the cheapest candidate, place it, then
            // try to re-route the victims elsewhere. Copy the blocker
            // list out of the scratch: the cascade below runs more
            // queries through the same state.
            const RouteCandidate& target = cands.front();
            const std::vector<int> victims =
                state.blockersOf(target, sol->chosen);
            if (victims.empty()) continue;  // blocked by blockages, not nets
            for (const int v : victims) {
                state.remove(v, sol->chosen[static_cast<size_t>(v)]);
                sol->chosen[static_cast<size_t>(v)] = -1;
                if (!everRipped[static_cast<size_t>(v)]) {
                    everRipped[static_cast<size_t>(v)] = 1;
                    ++result.objectsRipped;
                }
            }
            if (!state.fits(target)) continue;  // still blocked; victims
                                                // retry in the next sweep
            sol->chosen[static_cast<size_t>(i)] = 0;
            state.add(i, 0);
            ++result.objectsRecovered;
            progress = true;

            for (const int v : victims) {
                const auto& vc = prob.candidates[static_cast<size_t>(v)];
                for (size_t j = 0; j < vc.size(); ++j) {
                    if (state.fits(vc[j])) {
                        sol->chosen[static_cast<size_t>(v)] =
                            static_cast<int>(j);
                        state.add(v, static_cast<int>(j));
                        break;
                    }
                }
            }
        }
        if (!progress) break;
    }

    for (int v = 0; v < prob.numObjects(); ++v) {
        if (everRipped[static_cast<size_t>(v)] &&
            sol->chosen[static_cast<size_t>(v)] < 0) {
            ++result.objectsLost;
        }
    }
    if (obs::detailEnabled()) {
        obs::Session& sess = obs::session();
        sess.counter("post/ripup.rounds").add(roundsRun);
        sess.counter("post/ripup.objects_ripped").add(result.objectsRipped);
        sess.counter("post/ripup.objects_recovered")
            .add(result.objectsRecovered);
        sess.counter("post/ripup.objects_lost").add(result.objectsLost);
    }
    sol->objective = solutionObjective(prob, sol->chosen);
    // Rip-up must hand back a capacity-feasible assignment no matter how
    // the domino cascade ended.
    STREAK_DEEP_AUDIT(check::auditSolution(prob, *sol));
    return result;
}

}  // namespace streak::post
