// Possible layer prediction (Sec. IV-A, Eq. 7-8).
//
// Before routing leftover groups, the probable track usage of every 2-D
// edge is estimated by spreading each bit uniformly over its candidate
// topologies; the horizontal and vertical layers with the least estimated
// conflict against the remaining capacities are selected.
#pragma once

#include <vector>

#include "grid/routing_grid.hpp"
#include "steiner/topology.hpp"

namespace streak::post {

struct LayerPrediction {
    int hLayer = 0;
    int vLayer = 1;
    double hConflict = 0.0;
    double vConflict = 0.0;
};

/// Predict trunk layers for a set of bits. `bitCandidates[b]` holds the
/// candidate 2-D topologies of bit b (all equally likely, Eq. 7); the
/// conflict of Eq. 8 is evaluated against the *remaining* capacity in
/// `usage`.
[[nodiscard]] LayerPrediction predictLayers(
    const grid::EdgeUsage& usage,
    const std::vector<std::vector<steiner::Topology>>& bitCandidates);

}  // namespace streak::post
