#include "post/refine.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/candidate.hpp"
#include "geom/rect.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"

namespace streak::post {

namespace {

/// The straight connection feeding a leaf pin: the maximal run of wire
/// from the pin to the first feature node (bend / junction / other pin).
struct Connection {
    geom::Point start;  // feature-node end (sp in Alg. 4)
    geom::Point end;    // the violating pin (ep)
    bool horizontal = true;
    bool found = false;
};

Connection findTerminalConnection(const steiner::Topology& topo,
                                  geom::Point pin) {
    Connection conn;
    const steiner::TopoStructure st = topo.structure();
    int pinNode = -1;
    for (size_t i = 0; i < st.nodes.size(); ++i) {
        if (st.nodes[i].pt == pin) {
            pinNode = static_cast<int>(i);
            break;
        }
    }
    if (pinNode < 0) return conn;
    if (st.nodes[static_cast<size_t>(pinNode)].degree != 1) return conn;
    for (const auto& [u, v] : st.rcs) {
        if (u != pinNode && v != pinNode) continue;
        const int other = u == pinNode ? v : u;
        conn.start = st.nodes[static_cast<size_t>(other)].pt;
        conn.end = pin;
        conn.horizontal = conn.start.y == conn.end.y;
        conn.found = conn.start != conn.end;
        return conn;
    }
    return conn;
}

/// Detour plan: replace start-end with start -> a -> b -> end where the
/// middle run is the original connection shifted by `shift` perpendicular
/// units; adds exactly 2*shift wire-length.
struct Detour {
    geom::Segment leg1, mid, leg2;
    geom::Segment removed;
};

Detour makeDetour(const Connection& conn, int shift, bool positive) {
    const int d = positive ? shift : -shift;
    Detour det;
    det.removed = {conn.start, conn.end};
    if (conn.horizontal) {
        const geom::Point a{conn.start.x, conn.start.y + d};
        const geom::Point b{conn.end.x, conn.end.y + d};
        det.leg1 = {conn.start, a};
        det.mid = {a, b};
        det.leg2 = {b, conn.end};
    } else {
        const geom::Point a{conn.start.x + d, conn.start.y};
        const geom::Point b{conn.end.x + d, conn.end.y};
        det.leg1 = {conn.start, a};
        det.mid = {a, b};
        det.leg2 = {b, conn.end};
    }
    return det;
}

/// All lattice points strictly inside the detour (excluding its anchor
/// endpoints start / end).
std::vector<geom::Point> detourInteriorPoints(const Detour& det) {
    std::vector<geom::Point> pts;
    const auto addPoints = [&](const geom::Segment& s, bool skipA, bool skipB) {
        const geom::Segment c = s.canonical();
        if (c.horizontal()) {
            for (int x = c.a.x; x <= c.b.x; ++x) pts.push_back({x, c.a.y});
        } else {
            for (int y = c.a.y; y <= c.b.y; ++y) pts.push_back({c.a.x, y});
        }
        (void)skipA;
        (void)skipB;
    };
    addPoints(det.leg1, true, false);
    addPoints(det.mid, false, false);
    addPoints(det.leg2, false, true);
    std::erase(pts, det.removed.a);
    std::erase(pts, det.removed.b);
    return pts;
}

/// Capacity + overlap legality of a detour for a bit on (hLayer, vLayer),
/// assuming the removed connection's usage has NOT been released yet (the
/// new wire never reuses the removed run, so this is conservative only
/// about unrelated edges).
bool detourLegal(const RoutedDesign& routed, const steiner::Topology& topo,
                 const Detour& det, int hLayer, int vLayer) {
    const grid::RoutingGrid& grid = routed.usage.grid();
    // Grid bounds and capacity for each new unit edge.
    for (const geom::Segment* seg : {&det.leg1, &det.mid, &det.leg2}) {
        if (seg->degenerate()) continue;
        const int layer = seg->horizontal() ? hLayer : vLayer;
        const geom::Segment c = seg->canonical();
        if (!grid.contains(c.a) || !grid.contains(c.b)) return false;
        if (c.horizontal()) {
            for (int x = c.a.x; x < c.b.x; ++x) {
                if (!grid.validEdge(layer, x, c.a.y) ||
                    routed.usage.remaining(grid.edgeId(layer, x, c.a.y)) < 1) {
                    return false;
                }
            }
        } else {
            for (int y = c.a.y; y < c.b.y; ++y) {
                if (!grid.validEdge(layer, c.a.x, y) ||
                    routed.usage.remaining(grid.edgeId(layer, c.a.x, y)) < 1) {
                    return false;
                }
            }
        }
    }
    // The detour must not touch the bit's own wire anywhere except at its
    // anchor points, or the tree gains cycles / the path shortens.
    const std::unordered_set<geom::Point> own = topo.wirePoints();
    for (const geom::Point p : detourInteriorPoints(det)) {
        if (own.contains(p)) return false;
    }
    // Pin-access model: the detour adds layer-change points; the increase
    // per cell must fit the remaining via slots.
    if (grid.viaLimited()) {
        steiner::Topology tentative = topo;
        tentative.removeSegment(det.removed);
        for (const geom::Segment* seg : {&det.leg1, &det.mid, &det.leg2}) {
            if (!seg->degenerate()) tentative.addSegment(*seg);
        }
        std::map<int, int> delta;
        for (const auto& [cell, n] : computeViaUse(grid, tentative)) {
            delta[cell] += n;
        }
        for (const auto& [cell, n] : computeViaUse(grid, topo)) {
            delta[cell] -= n;
        }
        for (const auto& [cell, d] : delta) {
            if (d > 0 && routed.usage.viaRemaining(cell) < d) return false;
        }
    }
    return true;
}

void applyDetour(RoutedDesign* routed, RoutedBit* bit, const Detour& det) {
    const grid::RoutingGrid& grid = routed->usage.grid();
    const auto viasBefore =
        grid.viaLimited() ? computeViaUse(grid, bit->topo)
                          : std::vector<std::pair<int, int>>{};
    // Release the removed straight run.
    const int removedLayer =
        det.removed.horizontal() ? bit->hLayer : bit->vLayer;
    for (const int e : grid.edgesOnSegment(det.removed, removedLayer)) {
        routed->usage.remove(e, 1);
    }
    bit->topo.removeSegment(det.removed);
    // Commit the three detour legs.
    for (const geom::Segment* seg : {&det.leg1, &det.mid, &det.leg2}) {
        if (seg->degenerate()) continue;
        const int layer = seg->horizontal() ? bit->hLayer : bit->vLayer;
        for (const int e : grid.edgesOnSegment(*seg, layer)) {
            routed->usage.add(e, 1);
        }
        bit->topo.addSegment(*seg);
    }
    if (grid.viaLimited()) {
        std::map<int, int> delta;
        for (const auto& [cell, n] : computeViaUse(grid, bit->topo)) {
            delta[cell] += n;
        }
        for (const auto& [cell, n] : viasBefore) delta[cell] -= n;
        for (const auto& [cell, d] : delta) {
            if (d > 0) routed->usage.addVias(cell, d);
            else if (d < 0) routed->usage.removeVias(cell, -d);
        }
    }
}

/// Per-group tallies of the detour pass, merged in group order.
struct GroupRefineOutcome {
    int pinsConsidered = 0;
    int pinsFixed = 0;
    long addedWirelength = 0;
};

/// Run Alg. 4 on one group's violations (identical to the sequential
/// inner loop; mutates only this group's bits and grid cells inside the
/// group's search region).
GroupRefineOutcome refineGroup(const StreakOptions& opts,
                               const GroupDistanceReport& rep,
                               RoutedDesign* routed) {
    GroupRefineOutcome out;
    for (const PinDeviation& dev : rep.violations) {
        ++out.pinsConsidered;
        RoutedBit& bit = routed->bits[static_cast<size_t>(dev.routedBitIndex)];
        const geom::Point pin =
            bit.topo.pins()[static_cast<size_t>(dev.pinIndex)];
        const Connection conn = findTerminalConnection(bit.topo, pin);
        if (!conn.found) continue;

        // A shift of s adds 2*s wire. Aim at matching the family's
        // target distance (dst' = familyMax); fall back towards the
        // minimum shift that still clears the threshold.
        const int deficit = dev.familyMax - dev.distance;
        const int sIdeal = std::min(opts.maxDetourShift, (deficit + 1) / 2);
        const int sMin = std::max(1, (deficit - rep.threshold + 1) / 2);
        if (sMin > opts.maxDetourShift) continue;

        bool fixed = false;
        for (int s = sIdeal; s >= sMin && !fixed; --s) {
            for (const bool positive : {true, false}) {
                const Detour det = makeDetour(conn, s, positive);
                if (detourLegal(*routed, bit.topo, det, bit.hLayer,
                                bit.vLayer)) {
                    applyDetour(routed, &bit, det);
                    out.addedWirelength += 2L * s;
                    fixed = true;
                    break;
                }
            }
        }
        if (fixed) ++out.pinsFixed;
    }
    return out;
}

/// Conservative G-Cell region a group's detour pass may read or write:
/// the bounding box of every violating bit's topology, expanded by the
/// maximum total shift its detours can accumulate. Everything Alg. 4
/// touches for the group — candidate detour edges, released runs, via
/// cells — has both endpoints inside these rectangles.
std::vector<geom::Rect> groupSearchRegion(const StreakOptions& opts,
                                          const GroupDistanceReport& rep,
                                          const RoutedDesign& routed) {
    std::map<int, int> violationsOfBit;
    for (const PinDeviation& dev : rep.violations) {
        ++violationsOfBit[dev.routedBitIndex];
    }
    std::vector<geom::Rect> rects;
    rects.reserve(violationsOfBit.size());
    for (const auto& [bitIndex, count] : violationsOfBit) {
        const RoutedBit& bit = routed.bits[static_cast<size_t>(bitIndex)];
        const std::vector<geom::Point>& pins = bit.topo.pins();
        if (pins.empty()) continue;
        geom::Rect box{pins.front(), pins.front()};
        for (const geom::Point p : pins) box.expand(p);
        for (const geom::Point p : bit.topo.wirePoints()) box.expand(p);  // analyze-ok: unordered-iteration (commutative bbox expand)
        // Each violation applies at most one detour of shift
        // <= maxDetourShift, and a later connection may sit on wire a
        // previous detour already displaced — so the reachable region
        // grows by one shift per violation of the bit.
        const int margin = opts.maxDetourShift * count;
        box.lo.x -= margin;
        box.lo.y -= margin;
        box.hi.x += margin;
        box.hi.y += margin;
        rects.push_back(box);
    }
    return rects;
}

bool regionsOverlap(const std::vector<geom::Rect>& a,
                    const std::vector<geom::Rect>& b) {
    for (const geom::Rect& ra : a) {
        for (const geom::Rect& rb : b) {
            if (ra.overlaps(rb)) return true;
        }
    }
    return false;
}

}  // namespace

RefinementResult refineDistances(const RoutingProblem& prob,
                                 RoutedDesign* routed) {
    STREAK_SPAN("post/refine");
    STREAK_FAULT_POINT("post/refine");
    const StreakOptions& opts = prob.opts;
    RefinementResult result;

    // Lines 1-4: locate violating bits/pins and their targets.
    const std::vector<GroupDistanceReport> before =
        analyzeDistances(prob, *routed, opts.distanceThresholdFraction,
                         nullptr, &result.parallelStats);
    result.violatingGroupsBefore = countViolatingGroups(before);
    result.thresholds.assign(before.size(), -1);
    for (const GroupDistanceReport& r : before) {
        result.thresholds[static_cast<size_t>(r.groupIndex)] = r.threshold;
    }

    // Wave schedule over the violating groups: a group may run once every
    // earlier (lower-index) group whose search region overlaps its own
    // has finished. Same-wave groups touch disjoint G-Cells, so their
    // capacity checks and usage updates cannot interact — the outcome
    // matches the sequential group order exactly, for any thread count.
    struct Task {
        const GroupDistanceReport* rep = nullptr;
        std::vector<geom::Rect> region;
        int wave = 0;
    };
    std::vector<Task> tasks;
    for (const GroupDistanceReport& rep : before) {
        if (rep.violations.empty()) continue;
        Task t;
        t.rep = &rep;
        t.region = groupSearchRegion(opts, rep, *routed);
        for (const Task& prior : tasks) {
            if (t.wave <= prior.wave &&
                regionsOverlap(t.region, prior.region)) {
                t.wave = prior.wave + 1;
            }
        }
        tasks.push_back(std::move(t));
    }
    int waves = 0;
    for (const Task& t : tasks) waves = std::max(waves, t.wave + 1);

    parallel::ThreadPool pool(parallel::resolveThreads(opts.threads));
    pool.setControl(opts.control);
    std::vector<GroupRefineOutcome> outcomes(tasks.size());
    const bool detail = obs::detailEnabled();
    for (int wave = 0; wave < waves; ++wave) {
        // Tick point: one poll per wave (a wave is a full parallel
        // region of per-group detour searches).
        opts.control.checkpoint("refine/wave");
        std::vector<int> members;
        for (size_t t = 0; t < tasks.size(); ++t) {
            if (tasks[t].wave == wave) members.push_back(static_cast<int>(t));
        }
        if (detail) {
            // Wave sizes expose how much independence the overlap
            // scheduler found — the Fig. 13 scalability ceiling.
            obs::session()
                .histogram("post/refine.wave_size", {1, 2, 4, 8, 16, 32})
                .record(static_cast<long long>(members.size()));
        }
        pool.parallelFor(static_cast<int>(members.size()), [&](int k) {
            const int t = members[static_cast<size_t>(k)];
            outcomes[static_cast<size_t>(t)] =
                refineGroup(opts, *tasks[static_cast<size_t>(t)].rep, routed);
        });
    }
    for (const GroupRefineOutcome& out : outcomes) {
        result.pinsConsidered += out.pinsConsidered;
        result.pinsFixed += out.pinsFixed;
        result.addedWirelength += out.addedWirelength;
    }
    result.parallelStats.merge(pool.stats());
    if (detail) {
        obs::Session& sess = obs::session();
        sess.counter("post/refine.waves").add(waves);
        sess.counter("post/refine.pins_considered").add(result.pinsConsidered);
        sess.counter("post/refine.pins_fixed").add(result.pinsFixed);
        sess.counter("post/refine.added_wirelength")
            .add(result.addedWirelength);
    }

    const std::vector<GroupDistanceReport> after =
        analyzeDistances(prob, *routed, opts.distanceThresholdFraction,
                         &result.thresholds, &result.parallelStats);
    result.violatingGroupsAfter = countViolatingGroups(after);
    result.groupViolatingAfter.assign(after.size(), 0);
    for (const GroupDistanceReport& r : after) {
        result.groupViolatingAfter[static_cast<size_t>(r.groupIndex)] =
            r.violating() ? 1 : 0;
    }
    return result;
}

}  // namespace streak::post
