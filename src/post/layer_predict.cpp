#include "post/layer_predict.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace streak::post {

LayerPrediction predictLayers(
    const grid::EdgeUsage& usage,
    const std::vector<std::vector<steiner::Topology>>& bitCandidates) {
    const grid::RoutingGrid& grid = usage.grid();

    // Eq. (7): u(e, g) = sum_b sum_t u(e, t) / |S_c(b)| on 2-D unit edges.
    std::unordered_map<steiner::UnitEdge, double, steiner::UnitEdgeHash> u;
    for (const auto& cands : bitCandidates) {
        if (cands.empty()) continue;
        const double w = 1.0 / static_cast<double>(cands.size());
        for (const steiner::Topology& t : cands) {
            // Per-key accumulation: each edge gains w once per topology, in
            // the deterministic candidate order, whatever the wire order.
            for (const steiner::UnitEdge& e : t.wire()) u[e] += w;  // analyze-ok: unordered-iteration
        }
    }
    // The conflict sums below add doubles in visit order; materialize the
    // demand map sorted so the floating-point result is reproducible.
    std::vector<std::pair<steiner::UnitEdge, double>> demandByEdge(u.begin(),
                                                                   u.end());
    std::sort(demandByEdge.begin(), demandByEdge.end());

    // Eq. (8): cf(l, g) = sum_e max(u(e) - cap_remaining(e_l), 0).
    LayerPrediction out;
    double bestH = std::numeric_limits<double>::max();
    double bestV = std::numeric_limits<double>::max();
    for (int l = 0; l < grid.numLayers(); ++l) {
        double cf = 0.0;
        const bool horizontal = grid.layerDir(l) == grid::Dir::Horizontal;
        for (const auto& [e, demand] : demandByEdge) {
            if (e.horizontal != horizontal) continue;
            if (!grid.validEdge(l, e.at.x, e.at.y)) continue;
            const double rem =
                static_cast<double>(usage.remaining(grid.edgeId(l, e.at.x, e.at.y)));
            if (demand > rem) cf += demand - rem;
        }
        if (horizontal && cf < bestH) {
            bestH = cf;
            out.hLayer = l;
            out.hConflict = cf;
        } else if (!horizontal && cf < bestV) {
            bestV = cf;
            out.vLayer = l;
            out.vConflict = cf;
        }
    }
    return out;
}

}  // namespace streak::post
