// Rip-up-and-reroute: the classical alternative the paper explicitly
// rejects for post optimization (Sec. IV argues it causes domino effects
// and topology distortion). Implemented here as a comparison baseline so
// that rejection is measurable: rip-up recovers leftover objects by
// evicting committed ones, re-routing the victims wherever they still
// fit — typically trading regularity (and sometimes other objects) for
// the recovered routes, where bottom-up clustering does not.
#pragma once

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak::post {

struct RipupResult {
    int objectsRecovered = 0;  // previously unrouted objects now routed
    int objectsRipped = 0;     // committed objects evicted at least once
    int objectsLost = 0;       // ripped objects that could not re-route
};

/// Try to route every unrouted object by ripping up committed blockers.
/// Operates on a solver solution (per-object choices) and returns an
/// updated solution; the caller re-materializes. `maxRounds` bounds the
/// domino cascade.
RipupResult ripupAndReroute(const RoutingProblem& prob, RoutingSolution* sol,
                            int maxRounds = 3);

}  // namespace streak::post
