#include "post/clustering.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "core/backbone.hpp"
#include "core/equiv.hpp"
#include "core/regularity.hpp"
#include "post/layer_predict.hpp"
#include "robust/fault.hpp"

namespace streak::post {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Cluster {
    /// (objectIndex, memberIndex) of every bit in the cluster.
    std::vector<std::pair<int, int>> members;
    /// Candidate topologies of the *founding* member (cluster style).
    std::vector<steiner::Topology> candidates;
    /// Committed topology per member once routed (member-aligned).
    std::vector<steiner::Topology> routedTopos;
    bool routed = false;
    bool dead = false;  // no feasible candidate remains

    [[nodiscard]] const steiner::Topology& style() const {
        return routedTopos.front();
    }
};

/// Cost of adopting a candidate: wire-length plus via weight, mirroring
/// the candidate cost model.
double baseCost(const steiner::Topology& t, const StreakOptions& opts) {
    return static_cast<double>(t.wirelength()) +
           opts.viaWeight * (t.bendCount() + static_cast<int>(t.pins().size()));
}

bool fits(const grid::EdgeUsage& usage, const steiner::Topology& t, int h,
          int v) {
    const grid::RoutingGrid& grid = usage.grid();
    for (const steiner::UnitEdge& e : t.wire()) {  // analyze-ok: unordered-iteration (all-of check; order cannot escape)
        const int layer = e.horizontal ? h : v;
        if (!grid.validEdge(layer, e.at.x, e.at.y)) return false;
        if (usage.remaining(grid.edgeId(layer, e.at.x, e.at.y)) < 1) {
            return false;
        }
    }
    if (grid.viaLimited()) {
        for (const auto& [cell, amount] : computeViaUse(grid, t)) {
            if (usage.viaRemaining(cell) < amount) return false;
        }
    }
    return true;
}

void commit(grid::EdgeUsage* usage, const steiner::Topology& t, int h, int v) {
    const grid::RoutingGrid& grid = usage->grid();
    for (const steiner::UnitEdge& e : t.wire()) {  // analyze-ok: unordered-iteration (commutative usage adds)
        const int layer = e.horizontal ? h : v;
        usage->add(grid.edgeId(layer, e.at.x, e.at.y), 1);
    }
    if (grid.viaLimited()) {
        for (const auto& [cell, amount] : computeViaUse(grid, t)) {
            usage->addVias(cell, amount);
        }
    }
}

}  // namespace

ClusteringResult clusterAndRoute(const RoutingProblem& prob,
                                 RoutedDesign* routed) {
    STREAK_FAULT_POINT("post/cluster");
    const Design& design = *prob.design;
    const StreakOptions& opts = prob.opts;
    ClusteringResult result;
    int nextClusterKey = prob.numObjects();

    // Unrouted members grouped by signal group.
    std::map<int, std::vector<std::pair<int, int>>> leftovers;
    for (const auto& [objIdx, member] : routed->unroutedMembers) {
        leftovers[prob.objects[static_cast<size_t>(objIdx)].groupIndex]
            .push_back({objIdx, member});
    }
    std::vector<std::pair<int, int>> stillUnrouted;

    for (const auto& [groupIdx, members] : leftovers) {
        const SignalGroup& group = design.groups[static_cast<size_t>(groupIdx)];
        result.bitsAttempted += static_cast<int>(members.size());

        // Line 1 (Alg. 3): candidate topologies per bit, derived from the
        // object's backbones via equivalent-topology generation.
        std::map<int, std::vector<steiner::Topology>> backbonesOf;
        std::vector<Cluster> clusters;
        std::vector<std::vector<steiner::Topology>> allCandidates;
        for (const auto& [objIdx, member] : members) {
            const RoutingObject& obj = prob.objects[static_cast<size_t>(objIdx)];
            auto it = backbonesOf.find(objIdx);
            if (it == backbonesOf.end()) {
                it = backbonesOf
                         .emplace(objIdx,
                                  generateBackbones(group, obj, opts.backbone))
                         .first;
            }
            std::vector<steiner::Topology> cands;
            cands.reserve(it->second.size());
            for (const steiner::Topology& bb : it->second) {
                cands.push_back(equivalentTopology(bb, group, obj, member));
            }
            allCandidates.push_back(cands);
            Cluster c;
            c.members.push_back({objIdx, member});
            c.candidates = std::move(cands);
            clusters.push_back(std::move(c));
        }

        // Line 2: layer prediction for this group.
        const LayerPrediction layers =
            predictLayers(routed->usage, allCandidates);

        const auto routeCluster = [&](Cluster* c, int candIdx) {
            // The pair-cost feasibility check predates the partner's
            // commit; re-validate before committing.
            if (!fits(routed->usage, c->candidates[static_cast<size_t>(candIdx)],
                      layers.hLayer, layers.vLayer)) {
                return;
            }
            c->routed = true;
            c->routedTopos = {c->candidates[static_cast<size_t>(candIdx)]};
            commit(&routed->usage, c->style(), layers.hLayer, layers.vLayer);
        };

        // Best feasible single-cluster candidate (by base cost); -1 if
        // nothing fits.
        const auto bestCandidate = [&](const Cluster& c) {
            double best = kInf;
            int bestIdx = -1;
            for (size_t j = 0; j < c.candidates.size(); ++j) {
                if (!fits(routed->usage, c.candidates[j], layers.hLayer,
                          layers.vLayer)) {
                    continue;
                }
                const double cost = baseCost(c.candidates[j], opts);
                if (cost < best) {
                    best = cost;
                    bestIdx = static_cast<int>(j);
                }
            }
            return bestIdx;
        };

        // Lines 5-15: visit cluster pairs in minimum-cost order.
        std::set<std::pair<size_t, size_t>> visited;
        const auto pairCost = [&](const Cluster& a, const Cluster& b,
                                  int* bestA, int* bestB) -> double {
            double best = kInf;
            const int na = a.routed ? 1 : static_cast<int>(a.candidates.size());
            const int nb = b.routed ? 1 : static_cast<int>(b.candidates.size());
            for (int ja = 0; ja < na; ++ja) {
                const steiner::Topology& ta =
                    a.routed ? a.style()
                             : a.candidates[static_cast<size_t>(ja)];
                if (!a.routed &&
                    !fits(routed->usage, ta, layers.hLayer, layers.vLayer)) {
                    continue;
                }
                for (int jb = 0; jb < nb; ++jb) {
                    const steiner::Topology& tb =
                        b.routed ? b.style()
                                 : b.candidates[static_cast<size_t>(jb)];
                    if (!b.routed &&
                        !fits(routed->usage, tb, layers.hLayer, layers.vLayer)) {
                        continue;
                    }
                    double c = 0.0;
                    if (!a.routed) c += baseCost(ta, opts);
                    if (!b.routed) c += baseCost(tb, opts);
                    const double ratio = regularityRatio(ta, tb);
                    c += ratio > 0.0
                             ? opts.irregularityWeight * (1.0 / ratio - 1.0)
                             : opts.noSharePenalty;
                    if (c < best) {
                        best = c;
                        *bestA = ja;
                        *bestB = jb;
                    }
                }
            }
            return best;
        };

        for (;;) {
            double bestCost = kInf;
            size_t bestI = 0, bestJ = 0;
            int candI = -1, candJ = -1;
            for (size_t i = 0; i < clusters.size(); ++i) {
                if (clusters[i].dead) continue;
                for (size_t j = i + 1; j < clusters.size(); ++j) {
                    if (clusters[j].dead) continue;
                    if (visited.contains({i, j})) continue;
                    int ja = -1, jb = -1;
                    const double c =
                        pairCost(clusters[i], clusters[j], &ja, &jb);
                    if (c < bestCost) {
                        bestCost = c;
                        bestI = i;
                        bestJ = j;
                        candI = ja;
                        candJ = jb;
                    }
                }
            }
            if (bestCost == kInf) break;
            visited.insert({bestI, bestJ});
            Cluster& a = clusters[bestI];
            Cluster& b = clusters[bestJ];
            // Lines 7-9: route the not-yet-routed cluster(s) with the
            // minimum-cost combination found.
            if (!a.routed) routeCluster(&a, candI);
            if (!b.routed) routeCluster(&b, candJ);
            // Lines 11-14: merge equal-topology clusters.
            if (a.routed && b.routed &&
                regularityRatio(a.style(), b.style()) >= 1.0) {
                for (size_t k = 0; k < b.members.size(); ++k) {
                    a.members.push_back(b.members[k]);
                    a.routedTopos.push_back(b.routedTopos[k]);
                }
                b.members.clear();
                b.routedTopos.clear();
                b.dead = true;
            }
        }

        // Isolated clusters (single-bit groups have no pairs) route alone.
        for (Cluster& c : clusters) {
            if (c.dead || c.routed) continue;
            const int bestIdx = bestCandidate(c);
            if (bestIdx >= 0) {
                routeCluster(&c, bestIdx);
            } else {
                c.dead = true;
            }
        }

        // Emit routed bits; collect leftovers.
        for (const Cluster& c : clusters) {
            if (!c.routed) {
                for (const auto& m : c.members) stillUnrouted.push_back(m);
                continue;
            }
            if (c.members.empty()) continue;  // merged-away shell
            const int key = nextClusterKey++;
            ++result.clustersFormed;
            for (size_t k = 0; k < c.members.size(); ++k) {
                const auto& [objIdx, member] = c.members[k];
                const RoutingObject& obj =
                    prob.objects[static_cast<size_t>(objIdx)];
                RoutedBit rb;
                rb.groupIndex = groupIdx;
                rb.bitIndex = obj.bitIndices[static_cast<size_t>(member)];
                rb.objectIndex = objIdx;
                rb.memberIndex = member;
                rb.clusterKey = key;
                rb.topo = c.routedTopos[k];
                rb.hLayer = layers.hLayer;
                rb.vLayer = layers.vLayer;
                routed->bits.push_back(std::move(rb));
                ++result.bitsRouted;
            }
        }
    }

    routed->unroutedMembers = std::move(stillUnrouted);
    return result;
}

}  // namespace streak::post
