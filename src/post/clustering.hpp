// Bottom-up clustering and routing of leftover bits (Sec. IV-B, Alg. 3).
//
// Objects the solver could not route as a whole are re-attempted bit by
// bit on predicted layers: every bit starts as its own cluster; cluster
// pairs are visited in minimum-cost order, unrouted clusters adopt their
// cheapest feasible candidate, and clusters whose solutions reach
// regularity ratio 1 are merged. Committed solver routes are never ripped
// up (the paper's stated policy).
#pragma once

#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"

namespace streak::post {

struct ClusteringResult {
    int bitsAttempted = 0;
    int bitsRouted = 0;
    int clustersFormed = 0;
};

/// Route the unrouted members of `routed` in place. New bits receive
/// fresh cluster keys (>= problem object count) so the regularity metric
/// sees them as separate styles.
ClusteringResult clusterAndRoute(const RoutingProblem& prob,
                                 RoutedDesign* routed);

}  // namespace streak::post
