#include "flow/streak.hpp"

#include <memory>
#include <string>
#include <utility>

#include "check/audit.hpp"
#include "core/hier_ilp.hpp"
#include "core/ilp_router.hpp"
#include "core/pd_solver.hpp"
#include "obs/counters.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "post/clustering.hpp"
#include "post/refine.hpp"
#include "robust/control.hpp"
#include "robust/error.hpp"

namespace streak {

namespace {

/// Attach a stage's parallel-execution stats to its span so the span
/// tree is the single record of the stage (see stageParallel()).
void annotateStage(obs::SpanScope* span, const parallel::RegionStats& stats) {
    span->addArg("threads", stats.threads);
    span->addArg("regions", stats.regions);
    span->addArg("tasks", static_cast<double>(stats.tasks));
    span->addArg("wallSeconds", stats.wallSeconds);
    span->addArg("taskSeconds", stats.taskSeconds);
}

/// Final per-edge utilization distribution (in percent of capacity, with
/// > 100% overflow buckets) — the congestion signal aggregate Vio/WL
/// numbers hide.
void recordEdgeUtilization(const RoutedDesign& routed) {
    // Resolved per run, never cached in a static: the handle belongs to
    // this run's session.
    obs::Histogram& hist = obs::session().histogram(
        "route/edge.utilization_pct", {10, 25, 50, 75, 90, 100, 125, 150, 200});
    const grid::RoutingGrid& grid = routed.usage.grid();
    for (int e = 0; e < grid.numEdges(); ++e) {
        const int used = routed.usage.usage(e);
        const int cap = grid.capacity(e);
        if (cap <= 0) {
            // Capacity-less edges only matter when something routed over
            // them anyway; park those in the overflow bucket.
            if (used > 0) hist.record(1000);
            continue;
        }
        hist.record(100LL * used / cap);
    }
}

/// Enables detail instrumentation for the run when the caller asked for
/// an observer; restores the bound session's previous gate on scope exit.
class DetailForRun {
public:
    explicit DetailForRun(bool wanted)
        : previous_(obs::detailEnabled()) {
        if (wanted) obs::setDetailEnabled(true);
    }
    ~DetailForRun() { obs::setDetailEnabled(previous_); }
    DetailForRun(const DetailForRun&) = delete;
    DetailForRun& operator=(const DetailForRun&) = delete;

private:
    bool previous_;
};

/// True when the degradation ladder may absorb this error (cancellation
/// always unwinds the whole run).
bool ladderMayAbsorb(const robust::StreakError& err,
                     const robust::RecoveryPolicy& policy) {
    return policy.enabled && err.recoverable &&
           err.kind != robust::ErrorKind::Cancelled;
}

/// Record one ladder rung: a `robust/degraded.<rung>` counter (always,
/// not detail-gated — degradations are rare and the run report must
/// show them), a zero-length span event, and a Degradation entry.
void recordDegradation(StreakResult* result, const char* stage,
                       const char* rung, const robust::StreakError& cause) {
    obs::session().counter(std::string("robust/degraded.") + rung).add(1);
    const obs::SpanScope event(std::string("robust/degraded/") + rung);
    robust::Degradation d;
    d.stage = stage;
    d.site = cause.site;
    d.rung = rung;
    d.message = cause.describe();
    result->degradations.push_back(std::move(d));
}

/// Run one stage body. Everything escaping a stage boundary becomes a
/// StreakException: native ones get the stage name annotated, foreign
/// exceptions (contract failures under a throwing handler, stray
/// std::runtime_error) are wrapped as non-recoverable Internal errors.
template <typename Fn>
void runStage(const char* stageName, Fn&& body) {
    try {
        body();
    } catch (robust::StreakException& e) {
        e.noteStage(stageName);
        throw;
    } catch (const std::exception& e) {
        robust::StreakError err;
        err.kind = robust::ErrorKind::Internal;
        err.stage = stageName;
        err.message = e.what();
        throw robust::StreakException(std::move(err));
    }
}

}  // namespace

parallel::RegionStats StreakResult::stageParallel(
    std::string_view span) const {
    parallel::RegionStats stats;
    stats.threads = static_cast<int>(obs::spanArg(trace, span, "threads", 1));
    stats.regions = static_cast<int>(obs::spanArg(trace, span, "regions", 0));
    stats.tasks = static_cast<long>(obs::spanArg(trace, span, "tasks", 0));
    stats.wallSeconds = obs::spanArg(trace, span, "wallSeconds", 0.0);
    stats.taskSeconds = obs::spanArg(trace, span, "taskSeconds", 0.0);
    return stats;
}

namespace {

/// The flow body proper, with the degradation ladder at every stage
/// boundary. `opts.control` is already armed by runStreak(). Throws
/// only StreakException (via runStage), never anything else.
StreakResult runStreakGuarded(const Design& design,
                              const StreakOptions& opts) {
    StreakResult result(design.grid);
    result.threadsUsed = parallel::resolveThreads(opts.threads);

    // Bind the run's observability session (the process-global default
    // when the caller didn't supply one): every counter flush and span
    // below — including on pool workers — lands in it. One traced run at
    // a time per session: restart its span tree and remember the counter
    // baseline so result.counters holds this run's deltas.
    obs::Session& sess =
        opts.session != nullptr ? *opts.session : obs::defaultSession();
    const obs::SessionBind bind(sess);
    obs::Tracer& tracer = sess.tracer();
    tracer.reset();
    const DetailForRun detail(static_cast<bool>(opts.observer));
    const obs::Snapshot countersBefore = sess.snapshotMetrics();
    obs::SpanScope runSpan(stage::kRun);

    // Once the run-wide deadline has been absorbed by a rung, later
    // optional stages are skipped outright instead of being started
    // only to trip at their first tick.
    bool deadlineSpent = false;
    const auto absorbedDeadline = [&](const robust::StreakError& err) {
        if (err.kind == robust::ErrorKind::DeadlineExpired) {
            deadlineSpent = true;
        }
    };

    // Build has no cheaper engine to fall back to: failures (including
    // deadline expiry before any solution exists) surface as errors.
    runStage(stage::kBuild, [&] {
        obs::SpanScope span(stage::kBuild);
        parallel::RegionStats stats;
        result.problem = buildProblem(design, opts, &stats);
        annotateStage(&span, stats);
        STREAK_DEEP_AUDIT(check::auditProblem(result.problem));
    });

    runStage(stage::kSolve, [&] {
        obs::SpanScope span(stage::kSolve);
        parallel::RegionStats stats;
        if (opts.solver == SolverKind::Ilp ||
            opts.solver == SolverKind::IlpHierarchical) {
            // Warm-start the ILP from the (cheap) primal-dual solution —
            // the analogue of handing a commercial solver a MIP start; at
            // the time limit each unfinished component keeps that start.
            RoutingSolution warmSolution;
            int warmIterations = 0;
            bool haveWarm = false;
            try {
                PdResult warm = solvePrimalDual(result.problem);
                warmSolution = std::move(warm.solution);
                warmIterations = warm.iterations;
                haveWarm = true;
            } catch (const robust::StreakException& e) {
                // Rung: continue the ILP cold. Only for injected faults —
                // a deadline that already killed the cheap solver leaves
                // nothing for the expensive one either.
                if (e.error().kind != robust::ErrorKind::FaultInjected ||
                    !ladderMayAbsorb(e.error(), opts.recovery) ||
                    !opts.recovery.warmStartOptional) {
                    throw;
                }
                recordDegradation(&result, stage::kSolve, "solve.cold_start",
                                  e.error());
            }
            try {
                const RoutingSolution* warmPtr =
                    haveWarm ? &warmSolution : nullptr;
                IlpRouteResult ilp =
                    opts.solver == SolverKind::Ilp
                        ? solveIlpRouting(result.problem,
                                          opts.ilpTimeLimitSeconds, warmPtr)
                        : solveIlpHierarchical(result.problem,
                                               opts.ilpTimeLimitSeconds,
                                               warmPtr);
                result.solverSolution = std::move(ilp.solution);
                result.ilpNodes = ilp.nodesExplored;
                result.hitTimeLimit = ilp.hitTimeLimit;
                stats.merge(ilp.parallelStats);
            } catch (const robust::StreakException& e) {
                // Rung: the formal "ILP timeout -> PD result" fallback,
                // now also covering deadline expiry and injected faults.
                if (!haveWarm || !ladderMayAbsorb(e.error(), opts.recovery) ||
                    !opts.recovery.ilpFallbackToPd) {
                    throw;
                }
                recordDegradation(&result, stage::kSolve, "solve.ilp_to_pd",
                                  e.error());
                absorbedDeadline(e.error());
                result.solverSolution = std::move(warmSolution);
                result.pdIterations = warmIterations;
                result.hitTimeLimit = true;
            }
        } else {
            // The primal-dual solver is the bottom of the ladder; its
            // failures are the run's failures.
            PdResult pd = solvePrimalDual(result.problem);
            result.solverSolution = std::move(pd.solution);
            result.pdIterations = pd.iterations;
        }
        annotateStage(&span, stats);
        STREAK_DEEP_AUDIT(
            check::auditSolution(result.problem, result.solverSolution));

        result.routed = materialize(result.problem, result.solverSolution);
        STREAK_DEEP_AUDIT(
            check::auditRoutedDesign(result.problem, result.routed));
    });

    // The baseline distance analysis always runs (it feeds the reported
    // Vio(dst) numbers) and is timed on its own: counting it into the
    // post stage used to inflate the post timing that benches report
    // even when postOptimize was off.
    std::vector<GroupDistanceReport> before;
    runStage(stage::kDistance, [&] {
        obs::SpanScope span(stage::kDistance);
        parallel::RegionStats stats;
        const auto skipRung = [&](const robust::StreakError& cause) {
            if (!opts.recovery.enabled ||
                !opts.recovery.distanceSkipOnFailure) {
                robust::raise(cause);
            }
            recordDegradation(&result, stage::kDistance, "distance.skipped",
                              cause);
            before.clear();
            result.distanceViolationsBefore = 0;
            result.distanceViolationsAfter = 0;
            result.groupDistanceBefore.assign(
                static_cast<size_t>(design.numGroups()), 0);
            result.groupDistanceAfter = result.groupDistanceBefore;
        };
        if (deadlineSpent) {
            skipRung(robust::Ticket::tripError(robust::Trip::DeadlineExpired,
                                               "distance/analyze"));
            return;
        }
        try {
            before = analyzeDistances(result.problem, result.routed,
                                      opts.distanceThresholdFraction, nullptr,
                                      &stats);
            result.distanceViolationsBefore = countViolatingGroups(before);
            result.distanceViolationsAfter = result.distanceViolationsBefore;
            result.groupDistanceBefore.assign(
                static_cast<size_t>(design.numGroups()), 0);
            for (const GroupDistanceReport& r : before) {
                result.groupDistanceBefore[static_cast<size_t>(
                    r.groupIndex)] = r.violating() ? 1 : 0;
            }
            result.groupDistanceAfter = result.groupDistanceBefore;
        } catch (const robust::StreakException& e) {
            // Rung: the analysis is diagnostic — skip it rather than
            // fail a run that already has a routed solution.
            if (!ladderMayAbsorb(e.error(), opts.recovery)) throw;
            absorbedDeadline(e.error());
            skipRung(e.error());
        }
        annotateStage(&span, stats);
    });

    runStage(stage::kPost, [&] {
        obs::SpanScope span(stage::kPost);
        parallel::RegionStats stats;
        if (opts.postOptimize && deadlineSpent) {
            // Rung: the budget is gone; keep the pre-post solution.
            recordDegradation(
                &result, stage::kPost, "post.skipped",
                robust::Ticket::tripError(robust::Trip::DeadlineExpired,
                                          "flow/post"));
        } else if (opts.postOptimize) {
            // Snapshot for rollback: post optimization mutates `routed`
            // in place, and a half-applied post pass is worse than none.
            const RoutedDesign prePost = result.routed;
            const int prePostViolations = result.distanceViolationsAfter;
            const std::vector<char> prePostFlags = result.groupDistanceAfter;
            try {
                if (opts.clusteringEnabled) {
                    post::clusterAndRoute(result.problem, &result.routed);
                    STREAK_DEEP_AUDIT(check::auditRoutedDesign(
                        result.problem, result.routed));
                }
                if (opts.refinementEnabled) {
                    const post::RefinementResult ref =
                        post::refineDistances(result.problem, &result.routed);
                    result.distanceViolationsAfter = ref.violatingGroupsAfter;
                    result.groupDistanceAfter = ref.groupViolatingAfter;
                    stats.merge(ref.parallelStats);
                } else {
                    // Clustering may add bits; re-evaluate with the initial
                    // thresholds for a fair "after" number.
                    std::vector<int> thresholds(before.size(), -1);
                    for (const GroupDistanceReport& r : before) {
                        thresholds[static_cast<size_t>(r.groupIndex)] =
                            r.threshold;
                    }
                    const auto after = analyzeDistances(
                        result.problem, result.routed,
                        opts.distanceThresholdFraction, &thresholds, &stats);
                    result.distanceViolationsAfter =
                        countViolatingGroups(after);
                    result.groupDistanceAfter.assign(
                        static_cast<size_t>(design.numGroups()), 0);
                    for (const GroupDistanceReport& r : after) {
                        result.groupDistanceAfter[static_cast<size_t>(
                            r.groupIndex)] = r.violating() ? 1 : 0;
                    }
                }
            } catch (const robust::StreakException& e) {
                // Rung: restore the last valid solution.
                if (!ladderMayAbsorb(e.error(), opts.recovery) ||
                    !opts.recovery.postRollback) {
                    throw;
                }
                recordDegradation(&result, stage::kPost, "post.rolled_back",
                                  e.error());
                absorbedDeadline(e.error());
                result.routed = prePost;
                result.distanceViolationsAfter = prePostViolations;
                result.groupDistanceAfter = prePostFlags;
            }
        }
        annotateStage(&span, stats);
        // Degraded or not, the output must audit clean.
        STREAK_DEEP_AUDIT(
            check::auditRoutedDesign(result.problem, result.routed));

        result.metrics = evaluate(result.problem, result.routed);
    });
    if (obs::detailEnabled()) recordEdgeUtilization(result.routed);

    runSpan.addArg("threads", result.threadsUsed);
    runSpan.addArg("degradations",
                   static_cast<double>(result.degradations.size()));
    tracer.endSpan(runSpan.id());
    result.trace = tracer.snapshot();
    result.counters = sess.snapshotMetrics().minus(countersBefore);
    if (opts.observer) {
        opts.observer(StreakObservation{result.trace, result.counters});
    }
    return result;
}

}  // namespace

FlowResult runStreak(const Design& design, const StreakOptions& callerOpts) {
    StreakOptions opts = callerOpts;
    // Arm the run-wide ticket; every stage below sees it through the
    // options copies it already receives (Problem::opts et al.).
    std::shared_ptr<const robust::Deadline> deadline;
    if (opts.deadlineSeconds > 0.0) {
        deadline = std::make_shared<robust::Deadline>(opts.deadlineSeconds);
    }
    opts.control = robust::Ticket(deadline, opts.cancel);

    try {
        return FlowResult(runStreakGuarded(design, opts));
    } catch (const robust::StreakException& e) {
        return FlowResult(e.error());
    } catch (const std::exception& e) {
        // Belt and braces: runStage should have wrapped everything, but
        // the rim between stages (snapshots, observer) can still throw.
        robust::StreakError err;
        err.kind = robust::ErrorKind::Internal;
        err.stage = stage::kRun;
        err.message = e.what();
        return FlowResult(std::move(err));
    }
}

}  // namespace streak
