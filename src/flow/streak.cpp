#include "flow/streak.hpp"

#include "check/audit.hpp"
#include "core/hier_ilp.hpp"
#include "core/ilp_router.hpp"
#include "core/pd_solver.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "post/clustering.hpp"
#include "post/refine.hpp"

namespace streak {

namespace {

/// Attach a stage's parallel-execution stats to its span so the span
/// tree is the single record of the stage (see stageParallel()).
void annotateStage(obs::SpanScope* span, const parallel::RegionStats& stats) {
    span->addArg("threads", stats.threads);
    span->addArg("regions", stats.regions);
    span->addArg("tasks", static_cast<double>(stats.tasks));
    span->addArg("wallSeconds", stats.wallSeconds);
    span->addArg("taskSeconds", stats.taskSeconds);
}

/// Final per-edge utilization distribution (in percent of capacity, with
/// > 100% overflow buckets) — the congestion signal aggregate Vio/WL
/// numbers hide.
void recordEdgeUtilization(const RoutedDesign& routed) {
    static obs::Histogram& hist = obs::histogram(
        "route/edge.utilization_pct", {10, 25, 50, 75, 90, 100, 125, 150, 200});
    const grid::RoutingGrid& grid = routed.usage.grid();
    for (int e = 0; e < grid.numEdges(); ++e) {
        const int used = routed.usage.usage(e);
        const int cap = grid.capacity(e);
        if (cap <= 0) {
            // Capacity-less edges only matter when something routed over
            // them anyway; park those in the overflow bucket.
            if (used > 0) hist.record(1000);
            continue;
        }
        hist.record(100LL * used / cap);
    }
}

/// Enables detail instrumentation for the run when the caller asked for
/// an observer; restores the previous global gate on scope exit.
class DetailForRun {
public:
    explicit DetailForRun(bool wanted)
        : previous_(obs::detailEnabled()) {
        if (wanted) obs::setDetailEnabled(true);
    }
    ~DetailForRun() { obs::setDetailEnabled(previous_); }
    DetailForRun(const DetailForRun&) = delete;
    DetailForRun& operator=(const DetailForRun&) = delete;

private:
    bool previous_;
};

}  // namespace

parallel::RegionStats StreakResult::stageParallel(
    std::string_view span) const {
    parallel::RegionStats stats;
    stats.threads = static_cast<int>(obs::spanArg(trace, span, "threads", 1));
    stats.regions = static_cast<int>(obs::spanArg(trace, span, "regions", 0));
    stats.tasks = static_cast<long>(obs::spanArg(trace, span, "tasks", 0));
    stats.wallSeconds = obs::spanArg(trace, span, "wallSeconds", 0.0);
    stats.taskSeconds = obs::spanArg(trace, span, "taskSeconds", 0.0);
    return stats;
}

StreakResult runStreak(const Design& design, const StreakOptions& opts) {
    StreakResult result(design.grid);
    result.threadsUsed = parallel::resolveThreads(opts.threads);

    // One traced run at a time: restart the span tree and remember the
    // counter baseline so result.counters holds this run's deltas.
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.reset();
    const DetailForRun detail(static_cast<bool>(opts.observer));
    const obs::Snapshot countersBefore = obs::snapshotMetrics();
    obs::SpanScope runSpan(stage::kRun);

    {
        obs::SpanScope span(stage::kBuild);
        parallel::RegionStats stats;
        result.problem = buildProblem(design, opts, &stats);
        annotateStage(&span, stats);
    }
    STREAK_DEEP_AUDIT(check::auditProblem(result.problem));

    {
        obs::SpanScope span(stage::kSolve);
        parallel::RegionStats stats;
        if (opts.solver == SolverKind::Ilp ||
            opts.solver == SolverKind::IlpHierarchical) {
            // Warm-start the ILP from the (cheap) primal-dual solution —
            // the analogue of handing a commercial solver a MIP start; at
            // the time limit each unfinished component keeps that start.
            const PdResult warm = solvePrimalDual(result.problem);
            IlpRouteResult ilp =
                opts.solver == SolverKind::Ilp
                    ? solveIlpRouting(result.problem,
                                      opts.ilpTimeLimitSeconds,
                                      &warm.solution)
                    : solveIlpHierarchical(result.problem,
                                           opts.ilpTimeLimitSeconds,
                                           &warm.solution);
            result.solverSolution = std::move(ilp.solution);
            result.ilpNodes = ilp.nodesExplored;
            result.hitTimeLimit = ilp.hitTimeLimit;
            stats.merge(ilp.parallelStats);
        } else {
            PdResult pd = solvePrimalDual(result.problem);
            result.solverSolution = std::move(pd.solution);
            result.pdIterations = pd.iterations;
        }
        annotateStage(&span, stats);
    }
    STREAK_DEEP_AUDIT(
        check::auditSolution(result.problem, result.solverSolution));

    result.routed = materialize(result.problem, result.solverSolution);
    STREAK_DEEP_AUDIT(check::auditRoutedDesign(result.problem, result.routed));

    // The baseline distance analysis always runs (it feeds the reported
    // Vio(dst) numbers) and is timed on its own: counting it into the
    // post stage used to inflate the post timing that benches report
    // even when postOptimize was off.
    std::vector<GroupDistanceReport> before;
    {
        obs::SpanScope span(stage::kDistance);
        parallel::RegionStats stats;
        before = analyzeDistances(result.problem, result.routed,
                                  opts.distanceThresholdFraction, nullptr,
                                  &stats);
        result.distanceViolationsBefore = countViolatingGroups(before);
        result.distanceViolationsAfter = result.distanceViolationsBefore;
        annotateStage(&span, stats);
    }

    {
        obs::SpanScope span(stage::kPost);
        parallel::RegionStats stats;
        if (opts.postOptimize) {
            if (opts.clusteringEnabled) {
                post::clusterAndRoute(result.problem, &result.routed);
                STREAK_DEEP_AUDIT(
                    check::auditRoutedDesign(result.problem, result.routed));
            }
            if (opts.refinementEnabled) {
                const post::RefinementResult ref =
                    post::refineDistances(result.problem, &result.routed);
                result.distanceViolationsAfter = ref.violatingGroupsAfter;
                stats.merge(ref.parallelStats);
            } else {
                // Clustering may add bits; re-evaluate with the initial
                // thresholds for a fair "after" number.
                std::vector<int> thresholds(before.size(), -1);
                for (const GroupDistanceReport& r : before) {
                    thresholds[static_cast<size_t>(r.groupIndex)] = r.threshold;
                }
                const auto after = analyzeDistances(
                    result.problem, result.routed,
                    opts.distanceThresholdFraction, &thresholds, &stats);
                result.distanceViolationsAfter = countViolatingGroups(after);
            }
        }
        annotateStage(&span, stats);
    }
    STREAK_DEEP_AUDIT(check::auditRoutedDesign(result.problem, result.routed));

    result.metrics = evaluate(result.problem, result.routed);
    if (obs::detailEnabled()) recordEdgeUtilization(result.routed);

    runSpan.addArg("threads", result.threadsUsed);
    tracer.endSpan(runSpan.id());
    result.trace = tracer.snapshot();
    result.counters = obs::snapshotMetrics().minus(countersBefore);
    if (opts.observer) {
        opts.observer(StreakObservation{result.trace, result.counters});
    }
    return result;
}

}  // namespace streak
