#include "flow/streak.hpp"

#include <chrono>

#include "check/audit.hpp"
#include "core/hier_ilp.hpp"
#include "core/ilp_router.hpp"
#include "core/pd_solver.hpp"
#include "post/clustering.hpp"
#include "post/refine.hpp"

namespace streak {

namespace {

class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        const std::chrono::duration<double> d =
            std::chrono::steady_clock::now() - start_;
        return d.count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace

StreakResult runStreak(const Design& design, const StreakOptions& opts) {
    StreakResult result(design.grid);
    result.threadsUsed = parallel::resolveThreads(opts.threads);

    {
        const Stopwatch sw;
        result.problem = buildProblem(design, opts, &result.buildParallel);
        result.buildSeconds = sw.seconds();
    }
    STREAK_DEEP_AUDIT(check::auditProblem(result.problem));

    {
        const Stopwatch sw;
        if (opts.solver == SolverKind::Ilp ||
            opts.solver == SolverKind::IlpHierarchical) {
            // Warm-start the ILP from the (cheap) primal-dual solution —
            // the analogue of handing a commercial solver a MIP start; at
            // the time limit each unfinished component keeps that start.
            const PdResult warm = solvePrimalDual(result.problem);
            IlpRouteResult ilp =
                opts.solver == SolverKind::Ilp
                    ? solveIlpRouting(result.problem,
                                      opts.ilpTimeLimitSeconds,
                                      &warm.solution)
                    : solveIlpHierarchical(result.problem,
                                           opts.ilpTimeLimitSeconds,
                                           &warm.solution);
            result.solverSolution = std::move(ilp.solution);
            result.ilpNodes = ilp.nodesExplored;
            result.hitTimeLimit = ilp.hitTimeLimit;
            result.solveParallel.merge(ilp.parallelStats);
        } else {
            PdResult pd = solvePrimalDual(result.problem);
            result.solverSolution = std::move(pd.solution);
            result.pdIterations = pd.iterations;
        }
        result.solveSeconds = sw.seconds();
    }
    STREAK_DEEP_AUDIT(
        check::auditSolution(result.problem, result.solverSolution));

    result.routed = materialize(result.problem, result.solverSolution);
    STREAK_DEEP_AUDIT(check::auditRoutedDesign(result.problem, result.routed));

    // The baseline distance analysis always runs (it feeds the reported
    // Vio(dst) numbers) and is timed on its own: counting it into
    // postSeconds used to inflate the post-stage timing that benches
    // report even when postOptimize was off.
    std::vector<GroupDistanceReport> before;
    {
        const Stopwatch sw;
        before = analyzeDistances(result.problem, result.routed,
                                  opts.distanceThresholdFraction, nullptr,
                                  &result.distanceParallel);
        result.distanceViolationsBefore = countViolatingGroups(before);
        result.distanceViolationsAfter = result.distanceViolationsBefore;
        result.distanceSeconds = sw.seconds();
    }

    {
        const Stopwatch sw;
        if (opts.postOptimize) {
            if (opts.clusteringEnabled) {
                post::clusterAndRoute(result.problem, &result.routed);
                STREAK_DEEP_AUDIT(
                    check::auditRoutedDesign(result.problem, result.routed));
            }
            if (opts.refinementEnabled) {
                const post::RefinementResult ref =
                    post::refineDistances(result.problem, &result.routed);
                result.distanceViolationsAfter = ref.violatingGroupsAfter;
                result.postParallel.merge(ref.parallelStats);
            } else {
                // Clustering may add bits; re-evaluate with the initial
                // thresholds for a fair "after" number.
                std::vector<int> thresholds(before.size(), -1);
                for (const GroupDistanceReport& r : before) {
                    thresholds[static_cast<size_t>(r.groupIndex)] = r.threshold;
                }
                const auto after = analyzeDistances(
                    result.problem, result.routed,
                    opts.distanceThresholdFraction, &thresholds,
                    &result.postParallel);
                result.distanceViolationsAfter = countViolatingGroups(after);
            }
        }
        result.postSeconds = sw.seconds();
    }
    STREAK_DEEP_AUDIT(check::auditRoutedDesign(result.problem, result.routed));

    result.metrics = evaluate(result.problem, result.routed);
    return result;
}

}  // namespace streak
