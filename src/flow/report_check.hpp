// Library form of the observability-export validator (DESIGN.md
// "Observability"), shared by the `report_check` CLI and the test suite
// so malformed-input behaviour is testable without spawning a process.
//
// Each checker takes the document *text* (not a path — I/O stays in the
// caller), validates structurally, and returns every problem found as a
// structured "<where>: <what>" message. Hostile input — truncated JSON,
// wrong schema, missing or mistyped sections — must produce problems,
// never a crash.
//
//   checkRunReport   streak-run-report v1: header fields, required
//                    sections (design/options/metrics/robust/process/
//                    counters/histograms/spans), a "flow/run" root span,
//                    span-tree field types, and — when the document
//                    carries one or `requireEco` is set — the eco
//                    section appended by `streak eco --report`.
//   checkChromeTrace chrome://tracing export: every duration event
//                    carries ph/ts/pid/tid/name and each (pid, tid)
//                    track's B/E events balance with matching names.
//   checkKernelBench streak-kernel-bench v1 (`micro_kernels --report`):
//                    before/after sides per kernel per design, solution
//                    equality, and the >= 30% pops / pivots drop
//                    contract.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace streak::flow {

/// Outcome of one document check: empty problems == valid.
struct CheckResult {
    std::vector<std::string> problems;
    [[nodiscard]] bool ok() const { return problems.empty(); }
};

/// Validate a streak-run-report document. `where` prefixes every
/// problem (the CLI passes the file path). `requireEco` additionally
/// demands the eco section (for reports produced by `streak eco`).
[[nodiscard]] CheckResult checkRunReport(std::string_view text,
                                         const std::string& where,
                                         bool requireEco = false);

/// Validate a chrome://tracing export document.
[[nodiscard]] CheckResult checkChromeTrace(std::string_view text,
                                           const std::string& where);

/// Validate a streak-kernel-bench document.
[[nodiscard]] CheckResult checkKernelBench(std::string_view text,
                                           const std::string& where);

}  // namespace streak::flow
