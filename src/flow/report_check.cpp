#include "flow/report_check.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "flow/report.hpp"
#include "flow/streak.hpp"
#include "obs/json.hpp"

namespace streak::flow {

namespace {

using obs::json::Kind;
using obs::json::Value;

/// Problem accumulator threaded through one document check.
class Checker {
public:
    void fail(const std::string& message) { result_.problems.push_back(message); }
    [[nodiscard]] CheckResult take() { return std::move(result_); }

private:
    CheckResult result_;
};

/// Parse the document text; a syntax error (truncated file, stray bytes)
/// becomes one structured problem and a null value.
Value parseText(std::string_view text, const std::string& where,
                Checker* check) {
    std::string error;
    const Value doc = obs::json::parse(std::string(text), &error);
    if (doc.isNull() && !error.empty()) check->fail(where + ": " + error);
    return doc;
}

/// The key must exist and have the expected kind.
const Value* requireField(const Value& obj, const std::string& key, Kind kind,
                          const std::string& where, Checker* check) {
    const Value* v = obj.find(key);
    if (v == nullptr) {
        check->fail(where + ": missing field \"" + key + "\"");
        return nullptr;
    }
    if (v->kind() != kind) {
        check->fail(where + ": field \"" + key + "\" has the wrong type");
        return nullptr;
    }
    return v;
}

void checkSpanTree(const Value& span, const std::string& where,
                   Checker* check) {
    requireField(span, "name", Kind::String, where, check);
    requireField(span, "track", Kind::Number, where, check);
    requireField(span, "startSeconds", Kind::Number, where, check);
    const Value* seconds =
        requireField(span, "seconds", Kind::Number, where, check);
    if (seconds != nullptr && seconds->asNumber() < 0.0) {
        check->fail(where + ": negative span duration");
    }
    if (const Value* children = span.find("children")) {
        if (children->kind() != Kind::Array) {
            check->fail(where + ": \"children\" is not an array");
            return;
        }
        for (size_t i = 0; i < children->asArray().size(); ++i) {
            checkSpanTree(children->asArray()[i],
                          where + "/child[" + std::to_string(i) + "]", check);
        }
    }
}

/// The "process" section: host facts whose values are nondeterministic,
/// so only shape and sign are checked.
void checkProcessSection(const Value& doc, const std::string& where,
                         Checker* check) {
    const Value* process =
        requireField(doc, "process", Kind::Object, where, check);
    if (process == nullptr) return;
    const Value* rss = requireField(*process, "peakRssKb", Kind::Number,
                                    where + ":process", check);
    if (rss != nullptr && rss->asNumber() < 0.0) {
        check->fail(where + ":process: negative peakRssKb");
    }
    requireField(*process, "hostname", Kind::String, where + ":process",
                 check);
    const Value* threads = requireField(*process, "hardwareThreads",
                                        Kind::Number, where + ":process",
                                        check);
    if (threads != nullptr && threads->asNumber() < 1.0) {
        check->fail(where + ":process: hardwareThreads below 1");
    }
}

/// The "eco" section `streak eco --report` appends: run accounting whose
/// internal consistency (resolved + carried == total, resolved list
/// length) is checkable without re-running anything.
void checkEcoSection(const Value& doc, const std::string& where,
                     bool required, Checker* check) {
    const Value* eco = doc.find("eco");
    if (eco == nullptr) {
        if (required) check->fail(where + ": missing field \"eco\"");
        return;
    }
    if (eco->kind() != Kind::Object) {
        check->fail(where + ": field \"eco\" has the wrong type");
        return;
    }
    const std::string at = where + ":eco";
    const Value* total =
        requireField(*eco, "totalGroups", Kind::Number, at, check);
    const Value* resolved =
        requireField(*eco, "resolvedGroups", Kind::Number, at, check);
    const Value* carried =
        requireField(*eco, "carriedGroups", Kind::Number, at, check);
    const Value* list =
        requireField(*eco, "resolved", Kind::Array, at, check);
    requireField(*eco, "incrementalSeconds", Kind::Number, at, check);
    if (total != nullptr && resolved != nullptr && carried != nullptr &&
        resolved->asNumber() + carried->asNumber() != total->asNumber()) {
        check->fail(at + ": resolvedGroups + carriedGroups != totalGroups");
    }
    if (list != nullptr && resolved != nullptr &&
        static_cast<double>(list->asArray().size()) != resolved->asNumber()) {
        check->fail(at + ": resolved list length disagrees with "
                         "resolvedGroups");
    }
}

void checkReportDoc(const Value& doc, const std::string& where,
                    bool requireEco, Checker* check) {
    if (doc.kind() != Kind::Object) {
        if (!doc.isNull()) check->fail(where + ": top level is not an object");
        return;
    }
    const Value* schema =
        requireField(doc, "schema", Kind::String, where, check);
    if (schema != nullptr && schema->asString() != kReportSchema) {
        check->fail(where + ": schema is \"" + schema->asString() +
                    "\", expected \"" + kReportSchema + "\"");
    }
    const Value* version =
        requireField(doc, "schemaVersion", Kind::Number, where, check);
    if (version != nullptr &&
        static_cast<int>(version->asNumber()) != kReportSchemaVersion) {
        check->fail(where + ": unsupported schemaVersion " +
                    std::to_string(static_cast<int>(version->asNumber())) +
                    " (expected " + std::to_string(kReportSchemaVersion) +
                    ")");
    }
    requireField(doc, "design", Kind::Object, where, check);
    requireField(doc, "options", Kind::Object, where, check);
    requireField(doc, "metrics", Kind::Object, where, check);
    const Value* robust =
        requireField(doc, "robust", Kind::Object, where, check);
    if (robust != nullptr) {
        requireField(*robust, "deadlineSeconds", Kind::Number,
                     where + ":robust", check);
        requireField(*robust, "degraded", Kind::Bool, where + ":robust",
                     check);
        const Value* rungs = requireField(*robust, "degradations", Kind::Array,
                                          where + ":robust", check);
        if (rungs != nullptr) {
            for (size_t i = 0; i < rungs->asArray().size(); ++i) {
                const std::string at =
                    where + ":robust/degradation[" + std::to_string(i) + "]";
                const Value& rung = rungs->asArray()[i];
                requireField(rung, "stage", Kind::String, at, check);
                requireField(rung, "rung", Kind::String, at, check);
                requireField(rung, "message", Kind::String, at, check);
            }
        }
    }
    checkProcessSection(doc, where, check);
    checkEcoSection(doc, where, requireEco, check);
    requireField(doc, "counters", Kind::Object, where, check);
    requireField(doc, "histograms", Kind::Object, where, check);
    const Value* spans = requireField(doc, "spans", Kind::Array, where, check);
    if (spans == nullptr) return;
    if (spans->asArray().empty()) {
        check->fail(where + ": span tree is empty");
        return;
    }
    bool haveRun = false;
    for (const Value& root : spans->asArray()) {
        const Value* name = root.find("name");
        if (name != nullptr && name->kind() == Kind::String &&
            name->asString() == stage::kRun) {
            haveRun = true;
        }
    }
    if (!haveRun) {
        check->fail(where + ": no root span named \"" +
                    std::string(stage::kRun) + "\"");
    }
    for (size_t i = 0; i < spans->asArray().size(); ++i) {
        checkSpanTree(spans->asArray()[i],
                      where + ":span[" + std::to_string(i) + "]", check);
    }
}

void checkTraceDoc(const Value& doc, const std::string& where,
                   Checker* check) {
    if (doc.isNull()) return;
    const Value* events =
        requireField(doc, "traceEvents", Kind::Array, where, check);
    if (events == nullptr) return;

    // Per-(pid, tid) stack of open B event names.
    std::map<std::pair<int, int>, std::vector<std::string>> open;
    int durations = 0;
    for (size_t i = 0; i < events->asArray().size(); ++i) {
        const Value& ev = events->asArray()[i];
        const std::string at = where + ":event[" + std::to_string(i) + "]";
        const Value* ph = requireField(ev, "ph", Kind::String, at, check);
        const Value* name = requireField(ev, "name", Kind::String, at, check);
        const Value* pid = requireField(ev, "pid", Kind::Number, at, check);
        const Value* tid = requireField(ev, "tid", Kind::Number, at, check);
        if (ph == nullptr || name == nullptr || pid == nullptr ||
            tid == nullptr) {
            continue;
        }
        const std::pair<int, int> track{static_cast<int>(pid->asNumber()),
                                        static_cast<int>(tid->asNumber())};
        if (ph->asString() == "M") continue;  // metadata (thread_name)
        if (ph->asString() != "B" && ph->asString() != "E") {
            check->fail(at + ": unexpected phase \"" + ph->asString() + "\"");
            continue;
        }
        requireField(ev, "ts", Kind::Number, at, check);
        ++durations;
        if (ph->asString() == "B") {
            open[track].push_back(name->asString());
        } else {
            auto& stack = open[track];
            if (stack.empty()) {
                check->fail(at + ": E event with no open B on its track");
            } else if (stack.back() != name->asString()) {
                check->fail(at + ": E \"" + name->asString() +
                            "\" does not match open B \"" + stack.back() +
                            "\"");
                stack.pop_back();
            } else {
                stack.pop_back();
            }
        }
    }
    for (const auto& [track, stack] : open) {
        if (!stack.empty()) {
            check->fail(where + ": track " + std::to_string(track.first) +
                        "/" + std::to_string(track.second) + " has " +
                        std::to_string(stack.size()) +
                        " unclosed B event(s)");
        }
    }
    if (durations == 0) check->fail(where + ": no duration events");
}

/// One side (before / after) of a kernel-bench entry.
const Value* checkBenchSide(const Value& entry, const std::string& key,
                            const std::string& where, Checker* check) {
    const Value* side = requireField(entry, key, Kind::Object, where, check);
    if (side == nullptr) return nullptr;
    requireField(*side, "variant", Kind::String, where + "/" + key, check);
    requireField(*side, "seconds", Kind::Number, where + "/" + key, check);
    requireField(*side, "counters", Kind::Object, where + "/" + key, check);
    requireField(*side, "solution", Kind::Object, where + "/" + key, check);
    return side;
}

/// The before/after runs must agree on every solution field (routed
/// bits, wirelength, vias, objective, ...): the kernel rewrites are
/// required to be outcome-preserving, not just faster.
void checkBenchSolutions(const Value& before, const Value& after,
                         const std::string& where, Checker* check) {
    const Value* sb = before.find("solution");
    const Value* sa = after.find("solution");
    if (sb == nullptr || sa == nullptr || sb->kind() != Kind::Object ||
        sa->kind() != Kind::Object) {
        return;  // already reported by checkBenchSide
    }
    for (const auto& [key, value] : sb->asObject().items()) {
        const Value* other = sa->find(key);
        if (other == nullptr || other->kind() != value.kind()) {
            check->fail(where + ": solution field \"" + key +
                        "\" missing or mistyped on the after side");
            continue;
        }
        bool same = true;
        if (value.kind() == Kind::Number) {
            same = std::abs(value.asNumber() - other->asNumber()) <= 1e-6;
        } else if (value.kind() == Kind::Bool) {
            same = value.asBool() == other->asBool();
        }
        if (!same) {
            check->fail(where + ": before/after disagree on solution field \"" +
                        key + "\"");
        }
    }
}

/// Total drop of a kernel's headline counter, from the totals section.
void checkBenchDrop(const Value& totals, const std::string& kernel,
                    const std::string& where, Checker* check) {
    const Value* section =
        requireField(totals, kernel, Kind::Object, where + ":totals", check);
    if (section == nullptr) return;
    const Value* drop = requireField(*section, "dropPercent", Kind::Number,
                                     where + ":totals/" + kernel, check);
    if (drop != nullptr && drop->asNumber() < 30.0) {
        check->fail(where + ": " + kernel + " counter drop is " +
                    std::to_string(drop->asNumber()) +
                    "%, below the 30% performance contract");
    }
}

void checkBenchDoc(const Value& doc, const std::string& where,
                   Checker* check) {
    if (doc.kind() != Kind::Object) {
        if (!doc.isNull()) check->fail(where + ": top level is not an object");
        return;
    }
    const Value* schema =
        requireField(doc, "schema", Kind::String, where, check);
    if (schema != nullptr && schema->asString() != "streak-kernel-bench") {
        check->fail(where + ": schema is \"" + schema->asString() +
                    "\", expected \"streak-kernel-bench\"");
    }
    const Value* version =
        requireField(doc, "schemaVersion", Kind::Number, where, check);
    if (version != nullptr && static_cast<int>(version->asNumber()) != 1) {
        check->fail(where + ": unsupported schemaVersion");
    }
    const Value* kernels =
        requireField(doc, "kernels", Kind::Array, where, check);
    if (kernels != nullptr) {
        if (kernels->asArray().empty()) {
            check->fail(where + ": no kernel entries");
        }
        for (size_t i = 0; i < kernels->asArray().size(); ++i) {
            const Value& entry = kernels->asArray()[i];
            const std::string at =
                where + ":kernel[" + std::to_string(i) + "]";
            requireField(entry, "kernel", Kind::String, at, check);
            requireField(entry, "design", Kind::String, at, check);
            const Value* before = checkBenchSide(entry, "before", at, check);
            const Value* after = checkBenchSide(entry, "after", at, check);
            if (before != nullptr && after != nullptr) {
                checkBenchSolutions(*before, *after, at, check);
            }
        }
    }
    const Value* totals =
        requireField(doc, "totals", Kind::Object, where, check);
    if (totals != nullptr) {
        checkBenchDrop(*totals, "maze", where, check);
        checkBenchDrop(*totals, "lp", where, check);
    }
}

}  // namespace

CheckResult checkRunReport(std::string_view text, const std::string& where,
                           bool requireEco) {
    Checker check;
    const Value doc = parseText(text, where, &check);
    checkReportDoc(doc, where, requireEco, &check);
    return check.take();
}

CheckResult checkChromeTrace(std::string_view text, const std::string& where) {
    Checker check;
    const Value doc = parseText(text, where, &check);
    checkTraceDoc(doc, where, &check);
    return check.take();
}

CheckResult checkKernelBench(std::string_view text, const std::string& where) {
    Checker check;
    const Value doc = parseText(text, where, &check);
    checkBenchDoc(doc, where, &check);
    return check.take();
}

}  // namespace streak::flow
