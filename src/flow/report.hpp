// JSON run report for a Streak flow run (DESIGN.md "Observability"):
// design identity, the options the run used, the result Metrics, the
// counter / histogram deltas and the span tree with wall times.
//
// The document is schema-versioned ("schema" / "schemaVersion" header
// fields) so downstream consumers can reject reports they do not
// understand; field additions bump the minor behaviour only (same
// version), removals or renames bump schemaVersion.
#pragma once

#include <ostream>

#include "core/options.hpp"
#include "core/signal.hpp"
#include "flow/streak.hpp"
#include "obs/json.hpp"

namespace streak::flow {

inline constexpr const char* kReportSchema = "streak-run-report";
inline constexpr int kReportSchemaVersion = 1;

/// Build the report document for one finished run.
[[nodiscard]] obs::json::Value buildRunReport(const Design& design,
                                              const StreakOptions& opts,
                                              const StreakResult& result);

/// The report's "options" section on its own — the canonical JSON form
/// of the knobs that shape a run (src/campaign hashes it for config
/// provenance, so two runs compare only when this document matches).
[[nodiscard]] obs::json::Value buildOptionsJson(const StreakOptions& opts);

/// Pretty-print the report document to `os`.
void writeRunReport(const Design& design, const StreakOptions& opts,
                    const StreakResult& result, std::ostream& os);

}  // namespace streak::flow
