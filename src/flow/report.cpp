#include "flow/report.hpp"

#include <string>
#include <vector>

#include "obs/process.hpp"

namespace streak::flow {

namespace {

using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

const char* solverName(SolverKind kind) {
    switch (kind) {
        case SolverKind::PrimalDual: return "pd";
        case SolverKind::Ilp: return "ilp";
        case SolverKind::IlpHierarchical: return "hilp";
    }
    return "unknown";
}

Value designSection(const Design& design) {
    Object grid;
    grid.set("width", design.grid.width());
    grid.set("height", design.grid.height());
    grid.set("layers", design.grid.numLayers());
    Object d;
    d.set("name", design.name);
    d.set("grid", std::move(grid));
    d.set("groups", design.numGroups());
    d.set("nets", design.numNets());
    d.set("pins", design.totalPins());
    return d;
}

/// Host-side facts about the process that produced the report. All
/// nondeterministic by nature (like span wall times), so report_check
/// validates shape, never values.
Value processSection() {
    const obs::ProcessInfo info = obs::processInfo();
    Object o;
    o.set("peakRssKb", info.peakRssKb);
    o.set("hostname", info.hostname);
    o.set("hardwareThreads", info.hardwareThreads);
    return o;
}

Value optionsSection(const StreakOptions& opts) {
    Object o;
    o.set("solver", solverName(opts.solver));
    o.set("threads", opts.threads);
    o.set("ilpTimeLimitSeconds", opts.ilpTimeLimitSeconds);
    o.set("maxBackbones", opts.backbone.maxBackbones);
    o.set("maxLayerPairs", opts.maxLayerPairs);
    o.set("postOptimize", opts.postOptimize);
    o.set("clusteringEnabled", opts.clusteringEnabled);
    o.set("refinementEnabled", opts.refinementEnabled);
    o.set("distanceThresholdFraction", opts.distanceThresholdFraction);
    o.set("maxDetourShift", opts.maxDetourShift);
    return o;
}

Value metricsSection(const Metrics& m) {
    Object o;
    o.set("totalBits", m.totalBits);
    o.set("routedBits", m.routedBits);
    o.set("routability", m.routability);
    o.set("wirelength", m.wirelength);
    o.set("avgRegularity", m.avgRegularity);
    o.set("totalOverflow", m.totalOverflow);
    o.set("overflowedEdges", m.overflowedEdges);
    o.set("totalViaOverflow", m.totalViaOverflow);
    return o;
}

Value robustSection(const StreakOptions& opts, const StreakResult& result) {
    Object o;
    o.set("deadlineSeconds", opts.deadlineSeconds);
    o.set("degraded", result.degraded());
    Array rungs;
    for (const robust::Degradation& d : result.degradations) {
        Object rung;
        rung.set("stage", d.stage);
        rung.set("site", d.site);
        rung.set("rung", d.rung);
        rung.set("message", d.message);
        rungs.push_back(Value(std::move(rung)));
    }
    o.set("degradations", std::move(rungs));
    return o;
}

Value countersSection(const obs::Snapshot& snap) {
    Object o;
    for (const auto& [name, value] : snap.counters) o.set(name, value);
    return o;
}

Value histogramsSection(const obs::Snapshot& snap) {
    Object o;
    for (const auto& [name, h] : snap.histograms) {
        Array bounds;
        for (const long long b : h.upperBounds) bounds.emplace_back(b);
        Array counts;
        for (const long long c : h.counts) counts.emplace_back(c);
        Object entry;
        entry.set("upperBounds", std::move(bounds));
        entry.set("counts", std::move(counts));
        entry.set("total", h.total);
        entry.set("sum", h.sum);
        o.set(name, std::move(entry));
    }
    return o;
}

/// Span subtree rooted at `index`, children in recording order.
Value spanNode(const obs::Trace& trace,
               const std::vector<std::vector<int>>& children, int index) {
    const obs::Span& span = trace[static_cast<size_t>(index)];
    Object node;
    node.set("name", span.name);
    node.set("track", span.thread);
    node.set("startSeconds", span.startSeconds);
    node.set("seconds", span.seconds());
    if (!span.args.empty()) {
        Object args;
        for (const auto& [key, value] : span.args) args.set(key, value);
        node.set("args", std::move(args));
    }
    if (!children[static_cast<size_t>(index)].empty()) {
        Array kids;
        for (const int child : children[static_cast<size_t>(index)]) {
            kids.push_back(spanNode(trace, children, child));
        }
        node.set("children", std::move(kids));
    }
    return node;
}

Value spansSection(const obs::Trace& trace) {
    std::vector<std::vector<int>> children(trace.size());
    std::vector<int> roots;
    for (size_t i = 0; i < trace.size(); ++i) {
        const int parent = trace[i].parent;
        if (parent >= 0 && parent < static_cast<int>(trace.size())) {
            children[static_cast<size_t>(parent)].push_back(
                static_cast<int>(i));
        } else {
            roots.push_back(static_cast<int>(i));
        }
    }
    Array out;
    for (const int root : roots) out.push_back(spanNode(trace, children, root));
    return out;
}

}  // namespace

Value buildOptionsJson(const StreakOptions& opts) {
    return optionsSection(opts);
}

Value buildRunReport(const Design& design, const StreakOptions& opts,
                     const StreakResult& result) {
    Object report;
    report.set("schema", kReportSchema);
    report.set("schemaVersion", kReportSchemaVersion);
    report.set("design", designSection(design));
    report.set("options", optionsSection(opts));
    report.set("threadsUsed", result.threadsUsed);
    report.set("metrics", metricsSection(result.metrics));
    Object violations;
    violations.set("before", result.distanceViolationsBefore);
    violations.set("after", result.distanceViolationsAfter);
    report.set("distanceViolations", std::move(violations));
    Object solver;
    solver.set("pdIterations", result.pdIterations);
    solver.set("ilpNodes", result.ilpNodes);
    solver.set("hitTimeLimit", result.hitTimeLimit);
    report.set("solver", std::move(solver));
    report.set("robust", robustSection(opts, result));
    report.set("process", processSection());
    report.set("counters", countersSection(result.counters));
    report.set("histograms", histogramsSection(result.counters));
    report.set("spans", spansSection(result.trace));
    return Value(std::move(report));
}

void writeRunReport(const Design& design, const StreakOptions& opts,
                    const StreakResult& result, std::ostream& os) {
    buildRunReport(design, opts, result).write(os, 2);
    os << '\n';
}

}  // namespace streak::flow
