// The Streak flow facade (Fig. 2): identification -> backbone /
// equivalent-topology generation -> candidate selection via primal-dual
// or ILP -> optional post optimization (layer prediction + bottom-up
// clustering + distance refinement).
//
// This is the library's main entry point:
//
//   streak::Design design = ...;
//   streak::StreakOptions opts;
//   opts.solver = streak::SolverKind::PrimalDual;
//   opts.postOptimize = true;
//   streak::FlowResult res = streak::runStreak(design, opts);
//   if (res.ok()) { use(res.value()); } else { log(res.error()); }
//
// The caller owns the Design and must keep it alive while using the
// result (the embedded RoutingProblem refers to it).
//
// Fault tolerance (DESIGN.md "Robustness"): runStreak never leaks an
// exception — every failure comes back as the structured StreakError
// arm of FlowResult. Recoverable mid-stage failures (deadline share
// expired, injected faults) are absorbed by a per-stage degradation
// ladder when StreakOptions::recovery allows: the flow falls back to
// the cheaper engine or the last valid partial solution, records a
// `robust/degraded.<rung>` counter plus a span event, and lists the
// rung in StreakResult::degradations. Degraded output still passes the
// deep auditors.
//
// Timing is span-based (DESIGN.md "Observability"): runStreak records a
// span tree rooted at "flow/run" with one child per stage; the
// buildSeconds()/solveSeconds()/... accessors and the per-stage
// RegionStats derive from it, so the span tree is the single source of
// truth for where the run's wall time went.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "check/assert.hpp"
#include "core/distance.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "robust/error.hpp"
#include "robust/recovery.hpp"

namespace streak {

/// Span names of the flow stages (children of "flow/run"); the stage
/// RegionStats are attached to these spans as span args.
namespace stage {
inline constexpr const char* kRun = "flow/run";
inline constexpr const char* kBuild = "flow/build";
inline constexpr const char* kSolve = "flow/solve";
inline constexpr const char* kDistance = "flow/distance";
inline constexpr const char* kPost = "flow/post";
}  // namespace stage

struct StreakResult {
    RoutingProblem problem;
    RoutingSolution solverSolution;
    RoutedDesign routed;
    Metrics metrics;

    /// Vio(dst) before / after post optimization ("after" reuses the
    /// initial thresholds, as in Table II).
    int distanceViolationsBefore = 0;
    int distanceViolationsAfter = 0;

    /// Group-indexed Vio(dst) flags (1 = violating) backing the counts
    /// above; "after" tracks the post stage exactly like
    /// distanceViolationsAfter (rollback restores the pre-post flags,
    /// a skipped analysis leaves all groups clean). The incremental-ECO
    /// stitcher carries untouched groups' flags over verbatim.
    std::vector<char> groupDistanceBefore;
    std::vector<char> groupDistanceAfter;

    bool hitTimeLimit = false;
    int pdIterations = 0;
    long ilpNodes = 0;

    /// Degradation-ladder rungs taken during the run, in stage order
    /// (empty for a clean run); also surfaced in the JSON run report's
    /// "robust" section and as `robust/degraded.*` counters.
    std::vector<robust::Degradation> degradations;
    [[nodiscard]] bool degraded() const { return !degradations.empty(); }

    /// Worker threads the parallel stages ran with (resolved, >= 1).
    int threadsUsed = 1;

    /// The run's span tree (rooted at "flow/run"): stage spans always;
    /// detailed solver/router spans when detail instrumentation was on.
    obs::Trace trace;
    /// Per-run counter / histogram deltas. Counter values are
    /// byte-identical for every `threads` value (timestamps live only in
    /// spans); populated with the hot-path counters only when detail
    /// instrumentation was on for the run.
    obs::Snapshot counters;

    /// Wall seconds of a stage span (0 when absent from the trace).
    [[nodiscard]] double stageSeconds(std::string_view span) const {
        return obs::spanSeconds(trace, span);
    }
    /// A stage span's parallel-execution stats, reconstructed from the
    /// span args the flow attached (all-zero when absent).
    [[nodiscard]] parallel::RegionStats stageParallel(
        std::string_view span) const;

    // Derived accessors over the span tree, kept with the historical
    // field names so benches and the CLI stage table read naturally.
    [[nodiscard]] double buildSeconds() const {
        return stageSeconds(stage::kBuild);
    }
    [[nodiscard]] double solveSeconds() const {
        return stageSeconds(stage::kSolve);
    }
    /// Baseline distance analysis (always runs, even without post
    /// optimization; kept out of postSeconds so post-stage timings only
    /// cover actual post-optimization work).
    [[nodiscard]] double distanceSeconds() const {
        return stageSeconds(stage::kDistance);
    }
    [[nodiscard]] double postSeconds() const {
        return stageSeconds(stage::kPost);
    }
    [[nodiscard]] double totalSeconds() const {
        return stageSeconds(stage::kRun);
    }
    [[nodiscard]] parallel::RegionStats buildParallel() const {
        return stageParallel(stage::kBuild);
    }
    [[nodiscard]] parallel::RegionStats solveParallel() const {
        return stageParallel(stage::kSolve);
    }
    [[nodiscard]] parallel::RegionStats distanceParallel() const {
        return stageParallel(stage::kDistance);
    }
    [[nodiscard]] parallel::RegionStats postParallel() const {
        return stageParallel(stage::kPost);
    }

    explicit StreakResult(const grid::RoutingGrid& grid) : routed(grid) {}
};

/// Result-or-error of one flow run. Successful runs (possibly degraded;
/// see StreakResult::degradations) carry a StreakResult; failed runs a
/// structured StreakError. Accessing the wrong arm is a contract
/// violation (STREAK_REQUIRE), never undefined behavior.
class FlowResult {
public:
    /*implicit*/ FlowResult(StreakResult&& result)
        : result_(std::move(result)) {}
    explicit FlowResult(robust::StreakError error)
        : error_(std::move(error)) {}

    [[nodiscard]] bool ok() const { return result_.has_value(); }

    [[nodiscard]] const robust::StreakError& error() const {
        STREAK_REQUIRE(!ok(), "error() called on a successful run");
        return error_;
    }

    [[nodiscard]] const StreakResult& value() const& {
        STREAK_REQUIRE(ok(), "value() called on a failed run: {}",
                       error_.describe());
        return *result_;
    }
    /// rvalue overload returns by value so `auto r = runStreak(...).value()`
    /// moves and a reference bound to it never dangles.
    [[nodiscard]] StreakResult value() && {
        STREAK_REQUIRE(ok(), "value() called on a failed run: {}",
                       error_.describe());
        return *std::move(result_);
    }

private:
    std::optional<StreakResult> result_;
    robust::StreakError error_;
};

/// Run the whole flow. Never throws: every failure — invalid input,
/// deadline expiry, cancellation, injected fault, internal error — is
/// returned as FlowResult's error arm with a distinct ErrorKind.
[[nodiscard]] FlowResult runStreak(const Design& design,
                                   const StreakOptions& opts);

}  // namespace streak
