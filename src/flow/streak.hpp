// The Streak flow facade (Fig. 2): identification -> backbone /
// equivalent-topology generation -> candidate selection via primal-dual
// or ILP -> optional post optimization (layer prediction + bottom-up
// clustering + distance refinement).
//
// This is the library's main entry point:
//
//   streak::Design design = ...;
//   streak::StreakOptions opts;
//   opts.solver = streak::SolverKind::PrimalDual;
//   opts.postOptimize = true;
//   streak::StreakResult res = streak::runStreak(design, opts);
//
// The caller owns the Design and must keep it alive while using the
// result (the embedded RoutingProblem refers to it).
#pragma once

#include "core/distance.hpp"
#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "parallel/thread_pool.hpp"

namespace streak {

struct StreakResult {
    RoutingProblem problem;
    RoutingSolution solverSolution;
    RoutedDesign routed;
    Metrics metrics;

    /// Vio(dst) before / after post optimization ("after" reuses the
    /// initial thresholds, as in Table II).
    int distanceViolationsBefore = 0;
    int distanceViolationsAfter = 0;

    double buildSeconds = 0.0;
    double solveSeconds = 0.0;
    /// Baseline distance analysis (always runs, even without post
    /// optimization; kept out of postSeconds so post-stage timings only
    /// cover actual post-optimization work).
    double distanceSeconds = 0.0;
    double postSeconds = 0.0;
    bool hitTimeLimit = false;
    int pdIterations = 0;
    long ilpNodes = 0;

    /// Worker threads the parallel stages ran with (resolved, >= 1).
    int threadsUsed = 1;
    /// Per-stage parallel region stats (threads, wall vs task seconds);
    /// speedupEstimate() approximates the achieved parallel speedup.
    parallel::RegionStats buildParallel;
    parallel::RegionStats solveParallel;
    parallel::RegionStats distanceParallel;
    parallel::RegionStats postParallel;

    explicit StreakResult(const grid::RoutingGrid& grid) : routed(grid) {}
};

[[nodiscard]] StreakResult runStreak(const Design& design,
                                     const StreakOptions& opts);

}  // namespace streak
