// Deterministic parallel execution layer (DESIGN.md "Parallel execution").
//
// A small fixed-size thread pool with three primitives:
//
//   parallelFor(n, fn)        run fn(0..n-1), any order, block until done
//   parallelMap<T>(n, fn)     like parallelFor but collect fn(i) into
//                             slot i of a vector (index-addressed, so the
//                             result is independent of execution order)
//   orderedReduce<T>(n, produce, fold)
//                             produce T values in parallel, then fold them
//                             sequentially in strict index order on the
//                             calling thread
//
// The determinism contract of the whole layer: every parallel region
// writes results into per-index slots and every reduction folds in fixed
// index order, so the output of a region is byte-identical for any thread
// count — `threads = 1` is the exact legacy sequential path (tasks run
// inline on the calling thread, no workers are ever spawned).
//
// Pools are cheap to create (workers spawn lazily on the first parallel
// region that needs them) and are intended to live for the duration of
// one flow stage. Exceptions thrown by tasks are captured and the one
// with the lowest index is rethrown on the calling thread after the
// region drains, keeping failure behaviour index-deterministic too;
// when several tasks failed, the extra failures are tallied in the
// `parallel/exceptions_suppressed` counter and noted in the rethrown
// message so they are never silently dropped. A pool given a
// robust::Ticket (setControl) additionally polls it before each task,
// so a cancelled or over-budget run stops dispatching work and unwinds
// with the corresponding structured error.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "robust/control.hpp"

namespace streak::parallel {

/// Accumulated cost of the parallel regions run through one pool (or one
/// flow stage): wall time of the regions vs. summed task time. The ratio
/// estimates the achieved speedup without needing a serial rerun.
struct RegionStats {
    int threads = 1;         ///< pool size the regions ran with
    int regions = 0;         ///< number of parallelFor/Map invocations
    long tasks = 0;          ///< total task count across regions
    double wallSeconds = 0.0;  ///< summed wall-clock time of the regions
    double taskSeconds = 0.0;  ///< summed per-task execution time

    /// taskSeconds / wallSeconds: ~1.0 when serial, approaches the pool
    /// size under perfect scaling. Strictly this measures *concurrency*
    /// (mean tasks in flight): with more threads than cores, descheduled
    /// time inflates per-task wall time, so oversubscribed runs report
    /// concurrency rather than true speedup.
    [[nodiscard]] double speedupEstimate() const {
        return wallSeconds > 0.0 ? taskSeconds / wallSeconds : 1.0;
    }

    /// Combine stats from another pool / stage (threads: max, rest: sum).
    void merge(const RegionStats& other) {
        threads = threads > other.threads ? threads : other.threads;
        regions += other.regions;
        tasks += other.tasks;
        wallSeconds += other.wallSeconds;
        taskSeconds += other.taskSeconds;
    }
};

/// Resolve a `StreakOptions::threads`-style knob: values >= 1 pass
/// through, everything else (0, negative) means "hardware concurrency".
[[nodiscard]] int resolveThreads(int requested);

/// std::thread::hardware_concurrency with a floor of 1.
[[nodiscard]] int hardwareThreads();

class ThreadPool {
public:
    /// A pool of `threads` workers (clamped to >= 1; the calling thread
    /// counts as one worker, so `threads = 4` spawns 3 OS threads).
    /// Workers are spawned lazily by the first region with > 1 task.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int threadCount() const { return threads_; }

    /// Deadline/cancellation ticket polled before every task (idle by
    /// default). A trip makes the remaining tasks of the region fail
    /// with the matching StreakError, which the region rethrows under
    /// the usual lowest-index rule.
    void setControl(robust::Ticket control) { control_ = std::move(control); }

    /// Run fn(i) for every i in [0, n). Blocks until all tasks finished.
    /// Must be called from the owning thread only (regions never nest).
    void parallelFor(int n, const std::function<void(int)>& fn);

    /// parallelFor that collects fn(i) into slot i of the result.
    template <typename T>
    [[nodiscard]] std::vector<T> parallelMap(
        int n, const std::function<T(int)>& fn) {
        std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
        parallelFor(n, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
        return out;
    }

    /// Deterministic ordered reduction: produce(i) runs in parallel, then
    /// fold(i, value) runs on the calling thread in index order 0..n-1.
    template <typename T>
    void orderedReduce(int n, const std::function<T(int)>& produce,
                       const std::function<void(int, T&&)>& fold) {
        std::vector<T> values = parallelMap<T>(n, produce);
        for (int i = 0; i < n; ++i) {
            fold(i, std::move(values[static_cast<size_t>(i)]));
        }
    }

    /// Stats accumulated over every region this pool has run.
    [[nodiscard]] const RegionStats& stats() const { return stats_; }

private:
    struct Impl;

    void runSerial(int n, const std::function<void(int)>& fn);
    void runParallel(int n, const std::function<void(int)>& fn);

    int threads_;
    RegionStats stats_;
    robust::Ticket control_;
    std::unique_ptr<Impl> impl_;  // created lazily with the workers
};

}  // namespace streak::parallel
