#include "parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "check/assert.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/error.hpp"

namespace streak::parallel {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start;
    return d.count();
}

/// Rethrow the lowest-index failure with a note about how many other
/// task failures the region recorded alongside it. Known exception
/// types keep their type (so stage boundaries and tests can still
/// dispatch on it); anything else propagates unchanged — the note is
/// then only visible through the counter.
[[noreturn]] void rethrowWithSuppressedNote(const std::exception_ptr& first,
                                            long suppressed) {
    const std::string note =
        " [+" + std::to_string(suppressed) +
        " suppressed task failure(s), see parallel/exceptions_suppressed]";
    try {
        std::rethrow_exception(first);
    } catch (const robust::StreakException& e) {
        robust::StreakError err = e.error();
        err.message += note;
        robust::raise(std::move(err));
    } catch (const check::CheckFailure& e) {
        throw check::CheckFailure(e.what() + note);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(e.what() + note);
    } catch (const std::logic_error& e) {
        throw std::logic_error(e.what() + note);
    } catch (const std::exception& e) {
        throw std::runtime_error(e.what() + note);
    }
}

}  // namespace

int hardwareThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int resolveThreads(int requested) {
    return requested >= 1 ? requested : hardwareThreads();
}

/// Worker state: one job at a time, dispatched by an atomic task index.
struct ThreadPool::Impl {
    std::mutex mutex;
    std::condition_variable wake;   // workers wait here between jobs
    std::condition_variable done;   // the owner waits here during a job

    // Current job (valid while busyWorkers > 0 or generation just bumped).
    const std::function<void(int)>* fn = nullptr;
    int taskCount = 0;
    // Session and span that were current on the owning thread when the
    // region started; workers adopt both so spans opened (and counters
    // flushed) inside tasks land in the owner's session, attached under
    // the owner's span.
    obs::Session* session = nullptr;
    int parentSpan = -1;
    std::atomic<int> nextTask{0};
    std::atomic<bool> failed{false};
    // Deadline/cancellation ticket for the current job (idle when the
    // pool owner never called setControl).
    robust::Ticket control;
    std::vector<std::exception_ptr> errors;  // per task index
    std::vector<double> taskSeconds;         // per task index

    long generation = 0;   // bumped per job so workers never re-run one
    int busyWorkers = 0;   // workers still draining the current job
    bool shutdown = false;

    std::vector<std::thread> workers;

    /// Pull-and-run loop shared by workers and the owning thread. Each
    /// task's result lands in per-index slots, so completion order never
    /// influences the outcome.
    void drain() {
        for (;;) {
            const int i = nextTask.fetch_add(1, std::memory_order_relaxed);
            if (i >= taskCount) return;
            if (failed.load(std::memory_order_relaxed)) continue;  // fail fast
            // Workers record a trip instead of throwing: the owning
            // thread rethrows it after the region drains, under the
            // same lowest-index rule as task failures.
            if (const robust::Trip trip = control.trip();
                trip != robust::Trip::None) {
                errors[static_cast<size_t>(i)] =
                    std::make_exception_ptr(robust::StreakException(
                        robust::Ticket::tripError(trip, "parallel/task")));
                failed.store(true, std::memory_order_relaxed);
                continue;
            }
            const auto start = std::chrono::steady_clock::now();
            try {
                (*fn)(i);
            } catch (...) {
                errors[static_cast<size_t>(i)] = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
            taskSeconds[static_cast<size_t>(i)] = secondsSince(start);
        }
    }

    /// `track` is the worker's 1-based index: its span track id in the
    /// trace (0 is the owning thread).
    void workerLoop(int track) {
        long seenGeneration = 0;
        for (;;) {
            int jobParentSpan = -1;
            obs::Session* jobSession = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [&] {
                    return shutdown || generation != seenGeneration;
                });
                if (shutdown) return;
                seenGeneration = generation;
                jobParentSpan = parentSpan;
                jobSession = session;
            }
            {
                const obs::WorkerBind ctx(*jobSession, jobParentSpan, track);
                drain();
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (--busyWorkers == 0) done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads) {
    stats_.threads = threads_;
}

ThreadPool::~ThreadPool() {
    if (impl_ == nullptr) return;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->shutdown = true;
    }
    impl_->wake.notify_all();
    for (std::thread& w : impl_->workers) w.join();
}

void ThreadPool::runSerial(int n, const std::function<void(int)>& fn) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
        control_.checkpoint("parallel/task");
        fn(i);
    }
    const double wall = secondsSince(start);
    ++stats_.regions;
    stats_.tasks += n;
    stats_.wallSeconds += wall;
    stats_.taskSeconds += wall;
}

void ThreadPool::runParallel(int n, const std::function<void(int)>& fn) {
    // Gated region span: tasks that open spans (e.g. per-component ILP
    // solves) nest under it across every worker track.
    STREAK_SPAN("parallel/region");
    if (impl_ == nullptr) {
        impl_ = std::make_unique<Impl>();
        impl_->workers.reserve(static_cast<size_t>(threads_ - 1));
        for (int t = 0; t < threads_ - 1; ++t) {
            impl_->workers.emplace_back(
                [this, t] { impl_->workerLoop(t + 1); });
        }
    }
    Impl& im = *impl_;
    STREAK_REQUIRE(im.fn == nullptr,
                   "parallel regions must not nest (pool of {} threads)",
                   threads_);
    im.fn = &fn;
    im.taskCount = n;
    im.control = control_;
    im.session = &obs::session();
    im.parentSpan = im.session->tracer().currentSpan();
    im.nextTask.store(0, std::memory_order_relaxed);
    im.failed.store(false, std::memory_order_relaxed);
    im.errors.assign(static_cast<size_t>(n), nullptr);
    im.taskSeconds.assign(static_cast<size_t>(n), 0.0);

    const auto start = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(im.mutex);
        im.busyWorkers = static_cast<int>(im.workers.size());
        ++im.generation;
    }
    im.wake.notify_all();
    im.drain();  // the owning thread participates
    {
        std::unique_lock<std::mutex> lock(im.mutex);
        im.done.wait(lock, [&] { return im.busyWorkers == 0; });
    }
    im.fn = nullptr;

    ++stats_.regions;
    stats_.tasks += n;
    stats_.wallSeconds += secondsSince(start);
    for (const double s : im.taskSeconds) stats_.taskSeconds += s;

    // Rethrow the lowest-index failure so error behaviour is as
    // deterministic as success behaviour; failures beyond the first are
    // tallied (never silently dropped) and noted in the message.
    size_t firstError = im.errors.size();
    long suppressed = 0;
    for (size_t i = 0; i < im.errors.size(); ++i) {
        if (im.errors[i] == nullptr) continue;
        if (firstError == im.errors.size()) {
            firstError = i;
        } else {
            ++suppressed;
        }
    }
    if (firstError == im.errors.size()) return;
    if (suppressed == 0) std::rethrow_exception(im.errors[firstError]);
    obs::session().counter("parallel/exceptions_suppressed").add(suppressed);
    rethrowWithSuppressedNote(im.errors[firstError], suppressed);
}

void ThreadPool::parallelFor(int n, const std::function<void(int)>& fn) {
    if (n <= 0) return;
    if (threads_ == 1 || n == 1) {
        runSerial(n, fn);
    } else {
        runParallel(n, fn);
    }
}

}  // namespace streak::parallel
