// Sweep campaigns over the flow (DESIGN.md "Observability"): run a grid
// of instance families x solver configs x thread counts through
// runStreak, persist one schema-versioned record per run into an
// append-only JSON-lines store, and diff stores for regressions.
//
// Each sweep point runs under its own obs::Session (StreakOptions::
// session), so counters from one run can never bleed into the next and
// the records are byte-identical to what a fresh process would report.
// Records carry provenance — a hash of the exact design text, a hash of
// the canonical options JSON, and host info — so a diff can tell "the
// router regressed" apart from "you measured a different problem".
//
// The diff side compares a fresh store against (a) a prior store and
// (b) the committed kernel-bench baseline (BENCH_streak.json), flagging
// wall-time growth, counter growth (maze pops, LP pivots, ...), and any
// quality loss (wirelength / vias / overflow / routability). Counters
// are thread-count-invariant by the determinism contract, so any counter
// growth between same-config runs is a real behavioural change, not
// scheduling noise; wall time gets a generous threshold plus a noise
// floor instead.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "core/signal.hpp"
#include "obs/json.hpp"

namespace streak::campaign {

/// Schema header of one store line. Version bumps on any breaking field
/// change; readers reject records from other schemas/versions with a
/// structured problem, never a crash.
inline constexpr const char* kRunSchema = "streak-campaign-run";
inline constexpr int kRunSchemaVersion = 1;

/// Schema header of the machine-readable diff verdict.
inline constexpr const char* kVerdictSchema = "streak-campaign-verdict";
inline constexpr int kVerdictSchemaVersion = 1;

/// One named solver configuration of the sweep grid. `manualBaseline`
/// runs the sequential maze baseline (route::routeSequential in
/// maze-only mode) instead of the Streak flow; `options` is ignored.
struct SweepConfig {
    std::string name;
    StreakOptions options;
    bool manualBaseline = false;
};

/// The built-in configs: "pd" (primal-dual + post optimization),
/// "pd-nopost" (primal-dual only), "ilp" (the exact solver with the same
/// options as the kernel bench's after side), and "manual" (the
/// sequential maze baseline in the bench's maze-kernel semantics). The
/// ilp and manual configs measure the same quantities as the bench's
/// after sides, so their records diff directly against
/// BENCH_streak.json.
[[nodiscard]] std::vector<SweepConfig> builtinConfigs();

/// Look up a built-in config; throws std::invalid_argument for unknown
/// names (the message lists the known ones).
[[nodiscard]] SweepConfig configByName(std::string_view name);

/// What to sweep. Instances come from gen::shrunkSynthSpec(suite) — the
/// same shrunk recipe as the kernel bench, which is what makes the
/// bench-baseline comparison meaningful.
struct CampaignSpec {
    std::vector<int> suites{1, 2, 3, 4, 5, 6, 7};
    /// Empty means builtinConfigs().
    std::vector<SweepConfig> configs;
    std::vector<int> threads{0};
    /// Fault-injection knob for drills and tests: scale the named
    /// counters in every persisted record (e.g. {"route/maze.pops", 2.0}
    /// simulates a 2x maze regression without touching the router).
    std::map<std::string, double> scaleCounters;
};

/// One persisted run (one JSONL line).
struct RunRecord {
    std::string config;
    std::string instance;
    int threads = 0;      ///< requested (0 = hardware)
    int threadsUsed = 1;  ///< resolved by the run
    // Provenance.
    std::string problemHash;  ///< FNV-1a over the design's text form
    std::string configHash;   ///< FNV-1a over the canonical options JSON
    std::string hostname;
    int hardwareThreads = 1;
    // Cost.
    double wallSeconds = 0.0;
    // Quality. `vias` sums the solver-selected candidates' via counts
    // (bends + pin stacks); overflow is the routed design's.
    double routability = 0.0;
    long long wirelength = 0;
    long long vias = 0;
    long long totalOverflow = 0;
    bool degraded = false;
    std::map<std::string, long long> counters;
};

[[nodiscard]] obs::json::Value recordToJson(const RunRecord& record);

/// Parse one store line back. On any malformed input (wrong schema or
/// version, missing field, wrong type) returns nullopt and stores a
/// message in *error (when non-null).
[[nodiscard]] std::optional<RunRecord> recordFromJson(
    const obs::json::Value& value, std::string* error = nullptr);

/// A parsed store: every valid record in file order plus one structured
/// problem string per rejected line (blank lines and '#' comments are
/// skipped silently).
struct Store {
    std::vector<RunRecord> records;
    std::vector<std::string> problems;
};

/// Append records as compact JSONL (one object per line).
void appendStore(const std::vector<RunRecord>& records, std::ostream& os);

[[nodiscard]] Store readStore(std::istream& is, const std::string& where);
/// Throws robust::StreakException (invalid-input) when unreadable.
[[nodiscard]] Store readStoreFile(const std::string& path);

/// Run the sweep grid. Each point routes under a fresh obs::Session and
/// detail instrumentation, so every record carries the hot-path
/// counters. Progress lines go to *log when non-null. Throws on a flow
/// failure (the shrunk suites are expected to route cleanly).
[[nodiscard]] std::vector<RunRecord> runCampaign(const CampaignSpec& spec,
                                                 std::ostream* log = nullptr);

/// Regression thresholds. Counters are deterministic, but unrelated code
/// motion legitimately shifts them a little between binaries, so the
/// default tolerates 10% growth; wall time is noisy on shared hosts and
/// gets 50% plus an absolute floor below which runs are never compared;
/// quality must not regress at all.
struct DiffThresholds {
    double counterGrowth = 0.10;
    double wallGrowth = 0.50;
    double minWallSeconds = 0.1;
    double qualityGrowth = 0.0;
};

/// One flagged regression of a (config, instance, threads) sweep point.
struct Regression {
    std::string kind;  ///< "counter" | "wall" | "quality"
    std::string config;
    std::string instance;
    std::string metric;  ///< counter name, "wallSeconds", "wirelength", ...
    double baseline = 0.0;
    double current = 0.0;
    double growthPercent = 0.0;
};

/// Outcome of one comparison (vs a prior store or vs the bench baseline).
struct DiffReport {
    std::string against;  ///< "store" or "bench"
    int comparedRuns = 0;
    std::vector<Regression> regressions;
    /// Skipped comparisons and provenance mismatches, e.g. "no baseline
    /// for pd/synth3-shrunk/t0" — informational, never a failure.
    std::vector<std::string> notes;
    [[nodiscard]] bool ok() const { return regressions.empty(); }
};

/// Compare current records against the *last* baseline record with the
/// same (config, instance, threads) key (stores are append-only; the
/// newest measurement wins). Records whose problem or config hash
/// differs from the baseline's are noted and skipped, not compared.
[[nodiscard]] DiffReport diffAgainstStore(const Store& baseline,
                                          const Store& current,
                                          const DiffThresholds& thresholds = {});

/// Compare current "ilp"-config records against the committed kernel
/// bench (streak-kernel-bench v1): LP pivots vs the after side's
/// counters, quality vs the after side's solution. Only the LP kernel
/// entries are comparable — the maze kernel harness routes every bit
/// through the raw search, which a flow run does not.
[[nodiscard]] DiffReport diffAgainstBench(const obs::json::Value& bench,
                                          const Store& current,
                                          const DiffThresholds& thresholds = {});

/// The machine-readable verdict over every comparison that ran.
[[nodiscard]] obs::json::Value verdictJson(
    const std::vector<DiffReport>& reports);

// --- provenance hashing (FNV-1a 64-bit, hex) ---
[[nodiscard]] std::string fnv1aHex(std::string_view bytes);
[[nodiscard]] std::string problemHash(const Design& design);
[[nodiscard]] std::string configHash(const StreakOptions& opts);

}  // namespace streak::campaign
