#include "campaign/campaign.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "flow/report.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "obs/process.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "robust/error.hpp"
#include "route/sequential.hpp"

namespace streak::campaign {

namespace json = obs::json;

namespace {

/// (config, instance, threads) — the identity of one sweep point. Wall
/// time depends on the thread count, so thread points diff separately.
std::string keyOf(const RunRecord& r) {
    return r.config + '/' + r.instance + "/t" + std::to_string(r.threads);
}

/// Via count of the solver-selected candidates (stable across the post
/// stages, which reshape topologies but not the selection).
long long solverVias(const StreakResult& r) {
    long long vias = 0;
    for (size_t i = 0; i < r.solverSolution.chosen.size(); ++i) {
        const int c = r.solverSolution.chosen[i];
        if (c >= 0) vias += r.problem.candidates[i][static_cast<size_t>(c)].viaCount;
    }
    return vias;
}

/// Percent growth with a guard for zero baselines (integer metrics only
/// reach this with base >= 0).
double growthPercent(double base, double cur) {
    return 100.0 * (cur - base) / std::max(base, 1e-12);
}

void flagGrowth(DiffReport* report, const RunRecord& cur, std::string kind,
                std::string metric, double base, double current,
                double threshold) {
    if (current <= base * (1.0 + threshold) + 1e-9) return;
    report->regressions.push_back({std::move(kind), cur.config, cur.instance,
                                   std::move(metric), base, current,
                                   growthPercent(base, current)});
}

void compareRecords(const RunRecord& base, const RunRecord& cur,
                    const DiffThresholds& t, DiffReport* report) {
    // Counters: deterministic (thread-count-invariant), so growth is a
    // behavioural change. Counters absent from the baseline are new
    // instrumentation, not regressions.
    for (const auto& [name, value] : cur.counters) {
        const auto it = base.counters.find(name);
        if (it == base.counters.end()) continue;
        flagGrowth(report, cur, "counter", name,
                   static_cast<double>(it->second),
                   static_cast<double>(value), t.counterGrowth);
    }
    // Wall time: noisy; compare only runs above the floor.
    if (std::max(base.wallSeconds, cur.wallSeconds) >= t.minWallSeconds) {
        flagGrowth(report, cur, "wall", "wallSeconds", base.wallSeconds,
                   cur.wallSeconds, t.wallGrowth);
    }
    // Quality: any loss is a regression.
    flagGrowth(report, cur, "quality", "wirelength",
               static_cast<double>(base.wirelength),
               static_cast<double>(cur.wirelength), t.qualityGrowth);
    flagGrowth(report, cur, "quality", "vias", static_cast<double>(base.vias),
               static_cast<double>(cur.vias), t.qualityGrowth);
    flagGrowth(report, cur, "quality", "totalOverflow",
               static_cast<double>(base.totalOverflow),
               static_cast<double>(cur.totalOverflow), t.qualityGrowth);
    if (cur.routability < base.routability - 1e-12) {
        report->regressions.push_back(
            {"quality", cur.config, cur.instance, "routability",
             base.routability, cur.routability,
             growthPercent(base.routability, cur.routability)});
    }
    if (cur.degraded && !base.degraded) {
        report->regressions.push_back({"quality", cur.config, cur.instance,
                                       "degraded", 0.0, 1.0, 100.0});
    }
}

/// Field access that records the first failure instead of throwing.
struct Reader {
    std::string* error;
    bool ok = true;

    void fail(std::string msg) {
        if (ok && error != nullptr) *error = std::move(msg);
        ok = false;
    }
    const json::Value* field(const json::Value& v, const char* key) {
        if (!ok) return nullptr;
        const json::Value* f = v.find(key);
        if (f == nullptr) fail(std::string("missing field '") + key + "'");
        return f;
    }
    double number(const json::Value& v, const char* key) {
        const json::Value* f = field(v, key);
        if (f == nullptr) return 0.0;
        if (f->kind() != json::Kind::Number) {
            fail(std::string("field '") + key + "' is not a number");
            return 0.0;
        }
        return f->asNumber();
    }
    long long integer(const json::Value& v, const char* key) {
        return static_cast<long long>(std::llround(number(v, key)));
    }
    std::string string(const json::Value& v, const char* key) {
        const json::Value* f = field(v, key);
        if (f == nullptr) return {};
        if (f->kind() != json::Kind::String) {
            fail(std::string("field '") + key + "' is not a string");
            return {};
        }
        return f->asString();
    }
    bool boolean(const json::Value& v, const char* key) {
        const json::Value* f = field(v, key);
        if (f == nullptr) return false;
        if (f->kind() != json::Kind::Bool) {
            fail(std::string("field '") + key + "' is not a boolean");
            return false;
        }
        return f->asBool();
    }
    const json::Value* object(const json::Value& v, const char* key) {
        const json::Value* f = field(v, key);
        if (f == nullptr) return nullptr;
        if (f->kind() != json::Kind::Object) {
            fail(std::string("field '") + key + "' is not an object");
            return nullptr;
        }
        return f;
    }
};

}  // namespace

std::vector<SweepConfig> builtinConfigs() {
    SweepConfig pd;
    pd.name = "pd";
    pd.options.solver = SolverKind::PrimalDual;
    pd.options.postOptimize = true;

    SweepConfig pdNoPost;
    pdNoPost.name = "pd-nopost";
    pdNoPost.options.solver = SolverKind::PrimalDual;
    pdNoPost.options.postOptimize = false;

    // Mirrors the kernel bench's after side (micro_kernels' runIlpFlow):
    // same solver, time cap, engine and warm start, so this config's
    // counters and quality diff cleanly against BENCH_streak.json.
    SweepConfig ilp;
    ilp.name = "ilp";
    ilp.options.solver = SolverKind::Ilp;
    ilp.options.ilpTimeLimitSeconds = 10.0;
    ilp.options.postOptimize = false;

    // The sequential maze baseline in the kernel bench's semantics
    // (every bit through the search, no pattern-route shortcut), so its
    // route/maze.* counters diff against the bench's maze kernel.
    SweepConfig manual;
    manual.name = "manual";
    manual.manualBaseline = true;

    return {std::move(pd), std::move(pdNoPost), std::move(ilp),
            std::move(manual)};
}

SweepConfig configByName(std::string_view name) {
    for (SweepConfig& config : builtinConfigs()) {
        if (config.name == name) return std::move(config);
    }
    throw std::invalid_argument("campaign: unknown config '" +
                                std::string(name) +
                                "' (known: pd, pd-nopost, ilp, manual)");
}

json::Value recordToJson(const RunRecord& record) {
    json::Object o;
    o.set("schema", kRunSchema);
    o.set("schemaVersion", kRunSchemaVersion);
    o.set("config", record.config);
    o.set("instance", record.instance);
    o.set("threads", record.threads);
    o.set("threadsUsed", record.threadsUsed);
    json::Object provenance;
    provenance.set("problemHash", record.problemHash);
    provenance.set("configHash", record.configHash);
    provenance.set("hostname", record.hostname);
    provenance.set("hardwareThreads", record.hardwareThreads);
    o.set("provenance", std::move(provenance));
    o.set("wallSeconds", record.wallSeconds);
    json::Object metrics;
    metrics.set("routability", record.routability);
    metrics.set("wirelength", record.wirelength);
    metrics.set("vias", record.vias);
    metrics.set("totalOverflow", record.totalOverflow);
    metrics.set("degraded", record.degraded);
    o.set("metrics", std::move(metrics));
    json::Object counters;
    for (const auto& [name, value] : record.counters) {
        counters.set(name, value);
    }
    o.set("counters", std::move(counters));
    return o;
}

std::optional<RunRecord> recordFromJson(const json::Value& value,
                                        std::string* error) {
    Reader r{error};
    if (value.kind() != json::Kind::Object) {
        r.fail("record is not a JSON object");
        return std::nullopt;
    }
    const std::string schema = r.string(value, "schema");
    if (r.ok && schema != kRunSchema) {
        r.fail("schema mismatch: expected '" + std::string(kRunSchema) +
               "', got '" + schema + "'");
    }
    const long long version = r.integer(value, "schemaVersion");
    if (r.ok && version != kRunSchemaVersion) {
        r.fail("schemaVersion mismatch: expected " +
               std::to_string(kRunSchemaVersion) + ", got " +
               std::to_string(version));
    }
    RunRecord record;
    record.config = r.string(value, "config");
    record.instance = r.string(value, "instance");
    record.threads = static_cast<int>(r.integer(value, "threads"));
    record.threadsUsed = static_cast<int>(r.integer(value, "threadsUsed"));
    if (const json::Value* prov = r.object(value, "provenance")) {
        record.problemHash = r.string(*prov, "problemHash");
        record.configHash = r.string(*prov, "configHash");
        record.hostname = r.string(*prov, "hostname");
        record.hardwareThreads =
            static_cast<int>(r.integer(*prov, "hardwareThreads"));
    }
    record.wallSeconds = r.number(value, "wallSeconds");
    if (const json::Value* metrics = r.object(value, "metrics")) {
        record.routability = r.number(*metrics, "routability");
        record.wirelength = r.integer(*metrics, "wirelength");
        record.vias = r.integer(*metrics, "vias");
        record.totalOverflow = r.integer(*metrics, "totalOverflow");
        record.degraded = r.boolean(*metrics, "degraded");
    }
    if (const json::Value* counters = r.object(value, "counters")) {
        for (const auto& [name, v] : counters->asObject().items()) {
            if (v.kind() != json::Kind::Number) {
                r.fail("counter '" + name + "' is not a number");
                break;
            }
            record.counters[name] =
                static_cast<long long>(std::llround(v.asNumber()));
        }
    }
    if (!r.ok) return std::nullopt;
    return record;
}

void appendStore(const std::vector<RunRecord>& records, std::ostream& os) {
    for (const RunRecord& record : records) {
        recordToJson(record).write(os, -1);
        os << '\n';
    }
}

Store readStore(std::istream& is, const std::string& where) {
    Store store;
    std::string line;
    for (int lineNo = 1; std::getline(is, line); ++lineNo) {
        const size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') continue;
        const std::string at = where + ":" + std::to_string(lineNo) + ": ";
        std::string parseError;
        const json::Value value = json::parse(line, &parseError);
        if (value.isNull() && !parseError.empty()) {
            store.problems.push_back(at + parseError);
            continue;
        }
        std::string recordError;
        if (std::optional<RunRecord> record =
                recordFromJson(value, &recordError)) {
            store.records.push_back(*std::move(record));
        } else {
            store.problems.push_back(at + recordError);
        }
    }
    return store;
}

Store readStoreFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        robust::StreakError error;
        error.kind = robust::ErrorKind::InvalidInput;
        error.site = "campaign/store";
        error.message = "cannot open store " + path;
        throw robust::StreakException(std::move(error));
    }
    return readStore(in, path);
}

std::vector<RunRecord> runCampaign(const CampaignSpec& spec,
                                   std::ostream* log) {
    const std::vector<SweepConfig> configs =
        spec.configs.empty() ? builtinConfigs() : spec.configs;
    const obs::ProcessInfo host = obs::processInfo();
    std::vector<RunRecord> out;
    for (const int suite : spec.suites) {
        const Design design = gen::generate(gen::shrunkSynthSpec(suite));
        const std::string pHash = problemHash(design);
        for (const SweepConfig& config : configs) {
            for (const int threads : spec.threads) {
                RunRecord record;
                record.config = config.name;
                record.instance = design.name;
                record.threads = threads;
                record.problemHash = pHash;
                record.hostname = host.hostname;
                record.hardwareThreads = host.hardwareThreads;

                if (config.manualBaseline) {
                    // The sequential maze baseline: single-threaded, no
                    // flow options — every bit through the search (the
                    // kernel bench's semantics), counters collected in a
                    // fresh session bound for the run's duration.
                    obs::Session session;
                    const obs::SessionBind bind(session);
                    obs::setDetailEnabled(true);
                    const obs::Stopwatch watch;
                    const route::SequentialResult sr = route::routeSequential(
                        design, route::MazeOptions{}, /*mazeOnly=*/true);
                    record.wallSeconds = watch.seconds();
                    record.threadsUsed = 1;
                    record.configHash = fnv1aHex("manual-baseline/maze-only/1");
                    record.routability = sr.routability();
                    record.wirelength = sr.wirelength;
                    record.vias = sr.viaCount;
                    record.totalOverflow = sr.usage.totalOverflow() +
                                           sr.usage.totalViaOverflow();
                    record.counters = session.snapshotMetrics().counters;
                } else {
                    StreakOptions opts = config.options;
                    opts.threads = threads;
                    // A fresh session per run: no counter bleed between
                    // sweep points, records identical to fresh-process
                    // runs.
                    opts.session = std::make_shared<obs::Session>();
                    // Any observer turns on detail instrumentation, which
                    // populates the hot-path counters the records persist.
                    opts.observer = [](const StreakObservation&) {};
                    const obs::Stopwatch watch;
                    FlowResult flow = runStreak(design, opts);
                    record.wallSeconds = watch.seconds();
                    if (!flow.ok()) {
                        throw robust::StreakException(flow.error());
                    }
                    const StreakResult result = std::move(flow).value();
                    record.threadsUsed = result.threadsUsed;
                    record.configHash = configHash(opts);
                    record.routability = result.metrics.routability;
                    record.wirelength = result.metrics.wirelength;
                    record.vias = solverVias(result);
                    record.totalOverflow = result.metrics.totalOverflow +
                                           result.metrics.totalViaOverflow;
                    record.degraded = result.degraded();
                    record.counters = result.counters.counters;
                }
                for (const auto& [name, factor] : spec.scaleCounters) {
                    const auto it = record.counters.find(name);
                    if (it != record.counters.end()) {
                        it->second = static_cast<long long>(
                            std::llround(static_cast<double>(it->second) *
                                         factor));
                    }
                }
                if (log != nullptr) {
                    std::ostringstream wall;
                    wall << std::fixed << std::setprecision(3)
                         << record.wallSeconds;
                    *log << "campaign: " << keyOf(record) << ": WL "
                         << record.wirelength << ", overflow "
                         << record.totalOverflow << ", " << wall.str()
                         << "s\n";
                }
                out.push_back(std::move(record));
            }
        }
    }
    return out;
}

DiffReport diffAgainstStore(const Store& baseline, const Store& current,
                            const DiffThresholds& thresholds) {
    DiffReport report;
    report.against = "store";
    std::map<std::string, const RunRecord*> base;
    // Append-only store: the last record with a key is the newest
    // measurement and wins.
    for (const RunRecord& r : baseline.records) base[keyOf(r)] = &r;
    for (const RunRecord& cur : current.records) {
        const std::string key = keyOf(cur);
        const auto it = base.find(key);
        if (it == base.end()) {
            report.notes.push_back("no baseline for " + key);
            continue;
        }
        const RunRecord& b = *it->second;
        if (b.problemHash != cur.problemHash) {
            report.notes.push_back("problem hash changed for " + key +
                                   " (the instance differs); skipped");
            continue;
        }
        if (b.configHash != cur.configHash) {
            report.notes.push_back("config hash changed for " + key +
                                   " (the options differ); skipped");
            continue;
        }
        ++report.comparedRuns;
        compareRecords(b, cur, thresholds, &report);
    }
    return report;
}

DiffReport diffAgainstBench(const json::Value& bench, const Store& current,
                            const DiffThresholds& thresholds) {
    DiffReport report;
    report.against = "bench";
    const json::Value* schema = bench.find("schema");
    if (schema == nullptr || schema->kind() != json::Kind::String ||
        schema->asString() != "streak-kernel-bench") {
        report.notes.push_back(
            "baseline is not a streak-kernel-bench document; skipped");
        return report;
    }
    // design -> a kernel's after side. The ilp/lp kernel is comparable
    // to the "ilp" config; the route/maze kernel to "manual" (maze-only
    // sequential). Fields below -1 are absent from the bench entry and
    // skipped.
    struct BenchSide {
        double hotCounter = 0.0;  ///< pivots (lp) or pops (maze)
        double wirelength = 0.0;
        double vias = -1.0;
        double totalOverflow = -1.0;
        double routability = 0.0;
    };
    std::map<std::string, BenchSide> lpSides;
    std::map<std::string, BenchSide> mazeSides;
    const json::Value* kernels = bench.find("kernels");
    if (kernels != nullptr && kernels->kind() == json::Kind::Array) {
        for (const json::Value& entry : kernels->asArray()) {
            const json::Value* kernel = entry.find("kernel");
            const json::Value* design = entry.find("design");
            const json::Value* after = entry.find("after");
            if (kernel == nullptr || design == nullptr || after == nullptr) {
                continue;
            }
            const bool lp = kernel->asString() == "ilp/lp";
            const bool maze = kernel->asString() == "route/maze";
            if (!lp && !maze) continue;
            BenchSide side;
            if (const json::Value* counters = after->find("counters")) {
                if (const json::Value* hot = counters->find(
                        lp ? "ilp/lp.pivots" : "route/maze.pops")) {
                    side.hotCounter = hot->asNumber();
                }
            }
            if (const json::Value* solution = after->find("solution")) {
                if (const json::Value* wl = solution->find("wirelength")) {
                    side.wirelength = wl->asNumber();
                }
                if (const json::Value* v = solution->find("vias")) {
                    side.vias = v->asNumber();
                }
                if (const json::Value* of = solution->find("totalOverflow")) {
                    side.totalOverflow = of->asNumber();
                }
                if (const json::Value* route = solution->find("routability")) {
                    side.routability = route->asNumber();
                } else if (const json::Value* routed =
                               solution->find("routedBits")) {
                    const json::Value* total = solution->find("totalBits");
                    side.routability =
                        total != nullptr && total->asNumber() > 0.0
                            ? routed->asNumber() / total->asNumber()
                            : 1.0;
                }
            }
            (lp ? lpSides : mazeSides)[design->asString()] = side;
        }
    }
    for (const RunRecord& cur : current.records) {
        const bool ilpRun = cur.config == "ilp";
        const bool manualRun = cur.config == "manual";
        if (!ilpRun && !manualRun) continue;
        const char* kernelName = ilpRun ? "ilp/lp" : "route/maze";
        const std::map<std::string, BenchSide>& sides =
            ilpRun ? lpSides : mazeSides;
        const auto it = sides.find(cur.instance);
        if (it == sides.end()) {
            report.notes.push_back("bench baseline has no " +
                                   std::string(kernelName) + " entry for " +
                                   cur.instance);
            continue;
        }
        const BenchSide& side = it->second;
        ++report.comparedRuns;
        const char* hotName = ilpRun ? "ilp/lp.pivots" : "route/maze.pops";
        const auto hot = cur.counters.find(hotName);
        if (hot != cur.counters.end()) {
            flagGrowth(&report, cur, "counter", hotName, side.hotCounter,
                       static_cast<double>(hot->second),
                       thresholds.counterGrowth);
        } else {
            report.notes.push_back("record " + keyOf(cur) + " carries no " +
                                   hotName + " counter");
        }
        flagGrowth(&report, cur, "quality", "wirelength", side.wirelength,
                   static_cast<double>(cur.wirelength),
                   thresholds.qualityGrowth);
        if (side.vias >= 0.0) {
            flagGrowth(&report, cur, "quality", "vias", side.vias,
                       static_cast<double>(cur.vias),
                       thresholds.qualityGrowth);
        }
        if (side.totalOverflow >= 0.0) {
            flagGrowth(&report, cur, "quality", "totalOverflow",
                       side.totalOverflow,
                       static_cast<double>(cur.totalOverflow),
                       thresholds.qualityGrowth);
        }
        if (cur.routability < side.routability - 1e-12) {
            report.regressions.push_back(
                {"quality", cur.config, cur.instance, "routability",
                 side.routability, cur.routability,
                 growthPercent(side.routability, cur.routability)});
        }
    }
    return report;
}

json::Value verdictJson(const std::vector<DiffReport>& reports) {
    json::Object o;
    o.set("schema", kVerdictSchema);
    o.set("schemaVersion", kVerdictSchemaVersion);
    int total = 0;
    json::Array comparisons;
    for (const DiffReport& report : reports) {
        json::Object c;
        c.set("against", report.against);
        c.set("comparedRuns", report.comparedRuns);
        c.set("ok", report.ok());
        json::Array regressions;
        for (const Regression& r : report.regressions) {
            json::Object reg;
            reg.set("kind", r.kind);
            reg.set("config", r.config);
            reg.set("instance", r.instance);
            reg.set("metric", r.metric);
            reg.set("baseline", r.baseline);
            reg.set("current", r.current);
            reg.set("growthPercent", r.growthPercent);
            regressions.push_back(json::Value(std::move(reg)));
        }
        c.set("regressions", std::move(regressions));
        json::Array notes;
        for (const std::string& note : report.notes) {
            notes.push_back(json::Value(note));
        }
        c.set("notes", std::move(notes));
        total += static_cast<int>(report.regressions.size());
        comparisons.push_back(json::Value(std::move(c)));
    }
    o.set("ok", total == 0);
    o.set("regressionCount", total);
    o.set("comparisons", std::move(comparisons));
    return o;
}

std::string fnv1aHex(std::string_view bytes) {
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

std::string problemHash(const Design& design) {
    std::ostringstream os;
    io::writeDesign(design, os);
    return fnv1aHex(os.str());
}

std::string configHash(const StreakOptions& opts) {
    return fnv1aHex(flow::buildOptionsJson(opts).dump());
}

}  // namespace streak::campaign
