// Run-wide deadline + cancellation (DESIGN.md "Robustness").
//
// One wall-clock budget governs the whole flow: runStreak() arms a
// Deadline from StreakOptions::deadlineSeconds, pairs it with the
// caller's optional CancelToken, and carries both as a cheap copyable
// Ticket inside the options struct every stage already receives. Hot
// loops poll the ticket at their natural tick points (maze pops, LP
// pivots, B&B nodes, refine waves, PD iterations) through a strided
// TickGate, so a cancelled or over-budget run unwinds cleanly at the
// next tick via a structured StreakException.
//
// Determinism contract: the ticket never feeds timing back into any
// algorithmic decision — a run that is neither cancelled nor past its
// deadline behaves byte-identically to one with no ticket at all.
//
// Deadline is built on obs::Stopwatch so the raw-std::chrono lint rule
// stays confined to src/obs and src/parallel.
#pragma once

#include <atomic>
#include <memory>

#include "obs/trace.hpp"
#include "robust/error.hpp"

namespace streak::robust {

/// Thread-safe one-way cancellation flag. Hand the same shared_ptr to
/// StreakOptions::cancel and to whatever owns the run (a signal handler,
/// a daemon RPC, a watchdog thread); requestCancel() makes every ticket
/// checkpoint throw from then on.
class CancelToken {
public:
    void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const {
        return cancelled_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<bool> cancelled_{false};
};

/// Wall-clock budget armed at construction. budgetSeconds <= 0 means
/// "no deadline" (never expires).
class Deadline {
public:
    explicit Deadline(double budgetSeconds) : budgetSeconds_(budgetSeconds) {}

    [[nodiscard]] bool armed() const { return budgetSeconds_ > 0.0; }
    [[nodiscard]] bool expired() const {
        return armed() && watch_.seconds() > budgetSeconds_;
    }
    [[nodiscard]] double budgetSeconds() const { return budgetSeconds_; }

private:
    obs::Stopwatch watch_;
    double budgetSeconds_ = 0.0;
};

enum class Trip { None, Cancelled, DeadlineExpired };

/// Copyable handle over (deadline, cancel) that rides inside
/// StreakOptions — and therefore inside Problem::opts, BnbOptions,
/// LpOptions and MazeOptions — down to every hot loop. Default-
/// constructed tickets are idle and cost one branch per checkpoint.
class Ticket {
public:
    Ticket() = default;
    Ticket(std::shared_ptr<const Deadline> deadline,
           std::shared_ptr<const CancelToken> cancel)
        : deadline_(std::move(deadline)), cancel_(std::move(cancel)) {}

    [[nodiscard]] bool idle() const {
        return deadline_ == nullptr && cancel_ == nullptr;
    }

    /// Non-throwing poll. Cancellation wins over deadline expiry.
    [[nodiscard]] Trip trip() const {
        if (cancel_ != nullptr && cancel_->cancelled()) return Trip::Cancelled;
        if (deadline_ != nullptr && deadline_->expired()) {
            return Trip::DeadlineExpired;
        }
        return Trip::None;
    }

    /// Throws a StreakException when cancelled or past deadline; no-op
    /// otherwise. `site` names the tick point for the error report.
    void checkpoint(const char* site) const {
        if (idle()) return;
        const Trip t = trip();
        if (t != Trip::None) raise(tripError(t, site));
    }

    /// The structured error a given trip produces (also used by the
    /// thread pool, which records rather than throws inside workers).
    [[nodiscard]] static StreakError tripError(Trip trip, const char* site);

private:
    std::shared_ptr<const Deadline> deadline_;
    std::shared_ptr<const CancelToken> cancel_;
};

/// Strided checkpoint for hot loops: polls the clock only once every
/// `stride` ticks so the per-iteration cost is an increment + compare
/// (and nothing at all for idle tickets).
class TickGate {
public:
    explicit TickGate(const Ticket& ticket, const char* site,
                      int stride = 1024)
        : ticket_(&ticket), site_(site), stride_(ticket.idle() ? 0 : stride) {}

    void tick() {
        if (stride_ == 0) return;
        if (++count_ >= stride_) {
            count_ = 0;
            ticket_->checkpoint(site_);
        }
    }

private:
    const Ticket* ticket_;
    const char* site_;
    int stride_;
    int count_ = 0;
};

}  // namespace streak::robust
