#include "robust/error.hpp"

#include <utility>

namespace streak::robust {

const char* errorKindName(ErrorKind kind) {
    switch (kind) {
        case ErrorKind::InvalidInput: return "invalid-input";
        case ErrorKind::DeadlineExpired: return "deadline-expired";
        case ErrorKind::Cancelled: return "cancelled";
        case ErrorKind::FaultInjected: return "fault-injected";
        case ErrorKind::Internal: return "internal";
    }
    return "internal";
}

int exitCodeFor(ErrorKind kind) {
    switch (kind) {
        case ErrorKind::InvalidInput: return 3;
        case ErrorKind::DeadlineExpired: return 4;
        case ErrorKind::Cancelled: return 5;
        case ErrorKind::FaultInjected: return 6;
        case ErrorKind::Internal: return 7;
    }
    return 7;
}

std::string StreakError::describe() const {
    std::string out = errorKindName(kind);
    if (!stage.empty()) {
        out += " at ";
        out += stage;
    }
    if (!site.empty()) {
        out += " (";
        out += site;
        out += ")";
    }
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

StreakException::StreakException(StreakError error)
    : std::runtime_error(error.describe()),
      error_(std::move(error)),
      what_(error_.describe()) {}

void StreakException::noteStage(const std::string& stage) {
    if (!error_.stage.empty() || stage.empty()) return;
    error_.stage = stage;
    what_ = error_.describe();
}

void raise(StreakError error) { throw StreakException(std::move(error)); }

}  // namespace streak::robust
