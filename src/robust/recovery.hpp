// Degradation-ladder policy (DESIGN.md "Robustness").
//
// The flow's graceful-degradation ladder formalizes the fallbacks that
// used to be ad-hoc (A* window -> full grid, warm -> cold basis, ILP
// timeout -> PD result): when a stage throws a *recoverable*
// StreakError — deadline share expired, injected fault — the flow falls
// back to the cheaper engine or the last valid partial solution instead
// of failing the run. Each rung taken records a `robust/degraded.<rung>`
// counter, a span event, and a Degradation entry in the StreakResult so
// run reports show exactly what degraded. Degraded output still passes
// the deep auditors (auditSolution / auditRoutedDesign).
#pragma once

#include <string>

namespace streak::robust {

/// Per-stage switches; all on by default. Turning one off converts that
/// rung's recoverable failures into structured errors.
struct RecoveryPolicy {
    /// Master switch for the whole ladder.
    bool enabled = true;
    /// Warm-start PD failed before an ILP solve: continue the ILP cold.
    bool warmStartOptional = true;
    /// ILP solve failed or ran out of budget: keep the PD solution.
    bool ilpFallbackToPd = true;
    /// Distance analysis failed: skip it (report zero violations).
    bool distanceSkipOnFailure = true;
    /// Post optimization failed mid-way: restore the pre-post routing.
    bool postRollback = true;
};

/// One rung taken during a run, surfaced in StreakResult::degradations
/// and the JSON run report's "robust" section.
struct Degradation {
    std::string stage;   ///< flow stage ("flow/solve", ...)
    std::string site;    ///< fault site of the absorbed error, if any
    std::string rung;    ///< counter suffix ("solve.ilp_to_pd", ...)
    std::string message; ///< the absorbed error's description
};

}  // namespace streak::robust
