// Deterministic fault injection (DESIGN.md "Robustness").
//
// Stages mark their failure-prone entry points with a named site:
//
//     STREAK_FAULT_POINT("ilp/solve");
//
// The macro expands to nothing unless the build defines STREAK_FAULTS=1
// (the repo's own CMake does, behind a near-zero disarmed runtime gate;
// embedders that compile the headers without the define get it compiled
// out entirely). When compiled in, a disarmed process pays one relaxed
// atomic load per site execution. Tests arm exactly one (site, hit
// index) at a time — directly, from a seeded schedule, or from the
// STREAK_FAULT environment variable — and the matching execution throws
// a recoverable StreakException of kind FaultInjected, which the flow's
// degradation ladder must absorb or surface as a structured error
// (never a crash). tests/chaos_test.cpp sweeps every cataloged site.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "robust/error.hpp"

#ifndef STREAK_FAULTS
#define STREAK_FAULTS 0
#endif

namespace streak::robust {

/// True when STREAK_FAULT_POINT sites are compiled into this build.
[[nodiscard]] constexpr bool faultInjectionCompiled() {
    return STREAK_FAULTS >= 1;
}

/// The canonical catalog of every fault site in the code base, sorted.
/// Kept by hand in fault.cpp next to the macro so chaos sweeps can
/// enumerate sites without executing code first; robust_test checks the
/// catalog against the sites actually observed (catalog rot).
[[nodiscard]] const std::vector<std::string>& faultSiteCatalog();

/// Arm `site`: its (hitIndex + 1)-th execution throws. Replaces any
/// previously armed site and restarts hit counting.
void armFault(std::string_view site, long hitIndex = 0);

/// Arm `site` with a hit index derived deterministically (FNV-1a, no
/// std::hash — stable across platforms) from `seed` in [0, maxHit);
/// returns the chosen index. The seeded-schedule entry point for tests.
long armFaultFromSeed(std::string_view site, unsigned long seed,
                      long maxHit = 3);

/// Disarm and reset all hit counters.
void disarmFaults();

/// Arm from the STREAK_FAULT environment variable — "site" or
/// "site:hitIndex" — for CLI runs; no-op when unset or faults are
/// compiled out. Returns true when a fault was armed.
bool armFaultFromEnv();

/// Executions of `site` observed since the last arm/disarm (counting is
/// active only while a fault is armed, keeping the disarmed fast path
/// to a single atomic load).
[[nodiscard]] long faultHits(std::string_view site);

/// Sites executed at least once since the last arm/disarm.
[[nodiscard]] std::vector<std::string> faultSitesSeen();

namespace detail {
[[nodiscard]] bool faultsArmed();
void hitFaultPoint(const char* site);
}  // namespace detail

}  // namespace streak::robust

#if STREAK_FAULTS >= 1
#define STREAK_FAULT_POINT(site)                               \
    do {                                                       \
        if (::streak::robust::detail::faultsArmed())           \
            ::streak::robust::detail::hitFaultPoint(site);     \
    } while (false)
#else
#define STREAK_FAULT_POINT(site) ((void)0)
#endif
