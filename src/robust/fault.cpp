#include "robust/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace streak::robust {

namespace {

// Armed flag outside the mutex so the disarmed STREAK_FAULT_POINT fast
// path is a single relaxed load.
std::atomic<bool> gArmed{false};

struct FaultState {
    std::mutex mutex;
    std::string armedSite;
    long armedHit = 0;
    // Per-site execution counts; meaningful only while armed.
    std::map<std::string, long, std::less<>> hits;
};

FaultState& state() {
    static FaultState s;
    return s;
}

}  // namespace

const std::vector<std::string>& faultSiteCatalog() {
    // Keep sorted; every STREAK_FAULT_POINT in src/ must appear here
    // (robust_test cross-checks observed sites against this list).
    static const std::vector<std::string> kSites = {
        "bnb/node",          // ilp/branch_and_bound.cpp node loop
        "build/candidates",  // core/problem.cpp per-object expansion task
        "build/pairs",       // core/problem.cpp per-group pair blocks
        "distance/analyze",  // core/distance.cpp analysis entry
        "eco/read",          // eco/checkpoint.cpp + eco/delta.cpp parsers
        "ilp/solve",         // core/ilp_router.cpp per-component solve
        "io/read",           // io/design_io.cpp parse entry
        "lp/solve",          // ilp/lp.cpp simplex solve entry
        "maze/search",       // route/maze.cpp search entry
        "pd/iteration",      // core/pd_solver.cpp commit loop
        "post/cluster",      // post/clustering.cpp entry
        "post/refine",       // post/refine.cpp wave loop
    };
    return kSites;
}

void armFault(std::string_view site, long hitIndex) {
    FaultState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.armedSite.assign(site);
    s.armedHit = hitIndex < 0 ? 0 : hitIndex;
    s.hits.clear();
    gArmed.store(true, std::memory_order_relaxed);
}

long armFaultFromSeed(std::string_view site, unsigned long seed,
                      long maxHit) {
    if (maxHit < 1) maxHit = 1;
    // FNV-1a over the seed bytes then the site name: deterministic
    // across platforms and standard libraries (std::hash is not).
    unsigned long long h = 14695981039346656037ULL;
    auto mix = [&h](unsigned char byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    for (int i = 0; i < 8; ++i) {
        mix(static_cast<unsigned char>((seed >> (8 * i)) & 0xffU));
    }
    for (const char c : site) mix(static_cast<unsigned char>(c));
    const long hit = static_cast<long>(h % static_cast<unsigned long long>(maxHit));
    armFault(site, hit);
    return hit;
}

void disarmFaults() {
    FaultState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.armedSite.clear();
    s.armedHit = 0;
    s.hits.clear();
    gArmed.store(false, std::memory_order_relaxed);
}

bool armFaultFromEnv() {
    if (!faultInjectionCompiled()) return false;
    const char* env = std::getenv("STREAK_FAULT");
    if (env == nullptr || *env == '\0') return false;
    std::string spec(env);
    long hit = 0;
    const size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        char* end = nullptr;
        const long parsed = std::strtol(spec.c_str() + colon + 1, &end, 10);
        if (end != nullptr && *end == '\0') {
            hit = parsed;
            spec.resize(colon);
        }
    }
    if (spec.empty()) return false;
    armFault(spec, hit);
    return true;
}

long faultHits(std::string_view site) {
    FaultState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.hits.find(site);
    return it == s.hits.end() ? 0 : it->second;
}

std::vector<std::string> faultSitesSeen() {
    FaultState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<std::string> seen;
    seen.reserve(s.hits.size());
    for (const auto& [site, count] : s.hits) {
        if (count > 0) seen.push_back(site);
    }
    return seen;
}

namespace detail {

bool faultsArmed() { return gArmed.load(std::memory_order_relaxed); }

void hitFaultPoint(const char* site) {
    FaultState& s = state();
    long hitIndex = -1;
    bool fire = false;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        long& count = s.hits[std::string(site)];
        hitIndex = count++;
        fire = s.armedSite == site && hitIndex == s.armedHit;
    }
    if (!fire) return;
    StreakError err;
    err.kind = ErrorKind::FaultInjected;
    err.site = site;
    err.message = "injected fault (hit " + std::to_string(hitIndex) + ")";
    // The ladder decides per stage whether a fallback exists; sites
    // without one surface as a structured error, never a crash.
    err.recoverable = true;
    raise(std::move(err));
}

}  // namespace detail

}  // namespace streak::robust
