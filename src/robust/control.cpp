#include "robust/control.hpp"

namespace streak::robust {

StreakError Ticket::tripError(Trip trip, const char* site) {
    StreakError err;
    err.site = site == nullptr ? "" : site;
    if (trip == Trip::Cancelled) {
        err.kind = ErrorKind::Cancelled;
        err.message = "run cancelled";
        err.recoverable = false;
    } else {
        err.kind = ErrorKind::DeadlineExpired;
        err.message = "wall-clock deadline exceeded";
        // A stage cut short by the deadline may still degrade to the
        // last valid partial solution (see the ladder in flow/streak.cpp).
        err.recoverable = true;
    }
    return err;
}

}  // namespace streak::robust
