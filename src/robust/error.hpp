// Structured flow errors (DESIGN.md "Robustness").
//
// Every failure that crosses a flow-stage boundary is a StreakError: a
// machine-readable (kind, stage, site) triple plus a human message and a
// recoverability flag. Inside the flow the error travels as a
// StreakException; runStreak() converts it into the error arm of
// FlowResult, and the CLI maps the kind to a distinct exit code, so no
// raw std::runtime_error ever reaches a caller of the public API.
//
// `recoverable` is the degradation ladder's contract: a recoverable
// error thrown inside a stage lets the flow fall back to a cheaper
// engine or the last valid partial solution (see flow/streak.cpp);
// a non-recoverable one unwinds the whole run.
#pragma once

#include <stdexcept>
#include <string>

namespace streak::robust {

enum class ErrorKind {
    InvalidInput,     ///< malformed design / options (parse errors included)
    DeadlineExpired,  ///< the run-wide wall-clock budget ran out
    Cancelled,        ///< CancelToken fired; never recoverable
    FaultInjected,    ///< a STREAK_FAULT_POINT fired (tests / chaos runs)
    Internal,         ///< unexpected failure (wrapped foreign exception)
};

/// Stable lower-case name, e.g. "deadline-expired" (report + CLI output).
[[nodiscard]] const char* errorKindName(ErrorKind kind);

/// CLI exit code for a failed run. Distinct per kind so unattended
/// campaigns can triage without parsing stderr (documented in README):
/// 3 invalid-input, 4 deadline-expired, 5 cancelled, 6 fault-injected,
/// 7 internal. 0/1/2 keep their historical meanings (ok / unexpected
/// exception / usage).
[[nodiscard]] int exitCodeFor(ErrorKind kind);

struct StreakError {
    ErrorKind kind = ErrorKind::Internal;
    /// Flow stage that failed ("flow/build", "flow/solve", ...); filled
    /// in by the stage wrapper if the throw site left it empty.
    std::string stage;
    /// Finer-grained fault site ("lp/solve", "maze/search", ...), empty
    /// when the failure has no registered site.
    std::string site;
    std::string message;
    /// True when the degradation ladder may absorb this error at a stage
    /// boundary instead of failing the run.
    bool recoverable = false;

    /// "deadline-expired at flow/solve (lp/solve): run budget ... "
    [[nodiscard]] std::string describe() const;
};

/// The in-flight form of a StreakError. Thrown at fault sites and tick
/// points; caught only at stage boundaries (flow) and the runStreak()
/// rim, never leaked past the public API. Derives from
/// std::runtime_error so pre-existing catch sites (and tests) that
/// dispatch on runtime_error keep working; what() tracks noteStage().
class StreakException : public std::runtime_error {
public:
    explicit StreakException(StreakError error);

    [[nodiscard]] const char* what() const noexcept override {
        return what_.c_str();
    }
    [[nodiscard]] const StreakError& error() const { return error_; }

    /// Stage annotation for the flow's stage wrapper: records `stage`
    /// if the throw site left it empty (keeps the innermost stage).
    void noteStage(const std::string& stage);

private:
    StreakError error_;
    std::string what_;
};

/// Throw `error` as a StreakException.
[[noreturn]] void raise(StreakError error);

}  // namespace streak::robust
