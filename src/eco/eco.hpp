// Incremental ECO re-routing (DESIGN.md "Incremental ECO").
//
// Given a checkpoint of a finished run and a list of deltas, runEco()
// computes the affected-group closure, re-solves exactly those groups
// through the ordinary flow on a sub-design that shares the mutated
// grid, and carries every untouched group's routing over verbatim. The
// result is byte-identical to a from-scratch re-route of the mutated
// design (metrics, usage, topologies, per-group cluster partitions,
// distance flags) — tests/eco_test.cpp proves it differentially over
// every delta kind and thread count.
//
// Why this is sound (the projection argument): groups interact only
// through shared edge/via capacity — pair costs are intra-group. Every
// wire a group can ever occupy lies inside its pin bounding box,
// expanded by the refinement detour margin when post optimization is
// on. So if two groups' windows are disjoint, their candidate edge sets
// are disjoint, and the primal-dual global-argmin loop (or the ILP's
// per-component solves) makes the same per-group choices whether or not
// the other group is in the problem. The invalidation closure is the
// fixpoint of window overlap seeded by the deltas' dirty rectangles,
// which over-approximates capacity interaction — conservative, never
// unsound.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/signal.hpp"
#include "core/solution.hpp"
#include "eco/checkpoint.hpp"
#include "eco/delta.hpp"
#include "flow/streak.hpp"
#include "geom/rect.hpp"
#include "obs/json.hpp"
#include "robust/recovery.hpp"

namespace streak::eco {

/// The G-Cell window that bounds every wire group `groupIndex` can ever
/// occupy under `opts`: the bounding box of all its pins, expanded by
/// maxDetourShift * (maxPinsPerBit - 1) when distance refinement may add
/// detours, clamped to the grid.
[[nodiscard]] geom::Rect groupWindow(const Design& design, int groupIndex,
                                     const StreakOptions& opts);

/// The affected-group closure of `deltas`: groups whose window overlaps
/// a delta's dirty rectangle (plus every moved-pin group), closed
/// transitively under window overlap. Moved groups use the union of
/// their pre- and post-move windows. Returns sorted group indices.
[[nodiscard]] std::vector<int> affectedGroups(const Design& before,
                                              const Design& after,
                                              const StreakOptions& opts,
                                              const std::vector<Delta>& deltas);

/// Output of one incremental re-route. Owns the mutated design and the
/// closure sub-design because the embedded flow artifacts point into
/// them (RoutingProblem holds a Design*, EdgeUsage a RoutingGrid*).
struct EcoResult {
    /// The checkpointed design with every delta applied.
    std::unique_ptr<Design> design;
    /// Closure groups only (original relative order), sharing the
    /// mutated grid. Null when the closure is empty.
    std::unique_ptr<Design> subDesign;
    /// The closure re-route's full flow result. Null when the closure is
    /// empty.
    std::unique_ptr<StreakResult> sub;
    /// Stitched routed design over design->grid: carried bits verbatim,
    /// re-solved bits with group indices rewritten to global. Its
    /// unroutedMembers is empty — object indices are run-local and do
    /// not survive stitching; use unroutedBits instead.
    std::unique_ptr<RoutedDesign> routed;
    /// Unrouted bits as sorted (groupIndex, bitIndex) pairs.
    std::vector<std::pair<int, int>> unroutedBits;
    std::vector<char> groupDistanceBefore;
    std::vector<char> groupDistanceAfter;
    Metrics metrics;
    int distanceViolationsBefore = 0;
    int distanceViolationsAfter = 0;
    /// The closure, ascending global group indices.
    std::vector<int> resolvedGroups;
    int totalGroups = 0;
    [[nodiscard]] int carriedGroups() const {
        return totalGroups - static_cast<int>(resolvedGroups.size());
    }
    int threadsUsed = 1;
    int pdIterations = 0;
    bool hitTimeLimit = false;
    /// Degradation rungs the closure re-route took (empty when clean or
    /// when the closure was empty).
    std::vector<robust::Degradation> degradations;
};

/// Apply `deltas` to the checkpointed design and re-route only the
/// affected-group closure. `threadsOverride` >= 0 replaces the
/// checkpoint's thread count (the result is identical either way).
/// Raises robust::StreakException on invalid deltas or when the closure
/// re-route fails without a recovery rung.
[[nodiscard]] EcoResult runEco(const Checkpoint& ckpt,
                               const std::vector<Delta>& deltas,
                               int threadsOverride = -1);

/// Freeze an ECO result so another delta batch can chain on top of it.
/// The solver `chosen` artifact is dropped (object indices are
/// run-local); nothing downstream consumes it.
[[nodiscard]] Checkpoint makeCheckpoint(const EcoResult& eco,
                                        const StreakOptions& opts);

/// Byte-level equivalence between an incremental result and a cold
/// re-route of the same mutated design: metrics (double fields compared
/// bit-for-bit), per-edge and per-cell usage, every bit's topology and
/// trunk layers, per-group cluster partitions, the unrouted set and the
/// per-group distance flags. On mismatch returns false and, when `diff`
/// is non-null, stores a description of the first difference.
[[nodiscard]] bool equivalent(const EcoResult& eco, const StreakResult& cold,
                              std::string* diff = nullptr);

/// Run-report document for an ECO run: the standard streak-run-report
/// schema (validated by tools/report_check) plus an "eco" section with
/// the resolved/carried split and wall times. `coldSeconds` < 0 means no
/// cold reference run was taken.
[[nodiscard]] obs::json::Value buildEcoReport(const EcoResult& eco,
                                              const StreakOptions& opts,
                                              double incrementalSeconds,
                                              double coldSeconds);

}  // namespace streak::eco
