// Versioned serialization of routed state (DESIGN.md "Incremental ECO").
//
// A checkpoint freezes everything an incremental ECO re-route needs to
// treat untouched groups as solved: the full design (grid capacities
// included), the semantic option subset the run used, the solver's
// chosen[] artifact, every routed bit with its topology and trunk
// layers, the per-edge/per-cell usage, the per-group distance flags and
// the headline metrics.
//
// On disk the format is a fixed 8-byte magic ("STRKECO\n"), a u32
// format version, a length-prefixed informational JSON header, a
// little-endian binary payload, and a trailing FNV-1a checksum over
// everything before it. Doubles are stored bit-exact (no text
// round-trip), so a load/save cycle is byte-identical and the ECO
// equivalence guarantee is well defined.
//
// The reader is hardened for hostile input (tests/fuzz_test.cpp):
// truncated, bit-flipped or version-skewed files produce a structured
// robust::StreakError (kind invalid-input, site "eco/read"), never
// undefined behavior. Beyond parse bounds checks it verifies the stored
// usage against a recompute from the stored topologies, so a checkpoint
// that parses is also internally consistent.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/options.hpp"
#include "core/signal.hpp"
#include "core/solution.hpp"
#include "flow/streak.hpp"

namespace streak::eco {

inline constexpr int kCheckpointVersion = 1;
inline constexpr const char* kCheckpointSchema = "streak-eco-checkpoint";

/// In-memory image of a routed-state checkpoint. Owns its Design (the
/// routed bits and usage pairs refer to its grid's edge ids).
struct Checkpoint {
    std::unique_ptr<Design> design;
    /// Semantic option subset of the original run (solver, weights, post
    /// switches, threads). Runtime-only knobs — deadline, cancellation,
    /// recovery policy, observer — are not serialized and stay default.
    StreakOptions opts;
    /// Solver artifact: selected candidate per routing object (-1 =
    /// unrouted). Kept for round-trips and diagnostics; the ECO re-route
    /// does not consume it. Empty for checkpoints made from ECO output.
    std::vector<int> chosen;
    /// Routed bits with global group indices, in the original run's
    /// emission order (per-group relative order is what equivalence
    /// stitching relies on).
    std::vector<RoutedBit> bits;
    /// Unrouted bits as (groupIndex, bitIndex) pairs, sorted.
    std::vector<std::pair<int, int>> unroutedBits;
    /// Nonzero per-edge track usage as sorted (edgeId, tracks) pairs.
    std::vector<std::pair<int, int>> usagePairs;
    /// Nonzero per-cell via usage; empty unless the grid's via model is
    /// enabled.
    std::vector<std::pair<int, int>> viaUsagePairs;
    /// Per-group Vio(dst) flags of the original run (may be empty for
    /// pre-flag checkpoints; treated as all-clean).
    std::vector<char> groupDistanceBefore;
    std::vector<char> groupDistanceAfter;
    Metrics metrics;
    int distanceViolationsBefore = 0;
    int distanceViolationsAfter = 0;
    int pdIterations = 0;
    bool hitTimeLimit = false;
};

/// The option subset a checkpoint round-trips: everything that changes
/// the routed result, nothing that only shapes one process's run
/// (deadline, cancellation, recovery policy, observer, control ticket).
[[nodiscard]] StreakOptions semanticOptions(const StreakOptions& opts);

/// Freeze a finished flow run. Copies the design; maps the result's
/// (objectIndex, memberIndex) unrouted pairs to (group, bit).
[[nodiscard]] Checkpoint makeCheckpoint(const Design& design,
                                        const StreakOptions& opts,
                                        const StreakResult& result);

void writeCheckpoint(const Checkpoint& ckpt, std::ostream& os);
void writeCheckpointFile(const Checkpoint& ckpt, const std::string& path);

/// Parse and validate a checkpoint. Raises robust::StreakException
/// (kind invalid-input, site "eco/read") on any malformation: bad magic,
/// unsupported version, checksum mismatch, truncation, out-of-range
/// indices, or stored usage that does not match a recompute from the
/// stored topologies.
[[nodiscard]] Checkpoint readCheckpoint(std::istream& is);
[[nodiscard]] Checkpoint readCheckpointFile(const std::string& path);

/// Parse a checkpoint from an in-memory buffer (the fuzz harness entry).
[[nodiscard]] Checkpoint readCheckpointBuffer(std::string_view data);

}  // namespace streak::eco
