#include "eco/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "core/candidate.hpp"
#include "obs/json.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace streak::eco {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'R', 'K', 'E', 'C', 'O', '\n'};

// Sanity caps for hostile input: generous for any realistic design, tight
// enough that a fuzzed count can never drive a giant allocation.
constexpr int kMaxDim = 8192;
constexpr int kMaxLayers = 64;
constexpr int kMaxCapacity = 1 << 20;
constexpr long kMaxEdges = 1L << 28;

[[nodiscard]] std::uint64_t fnv1a(std::string_view data) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

// --- little-endian emitters ------------------------------------------

void putU8(std::string* b, std::uint8_t v) {
    b->push_back(static_cast<char>(v));
}

void putU32(std::string* b, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        b->push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
}

void putI32(std::string* b, std::int32_t v) {
    putU32(b, static_cast<std::uint32_t>(v));
}

void putU64(std::string* b, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        b->push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
    }
}

void putI64(std::string* b, std::int64_t v) {
    putU64(b, static_cast<std::uint64_t>(v));
}

void putF64(std::string* b, double v) {
    putU64(b, std::bit_cast<std::uint64_t>(v));
}

void putStr(std::string* b, const std::string& s) {
    putU32(b, static_cast<std::uint32_t>(s.size()));
    b->append(s);
}

void putPairs(std::string* b, const std::vector<std::pair<int, int>>& ps) {
    putU32(b, static_cast<std::uint32_t>(ps.size()));
    for (const auto& [a, c] : ps) {
        putI32(b, a);
        putI32(b, c);
    }
}

void putFlags(std::string* b, const std::vector<char>& flags) {
    putU32(b, static_cast<std::uint32_t>(flags.size()));
    for (const char f : flags) putU8(b, f != 0 ? 1 : 0);
}

// --- bounds-checked little-endian reader -----------------------------

class Reader {
public:
    explicit Reader(std::string_view data) : data_(data) {}

    [[noreturn]] void fail(const std::string& what) const {
        robust::StreakError err;
        err.kind = robust::ErrorKind::InvalidInput;
        err.site = "eco/read";
        err.message = "checkpoint: " + what + " (at byte " +
                      std::to_string(pos_) + ")";
        robust::raise(std::move(err));
    }

    [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }

    void need(size_t n) const {
        if (n > remaining()) fail("truncated payload");
    }

    [[nodiscard]] std::uint8_t u8() {
        need(1);
        return static_cast<unsigned char>(data_[pos_++]);
    }

    [[nodiscard]] std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::int32_t i32() {
        return static_cast<std::int32_t>(u32());
    }

    [[nodiscard]] std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    [[nodiscard]] std::int64_t i64() {
        return static_cast<std::int64_t>(u64());
    }

    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

    /// A count that prefixes `minElemBytes`-sized elements; bounded by the
    /// bytes actually left, so counts can never drive a giant allocation.
    [[nodiscard]] std::uint32_t count(size_t minElemBytes,
                                      const char* what) {
        const std::uint32_t n = u32();
        if (static_cast<size_t>(n) > remaining() / minElemBytes) {
            fail(std::string(what) + " count exceeds payload size");
        }
        return n;
    }

    [[nodiscard]] std::string str() {
        const std::uint32_t n = count(1, "string");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    [[nodiscard]] std::string_view view(size_t n) {
        need(n);
        const std::string_view v = data_.substr(pos_, n);
        pos_ += n;
        return v;
    }

private:
    std::string_view data_;
    size_t pos_ = 0;
};

}  // namespace

StreakOptions semanticOptions(const StreakOptions& opts) {
    StreakOptions s;
    s.backbone = opts.backbone;
    s.maxLayerPairs = opts.maxLayerPairs;
    s.viaWeight = opts.viaWeight;
    s.layerAdjacencyWeight = opts.layerAdjacencyWeight;
    s.nonRoutePenaltyM = opts.nonRoutePenaltyM;
    s.irregularityWeight = opts.irregularityWeight;
    s.noSharePenalty = opts.noSharePenalty;
    s.pairLayerWeight = opts.pairLayerWeight;
    s.solver = opts.solver;
    s.ilpTimeLimitSeconds = opts.ilpTimeLimitSeconds;
    s.lpEngine = opts.lpEngine;
    s.lpWarmStart = opts.lpWarmStart;
    s.threads = opts.threads;
    s.postOptimize = opts.postOptimize;
    s.clusteringEnabled = opts.clusteringEnabled;
    s.refinementEnabled = opts.refinementEnabled;
    s.distanceThresholdFraction = opts.distanceThresholdFraction;
    s.maxDetourShift = opts.maxDetourShift;
    return s;
}

namespace {

void writeGrid(std::string* b, const grid::RoutingGrid& grid) {
    putI32(b, grid.width());
    putI32(b, grid.height());
    putI32(b, grid.numLayers());
    putI32(b, grid.defaultCapacity());
    putI32(b, grid.numEdges());
    for (int e = 0; e < grid.numEdges(); ++e) putI32(b, grid.capacity(e));
    putU8(b, grid.viaLimited() ? 1 : 0);
    if (grid.viaLimited()) {
        putI32(b, grid.numCells());
        for (int c = 0; c < grid.numCells(); ++c) {
            putI32(b, grid.viaCapacity(c));
        }
    }
}

void writeOptions(std::string* b, const StreakOptions& opts) {
    putI32(b, opts.backbone.maxBackbones);
    putI32(b, opts.backbone.bendPenalty);
    putU8(b, opts.backbone.useSteinerPoints ? 1 : 0);
    putI32(b, opts.maxLayerPairs);
    putF64(b, opts.viaWeight);
    putF64(b, opts.layerAdjacencyWeight);
    putF64(b, opts.nonRoutePenaltyM);
    putF64(b, opts.irregularityWeight);
    putF64(b, opts.noSharePenalty);
    putF64(b, opts.pairLayerWeight);
    putI32(b, static_cast<int>(opts.solver));
    putF64(b, opts.ilpTimeLimitSeconds);
    putI32(b, static_cast<int>(opts.lpEngine));
    putU8(b, opts.lpWarmStart ? 1 : 0);
    putI32(b, opts.threads);
    putU8(b, opts.postOptimize ? 1 : 0);
    putU8(b, opts.clusteringEnabled ? 1 : 0);
    putU8(b, opts.refinementEnabled ? 1 : 0);
    putF64(b, opts.distanceThresholdFraction);
    putI32(b, opts.maxDetourShift);
}

void writeTopology(std::string* b, const steiner::Topology& topo) {
    putU32(b, static_cast<std::uint32_t>(topo.pins().size()));
    for (const geom::Point p : topo.pins()) {
        putI32(b, p.x);
        putI32(b, p.y);
    }
    putI32(b, topo.driverIndex());
    const std::vector<steiner::UnitEdge> wire = topo.sortedWire();
    putU32(b, static_cast<std::uint32_t>(wire.size()));
    for (const steiner::UnitEdge& e : wire) {
        putI32(b, e.at.x);
        putI32(b, e.at.y);
        putU8(b, e.horizontal ? 1 : 0);
    }
}

// --- reader stages ----------------------------------------------------

grid::RoutingGrid readGrid(Reader* r) {
    const int width = r->i32();
    const int height = r->i32();
    const int numLayers = r->i32();
    const int defaultCap = r->i32();
    if (width < 2 || width > kMaxDim || height < 2 || height > kMaxDim) {
        r->fail("grid dimensions out of range");
    }
    if (numLayers < 2 || numLayers > kMaxLayers) {
        r->fail("layer count out of range");
    }
    if (defaultCap < 0 || defaultCap > kMaxCapacity) {
        r->fail("default capacity out of range");
    }
    long expectedEdges = 0;
    for (int l = 0; l < numLayers; ++l) {
        expectedEdges += (l % 2 == 0) ? static_cast<long>(width - 1) * height
                                      : static_cast<long>(width) * (height - 1);
    }
    const int storedEdges = r->i32();
    if (expectedEdges > kMaxEdges || storedEdges != expectedEdges) {
        r->fail("edge count does not match grid dimensions");
    }
    grid::RoutingGrid grid(width, height, numLayers, defaultCap);
    for (int e = 0; e < storedEdges; ++e) {
        const int cap = r->i32();
        if (cap < 0 || cap > kMaxCapacity) r->fail("edge capacity out of range");
        grid.setCapacity(e, cap);
    }
    if (r->u8() != 0) {
        const int cells = r->i32();
        if (cells != grid.numCells()) r->fail("via cell count mismatch");
        grid.setViaCapacity(0);
        for (int c = 0; c < cells; ++c) {
            const int cap = r->i32();
            if (cap < -1 || cap > kMaxCapacity) {
                r->fail("via capacity out of range");
            }
            grid.setViaCapacityAt(c, cap);
        }
    }
    return grid;
}

void readOptions(Reader* r, StreakOptions* opts) {
    opts->backbone.maxBackbones = r->i32();
    opts->backbone.bendPenalty = r->i32();
    opts->backbone.useSteinerPoints = r->u8() != 0;
    opts->maxLayerPairs = r->i32();
    opts->viaWeight = r->f64();
    opts->layerAdjacencyWeight = r->f64();
    opts->nonRoutePenaltyM = r->f64();
    opts->irregularityWeight = r->f64();
    opts->noSharePenalty = r->f64();
    opts->pairLayerWeight = r->f64();
    const int solver = r->i32();
    if (solver < 0 || solver > 2) r->fail("unknown solver kind");
    opts->solver = static_cast<SolverKind>(solver);
    opts->ilpTimeLimitSeconds = r->f64();
    const int engine = r->i32();
    if (engine < 0 || engine > 1) r->fail("unknown LP engine");
    opts->lpEngine = static_cast<ilp::LpEngine>(engine);
    opts->lpWarmStart = r->u8() != 0;
    opts->threads = r->i32();
    opts->postOptimize = r->u8() != 0;
    opts->clusteringEnabled = r->u8() != 0;
    opts->refinementEnabled = r->u8() != 0;
    opts->distanceThresholdFraction = r->f64();
    opts->maxDetourShift = r->i32();
    if (opts->backbone.maxBackbones < 1 || opts->maxLayerPairs < 1 ||
        opts->threads < 0 || opts->maxDetourShift < 0) {
        r->fail("option value out of range");
    }
    for (const double v :
         {opts->viaWeight, opts->layerAdjacencyWeight, opts->nonRoutePenaltyM,
          opts->irregularityWeight, opts->noSharePenalty,
          opts->pairLayerWeight, opts->ilpTimeLimitSeconds,
          opts->distanceThresholdFraction}) {
        if (!std::isfinite(v)) r->fail("non-finite option value");
    }
}

steiner::Topology readTopology(Reader* r, const grid::RoutingGrid& grid) {
    const std::uint32_t numPins = r->count(8, "topology pin");
    if (numPins == 0) r->fail("topology with no pins");
    std::vector<geom::Point> pins;
    pins.reserve(numPins);
    for (std::uint32_t i = 0; i < numPins; ++i) {
        const geom::Point p{r->i32(), r->i32()};
        if (!grid.contains(p)) r->fail("topology pin outside the grid");
        pins.push_back(p);
    }
    const int driver = r->i32();
    if (driver < 0 || static_cast<std::uint32_t>(driver) >= numPins) {
        r->fail("topology driver index out of range");
    }
    steiner::Topology topo(std::move(pins), driver);
    const std::uint32_t numWire = r->count(9, "wire edge");
    for (std::uint32_t i = 0; i < numWire; ++i) {
        const steiner::UnitEdge e{{r->i32(), r->i32()}, r->u8() != 0};
        if (!grid.contains(e.at) || !grid.contains(e.other())) {
            r->fail("wire edge outside the grid");
        }
        topo.addSegment(e.segment());
    }
    return topo;
}

/// Cross-checks that make a parsed checkpoint internally consistent:
/// every design bit is routed or unrouted exactly once, every routed
/// topology matches its design bit's pins, and the stored usage equals a
/// recompute from the stored topologies.
void validateCheckpoint(Reader* r, const Checkpoint& c) {
    const Design& design = *c.design;
    std::set<std::pair<int, int>> seen;
    for (const RoutedBit& b : c.bits) {
        if (b.groupIndex < 0 || b.groupIndex >= design.numGroups()) {
            r->fail("routed bit group index out of range");
        }
        const SignalGroup& g =
            design.groups[static_cast<size_t>(b.groupIndex)];
        if (b.bitIndex < 0 || b.bitIndex >= g.width()) {
            r->fail("routed bit index out of range");
        }
        const Bit& bit = g.bits[static_cast<size_t>(b.bitIndex)];
        if (b.topo.pins() != bit.pins || b.topo.driverIndex() != bit.driver) {
            r->fail("routed topology does not match its design bit");
        }
        if (b.hLayer < 0 || b.hLayer >= design.grid.numLayers() ||
            design.grid.layerDir(b.hLayer) != grid::Dir::Horizontal) {
            r->fail("routed bit horizontal layer invalid");
        }
        if (b.vLayer < 0 || b.vLayer >= design.grid.numLayers() ||
            design.grid.layerDir(b.vLayer) != grid::Dir::Vertical) {
            r->fail("routed bit vertical layer invalid");
        }
        if (!seen.emplace(b.groupIndex, b.bitIndex).second) {
            r->fail("bit routed twice");
        }
    }
    for (const auto& [g, bIdx] : c.unroutedBits) {
        if (g < 0 || g >= design.numGroups()) {
            r->fail("unrouted group index out of range");
        }
        if (bIdx < 0 ||
            bIdx >= design.groups[static_cast<size_t>(g)].width()) {
            r->fail("unrouted bit index out of range");
        }
        if (!seen.emplace(g, bIdx).second) {
            r->fail("bit both routed and unrouted");
        }
    }
    if (static_cast<int>(seen.size()) != design.numNets()) {
        r->fail("bits missing from the routed/unrouted partition");
    }
    if (!c.groupDistanceBefore.empty() &&
        static_cast<int>(c.groupDistanceBefore.size()) !=
            design.numGroups()) {
        r->fail("distance flag vector size mismatch");
    }
    if (c.groupDistanceAfter.size() != c.groupDistanceBefore.size()) {
        r->fail("distance flag vector size mismatch");
    }

    // Usage integrity: the stored aggregate must equal a recompute from
    // the stored topologies (the same invariant the flow's deep auditor
    // maintains for live results).
    std::map<int, int> edgeUse;
    std::map<int, int> viaUse;
    for (const RoutedBit& b : c.bits) {
        for (const auto& [e, n] :
             computeEdgeUse(design.grid, b.topo, b.hLayer, b.vLayer)) {
            edgeUse[e] += n;
        }
        if (design.grid.viaLimited()) {
            for (const auto& [cell, n] : computeViaUse(design.grid, b.topo)) {
                viaUse[cell] += n;
            }
        }
    }
    const std::vector<std::pair<int, int>> recomputed(edgeUse.begin(),
                                                      edgeUse.end());
    if (recomputed != c.usagePairs) {
        r->fail("stored edge usage does not match the stored topologies");
    }
    if (!design.grid.viaLimited() && !c.viaUsagePairs.empty()) {
        r->fail("via usage stored without the via model");
    }
    if (design.grid.viaLimited()) {
        const std::vector<std::pair<int, int>> recomputedVias(viaUse.begin(),
                                                              viaUse.end());
        if (recomputedVias != c.viaUsagePairs) {
            r->fail("stored via usage does not match the stored topologies");
        }
    }
}

}  // namespace

Checkpoint makeCheckpoint(const Design& design, const StreakOptions& opts,
                          const StreakResult& result) {
    Checkpoint c;
    c.design = std::make_unique<Design>(design);
    c.opts = semanticOptions(opts);
    c.chosen = result.solverSolution.chosen;
    c.bits = result.routed.bits;
    for (const auto& [objIdx, member] : result.routed.unroutedMembers) {
        const RoutingObject& obj =
            result.problem.objects[static_cast<size_t>(objIdx)];
        c.unroutedBits.emplace_back(
            obj.groupIndex, obj.bitIndices[static_cast<size_t>(member)]);
    }
    std::sort(c.unroutedBits.begin(), c.unroutedBits.end());
    for (int e = 0; e < design.grid.numEdges(); ++e) {
        const int u = result.routed.usage.usage(e);
        if (u > 0) c.usagePairs.emplace_back(e, u);
    }
    if (design.grid.viaLimited()) {
        for (int cell = 0; cell < design.grid.numCells(); ++cell) {
            const int u = result.routed.usage.viaUsage(cell);
            if (u > 0) c.viaUsagePairs.emplace_back(cell, u);
        }
    }
    c.groupDistanceBefore = result.groupDistanceBefore;
    c.groupDistanceAfter = result.groupDistanceAfter;
    c.metrics = result.metrics;
    c.distanceViolationsBefore = result.distanceViolationsBefore;
    c.distanceViolationsAfter = result.distanceViolationsAfter;
    c.pdIterations = result.pdIterations;
    c.hitTimeLimit = result.hitTimeLimit;
    return c;
}

void writeCheckpoint(const Checkpoint& ckpt, std::ostream& os) {
    const Design& design = *ckpt.design;

    std::string buf;
    buf.append(kMagic, sizeof(kMagic));
    putU32(&buf, static_cast<std::uint32_t>(kCheckpointVersion));

    // Informational JSON header: lets `file`-style tooling and humans see
    // what a checkpoint holds without decoding the binary payload. The
    // authoritative data (bit-exact doubles included) is the payload.
    obs::json::Object header;
    header.set("schema", kCheckpointSchema);
    header.set("schemaVersion", kCheckpointVersion);
    header.set("design", design.name);
    header.set("groups", design.numGroups());
    header.set("bits", design.numNets());
    header.set("routedBits", static_cast<int>(ckpt.bits.size()));
    putStr(&buf, obs::json::Value(std::move(header)).dump());

    writeGrid(&buf, design.grid);
    putStr(&buf, design.name);
    putU32(&buf, static_cast<std::uint32_t>(design.groups.size()));
    for (const SignalGroup& g : design.groups) {
        putStr(&buf, g.name);
        putU32(&buf, static_cast<std::uint32_t>(g.bits.size()));
        for (const Bit& b : g.bits) {
            putStr(&buf, b.name);
            putI32(&buf, b.driver);
            putU32(&buf, static_cast<std::uint32_t>(b.pins.size()));
            for (const geom::Point p : b.pins) {
                putI32(&buf, p.x);
                putI32(&buf, p.y);
            }
        }
    }
    writeOptions(&buf, ckpt.opts);
    putU32(&buf, static_cast<std::uint32_t>(ckpt.chosen.size()));
    for (const int c : ckpt.chosen) putI32(&buf, c);
    putU32(&buf, static_cast<std::uint32_t>(ckpt.bits.size()));
    for (const RoutedBit& b : ckpt.bits) {
        putI32(&buf, b.groupIndex);
        putI32(&buf, b.bitIndex);
        putI32(&buf, b.objectIndex);
        putI32(&buf, b.memberIndex);
        putI32(&buf, b.clusterKey);
        putI32(&buf, b.hLayer);
        putI32(&buf, b.vLayer);
        writeTopology(&buf, b.topo);
    }
    putPairs(&buf, ckpt.unroutedBits);
    putPairs(&buf, ckpt.usagePairs);
    putPairs(&buf, ckpt.viaUsagePairs);
    putFlags(&buf, ckpt.groupDistanceBefore);
    putFlags(&buf, ckpt.groupDistanceAfter);
    putI32(&buf, ckpt.metrics.totalBits);
    putI32(&buf, ckpt.metrics.routedBits);
    putF64(&buf, ckpt.metrics.routability);
    putI64(&buf, ckpt.metrics.wirelength);
    putF64(&buf, ckpt.metrics.avgRegularity);
    putI64(&buf, ckpt.metrics.totalOverflow);
    putI32(&buf, ckpt.metrics.overflowedEdges);
    putI64(&buf, ckpt.metrics.totalViaOverflow);
    putI32(&buf, ckpt.distanceViolationsBefore);
    putI32(&buf, ckpt.distanceViolationsAfter);
    putI32(&buf, ckpt.pdIterations);
    putU8(&buf, ckpt.hitTimeLimit ? 1 : 0);

    putU64(&buf, fnv1a(std::string_view(buf)));
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void writeCheckpointFile(const Checkpoint& ckpt, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        robust::StreakError err;
        err.kind = robust::ErrorKind::InvalidInput;
        err.site = "eco/read";
        err.message = "checkpoint: cannot open " + path + " for writing";
        robust::raise(std::move(err));
    }
    writeCheckpoint(ckpt, os);
}

Checkpoint readCheckpointBuffer(std::string_view data) {
    STREAK_FAULT_POINT("eco/read");
    Reader r(data);
    if (data.size() < sizeof(kMagic) + 4 + 8) r.fail("file too short");
    if (data.substr(0, sizeof(kMagic)) !=
        std::string_view(kMagic, sizeof(kMagic))) {
        r.fail("bad magic");
    }
    // Verify the trailing checksum before trusting any field: a flipped
    // bit anywhere surfaces here as one structured error.
    const std::uint64_t stored = [&] {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                     data[data.size() - 8 + static_cast<size_t>(i)]))
                 << (8 * i);
        }
        return v;
    }();
    if (fnv1a(data.substr(0, data.size() - 8)) != stored) {
        r.fail("checksum mismatch");
    }

    Reader p(data.substr(0, data.size() - 8));
    (void)p.view(sizeof(kMagic));
    const std::uint32_t version = p.u32();
    if (version != static_cast<std::uint32_t>(kCheckpointVersion)) {
        p.fail("unsupported checkpoint version " + std::to_string(version));
    }
    const std::string headerText = p.str();
    std::string jsonError;
    const obs::json::Value header = obs::json::parse(headerText, &jsonError);
    if (!jsonError.empty()) p.fail("header is not valid JSON: " + jsonError);
    const obs::json::Value* schema = header.find("schema");
    if (schema == nullptr || schema->kind() != obs::json::Kind::String ||
        schema->asString() != kCheckpointSchema) {
        p.fail("header schema mismatch");
    }

    Checkpoint c;
    // Design is an aggregate whose grid has no default constructor, so
    // the grid must be parsed before the Design can exist.
    grid::RoutingGrid parsedGrid = readGrid(&p);
    c.design = std::make_unique<Design>(
        Design{std::string(), std::move(parsedGrid), {}});
    c.design->name = p.str();
    const std::uint32_t numGroups = p.count(5, "group");
    c.design->groups.reserve(numGroups);
    for (std::uint32_t g = 0; g < numGroups; ++g) {
        SignalGroup group;
        group.name = p.str();
        const std::uint32_t numBits = p.count(12, "bit");
        group.bits.reserve(numBits);
        for (std::uint32_t b = 0; b < numBits; ++b) {
            Bit bit;
            bit.name = p.str();
            bit.driver = p.i32();
            const std::uint32_t numPins = p.count(8, "pin");
            if (numPins == 0) p.fail("bit with no pins");
            bit.pins.reserve(numPins);
            for (std::uint32_t i = 0; i < numPins; ++i) {
                const geom::Point pt{p.i32(), p.i32()};
                if (!c.design->grid.contains(pt)) {
                    p.fail("pin outside the grid");
                }
                bit.pins.push_back(pt);
            }
            if (bit.driver < 0 ||
                static_cast<std::uint32_t>(bit.driver) >= numPins) {
                p.fail("driver index out of range");
            }
            group.bits.push_back(std::move(bit));
        }
        c.design->groups.push_back(std::move(group));
    }
    readOptions(&p, &c.opts);
    const std::uint32_t numChosen = p.count(4, "chosen");
    c.chosen.reserve(numChosen);
    for (std::uint32_t i = 0; i < numChosen; ++i) {
        const int v = p.i32();
        if (v < -1) p.fail("chosen candidate index out of range");
        c.chosen.push_back(v);
    }
    const std::uint32_t numBits = p.count(7 * 4 + 4 + 4 + 4, "routed bit");
    c.bits.reserve(numBits);
    for (std::uint32_t i = 0; i < numBits; ++i) {
        RoutedBit b;
        b.groupIndex = p.i32();
        b.bitIndex = p.i32();
        b.objectIndex = p.i32();
        b.memberIndex = p.i32();
        b.clusterKey = p.i32();
        b.hLayer = p.i32();
        b.vLayer = p.i32();
        if (b.hLayer < 0 || b.hLayer >= c.design->grid.numLayers() ||
            b.vLayer < 0 || b.vLayer >= c.design->grid.numLayers()) {
            p.fail("routed bit layer out of range");
        }
        b.topo = readTopology(&p, c.design->grid);
        c.bits.push_back(std::move(b));
    }
    const auto readPairList = [&p](const char* what) {
        const std::uint32_t n = p.count(8, what);
        std::vector<std::pair<int, int>> out;
        out.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const int a = p.i32();
            const int v = p.i32();
            out.emplace_back(a, v);
        }
        return out;
    };
    c.unroutedBits = readPairList("unrouted bit");
    c.usagePairs = readPairList("usage");
    c.viaUsagePairs = readPairList("via usage");
    const auto readFlagList = [&p](const char* what) {
        const std::uint32_t n = p.count(1, what);
        std::vector<char> out;
        out.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            out.push_back(p.u8() != 0 ? 1 : 0);
        }
        return out;
    };
    c.groupDistanceBefore = readFlagList("distance flag");
    c.groupDistanceAfter = readFlagList("distance flag");
    c.metrics.totalBits = p.i32();
    c.metrics.routedBits = p.i32();
    c.metrics.routability = p.f64();
    c.metrics.wirelength = p.i64();
    c.metrics.avgRegularity = p.f64();
    c.metrics.totalOverflow = p.i64();
    c.metrics.overflowedEdges = p.i32();
    c.metrics.totalViaOverflow = p.i64();
    c.distanceViolationsBefore = p.i32();
    c.distanceViolationsAfter = p.i32();
    c.pdIterations = p.i32();
    c.hitTimeLimit = p.u8() != 0;
    if (p.remaining() != 0) p.fail("trailing bytes after payload");
    if (!std::isfinite(c.metrics.routability) ||
        !std::isfinite(c.metrics.avgRegularity)) {
        p.fail("non-finite metric");
    }

    validateCheckpoint(&p, c);
    return c;
}

Checkpoint readCheckpoint(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string data = buf.str();
    return readCheckpointBuffer(data);
}

Checkpoint readCheckpointFile(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        robust::StreakError err;
        err.kind = robust::ErrorKind::InvalidInput;
        err.site = "eco/read";
        err.message = "checkpoint: cannot open " + path;
        robust::raise(std::move(err));
    }
    return readCheckpoint(is);
}

}  // namespace streak::eco
