// ECO deltas: the four incremental edits the re-router understands.
//
// A delta script is line oriented ('#' comments, blank lines ignored):
//
//   MOVEPIN <group> <bit> <pin> <x> <y>
//   ADDBLOCKAGE <lox> <loy> <hix> <hiy> <layer> <remainingCap>
//   REMOVEBLOCKAGE <lox> <loy> <hix> <hiy> <layer>
//   RESIZECAPACITY <lox> <loy> <hix> <hiy> <layer> <capacity>
//
// applyDelta() validates against the target design (indices in range,
// coordinates inside the grid) and mutates it in place; a violation is a
// structured robust::StreakError (kind invalid-input), never a partial
// mutation — validation completes before the first write.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/signal.hpp"
#include "geom/rect.hpp"

namespace streak::eco {

enum class DeltaKind {
    MovePin,         ///< relocate one pin of one bit
    AddBlockage,     ///< cap edges in a rect down to `capacity`
    RemoveBlockage,  ///< restore edges in a rect to the grid default
    ResizeCapacity,  ///< set edges in a rect to exactly `capacity`
};

[[nodiscard]] const char* deltaKindName(DeltaKind kind);

struct Delta {
    DeltaKind kind = DeltaKind::MovePin;
    // MovePin fields.
    int group = 0;
    int bit = 0;
    int pin = 0;
    geom::Point to{};
    // Rect-delta fields (AddBlockage / RemoveBlockage / ResizeCapacity).
    geom::Rect area{};
    int layer = 0;
    int capacity = 0;
};

/// The G-Cell rectangle a delta touches, used by the invalidation
/// closure. For MovePin this is the bounding box of the pin's old
/// (looked up in `designBefore`) and new locations.
[[nodiscard]] geom::Rect dirtyRect(const Delta& delta,
                                   const Design& designBefore);

/// Validate `delta` against `design` and apply it in place.
void applyDelta(Design* design, const Delta& delta);

/// Parse a delta script. Raises robust::StreakException (kind
/// invalid-input, site "eco/read") with line context on malformed input.
[[nodiscard]] std::vector<Delta> parseDeltaScript(std::istream& is);
[[nodiscard]] std::vector<Delta> parseDeltaScriptFile(
    const std::string& path);

}  // namespace streak::eco
