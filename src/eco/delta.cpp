#include "eco/delta.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace streak::eco {

namespace {

[[noreturn]] void invalid(const std::string& site, const std::string& what) {
    robust::StreakError err;
    err.kind = robust::ErrorKind::InvalidInput;
    err.site = site;
    err.message = what;
    robust::raise(std::move(err));
}

void checkRectDelta(const Design& design, const Delta& d) {
    const grid::RoutingGrid& grid = design.grid;
    if (d.layer < 0 || d.layer >= grid.numLayers()) {
        invalid("eco/apply", deltaKindName(d.kind) +
                                 std::string(": layer ") +
                                 std::to_string(d.layer) + " out of range");
    }
    if (d.area.lo.x > d.area.hi.x || d.area.lo.y > d.area.hi.y) {
        invalid("eco/apply", deltaKindName(d.kind) +
                                 std::string(": empty rectangle"));
    }
    if (!grid.contains(d.area.lo) || !grid.contains(d.area.hi)) {
        invalid("eco/apply", deltaKindName(d.kind) +
                                 std::string(": rectangle outside the grid"));
    }
    if (d.kind != DeltaKind::RemoveBlockage && d.capacity < 0) {
        invalid("eco/apply", deltaKindName(d.kind) +
                                 std::string(": negative capacity"));
    }
}

}  // namespace

const char* deltaKindName(DeltaKind kind) {
    switch (kind) {
        case DeltaKind::MovePin: return "MOVEPIN";
        case DeltaKind::AddBlockage: return "ADDBLOCKAGE";
        case DeltaKind::RemoveBlockage: return "REMOVEBLOCKAGE";
        case DeltaKind::ResizeCapacity: return "RESIZECAPACITY";
    }
    return "?";
}

geom::Rect dirtyRect(const Delta& delta, const Design& designBefore) {
    if (delta.kind != DeltaKind::MovePin) return delta.area;
    const geom::Point from =
        designBefore.groups[static_cast<size_t>(delta.group)]
            .bits[static_cast<size_t>(delta.bit)]
            .pins[static_cast<size_t>(delta.pin)];
    return geom::Rect::bounding(from, delta.to);
}

void applyDelta(Design* design, const Delta& delta) {
    switch (delta.kind) {
        case DeltaKind::MovePin: {
            if (delta.group < 0 || delta.group >= design->numGroups()) {
                invalid("eco/apply", "MOVEPIN: group index out of range");
            }
            SignalGroup& g =
                design->groups[static_cast<size_t>(delta.group)];
            if (delta.bit < 0 || delta.bit >= g.width()) {
                invalid("eco/apply", "MOVEPIN: bit index out of range");
            }
            Bit& b = g.bits[static_cast<size_t>(delta.bit)];
            if (delta.pin < 0 || delta.pin >= b.numPins()) {
                invalid("eco/apply", "MOVEPIN: pin index out of range");
            }
            if (!design->grid.contains(delta.to)) {
                invalid("eco/apply", "MOVEPIN: target outside the grid");
            }
            b.pins[static_cast<size_t>(delta.pin)] = delta.to;
            return;
        }
        case DeltaKind::AddBlockage:
            checkRectDelta(*design, delta);
            design->grid.addBlockage(delta.area, delta.layer, delta.capacity);
            return;
        case DeltaKind::RemoveBlockage:
            checkRectDelta(*design, delta);
            design->grid.removeBlockage(delta.area, delta.layer);
            return;
        case DeltaKind::ResizeCapacity:
            checkRectDelta(*design, delta);
            design->grid.resizeCapacity(delta.area, delta.layer,
                                        delta.capacity);
            return;
    }
    invalid("eco/apply", "unknown delta kind");
}

std::vector<Delta> parseDeltaScript(std::istream& is) {
    STREAK_FAULT_POINT("eco/read");
    std::vector<Delta> deltas;
    std::string line;
    int lineNo = 0;
    const auto parseError = [&lineNo](const std::string& what) {
        invalid("eco/read", "delta script line " + std::to_string(lineNo) +
                                ": " + what);
    };
    while (std::getline(is, line)) {
        ++lineNo;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word)) continue;  // blank / comment-only line
        Delta d;
        const auto num = [&](const char* field) {
            int v = 0;
            if (!(ls >> v)) {
                parseError(word + ": missing or non-numeric " +
                           std::string(field));
            }
            return v;
        };
        if (word == "MOVEPIN") {
            d.kind = DeltaKind::MovePin;
            d.group = num("group");
            d.bit = num("bit");
            d.pin = num("pin");
            d.to = {num("x"), num("y")};
        } else if (word == "ADDBLOCKAGE" || word == "REMOVEBLOCKAGE" ||
                   word == "RESIZECAPACITY") {
            d.kind = word == "ADDBLOCKAGE" ? DeltaKind::AddBlockage
                     : word == "REMOVEBLOCKAGE"
                         ? DeltaKind::RemoveBlockage
                         : DeltaKind::ResizeCapacity;
            d.area.lo = {num("lox"), num("loy")};
            d.area.hi = {num("hix"), num("hiy")};
            d.layer = num("layer");
            if (d.kind != DeltaKind::RemoveBlockage) {
                d.capacity = num("capacity");
            }
        } else {
            parseError("unknown directive \"" + word + "\"");
        }
        std::string rest;
        if (ls >> rest) parseError("trailing token \"" + rest + "\"");
        deltas.push_back(d);
    }
    return deltas;
}

std::vector<Delta> parseDeltaScriptFile(const std::string& path) {
    std::ifstream is(path);
    if (!is) invalid("eco/read", "cannot open delta script " + path);
    return parseDeltaScript(is);
}

}  // namespace streak::eco
