#include "eco/eco.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <set>

#include "core/candidate.hpp"
#include "core/regularity.hpp"
#include "flow/report.hpp"
#include "robust/error.hpp"
#include "steiner/rsmt.hpp"

namespace streak::eco {

namespace {

/// Sentinel "window" of a group with no pins: overlaps nothing (lo > hi
/// fails every overlap test against in-grid rectangles).
constexpr geom::Rect kEmptyWindow{{0, 0}, {-1, -1}};

[[nodiscard]] bool windowEmpty(const geom::Rect& r) {
    return r.lo.x > r.hi.x || r.lo.y > r.hi.y;
}

[[nodiscard]] geom::Rect unionWindows(const geom::Rect& a,
                                      const geom::Rect& b) {
    if (windowEmpty(a)) return b;
    if (windowEmpty(b)) return a;
    return {{std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y)},
            {std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y)}};
}

[[nodiscard]] bool bitsEqual(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Mirror of core evaluate() for a stitched design, where unrouted bits
/// are known as (group, bit) pairs instead of (object, member) pairs.
/// Every term is computed by the same code paths in the same per-group
/// order, so a stitched result that matches a cold run structurally also
/// matches it on every metric bit.
[[nodiscard]] Metrics evaluateStitched(
    const Design& design, const RoutedDesign& routed,
    const std::vector<std::pair<int, int>>& unroutedBits) {
    Metrics m;
    m.totalBits = design.numNets();
    m.routedBits = routed.routedBits();
    m.routability = m.totalBits == 0
                        ? 1.0
                        : static_cast<double>(m.routedBits) / m.totalBits;

    for (const RoutedBit& b : routed.bits) m.wirelength += b.topo.wirelength();
    for (const auto& [g, bIdx] : unroutedBits) {
        const Bit& bit = design.groups[static_cast<size_t>(g)]
                             .bits[static_cast<size_t>(bIdx)];
        steiner::EnumerateOptions eopts;
        eopts.maxCandidates = 1;
        const auto topos =
            steiner::enumerateTopologies(bit.pins, bit.driver, eopts);
        if (!topos.empty()) m.wirelength += topos.front().wirelength();
    }

    std::map<int, std::map<int, const steiner::Topology*>> groupClusters;
    for (const RoutedBit& b : routed.bits) {
        auto& clusters = groupClusters[b.groupIndex];
        clusters.emplace(b.clusterKey, &b.topo);  // keeps the first bit
    }
    double regSum = 0.0;
    int regGroups = 0;
    for (const auto& [group, clusters] : groupClusters) {
        if (clusters.size() < 2) continue;
        std::vector<const steiner::Topology*> reps;
        reps.reserve(clusters.size());
        for (const auto& [key, topo] : clusters) reps.push_back(topo);
        regSum += groupRegularity(reps);
        ++regGroups;
    }
    m.avgRegularity = regGroups == 0 ? 1.0 : regSum / regGroups;

    m.totalOverflow = routed.usage.totalOverflow();
    m.overflowedEdges = routed.usage.overflowedEdges();
    m.totalViaOverflow = routed.usage.totalViaOverflow();
    return m;
}

/// Per-group cluster partition: each cluster as its sorted bit indices,
/// clusters sorted for set comparison. Raw cluster keys are run-local
/// (the solver uses object indices, post clustering assigns fresh ones),
/// so equivalence is over the partition, not the key values.
[[nodiscard]] std::map<int, std::vector<std::vector<int>>> clusterPartition(
    const std::vector<RoutedBit>& bits) {
    std::map<int, std::map<int, std::vector<int>>> byKey;
    for (const RoutedBit& b : bits) {
        byKey[b.groupIndex][b.clusterKey].push_back(b.bitIndex);
    }
    std::map<int, std::vector<std::vector<int>>> out;
    for (auto& [group, clusters] : byKey) {
        std::vector<std::vector<int>>& list = out[group];
        for (auto& [key, members] : clusters) {
            std::sort(members.begin(), members.end());
            list.push_back(std::move(members));
        }
        std::sort(list.begin(), list.end());
    }
    return out;
}

[[nodiscard]] std::vector<std::pair<int, int>> coldUnroutedBits(
    const StreakResult& cold) {
    std::vector<std::pair<int, int>> out;
    out.reserve(cold.routed.unroutedMembers.size());
    for (const auto& [objIdx, member] : cold.routed.unroutedMembers) {
        const RoutingObject& obj =
            cold.problem.objects[static_cast<size_t>(objIdx)];
        out.emplace_back(obj.groupIndex,
                         obj.bitIndices[static_cast<size_t>(member)]);
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace

geom::Rect groupWindow(const Design& design, int groupIndex,
                       const StreakOptions& opts) {
    const SignalGroup& group =
        design.groups[static_cast<size_t>(groupIndex)];
    geom::Rect window = kEmptyWindow;
    int maxPins = 0;
    bool first = true;
    for (const Bit& bit : group.bits) {
        maxPins = std::max(maxPins, bit.numPins());
        for (const geom::Point p : bit.pins) {
            if (first) {
                window = {p, p};
                first = false;
            } else {
                window.expand(p);
            }
        }
    }
    if (first) return kEmptyWindow;
    // Backbones, equivalent topologies and clustering candidates never
    // leave the pin bounding box (Hanan-grid construction); only the
    // refinement stage's twisting detours can, by at most maxDetourShift
    // per violating sink, with at most numPins - 1 sinks per bit.
    int margin = 0;
    if (opts.postOptimize && opts.refinementEnabled) {
        margin = opts.maxDetourShift * std::max(0, maxPins - 1);
    }
    window.lo.x = std::max(0, window.lo.x - margin);
    window.lo.y = std::max(0, window.lo.y - margin);
    window.hi.x = std::min(design.grid.width() - 1, window.hi.x + margin);
    window.hi.y = std::min(design.grid.height() - 1, window.hi.y + margin);
    return window;
}

std::vector<int> affectedGroups(const Design& before, const Design& after,
                                const StreakOptions& opts,
                                const std::vector<Delta>& deltas) {
    const int n = after.numGroups();
    std::vector<geom::Rect> window(static_cast<size_t>(n));
    for (int g = 0; g < n; ++g) {
        window[static_cast<size_t>(g)] = groupWindow(after, g, opts);
    }
    std::vector<char> moved(static_cast<size_t>(n), 0);
    std::vector<geom::Rect> dirty;
    dirty.reserve(deltas.size());
    for (const Delta& d : deltas) {
        dirty.push_back(dirtyRect(d, before));
        if (d.kind == DeltaKind::MovePin) {
            moved[static_cast<size_t>(d.group)] = 1;
            // The carried-over routing of a moved group lives inside its
            // pre-move window; be conservative and use the union.
            window[static_cast<size_t>(d.group)] =
                unionWindows(window[static_cast<size_t>(d.group)],
                             groupWindow(before, d.group, opts));
        }
    }

    std::vector<char> inClosure(static_cast<size_t>(n), 0);
    for (int g = 0; g < n; ++g) {
        if (moved[static_cast<size_t>(g)] != 0) {
            inClosure[static_cast<size_t>(g)] = 1;
            continue;
        }
        if (windowEmpty(window[static_cast<size_t>(g)])) continue;
        for (const geom::Rect& r : dirty) {
            if (!windowEmpty(r) && window[static_cast<size_t>(g)].overlaps(r)) {
                inClosure[static_cast<size_t>(g)] = 1;
                break;
            }
        }
    }
    // Fixpoint: a clean group whose window overlaps a dirty group's
    // window shares capacity with it and must be re-solved too.
    bool changed = true;
    while (changed) {
        changed = false;
        for (int u = 0; u < n; ++u) {
            if (inClosure[static_cast<size_t>(u)] != 0 ||
                windowEmpty(window[static_cast<size_t>(u)])) {
                continue;
            }
            for (int c = 0; c < n; ++c) {
                if (inClosure[static_cast<size_t>(c)] == 0 ||
                    windowEmpty(window[static_cast<size_t>(c)])) {
                    continue;
                }
                if (window[static_cast<size_t>(u)].overlaps(
                        window[static_cast<size_t>(c)])) {
                    inClosure[static_cast<size_t>(u)] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    std::vector<int> out;
    for (int g = 0; g < n; ++g) {
        if (inClosure[static_cast<size_t>(g)] != 0) out.push_back(g);
    }
    return out;
}

EcoResult runEco(const Checkpoint& ckpt, const std::vector<Delta>& deltas,
                 int threadsOverride) {
    EcoResult r;
    r.design = std::make_unique<Design>(*ckpt.design);
    for (const Delta& d : deltas) applyDelta(r.design.get(), d);
    r.totalGroups = r.design->numGroups();
    r.resolvedGroups =
        affectedGroups(*ckpt.design, *r.design, ckpt.opts, deltas);

    StreakOptions opts = ckpt.opts;
    if (threadsOverride >= 0) opts.threads = threadsOverride;

    // Sub-design index of each resolved group (-1 = carried).
    std::vector<int> subIndex(static_cast<size_t>(r.totalGroups), -1);
    if (!r.resolvedGroups.empty()) {
        r.subDesign = std::make_unique<Design>(
            Design{r.design->name + "#eco", r.design->grid, {}});
        for (const int g : r.resolvedGroups) {
            subIndex[static_cast<size_t>(g)] =
                static_cast<int>(r.subDesign->groups.size());
            r.subDesign->groups.push_back(
                r.design->groups[static_cast<size_t>(g)]);
        }
        FlowResult flow = runStreak(*r.subDesign, opts);
        if (!flow.ok()) robust::raise(flow.error());
        r.sub = std::make_unique<StreakResult>(std::move(flow).value());
        r.degradations = r.sub->degradations;
        r.threadsUsed = r.sub->threadsUsed;
        r.pdIterations = r.sub->pdIterations;
        r.hitTimeLimit = r.sub->hitTimeLimit;
    }

    // Stitch: carried groups verbatim from the checkpoint, resolved
    // groups from the sub-run with group indices rewritten to global.
    // Within-group bit order is preserved on both paths — the metrics
    // cluster representatives depend on it.
    r.routed = std::make_unique<RoutedDesign>(r.design->grid);
    for (int g = 0; g < r.totalGroups; ++g) {
        const int sub = subIndex[static_cast<size_t>(g)];
        if (sub < 0) {
            for (const RoutedBit& b : ckpt.bits) {
                if (b.groupIndex == g) r.routed->bits.push_back(b);
            }
        } else {
            for (const RoutedBit& b : r.sub->routed.bits) {
                if (b.groupIndex != sub) continue;
                RoutedBit copy = b;
                copy.groupIndex = g;
                r.routed->bits.push_back(std::move(copy));
            }
        }
    }
    for (const RoutedBit& b : r.routed->bits) {
        for (const auto& [e, n] : computeEdgeUse(r.design->grid, b.topo,
                                                 b.hLayer, b.vLayer)) {
            r.routed->usage.add(e, n);
        }
        if (r.design->grid.viaLimited()) {
            for (const auto& [cell, n] :
                 computeViaUse(r.design->grid, b.topo)) {
                r.routed->usage.addVias(cell, n);
            }
        }
    }
    for (const auto& [g, bIdx] : ckpt.unroutedBits) {
        if (subIndex[static_cast<size_t>(g)] < 0) {
            r.unroutedBits.emplace_back(g, bIdx);
        }
    }
    if (r.sub != nullptr) {
        for (const auto& [objIdx, member] : r.sub->routed.unroutedMembers) {
            const RoutingObject& obj =
                r.sub->problem.objects[static_cast<size_t>(objIdx)];
            r.unroutedBits.emplace_back(
                r.resolvedGroups[static_cast<size_t>(obj.groupIndex)],
                obj.bitIndices[static_cast<size_t>(member)]);
        }
    }
    std::sort(r.unroutedBits.begin(), r.unroutedBits.end());

    const auto carriedFlag = [&](const std::vector<char>& flags, int g) {
        return flags.empty() ? char{0} : flags[static_cast<size_t>(g)];
    };
    r.groupDistanceBefore.assign(static_cast<size_t>(r.totalGroups), 0);
    r.groupDistanceAfter.assign(static_cast<size_t>(r.totalGroups), 0);
    for (int g = 0; g < r.totalGroups; ++g) {
        const int sub = subIndex[static_cast<size_t>(g)];
        if (sub < 0) {
            r.groupDistanceBefore[static_cast<size_t>(g)] =
                carriedFlag(ckpt.groupDistanceBefore, g);
            r.groupDistanceAfter[static_cast<size_t>(g)] =
                carriedFlag(ckpt.groupDistanceAfter, g);
        } else {
            r.groupDistanceBefore[static_cast<size_t>(g)] =
                carriedFlag(r.sub->groupDistanceBefore, sub);
            r.groupDistanceAfter[static_cast<size_t>(g)] =
                carriedFlag(r.sub->groupDistanceAfter, sub);
        }
    }
    for (int g = 0; g < r.totalGroups; ++g) {
        r.distanceViolationsBefore +=
            r.groupDistanceBefore[static_cast<size_t>(g)] != 0 ? 1 : 0;
        r.distanceViolationsAfter +=
            r.groupDistanceAfter[static_cast<size_t>(g)] != 0 ? 1 : 0;
    }

    r.metrics = evaluateStitched(*r.design, *r.routed, r.unroutedBits);
    return r;
}

Checkpoint makeCheckpoint(const EcoResult& eco, const StreakOptions& opts) {
    Checkpoint c;
    c.design = std::make_unique<Design>(*eco.design);
    c.opts = semanticOptions(opts);
    c.bits = eco.routed->bits;
    c.unroutedBits = eco.unroutedBits;
    for (int e = 0; e < eco.design->grid.numEdges(); ++e) {
        const int u = eco.routed->usage.usage(e);
        if (u > 0) c.usagePairs.emplace_back(e, u);
    }
    if (eco.design->grid.viaLimited()) {
        for (int cell = 0; cell < eco.design->grid.numCells(); ++cell) {
            const int u = eco.routed->usage.viaUsage(cell);
            if (u > 0) c.viaUsagePairs.emplace_back(cell, u);
        }
    }
    c.groupDistanceBefore = eco.groupDistanceBefore;
    c.groupDistanceAfter = eco.groupDistanceAfter;
    c.metrics = eco.metrics;
    c.distanceViolationsBefore = eco.distanceViolationsBefore;
    c.distanceViolationsAfter = eco.distanceViolationsAfter;
    c.pdIterations = eco.pdIterations;
    c.hitTimeLimit = eco.hitTimeLimit;
    return c;
}

bool equivalent(const EcoResult& eco, const StreakResult& cold,
                std::string* diff) {
    const auto mismatch = [diff](const std::string& what) {
        if (diff != nullptr) *diff = what;
        return false;
    };
    const Metrics& a = eco.metrics;
    const Metrics& b = cold.metrics;
    if (a.totalBits != b.totalBits || a.routedBits != b.routedBits) {
        return mismatch("bit counts differ");
    }
    if (!bitsEqual(a.routability, b.routability)) {
        return mismatch("routability differs");
    }
    if (a.wirelength != b.wirelength) return mismatch("wirelength differs");
    if (!bitsEqual(a.avgRegularity, b.avgRegularity)) {
        return mismatch("avgRegularity differs");
    }
    if (a.totalOverflow != b.totalOverflow ||
        a.overflowedEdges != b.overflowedEdges ||
        a.totalViaOverflow != b.totalViaOverflow) {
        return mismatch("overflow differs");
    }
    if (eco.distanceViolationsBefore != cold.distanceViolationsBefore ||
        eco.distanceViolationsAfter != cold.distanceViolationsAfter) {
        return mismatch("distance violation counts differ");
    }
    if (eco.groupDistanceBefore != cold.groupDistanceBefore ||
        eco.groupDistanceAfter != cold.groupDistanceAfter) {
        return mismatch("per-group distance flags differ");
    }

    std::map<std::pair<int, int>, const RoutedBit*> ecoBits;
    for (const RoutedBit& bit : eco.routed->bits) {
        ecoBits[{bit.groupIndex, bit.bitIndex}] = &bit;
    }
    std::map<std::pair<int, int>, const RoutedBit*> coldBits;
    for (const RoutedBit& bit : cold.routed.bits) {
        coldBits[{bit.groupIndex, bit.bitIndex}] = &bit;
    }
    if (ecoBits.size() != eco.routed->bits.size() ||
        coldBits.size() != cold.routed.bits.size()) {
        return mismatch("duplicate routed bit");
    }
    if (ecoBits.size() != coldBits.size()) {
        return mismatch("routed bit sets differ in size");
    }
    for (const auto& [key, ecoBit] : ecoBits) {
        const auto it = coldBits.find(key);
        if (it == coldBits.end()) {
            return mismatch("bit (" + std::to_string(key.first) + ", " +
                            std::to_string(key.second) +
                            ") routed incrementally but not cold");
        }
        const RoutedBit* coldBit = it->second;
        if (!(ecoBit->topo == coldBit->topo)) {
            return mismatch("topology of bit (" + std::to_string(key.first) +
                            ", " + std::to_string(key.second) + ") differs");
        }
        if (ecoBit->hLayer != coldBit->hLayer ||
            ecoBit->vLayer != coldBit->vLayer) {
            return mismatch("trunk layers of bit (" +
                            std::to_string(key.first) + ", " +
                            std::to_string(key.second) + ") differ");
        }
    }
    if (clusterPartition(eco.routed->bits) !=
        clusterPartition(cold.routed.bits)) {
        return mismatch("per-group cluster partitions differ");
    }
    if (eco.unroutedBits != coldUnroutedBits(cold)) {
        return mismatch("unrouted bit sets differ");
    }

    const grid::RoutingGrid& grid = eco.design->grid;
    for (int e = 0; e < grid.numEdges(); ++e) {
        if (eco.routed->usage.usage(e) != cold.routed.usage.usage(e)) {
            return mismatch("edge " + std::to_string(e) + " usage differs");
        }
    }
    if (grid.viaLimited()) {
        for (int cell = 0; cell < grid.numCells(); ++cell) {
            if (eco.routed->usage.viaUsage(cell) !=
                cold.routed.usage.viaUsage(cell)) {
                return mismatch("cell " + std::to_string(cell) +
                                " via usage differs");
            }
        }
    }
    return true;
}

obs::json::Value buildEcoReport(const EcoResult& eco,
                                const StreakOptions& opts,
                                double incrementalSeconds,
                                double coldSeconds) {
    // buildRunReport only reads the metric / violation / solver / robust
    // / trace fields, so a synthetic StreakResult carrying the stitched
    // state produces a schema-valid streak-run-report.
    StreakResult synth(eco.design->grid);
    synth.metrics = eco.metrics;
    synth.distanceViolationsBefore = eco.distanceViolationsBefore;
    synth.distanceViolationsAfter = eco.distanceViolationsAfter;
    synth.groupDistanceBefore = eco.groupDistanceBefore;
    synth.groupDistanceAfter = eco.groupDistanceAfter;
    synth.pdIterations = eco.pdIterations;
    synth.hitTimeLimit = eco.hitTimeLimit;
    synth.degradations = eco.degradations;
    synth.threadsUsed = eco.threadsUsed;
    if (eco.sub != nullptr) {
        synth.trace = eco.sub->trace;
        synth.counters = eco.sub->counters;
        synth.ilpNodes = eco.sub->ilpNodes;
    } else {
        // Empty closure: no flow ran, but the report schema still wants
        // a span tree rooted at flow/run. A zero-length root span states
        // exactly that.
        obs::Span root;
        root.name = stage::kRun;
        root.parent = -1;
        root.startSeconds = 0.0;
        root.endSeconds = 0.0;
        synth.trace.push_back(std::move(root));
    }

    obs::json::Value report = flow::buildRunReport(*eco.design, opts, synth);
    obs::json::Object document = report.asObject();
    obs::json::Object section;
    section.set("totalGroups", eco.totalGroups);
    section.set("resolvedGroups",
                static_cast<int>(eco.resolvedGroups.size()));
    section.set("carriedGroups", eco.carriedGroups());
    obs::json::Array resolved;
    for (const int g : eco.resolvedGroups) resolved.emplace_back(g);
    section.set("resolved", std::move(resolved));
    section.set("incrementalSeconds", incrementalSeconds);
    if (coldSeconds >= 0.0) {
        section.set("coldSeconds", coldSeconds);
    } else {
        section.set("coldSeconds", obs::json::Value());
    }
    document.set("eco", std::move(section));
    return obs::json::Value(std::move(document));
}

}  // namespace streak::eco
