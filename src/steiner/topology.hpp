// Rectilinear routing topology.
//
// A Topology is the wire shape of one signal bit: a set of unit lattice
// edges plus the bit's pin locations. Storing unit edges (rather than long
// segments) makes unioning overlapping L-shapes, connectivity checks and
// path-length queries trivial and robust.
//
// The paper's "rectilinear connections" (RCs) — maximal straight wires
// between pins/bends/junctions — are recovered on demand by structure().
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/point.hpp"
#include "geom/segment.hpp"

namespace streak::steiner {

/// A unit lattice edge, canonically encoded by its lower-left endpoint and
/// orientation.
struct UnitEdge {
    geom::Point at;        // lower / left endpoint
    bool horizontal = true;

    friend auto operator<=>(const UnitEdge&, const UnitEdge&) = default;

    [[nodiscard]] geom::Point other() const {
        return horizontal ? geom::Point{at.x + 1, at.y}
                          : geom::Point{at.x, at.y + 1};
    }

    [[nodiscard]] geom::Segment segment() const { return {at, other()}; }
};

struct UnitEdgeHash {
    size_t operator()(const UnitEdge& e) const noexcept {
        return std::hash<geom::Point>{}(e.at) * 2 + (e.horizontal ? 1 : 0);
    }
};

/// Derived view of a topology: feature nodes (pins, bends, junctions, stub
/// ends) and the maximal straight RC segments between them.
struct TopoStructure {
    struct Node {
        geom::Point pt;
        int pinIndex = -1;  // >= 0 when the node is a pin of the topology
        int degree = 0;
        bool isBend = false;  // degree-2 corner (one H + one V incident wire)
    };
    std::vector<Node> nodes;
    /// RC segments as (node index, node index); each is straight.
    std::vector<std::pair<int, int>> rcs;

    [[nodiscard]] int numRCs() const { return static_cast<int>(rcs.size()); }
};

class Topology {
public:
    Topology() = default;
    /// A topology over the given pins; `driver` indexes into `pins`.
    Topology(std::vector<geom::Point> pins, int driver);

    [[nodiscard]] const std::vector<geom::Point>& pins() const { return pins_; }
    [[nodiscard]] int driverIndex() const { return driver_; }
    [[nodiscard]] geom::Point driverPin() const { return pins_[static_cast<size_t>(driver_)]; }

    /// Add a straight segment's unit edges to the wire (union semantics).
    void addSegment(const geom::Segment& seg);
    /// Add both legs of an L-shape from `a` to `b` through `corner`.
    void addLShape(geom::Point a, geom::Point b, geom::Point corner);

    /// Remove a straight segment's unit edges from the wire (edges not
    /// present are ignored). Used by the refinement detour surgery.
    void removeSegment(const geom::Segment& seg);

    /// All lattice points touched by the wire.
    [[nodiscard]] std::unordered_set<geom::Point> wirePoints() const;

    [[nodiscard]] const std::unordered_set<UnitEdge, UnitEdgeHash>& wire() const {
        return wire_;
    }

    /// The wire edges in lexicographic order. Iterate this (not wire())
    /// wherever the visit order can reach a result — hash-set order is
    /// STL-specific and would break cross-toolchain reproducibility.
    [[nodiscard]] std::vector<UnitEdge> sortedWire() const;

    /// All lattice points touched by the wire, in lexicographic order.
    [[nodiscard]] std::vector<geom::Point> sortedWirePoints() const;
    [[nodiscard]] bool empty() const { return wire_.empty(); }

    /// Total wire-length (number of unit edges).
    [[nodiscard]] int wirelength() const { return static_cast<int>(wire_.size()); }

    /// True if the wire plus pins form one connected component covering
    /// every pin. (Single-pin topologies with no wire are connected.)
    [[nodiscard]] bool connected() const;

    /// True if connected and the wire graph is acyclic.
    [[nodiscard]] bool isTree() const;

    /// Number of bend points: lattice points where horizontal and vertical
    /// wire meet.
    [[nodiscard]] int bendCount() const;

    /// Lattice points where the route changes layer on uni-directional
    /// metal: every point with both horizontal and vertical incident wire.
    /// (Pin access stacks are counted separately by the consumers.)
    [[nodiscard]] std::vector<geom::Point> viaPoints() const;

    /// Shortest wire distance from the driver to each pin (index-aligned
    /// with pins()). Unreachable pins get -1.
    [[nodiscard]] std::vector<int> sourceToSinkDistances() const;

    /// Extract feature nodes and maximal RC segments.
    [[nodiscard]] TopoStructure structure() const;

    /// Remap every wire point and pin coordinate-wise: x -> xMap(x),
    /// y -> yMap(y). Used for equivalent-topology generation; maps must be
    /// defined for every coordinate present. Straight segments stay
    /// straight because equal coordinates stay equal.
    [[nodiscard]] Topology remap(
        const std::unordered_map<int, int>& xMap,
        const std::unordered_map<int, int>& yMap) const;

    /// Rigid translation by (dx, dy).
    [[nodiscard]] Topology translate(int dx, int dy) const;

    /// Order-independent hash of the wire shape (for deduping candidates).
    [[nodiscard]] std::uint64_t wireHash() const;

    friend bool operator==(const Topology& a, const Topology& b) {
        return a.pins_ == b.pins_ && a.driver_ == b.driver_ && a.wire_ == b.wire_;
    }

private:
    /// Adjacency over lattice points implied by the unit edges.
    [[nodiscard]] std::unordered_map<geom::Point, std::vector<geom::Point>>
    adjacency() const;

    std::vector<geom::Point> pins_;
    int driver_ = 0;
    std::unordered_set<UnitEdge, UnitEdgeHash> wire_;
};

}  // namespace streak::steiner
