// Rectilinear Steiner tree construction.
//
// Backbone structures (Sec. III-B1) are built by extending the batched
// iterated 1-Steiner heuristic of Kahng–Robins [16] with a bend-aware
// rectification step, and by enumerating several distinct candidate
// topologies per pin set (different L-shape orientations / Steiner point
// subsets) so the selection formulation has real choices.
#pragma once

#include <vector>

#include "geom/point.hpp"
#include "steiner/topology.hpp"

namespace streak::steiner {

/// Edges (as index pairs) of a minimum spanning tree over `pts` under the
/// Manhattan metric. Prim's algorithm, O(n^2). Deterministic.
[[nodiscard]] std::vector<std::pair<int, int>> rectilinearMST(
    const std::vector<geom::Point>& pts);

/// Total Manhattan length of the MST over `pts`.
[[nodiscard]] long mstLength(const std::vector<geom::Point>& pts);

/// Hanan grid candidate points: crossings of pin x/y coordinates that are
/// not pin locations themselves.
[[nodiscard]] std::vector<geom::Point> hananPoints(
    const std::vector<geom::Point>& pins);

/// Batched iterated 1-Steiner: repeatedly insert the Hanan point with the
/// best MST-length gain until no positive gain remains. Returns the
/// accepted Steiner points. Degree-pruned (points that end up with MST
/// degree <= 2 are dropped).
[[nodiscard]] std::vector<geom::Point> iterated1Steiner(
    const std::vector<geom::Point>& pins, int maxInserts = 16);

/// How rectify() turns a diagonal MST edge into an L-shape.
enum class LMode {
    LowerFirst,  // corner at (b.x, a.y): horizontal leg leaves `a` first
    UpperFirst,  // corner at (a.x, b.y): vertical leg leaves `a` first
    Adaptive,    // pick the corner that reuses already-placed wire, else
                 // the one aligned with the previous edge's direction
};

/// Build a concrete Topology from MST edges over pins + Steiner points.
/// `driver` indexes into `pins` (Steiner points follow the pins in the
/// combined point vector).
[[nodiscard]] Topology rectifyTree(const std::vector<geom::Point>& pins,
                                   int driver,
                                   const std::vector<geom::Point>& steiner,
                                   LMode mode);

/// Knobs for candidate enumeration.
struct EnumerateOptions {
    int maxCandidates = 4;
    bool useSteinerPoints = true;  // include BI1S-improved trees
    int bendPenalty = 2;           // lambda in cost = wl + lambda * bends
};

/// Enumerate up to maxCandidates distinct tree topologies for the pin set,
/// sorted by wl + bendPenalty * bends. Always returns at least one
/// topology for >= 1 pins.
[[nodiscard]] std::vector<Topology> enumerateTopologies(
    const std::vector<geom::Point>& pins, int driver,
    const EnumerateOptions& opts = {});

}  // namespace streak::steiner
