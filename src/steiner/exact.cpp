#include "steiner/exact.hpp"

#include <algorithm>

#include "steiner/rsmt.hpp"

namespace streak::steiner {

namespace {

void enumerate(const std::vector<geom::Point>& pins,
               const std::vector<geom::Point>& hanan, size_t firstCandidate,
               std::vector<geom::Point>* chosen, int remaining, long* best) {
    {
        std::vector<geom::Point> all = pins;
        all.insert(all.end(), chosen->begin(), chosen->end());
        *best = std::min(*best, mstLength(all));
    }
    if (remaining == 0) return;
    for (size_t c = firstCandidate; c < hanan.size(); ++c) {
        chosen->push_back(hanan[c]);
        enumerate(pins, hanan, c + 1, chosen, remaining - 1, best);
        chosen->pop_back();
    }
}

}  // namespace

long exactRsmtLength(const std::vector<geom::Point>& pins,
                     int maxSteinerPoints) {
    if (pins.size() <= 2) return mstLength(pins);
    const int n = static_cast<int>(pins.size());
    int budget = maxSteinerPoints < 0 ? n - 2 : maxSteinerPoints;
    budget = std::min(budget, n - 2);
    const std::vector<geom::Point> hanan = hananPoints(pins);
    long best = mstLength(pins);
    std::vector<geom::Point> chosen;
    enumerate(pins, hanan, 0, &chosen, budget, &best);
    return best;
}

}  // namespace streak::steiner
