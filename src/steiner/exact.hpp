// Exact rectilinear Steiner minimal tree length for small pin sets.
//
// By Hanan's theorem an RSMT uses only Hanan-grid Steiner points, and at
// most n-2 of them; exhaustive subset enumeration is therefore exact for
// small n. This is a test oracle for the BI1S heuristic (and a reference
// for wire-length estimates), not a production router: cost grows
// combinatorially with the pin count.
#pragma once

#include <vector>

#include "geom/point.hpp"

namespace streak::steiner {

/// Exact RSMT length of `pins`. `maxSteinerPoints` bounds the enumerated
/// subset size (n-2 is always sufficient; smaller trades exactness for
/// speed on larger inputs). Intended for pin counts <= ~6.
[[nodiscard]] long exactRsmtLength(const std::vector<geom::Point>& pins,
                                   int maxSteinerPoints = -1);

}  // namespace streak::steiner
