#include "steiner/rsmt.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "check/assert.hpp"

namespace streak::steiner {

std::vector<std::pair<int, int>> rectilinearMST(
    const std::vector<geom::Point>& pts) {
    const int n = static_cast<int>(pts.size());
    std::vector<std::pair<int, int>> edges;
    if (n <= 1) return edges;
    edges.reserve(static_cast<size_t>(n - 1));

    std::vector<bool> inTree(static_cast<size_t>(n), false);
    std::vector<int> best(static_cast<size_t>(n),
                          std::numeric_limits<int>::max());
    std::vector<int> parent(static_cast<size_t>(n), -1);
    inTree[0] = true;
    for (int v = 1; v < n; ++v) {
        best[static_cast<size_t>(v)] = manhattan(pts[0], pts[static_cast<size_t>(v)]);
        parent[static_cast<size_t>(v)] = 0;
    }
    for (int added = 1; added < n; ++added) {
        int pick = -1;
        int pickCost = std::numeric_limits<int>::max();
        for (int v = 0; v < n; ++v) {
            if (!inTree[static_cast<size_t>(v)] &&
                best[static_cast<size_t>(v)] < pickCost) {
                pick = v;
                pickCost = best[static_cast<size_t>(v)];
            }
        }
        STREAK_ASSERT(pick >= 0,
                      "Prim step {} of {} found no reachable point", added, n);
        inTree[static_cast<size_t>(pick)] = true;
        edges.emplace_back(parent[static_cast<size_t>(pick)], pick);
        for (int v = 0; v < n; ++v) {
            if (inTree[static_cast<size_t>(v)]) continue;
            const int d = manhattan(pts[static_cast<size_t>(pick)],
                                    pts[static_cast<size_t>(v)]);
            if (d < best[static_cast<size_t>(v)]) {
                best[static_cast<size_t>(v)] = d;
                parent[static_cast<size_t>(v)] = pick;
            }
        }
    }
    return edges;
}

long mstLength(const std::vector<geom::Point>& pts) {
    long total = 0;
    for (const auto& [a, b] : rectilinearMST(pts)) {
        total += manhattan(pts[static_cast<size_t>(a)], pts[static_cast<size_t>(b)]);
    }
    return total;
}

std::vector<geom::Point> hananPoints(const std::vector<geom::Point>& pins) {
    std::vector<int> xs;
    std::vector<int> ys;
    xs.reserve(pins.size());
    ys.reserve(pins.size());
    for (geom::Point p : pins) {
        xs.push_back(p.x);
        ys.push_back(p.y);
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

    std::unordered_set<geom::Point> pinSet(pins.begin(), pins.end());
    std::vector<geom::Point> out;
    for (int x : xs) {
        for (int y : ys) {
            const geom::Point p{x, y};
            if (!pinSet.contains(p)) out.push_back(p);
        }
    }
    return out;
}

std::vector<geom::Point> iterated1Steiner(const std::vector<geom::Point>& pins,
                                          int maxInserts) {
    std::vector<geom::Point> accepted;
    if (pins.size() < 3) return accepted;

    std::vector<geom::Point> current = pins;
    long currentCost = mstLength(current);
    for (int round = 0; round < maxInserts; ++round) {
        const std::vector<geom::Point> candidates = hananPoints(current);
        geom::Point bestPoint{};
        long bestCost = currentCost;
        bool found = false;
        for (geom::Point c : candidates) {
            current.push_back(c);
            const long cost = mstLength(current);
            current.pop_back();
            if (cost < bestCost) {
                bestCost = cost;
                bestPoint = c;
                found = true;
            }
        }
        if (!found) break;
        current.push_back(bestPoint);
        accepted.push_back(bestPoint);
        currentCost = bestCost;
    }

    // Degree pruning: drop accepted points with MST degree <= 2 (they do
    // not branch the tree and only add bends).
    for (;;) {
        const auto edges = rectilinearMST(current);
        std::vector<int> degree(current.size(), 0);
        for (const auto& [a, b] : edges) {
            ++degree[static_cast<size_t>(a)];
            ++degree[static_cast<size_t>(b)];
        }
        bool removed = false;
        for (size_t i = current.size(); i-- > pins.size();) {
            if (degree[i] <= 2) {
                const geom::Point victim = current[i];
                current.erase(current.begin() + static_cast<std::ptrdiff_t>(i));
                std::erase(accepted, victim);
                removed = true;
                break;
            }
        }
        if (!removed) break;
    }
    return accepted;
}

Topology rectifyTree(const std::vector<geom::Point>& pins, int driver,
                     const std::vector<geom::Point>& steiner, LMode mode) {
    std::vector<geom::Point> all = pins;
    all.insert(all.end(), steiner.begin(), steiner.end());
    Topology topo(pins, driver);
    const auto edges = rectilinearMST(all);

    bool lastLegHorizontal = true;
    for (const auto& [ia, ib] : edges) {
        const geom::Point a = all[static_cast<size_t>(ia)];
        const geom::Point b = all[static_cast<size_t>(ib)];
        if (a.x == b.x || a.y == b.y) {
            topo.addSegment({a, b});
            lastLegHorizontal = (a.y == b.y);
            continue;
        }
        const geom::Point cornerLower{b.x, a.y};  // horizontal leg first
        const geom::Point cornerUpper{a.x, b.y};  // vertical leg first
        geom::Point corner{};
        switch (mode) {
            case LMode::LowerFirst:
                corner = cornerLower;
                break;
            case LMode::UpperFirst:
                corner = cornerUpper;
                break;
            case LMode::Adaptive: {
                // Prefer the corner already touched by placed wire; when
                // both/neither, continue in the previous leg direction to
                // reduce zig-zagging.
                const auto touches = [&](geom::Point p) {
                    const std::array<UnitEdge, 4> around{
                        UnitEdge{p, true}, UnitEdge{{p.x - 1, p.y}, true},
                        UnitEdge{p, false}, UnitEdge{{p.x, p.y - 1}, false}};
                    for (const UnitEdge& e : around) {
                        if (topo.wire().contains(e)) return true;
                    }
                    return false;
                };
                const bool lowerTouch = touches(cornerLower);
                const bool upperTouch = touches(cornerUpper);
                if (lowerTouch != upperTouch) {
                    corner = lowerTouch ? cornerLower : cornerUpper;
                } else {
                    corner = lastLegHorizontal ? cornerLower : cornerUpper;
                }
                break;
            }
        }
        topo.addLShape(a, b, corner);
        lastLegHorizontal = (corner.y == b.y);
    }
    return topo;
}

namespace {

/// Break cycles (overlapping L-shapes can create them) and trim dangling
/// non-pin stubs, returning a proper tree covering all pins.
Topology pruneToTree(const Topology& t) {
    if (t.isTree()) return t;
    // Spanning tree via DFS over the wire graph. Which cycle edges get
    // dropped depends on the neighbour visit order, so build the
    // adjacency from the sorted wire view — hash-set order would make
    // the pruned tree differ across standard libraries.
    std::unordered_map<geom::Point, std::vector<geom::Point>> adj;
    for (const UnitEdge& e : t.sortedWire()) {
        adj[e.at].push_back(e.other());
        adj[e.other()].push_back(e.at);
    }
    Topology out(t.pins(), t.driverIndex());
    if (t.wire().empty()) return out;
    std::unordered_set<geom::Point> seen;
    std::vector<geom::Point> stack{t.driverPin()};
    seen.insert(t.driverPin());
    std::vector<geom::Segment> kept;
    while (!stack.empty()) {
        const geom::Point p = stack.back();
        stack.pop_back();
        const auto it = adj.find(p);
        if (it == adj.end()) continue;
        for (geom::Point q : it->second) {
            if (seen.insert(q).second) {
                kept.push_back({p, q});
                stack.push_back(q);
            }
        }
    }
    for (const geom::Segment& s : kept) out.addSegment(s);

    // Trim degree-1 non-pin leaves repeatedly.
    std::unordered_set<geom::Point> pinSet(t.pins().begin(), t.pins().end());
    for (;;) {
        const std::vector<UnitEdge> edges = out.sortedWire();
        std::unordered_map<geom::Point, int> degree;
        for (const UnitEdge& e : edges) {
            ++degree[e.at];
            ++degree[e.other()];
        }
        std::vector<UnitEdge> removable;
        for (const UnitEdge& e : edges) {
            const bool leafA = degree[e.at] == 1 && !pinSet.contains(e.at);
            const bool leafB = degree[e.other()] == 1 && !pinSet.contains(e.other());
            if (leafA || leafB) removable.push_back(e);
        }
        if (removable.empty()) break;
        Topology next(out.pins(), out.driverIndex());
        std::unordered_set<UnitEdge, UnitEdgeHash> drop(removable.begin(),
                                                        removable.end());
        for (const UnitEdge& e : edges) {
            if (!drop.contains(e)) next.addSegment(e.segment());
        }
        out = std::move(next);
    }
    return out;
}

}  // namespace

std::vector<Topology> enumerateTopologies(const std::vector<geom::Point>& pins,
                                          int driver,
                                          const EnumerateOptions& opts) {
    std::vector<Topology> raw;
    const std::vector<geom::Point> noSteiner;
    for (const LMode mode :
         {LMode::Adaptive, LMode::LowerFirst, LMode::UpperFirst}) {
        raw.push_back(rectifyTree(pins, driver, noSteiner, mode));
    }
    if (opts.useSteinerPoints && pins.size() >= 3) {
        const std::vector<geom::Point> steiner = iterated1Steiner(pins);
        if (!steiner.empty()) {
            for (const LMode mode :
                 {LMode::Adaptive, LMode::LowerFirst, LMode::UpperFirst}) {
                raw.push_back(rectifyTree(pins, driver, steiner, mode));
            }
        }
    }

    for (Topology& t : raw) t = pruneToTree(t);

    // Dedupe by wire shape, then rank by wl + lambda * bends.
    std::vector<Topology> unique;
    std::unordered_set<std::uint64_t> seen;
    for (Topology& t : raw) {
        if (seen.insert(t.wireHash()).second) unique.push_back(std::move(t));
    }
    std::stable_sort(unique.begin(), unique.end(),
                     [&](const Topology& a, const Topology& b) {
                         const int ca = a.wirelength() + opts.bendPenalty * a.bendCount();
                         const int cb = b.wirelength() + opts.bendPenalty * b.bendCount();
                         return ca < cb;
                     });
    if (static_cast<int>(unique.size()) > opts.maxCandidates) {
        unique.resize(static_cast<size_t>(opts.maxCandidates));
    }
    return unique;
}

}  // namespace streak::steiner
