#include "steiner/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "check/assert.hpp"

namespace streak::steiner {

namespace {

/// Wire incidence at a point: which of the four unit edges around `p`
/// exist in `wire`.
struct Incidence {
    bool left = false, right = false, down = false, up = false;

    [[nodiscard]] int degree() const {
        return int{left} + int{right} + int{down} + int{up};
    }
    [[nodiscard]] bool hasHorizontal() const { return left || right; }
    [[nodiscard]] bool hasVertical() const { return down || up; }
};

Incidence incidenceAt(const std::unordered_set<UnitEdge, UnitEdgeHash>& wire,
                      geom::Point p) {
    Incidence inc;
    inc.right = wire.contains({p, true});
    inc.left = wire.contains({{p.x - 1, p.y}, true});
    inc.up = wire.contains({p, false});
    inc.down = wire.contains({{p.x, p.y - 1}, false});
    return inc;
}

}  // namespace

Topology::Topology(std::vector<geom::Point> pins, int driver)
    : pins_(std::move(pins)), driver_(driver) {
    if (pins_.empty()) throw std::invalid_argument("Topology: no pins");
    if (driver_ < 0 || driver_ >= static_cast<int>(pins_.size())) {
        throw std::invalid_argument("Topology: driver index out of range");
    }
}

void Topology::addSegment(const geom::Segment& seg) {
    STREAK_ASSERT(seg.rectilinear(),
                  "addSegment with diagonal ({},{})-({},{})",
                  seg.a.x, seg.a.y, seg.b.x, seg.b.y);
    const geom::Segment c = seg.canonical();
    if (c.horizontal()) {
        for (int x = c.a.x; x < c.b.x; ++x) wire_.insert({{x, c.a.y}, true});
    } else {
        for (int y = c.a.y; y < c.b.y; ++y) wire_.insert({{c.a.x, y}, false});
    }
}

void Topology::addLShape(geom::Point a, geom::Point b, geom::Point corner) {
    STREAK_ASSERT((corner.x == a.x && corner.y == b.y) ||
                      (corner.x == b.x && corner.y == a.y),
                  "corner ({},{}) not on the bend of ({},{})-({},{})",
                  corner.x, corner.y, a.x, a.y, b.x, b.y);
    addSegment({a, corner});
    addSegment({corner, b});
}

void Topology::removeSegment(const geom::Segment& seg) {
    STREAK_ASSERT(seg.rectilinear(),
                  "removeSegment with diagonal ({},{})-({},{})",
                  seg.a.x, seg.a.y, seg.b.x, seg.b.y);
    const geom::Segment c = seg.canonical();
    if (c.horizontal()) {
        for (int x = c.a.x; x < c.b.x; ++x) wire_.erase({{x, c.a.y}, true});
    } else {
        for (int y = c.a.y; y < c.b.y; ++y) wire_.erase({{c.a.x, y}, false});
    }
}

std::unordered_set<geom::Point> Topology::wirePoints() const {
    std::unordered_set<geom::Point> points;
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (set union; order cannot escape)
        points.insert(e.at);
        points.insert(e.other());
    }
    return points;
}

std::vector<UnitEdge> Topology::sortedWire() const {
    std::vector<UnitEdge> edges(wire_.begin(), wire_.end());
    std::sort(edges.begin(), edges.end());
    return edges;
}

std::vector<geom::Point> Topology::sortedWirePoints() const {
    std::vector<geom::Point> points;
    points.reserve(wire_.size() * 2);
    for (const UnitEdge& e : sortedWire()) {
        points.push_back(e.at);
        points.push_back(e.other());
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return points;
}

std::unordered_map<geom::Point, std::vector<geom::Point>> Topology::adjacency()
    const {
    // Built over the sorted view so each neighbour list is in a
    // reproducible order — BFS tie-breaks downstream then match across
    // standard libraries.
    std::unordered_map<geom::Point, std::vector<geom::Point>> adj;
    for (const UnitEdge& e : sortedWire()) {
        adj[e.at].push_back(e.other());
        adj[e.other()].push_back(e.at);
    }
    return adj;
}

bool Topology::connected() const {
    const auto adj = adjacency();
    // Every pin must be present in the wire graph (or all pins coincide
    // with the single start point when there is no wire at all).
    if (wire_.empty()) {
        return std::all_of(pins_.begin(), pins_.end(),
                           [&](geom::Point p) { return p == pins_[0]; });
    }
    std::unordered_set<geom::Point> seen;
    std::deque<geom::Point> queue{pins_[0]};
    seen.insert(pins_[0]);
    while (!queue.empty()) {
        const geom::Point p = queue.front();
        queue.pop_front();
        const auto it = adj.find(p);
        if (it == adj.end()) continue;
        for (geom::Point q : it->second) {
            if (seen.insert(q).second) queue.push_back(q);
        }
    }
    for (geom::Point p : pins_) {
        if (!seen.contains(p)) return false;
    }
    // Also require the wire itself to be one component (no floating metal).
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (membership check only)
        if (!seen.contains(e.at)) return false;
    }
    return true;
}

bool Topology::isTree() const {
    if (!connected()) return false;
    // |V| = |E| + 1 for a tree; count distinct lattice points in the wire.
    if (wire_.empty()) return true;
    std::unordered_set<geom::Point> points;
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (set union; only the size escapes)
        points.insert(e.at);
        points.insert(e.other());
    }
    return points.size() == wire_.size() + 1;
}

int Topology::bendCount() const {
    return static_cast<int>(viaPoints().size());
}

std::vector<geom::Point> Topology::viaPoints() const {
    std::vector<geom::Point> vias;
    for (geom::Point p : sortedWirePoints()) {
        const Incidence inc = incidenceAt(wire_, p);
        if (inc.hasHorizontal() && inc.hasVertical()) vias.push_back(p);
    }
    return vias;
}

std::vector<int> Topology::sourceToSinkDistances() const {
    std::vector<int> dist(pins_.size(), -1);
    const auto adj = adjacency();
    std::unordered_map<geom::Point, int> d;
    std::deque<geom::Point> queue{driverPin()};
    d[driverPin()] = 0;
    while (!queue.empty()) {
        const geom::Point p = queue.front();
        queue.pop_front();
        const auto it = adj.find(p);
        if (it == adj.end()) continue;
        for (geom::Point q : it->second) {
            if (!d.contains(q)) {
                d[q] = d[p] + 1;
                queue.push_back(q);
            }
        }
    }
    for (size_t i = 0; i < pins_.size(); ++i) {
        const auto it = d.find(pins_[i]);
        if (it != d.end()) dist[i] = it->second;
    }
    return dist;
}

TopoStructure Topology::structure() const {
    TopoStructure st;
    std::unordered_map<geom::Point, int> nodeOf;

    std::unordered_map<geom::Point, int> pinAt;
    for (size_t i = 0; i < pins_.size(); ++i) {
        pinAt.emplace(pins_[i], static_cast<int>(i));
    }

    std::vector<geom::Point> featurePts = sortedWirePoints();
    featurePts.insert(featurePts.end(), pins_.begin(), pins_.end());
    std::sort(featurePts.begin(), featurePts.end());
    featurePts.erase(std::unique(featurePts.begin(), featurePts.end()),
                     featurePts.end());

    auto isFeature = [&](geom::Point p, const Incidence& inc) {
        if (pinAt.contains(p)) return true;
        const int deg = inc.degree();
        if (deg != 2) return true;  // junctions and stub ends
        return inc.hasHorizontal() && inc.hasVertical();  // bend
    };

    for (geom::Point p : featurePts) {
        const Incidence inc = incidenceAt(wire_, p);
        if (!isFeature(p, inc)) continue;
        TopoStructure::Node n;
        n.pt = p;
        n.degree = inc.degree();
        n.isBend = inc.degree() == 2 && inc.hasHorizontal() && inc.hasVertical();
        const auto it = pinAt.find(p);
        n.pinIndex = it == pinAt.end() ? -1 : it->second;
        nodeOf.emplace(p, static_cast<int>(st.nodes.size()));
        st.nodes.push_back(n);
    }

    // Walk straight runs from each feature node in each outgoing direction;
    // record each RC once (from the lexicographically smaller endpoint).
    const auto step = [](geom::Point p, int dir) -> geom::Point {
        switch (dir) {
            case 0: return {p.x + 1, p.y};
            case 1: return {p.x - 1, p.y};
            case 2: return {p.x, p.y + 1};
            default: return {p.x, p.y - 1};
        }
    };
    const auto edgeTowards = [](geom::Point p, int dir) -> UnitEdge {
        switch (dir) {
            case 0: return {p, true};
            case 1: return {{p.x - 1, p.y}, true};
            case 2: return {p, false};
            default: return {{p.x, p.y - 1}, false};
        }
    };
    for (int startIdx = 0; startIdx < static_cast<int>(st.nodes.size());
         ++startIdx) {
        const geom::Point start = st.nodes[static_cast<size_t>(startIdx)].pt;
        for (int dir = 0; dir < 4; ++dir) {
            if (!wire_.contains(edgeTowards(start, dir))) continue;
            geom::Point p = start;
            do {
                p = step(p, dir);
            } while (!nodeOf.contains(p));
            // Register once: only from the smaller endpoint.
            if (start < p) {
                st.rcs.emplace_back(startIdx, nodeOf.at(p));
            }
        }
    }
    return st;
}

Topology Topology::remap(const std::unordered_map<int, int>& xMap,
                         const std::unordered_map<int, int>& yMap) const {
    const auto mapPt = [&](geom::Point p) -> geom::Point {
        return {xMap.at(p.x), yMap.at(p.y)};
    };
    std::vector<geom::Point> newPins;
    newPins.reserve(pins_.size());
    for (geom::Point p : pins_) newPins.push_back(mapPt(p));
    Topology out(std::move(newPins), driver_);
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (set-to-set remap; order cannot escape)
        out.addSegment({mapPt(e.at), mapPt(e.other())});
    }
    return out;
}

Topology Topology::translate(int dx, int dy) const {
    std::vector<geom::Point> newPins;
    newPins.reserve(pins_.size());
    for (geom::Point p : pins_) newPins.push_back({p.x + dx, p.y + dy});
    Topology out(std::move(newPins), driver_);
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (set-to-set translate; order cannot escape)
        const geom::Point a{e.at.x + dx, e.at.y + dy};
        out.wire_.insert({a, e.horizontal});
    }
    return out;
}

std::uint64_t Topology::wireHash() const {
    // XOR of per-edge hashes is order independent.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const UnitEdge& e : wire_) {  // analyze-ok: unordered-iteration (XOR fold is order independent)
        std::uint64_t k = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.at.x)) << 33) ^
                          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.at.y)) << 1) ^
                          (e.horizontal ? 1u : 0u);
        k *= 0xbf58476d1ce4e5b9ull;
        k ^= k >> 27;
        h ^= k;
    }
    return h;
}

}  // namespace streak::steiner
