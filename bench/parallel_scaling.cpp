// Parallel scaling study (DESIGN.md "Parallel execution"): run the full
// flow on a multipin suite at 1/2/4/8 threads and report per-stage wall
// times plus the pool's own speedup estimate. The result columns must not
// change with the thread count — the parallel layer is deterministic —
// only the times may.
//
// On machines with fewer cores than the sweep, rows beyond the core count
// show oversubscription, not scaling; the printed hardware thread count
// makes that explicit.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace streak;

void runSweep(SolverKind solver, const char* title) {
    gen::SuiteSpec spec = gen::synthSpec(5);  // multipin, several objects
    const Design d = gen::generate(spec);

    io::Table table({"threads", "build(s)", "solve(s)", "dist(s)", "post(s)",
                     "total(s)", "est. speedup", "WL", "Vio(dst)"});
    double serialTotal = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
        StreakOptions opts = bench::baseOptions();
        opts.solver = solver;
        opts.threads = threads;
        const StreakResult r = runStreak(d, opts).value();

        const double total =
            r.buildSeconds() + r.solveSeconds() + r.distanceSeconds() + r.postSeconds();
        if (threads == 1) serialTotal = total;
        parallel::RegionStats all;
        all.merge(r.buildParallel());
        all.merge(r.solveParallel());
        all.merge(r.distanceParallel());
        all.merge(r.postParallel());
        // Measured end-to-end speedup vs the pool's task/wall estimate.
        const std::string speedup =
            io::Table::fixed(total > 0.0 ? serialTotal / total : 1.0, 2) +
            "x (" + io::Table::fixed(all.speedupEstimate(), 2) + "x est)";
        table.addRow({std::to_string(threads),
                      io::Table::fixed(r.buildSeconds(), 3),
                      io::Table::fixed(r.solveSeconds(), 3),
                      io::Table::fixed(r.distanceSeconds(), 3),
                      io::Table::fixed(r.postSeconds(), 3),
                      io::Table::fixed(total, 3), speedup,
                      std::to_string(r.metrics.wirelength),
                      std::to_string(r.distanceViolationsAfter)});
    }
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main() {
    std::cout << "hardware threads: " << parallel::hardwareThreads() << "\n\n";
    runSweep(SolverKind::PrimalDual, "parallel scaling, primal-dual solver");
    runSweep(SolverKind::Ilp, "parallel scaling, ILP solver");
    return 0;
}
