// Fig. 14 reproduction: ablation of the bottom-up clustering stage —
// impact on (a) routability and (b) average regularity, per suite.
//
// Shape expectations vs the paper: clustering raises routability by a
// fraction of a percent (more on congested suites) and costs a small
// amount of regularity (extra per-bit routing styles).
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

int main() {
    using namespace streak;
    io::Table table({"Bench", "Route w/o", "Route w/", "dRoute",
                     "Reg w/o", "Reg w/", "dReg"});
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        StreakOptions opts = bench::baseOptions();
        opts.solver = SolverKind::PrimalDual;
        opts.postOptimize = true;
        opts.refinementEnabled = true;

        opts.clusteringEnabled = false;
        const StreakResult off = runStreak(d, opts).value();
        opts.clusteringEnabled = true;
        const StreakResult on = runStreak(d, opts).value();

        table.addRow(
            {d.name, io::Table::percent(off.metrics.routability),
             io::Table::percent(on.metrics.routability),
             io::Table::percent(
                 on.metrics.routability - off.metrics.routability),
             io::Table::percent(off.metrics.avgRegularity),
             io::Table::percent(on.metrics.avgRegularity),
             io::Table::percent(
                 on.metrics.avgRegularity - off.metrics.avgRegularity)});
    }
    std::cout
        << "== Fig. 14: bottom-up clustering ablation (primal-dual flow) ==\n";
    table.print(std::cout);
    return 0;
}
