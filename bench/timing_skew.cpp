// Timing view of the Sec. II-C motivation: interbit Elmore-delay skew of
// corresponding sinks, before and after the distance refinement stage.
// Not a paper figure — it closes the loop on the paper's claim that
// source-to-sink distance deviation "results in diverse arrival times":
// matching distances should visibly tighten delay skew.
#include <iostream>

#include "bench_util.hpp"
#include "core/pd_solver.hpp"
#include "io/table.hpp"
#include "post/refine.hpp"
#include "timing/skew.hpp"

namespace {

double worstSkew(const std::vector<streak::timing::GroupSkewReport>& reports) {
    double w = 0.0;
    for (const auto& r : reports) w = std::max(w, r.maxFamilySkew);
    return w;
}

double meanSkew(const std::vector<streak::timing::GroupSkewReport>& reports) {
    if (reports.empty()) return 0.0;
    double s = 0.0;
    for (const auto& r : reports) s += r.maxFamilySkew;
    return s / static_cast<double>(reports.size());
}

}  // namespace

int main() {
    using namespace streak;
    io::Table table({"Bench", "skew max (pre)", "skew max (post)",
                     "skew mean (pre)", "skew mean (post)", "pins fixed"});
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        const RoutingProblem prob = buildProblem(d, bench::baseOptions());
        RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
        const auto before = timing::analyzeGroupSkew(prob, routed);
        const post::RefinementResult ref = post::refineDistances(prob, &routed);
        const auto after = timing::analyzeGroupSkew(prob, routed);
        table.addRow({d.name, io::Table::fixed(worstSkew(before), 1),
                      io::Table::fixed(worstSkew(after), 1),
                      io::Table::fixed(meanSkew(before), 1),
                      io::Table::fixed(meanSkew(after), 1),
                      std::to_string(ref.pinsFixed)});
    }
    std::cout << "== Interbit Elmore skew: refinement effect ==\n";
    table.print(std::cout);
    return 0;
}
