// Table II reproduction: effect of post optimization (layer prediction +
// bottom-up clustering + distance refinement) applied to both ILP and
// primal-dual solutions.
//
// Shape expectations vs the paper:
//   - Vio(dst) drops by roughly two thirds after refinement.
//   - Routability rises (clustering recovers leftover bits).
//   - Wire-length grows slightly (detours), Avg(Reg) dips slightly
//     (extra per-bit routing styles).
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

namespace {

struct Totals {
    long vioBefore = 0;
    long vioAfter = 0;
    double route = 0.0;
    long wl = 0;
    double reg = 0.0;
    int n = 0;
};

void runSide(const streak::Design& d, streak::SolverKind solver,
             streak::io::Table* table, Totals* totals,
             streak::bench::JsonLog* log) {
    using namespace streak;
    StreakOptions opts = bench::baseOptions();
    opts.solver = solver;
    opts.postOptimize = true;
    opts.observer = bench::observeNothing;  // collect counters
    const StreakResult r = runStreak(d, opts).value();
    log->add(d, solver == SolverKind::Ilp ? "ilp+post" : "pd+post", r);
    table->addRow({d.name,
                   std::to_string(r.distanceViolationsBefore),
                   std::to_string(r.distanceViolationsAfter),
                   io::Table::percent(r.metrics.routability),
                   std::to_string(r.metrics.wirelength),
                   io::Table::percent(r.metrics.avgRegularity),
                   bench::cpuCell(r.solveSeconds() + r.postSeconds(),
                                  r.hitTimeLimit)});
    totals->vioBefore += r.distanceViolationsBefore;
    totals->vioAfter += r.distanceViolationsAfter;
    totals->route += r.metrics.routability;
    totals->wl += r.metrics.wirelength;
    totals->reg += r.metrics.avgRegularity;
    ++totals->n;
}

void addAverage(streak::io::Table* table, const Totals& t) {
    using streak::io::Table;
    table->addRow({"average", Table::fixed(double(t.vioBefore) / t.n, 1),
                   Table::fixed(double(t.vioAfter) / t.n, 1),
                   Table::percent(t.route / t.n), std::to_string(t.wl / t.n),
                   Table::percent(t.reg / t.n), "-"});
}

}  // namespace

int main() {
    using namespace streak;
    io::Table ilpTable({"Bench", "Vio(dst)", "Vio(dst)'", "Route", "WL",
                        "Avg(Reg)", "CPU(s)"});
    io::Table pdTable({"Bench", "Vio(dst)", "Vio(dst)'", "Route", "WL",
                       "Avg(Reg)", "CPU(s)"});
    bench::JsonLog log("table2_postopt");
    Totals ilpTotals, pdTotals;
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        runSide(d, SolverKind::Ilp, &ilpTable, &ilpTotals, &log);
        runSide(d, SolverKind::PrimalDual, &pdTable, &pdTotals, &log);
    }
    addAverage(&ilpTable, ilpTotals);
    addAverage(&pdTable, pdTotals);
    std::cout << "== Table II (left): ILP + post optimization ==\n";
    ilpTable.print(std::cout);
    std::cout << "\n== Table II (right): primal-dual + post optimization ==\n";
    pdTable.print(std::cout);
    // The paper's Ratio row: PD-vs-ILP after post optimization.
    std::cout << "\nPD/ILP ratios: Route "
              << io::Table::fixed(pdTotals.route / ilpTotals.route, 4)
              << ", WL "
              << io::Table::fixed(double(pdTotals.wl) / ilpTotals.wl, 4)
              << ", Avg(Reg) "
              << io::Table::fixed(pdTotals.reg / ilpTotals.reg, 4) << '\n';
    log.write();
    return 0;
}
