// Design-choice ablations called out in DESIGN.md (beyond the paper's own
// Fig. 14/15 ablations):
//   (a) backbone candidate count K — solution quality vs problem size,
//   (b) irregularity weight — the WL <-> regularity trade-off,
//   (c) pin-access (via capacity) model — routability vs via budget
//       (the future-work extension).
// All on the primal-dual flow over synth5 (multipin, mid-size).
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

int main() {
    using namespace streak;
    const Design d = gen::makeSynth(5);

    {
        io::Table t({"K backbones", "candidates", "Route", "WL", "Avg(Reg)",
                     "build+solve(s)"});
        for (const int k : {1, 2, 4, 8}) {
            StreakOptions opts = bench::baseOptions();
            opts.backbone.maxBackbones = k;
            const StreakResult r = runStreak(d, opts).value();
            long cands = 0;
            for (const auto& c : r.problem.candidates) {
                cands += static_cast<long>(c.size());
            }
            t.addRow({std::to_string(k), std::to_string(cands),
                      io::Table::percent(r.metrics.routability),
                      std::to_string(r.metrics.wirelength),
                      io::Table::percent(r.metrics.avgRegularity),
                      io::Table::fixed(r.buildSeconds() + r.solveSeconds(), 3)});
        }
        std::cout << "== Ablation (a): backbone candidate count K ==\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    {
        io::Table t({"irreg. weight", "Route", "WL", "Avg(Reg)"});
        for (const double w : {0.0, 10.0, 50.0, 200.0}) {
            StreakOptions opts = bench::baseOptions();
            opts.irregularityWeight = w;
            const StreakResult r = runStreak(d, opts).value();
            t.addRow({io::Table::fixed(w, 0),
                      io::Table::percent(r.metrics.routability),
                      std::to_string(r.metrics.wirelength),
                      io::Table::percent(r.metrics.avgRegularity)});
        }
        std::cout << "== Ablation (b): irregularity weight ==\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    {
        io::Table t({"via capacity", "Route", "WL", "via overflow"});
        for (const int cap : {-1, 12, 6, 3}) {
            gen::SuiteSpec spec = gen::synthSpec(5);
            spec.viaCapacity = cap;
            const Design dv = gen::generate(spec);
            StreakOptions opts = bench::baseOptions();
            opts.postOptimize = true;
            const StreakResult r = runStreak(dv, opts).value();
            t.addRow({cap < 0 ? "unlimited" : std::to_string(cap),
                      io::Table::percent(r.metrics.routability),
                      std::to_string(r.metrics.wirelength),
                      std::to_string(r.metrics.totalViaOverflow)});
        }
        std::cout << "== Ablation (c): pin-access via budget ==\n";
        t.print(std::cout);
    }
    return 0;
}
