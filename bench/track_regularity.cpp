// Downstream payoff of regularity (not a paper figure): after Streak's
// topology selection, assign concrete tracks and measure how often the
// bits of one regularity cluster land on adjacent, ordered tracks — with
// group-aware assignment vs a group-blind assignment of the same routes.
//
// Shape expectation: the shared-topology routes admit near-perfect
// adjacent-track ordering when the assigner knows the clusters, and
// noticeably less when it does not — the "parallel tracks" motivation of
// Fig. 1 made concrete.
#include <iostream>

#include "bench_util.hpp"
#include "core/pd_solver.hpp"
#include "io/table.hpp"
#include "track/tracks.hpp"

int main() {
    using namespace streak;
    io::Table table({"Bench", "trunks", "unplaced", "orderliness (grouped)",
                     "orderliness (blind)"});
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        const RoutingProblem prob = buildProblem(d, bench::baseOptions());
        const RoutedDesign routed =
            materialize(prob, solvePrimalDual(prob).solution);

        const track::TrackAssignment grouped = track::assignTracks(routed);

        // Group-blind assignment: same routes, every bit its own cluster.
        RoutedDesign blind(d.grid);
        blind.bits = routed.bits;
        for (size_t b = 0; b < blind.bits.size(); ++b) {
            blind.bits[b].clusterKey = 1000000 + static_cast<int>(b);
        }
        const track::TrackAssignment blindTa = track::assignTracks(blind);

        table.addRow({d.name, std::to_string(grouped.wires.size()),
                      std::to_string(grouped.unplaced),
                      io::Table::percent(trackOrderliness(routed, grouped)),
                      io::Table::percent(trackOrderliness(routed, blindTa))});
    }
    std::cout << "== Track assignment: cluster-aware vs group-blind ==\n";
    table.print(std::cout);
    return 0;
}
