// Validation of the paper's post-optimization design decision (Sec. IV):
// Streak deliberately does NOT rip up committed routes and instead adds
// bottom-up clustering on the residual capacity. This bench measures the
// rejected alternative: classical rip-up-and-reroute on the same leftover
// objects.
//
// Shape expectation: rip-up can recover routability too, but it perturbs
// committed group routes — regularity and/or previously routed bits
// suffer — while clustering recovers bits with the global planning left
// untouched.
#include <iostream>

#include "bench_util.hpp"
#include "core/pd_solver.hpp"
#include "io/table.hpp"
#include "post/clustering.hpp"
#include "post/ripup.hpp"

int main() {
    using namespace streak;
    io::Table table({"Bench", "base:Route", "clus:Route", "clus:Reg",
                     "rip:Route", "rip:Reg", "ripped", "lost"});
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        StreakOptions opts = bench::baseOptions();
        const RoutingProblem prob = buildProblem(d, opts);
        const PdResult pd = solvePrimalDual(prob);

        // Path A: the paper's choice — bottom-up clustering.
        RoutedDesign clustered = materialize(prob, pd.solution);
        post::clusterAndRoute(prob, &clustered);
        const Metrics mClus = evaluate(prob, clustered);

        // Path B: rip-up and re-route.
        RoutingSolution ripped = pd.solution;
        const post::RipupResult rr = post::ripupAndReroute(prob, &ripped);
        const RoutedDesign rippedDesign = materialize(prob, ripped);
        const Metrics mRip = evaluate(prob, rippedDesign);

        const Metrics mBase = evaluate(prob, materialize(prob, pd.solution));
        table.addRow({d.name, io::Table::percent(mBase.routability),
                      io::Table::percent(mClus.routability),
                      io::Table::percent(mClus.avgRegularity),
                      io::Table::percent(mRip.routability),
                      io::Table::percent(mRip.avgRegularity),
                      std::to_string(rr.objectsRipped),
                      std::to_string(rr.objectsLost)});
    }
    std::cout << "== Ablation: bottom-up clustering vs rip-up-and-reroute ==\n";
    table.print(std::cout);
    return 0;
}
