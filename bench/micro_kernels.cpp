// Kernel micro-benchmarks (google-benchmark): the hot inner loops of the
// flow, plus ablations of the two knobs our backbone enumerator adds on
// top of the paper (bend penalty lambda, candidate count K).
#include <benchmark/benchmark.h>

#include <random>

#include "core/identify.hpp"
#include "core/regularity.hpp"
#include "core/similarity.hpp"
#include "gen/generator.hpp"
#include "route/maze.hpp"
#include "steiner/rsmt.hpp"

namespace {

using namespace streak;

std::vector<geom::Point> randomPins(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> coord(0, 60);
    std::vector<geom::Point> pins;
    pins.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) pins.push_back({coord(rng), coord(rng)});
    return pins;
}

void BM_RectilinearMST(benchmark::State& state) {
    const auto pins = randomPins(static_cast<int>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::mstLength(pins));
    }
}
BENCHMARK(BM_RectilinearMST)->Arg(4)->Arg(8)->Arg(14);

void BM_Iterated1Steiner(benchmark::State& state) {
    const auto pins = randomPins(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::iterated1Steiner(pins));
    }
}
BENCHMARK(BM_Iterated1Steiner)->Arg(5)->Arg(9)->Arg(14);

/// Ablation: backbone candidate count K (maxCandidates).
void BM_EnumerateTopologies_K(benchmark::State& state) {
    const auto pins = randomPins(9, 13);
    steiner::EnumerateOptions opts;
    opts.maxCandidates = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::enumerateTopologies(pins, 0, opts));
    }
}
BENCHMARK(BM_EnumerateTopologies_K)->Arg(1)->Arg(4)->Arg(8);

/// Ablation: bend penalty lambda in the backbone ranking.
void BM_EnumerateTopologies_Lambda(benchmark::State& state) {
    const auto pins = randomPins(9, 17);
    steiner::EnumerateOptions opts;
    opts.bendPenalty = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto topos = steiner::enumerateTopologies(pins, 0, opts);
        benchmark::DoNotOptimize(topos.front().bendCount());
    }
}
BENCHMARK(BM_EnumerateTopologies_Lambda)->Arg(0)->Arg(2)->Arg(8);

void BM_SimilarityVector(benchmark::State& state) {
    Bit bit;
    bit.pins = randomPins(static_cast<int>(state.range(0)), 19);
    bit.driver = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bitSimilarities(bit));
    }
}
BENCHMARK(BM_SimilarityVector)->Arg(2)->Arg(8)->Arg(14);

void BM_IdentifyObjects(benchmark::State& state) {
    const Design d = gen::makeSynth(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(identifyObjects(d));
    }
}
BENCHMARK(BM_IdentifyObjects);

void BM_RegularityRatio(benchmark::State& state) {
    const auto pins = randomPins(8, 23);
    const auto a = steiner::enumerateTopologies(pins, 0);
    const auto pins2 = randomPins(8, 29);
    const auto b = steiner::enumerateTopologies(pins2, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(regularityRatio(a.front(), b.front()));
    }
}
BENCHMARK(BM_RegularityRatio);

void BM_MazeRoute(benchmark::State& state) {
    grid::RoutingGrid g(64, 64, 6, 12);
    for (auto _ : state) {
        grid::EdgeUsage usage(g);
        route::MazeRouter router(&usage);
        benchmark::DoNotOptimize(router.route({{4, 4}, {58, 50}, {30, 60}}, 0));
    }
}
BENCHMARK(BM_MazeRoute);

}  // namespace

BENCHMARK_MAIN();
