// Kernel micro-benchmarks (google-benchmark): the hot inner loops of the
// flow, plus ablations of the two knobs our backbone enumerator adds on
// top of the paper (bend penalty lambda, candidate count K).
//
// Two modes:
//
//   micro_kernels [gbench flags]   google-benchmark timings of the
//                                  kernels, including before/after pairs
//                                  for the maze search (Dijkstra full
//                                  grid vs A* + bounding window) and the
//                                  simplex (legacy explicit-bound rows vs
//                                  bounded-variable, cold vs warm basis).
//
//   micro_kernels --report         counter harness: runs the shrunk
//                                  synth1-7 flows in before/after kernel
//                                  configurations, checks the routed
//                                  solutions and ILP objectives are
//                                  unchanged, and writes the pops /
//                                  pivots / wall-time deltas to
//                                  BENCH_streak.json (STREAK_BENCH_JSON
//                                  overrides the path). check.sh runs
//                                  this and validates the output with
//                                  report_check --bench.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/identify.hpp"
#include "core/regularity.hpp"
#include "core/similarity.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "ilp/lp.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "route/maze.hpp"
#include "route/sequential.hpp"
#include "steiner/rsmt.hpp"

namespace {

using namespace streak;

std::vector<geom::Point> randomPins(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> coord(0, 60);
    std::vector<geom::Point> pins;
    pins.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) pins.push_back({coord(rng), coord(rng)});
    return pins;
}

void BM_RectilinearMST(benchmark::State& state) {
    const auto pins = randomPins(static_cast<int>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::mstLength(pins));
    }
}
BENCHMARK(BM_RectilinearMST)->Arg(4)->Arg(8)->Arg(14);

void BM_Iterated1Steiner(benchmark::State& state) {
    const auto pins = randomPins(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::iterated1Steiner(pins));
    }
}
BENCHMARK(BM_Iterated1Steiner)->Arg(5)->Arg(9)->Arg(14);

/// Ablation: backbone candidate count K (maxCandidates).
void BM_EnumerateTopologies_K(benchmark::State& state) {
    const auto pins = randomPins(9, 13);
    steiner::EnumerateOptions opts;
    opts.maxCandidates = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(steiner::enumerateTopologies(pins, 0, opts));
    }
}
BENCHMARK(BM_EnumerateTopologies_K)->Arg(1)->Arg(4)->Arg(8);

/// Ablation: bend penalty lambda in the backbone ranking.
void BM_EnumerateTopologies_Lambda(benchmark::State& state) {
    const auto pins = randomPins(9, 17);
    steiner::EnumerateOptions opts;
    opts.bendPenalty = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto topos = steiner::enumerateTopologies(pins, 0, opts);
        benchmark::DoNotOptimize(topos.front().bendCount());
    }
}
BENCHMARK(BM_EnumerateTopologies_Lambda)->Arg(0)->Arg(2)->Arg(8);

void BM_SimilarityVector(benchmark::State& state) {
    Bit bit;
    bit.pins = randomPins(static_cast<int>(state.range(0)), 19);
    bit.driver = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bitSimilarities(bit));
    }
}
BENCHMARK(BM_SimilarityVector)->Arg(2)->Arg(8)->Arg(14);

void BM_IdentifyObjects(benchmark::State& state) {
    const Design d = gen::makeSynth(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(identifyObjects(d));
    }
}
BENCHMARK(BM_IdentifyObjects);

void BM_RegularityRatio(benchmark::State& state) {
    const auto pins = randomPins(8, 23);
    const auto a = steiner::enumerateTopologies(pins, 0);
    const auto pins2 = randomPins(8, 29);
    const auto b = steiner::enumerateTopologies(pins2, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(regularityRatio(a.front(), b.front()));
    }
}
BENCHMARK(BM_RegularityRatio);

void BM_MazeRoute(benchmark::State& state) {
    grid::RoutingGrid g(64, 64, 6, 12);
    for (auto _ : state) {
        grid::EdgeUsage usage(g);
        route::MazeRouter router(&usage);
        benchmark::DoNotOptimize(router.route({{4, 4}, {58, 50}, {30, 60}}, 0));
    }
}
BENCHMARK(BM_MazeRoute);

/// Before/after pair for the maze-search kernel: Arg(0) = full-grid
/// Dijkstra (the legacy search), Arg(1) = A* + bounding window with an
/// epoch-stamped shared scratch. Same nets, identical routed trees.
void BM_MazeSearchKernel(benchmark::State& state) {
    const bool fast = state.range(0) != 0;
    grid::RoutingGrid g(64, 64, 6, 12);
    route::MazeOptions opts;
    opts.useAstar = fast;
    opts.useWindow = fast;
    route::SearchState scratch;
    for (auto _ : state) {
        grid::EdgeUsage usage(g);
        route::MazeRouter router(&usage, opts);
        benchmark::DoNotOptimize(
            router.route({{4, 4}, {58, 50}, {30, 60}}, 0, &scratch));
        benchmark::DoNotOptimize(
            router.route({{10, 60}, {55, 8}}, 0, &scratch));
        benchmark::DoNotOptimize(
            router.route({{2, 30}, {61, 33}, {31, 2}, {33, 62}}, 0, &scratch));
    }
}
BENCHMARK(BM_MazeSearchKernel)->Arg(0)->Arg(1);

/// A Streak-shaped LP relaxation: per-group selection rows (Equal 1)
/// over candidate variables plus one shared capacity row — the structure
/// branch-and-bound re-solves at every node.
ilp::Model selectionLp(int groups, int candsPerGroup) {
    ilp::Model m;
    std::vector<std::pair<int, double>> capacity;
    for (int gidx = 0; gidx < groups; ++gidx) {
        std::vector<std::pair<int, double>> sel;
        for (int c = 0; c < candsPerGroup; ++c) {
            const int v = m.addVariable(
                1.0 + 0.25 * static_cast<double>((gidx * candsPerGroup + c) %
                                                 7),
                false, 0.0, 1.0);
            sel.emplace_back(v, 1.0);
            capacity.emplace_back(v,
                                  1.0 + static_cast<double>(c % 3));
        }
        m.addRow(std::move(sel), ilp::Sense::Equal, 1.0);
    }
    m.addRow(std::move(capacity), ilp::Sense::LessEqual,
             static_cast<double>(groups) * 1.5);
    return m;
}

/// Before/after pair for the simplex kernel: Arg(0) = legacy explicit
/// upper-bound rows, Arg(1) = bounded-variable tableau (cold), Arg(2) =
/// bounded-variable warm-started from the previous optimal basis with
/// one variable's bounds tightened (the branch-and-bound child pattern).
void BM_SimplexKernel(benchmark::State& state) {
    const long mode = state.range(0);
    const ilp::Model m = selectionLp(8, 4);
    ilp::LpBasis basis;
    if (mode == 2) {
        ilp::LpOptions opts;
        opts.basisOut = &basis;
        const ilp::Solution parent = solveLp(m, opts);
        if (parent.status != ilp::SolveStatus::Optimal || basis.empty()) {
            state.SkipWithError("parent LP did not produce a basis");
            return;
        }
    }
    // The warm "child": fix the first variable to 0, as branching does.
    ilp::Model child;
    for (int v = 0; v < m.numVariables(); ++v) {
        child.addVariable(m.objectiveCoeff(v), false, m.lower(v),
                          v == 0 ? 0.0 : m.upper(v));
    }
    for (const ilp::Row& r : m.rows()) child.addRow(r);
    for (auto _ : state) {
        if (mode == 0) {
            benchmark::DoNotOptimize(solveLpLegacy(m));
        } else if (mode == 1) {
            benchmark::DoNotOptimize(solveLp(m));
        } else {
            ilp::LpOptions opts;
            opts.warmBasis = &basis;
            benchmark::DoNotOptimize(solveLp(child, opts));
        }
    }
}
BENCHMARK(BM_SimplexKernel)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// --report mode: before/after counter harness over the shrunk synth suite.
// ---------------------------------------------------------------------------

/// Table I suites scaled down so the before/after ILP sweeps finish in
/// seconds (the full suites are bench-only; check.sh runs this harness).
/// Shared with the campaign runner via gen::shrunkSynthSpec so counter
/// baselines in BENCH_streak.json stay comparable.
gen::SuiteSpec shrunkSpec(int index) { return gen::shrunkSynthSpec(index); }

long long counterOf(const obs::Snapshot& snap, const std::string& name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

int reportErrors = 0;

void reportFail(const std::string& message) {
    std::cerr << "micro_kernels --report: " << message << '\n';
    ++reportErrors;
}

/// One maze-search run over a design's nets: counter deltas + solution.
/// Every bit goes through the maze (no pattern-route shortcut — this
/// measures the search kernel itself), sharing one usage map so later
/// nets see the congestion earlier nets committed, and one epoch-stamped
/// scratch across all nets.
struct MazeRun {
    int totalBits = 0;
    int routedBits = 0;
    long wirelength = 0;
    long vias = 0;
    obs::Snapshot counters;
    double seconds = 0.0;
};

MazeRun runMaze(const Design& design, bool fast) {
    MazeRun run;
    route::MazeOptions opts;
    opts.useAstar = fast;
    opts.useWindow = fast;
    grid::EdgeUsage usage(design.grid);
    route::MazeRouter router(&usage, opts);
    route::SearchState scratch;
    const obs::Snapshot base = obs::snapshotMetrics();
    obs::setDetailEnabled(true);
    const obs::Stopwatch watch;
    for (const SignalGroup& group : design.groups) {
        for (const Bit& bit : group.bits) {
            ++run.totalBits;
            const auto net = router.route(bit.pins, bit.driver, &scratch);
            if (net) {
                ++run.routedBits;
                run.wirelength += net->wirelength2d;
                run.vias += net->viaCount;
            }
        }
    }
    run.seconds = watch.seconds();
    obs::setDetailEnabled(false);
    run.counters = obs::snapshotMetrics().minus(base);
    return run;
}

obs::json::Object mazeSide(const MazeRun& run, const std::string& variant) {
    obs::json::Object side;
    side.set("variant", variant);
    side.set("seconds", run.seconds);
    obs::json::Object counters;
    for (const char* name :
         {"route/maze.pops", "route/maze.pushes", "route/maze.window_growths",
          "route/maze.window_fallbacks"}) {
        counters.set(name, counterOf(run.counters, name));
    }
    side.set("counters", std::move(counters));
    obs::json::Object solution;
    solution.set("routedBits", run.routedBits);
    solution.set("totalBits", run.totalBits);
    solution.set("wirelength", run.wirelength);
    solution.set("vias", run.vias);
    side.set("solution", std::move(solution));
    return side;
}

/// One ILP-flow run: solver counters + the selection objective/metrics.
struct IlpRun {
    StreakResult result;
    double solveSeconds = 0.0;

    explicit IlpRun(const grid::RoutingGrid& g) : result(g) {}
};

IlpRun runIlpFlow(const Design& design, ilp::LpEngine engine, bool warm) {
    IlpRun run(design.grid);
    StreakOptions opts = bench::baseOptions();
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 10.0;
    opts.lpEngine = engine;
    opts.lpWarmStart = warm;
    opts.observer = bench::observeNothing;  // turn on per-run counters
    run.result = runStreak(design, opts).value();
    run.solveSeconds = run.result.solveSeconds();
    return run;
}

obs::json::Object ilpSide(const IlpRun& run, const std::string& variant) {
    obs::json::Object side;
    side.set("variant", variant);
    side.set("seconds", run.solveSeconds);
    obs::json::Object counters;
    for (const char* name :
         {"ilp/lp.solves", "ilp/lp.pivots", "ilp/lp.bound_flips",
          "ilp/lp.warm_starts", "ilp/lp.warm_fallbacks",
          "ilp/bnb.nodes_explored"}) {
        counters.set(name, counterOf(run.result.counters, name));
    }
    side.set("counters", std::move(counters));
    obs::json::Object solution;
    solution.set("objective", run.result.solverSolution.objective);
    solution.set("routability", run.result.metrics.routability);
    solution.set("wirelength", run.result.metrics.wirelength);
    solution.set("totalOverflow", run.result.metrics.totalOverflow);
    solution.set("hitTimeLimit", run.result.hitTimeLimit);
    side.set("solution", std::move(solution));
    return side;
}

double dropPercent(long long before, long long after) {
    if (before <= 0) return 0.0;
    return 100.0 * static_cast<double>(before - after) /
           static_cast<double>(before);
}

int runReport() {
    obs::json::Array kernels;
    long long mazePopsBefore = 0;
    long long mazePopsAfter = 0;
    long long lpPivotsBefore = 0;
    long long lpPivotsAfter = 0;

    for (int i = 1; i <= 7; ++i) {
        const gen::SuiteSpec spec = shrunkSpec(i);
        const Design design = gen::generate(spec);

        // Maze kernel: legacy Dijkstra full grid vs A* + window. The
        // routed trees must be identical (the window is exact and the
        // heuristic admissible), so the solution triple must match.
        const MazeRun before = runMaze(design, /*fast=*/false);
        const MazeRun after = runMaze(design, /*fast=*/true);
        if (before.routedBits != after.routedBits ||
            before.wirelength != after.wirelength ||
            before.vias != after.vias) {
            reportFail(spec.name + ": maze before/after solutions differ");
        }
        const long long popsB = counterOf(before.counters, "route/maze.pops");
        const long long popsA = counterOf(after.counters, "route/maze.pops");
        mazePopsBefore += popsB;
        mazePopsAfter += popsA;
        obs::json::Object maze;
        maze.set("kernel", "route/maze");
        maze.set("design", spec.name);
        maze.set("before", mazeSide(before, "dijkstra-full-grid"));
        maze.set("after", mazeSide(after, "astar-window"));
        maze.set("popsDropPercent", dropPercent(popsB, popsA));
        kernels.push_back(obs::json::Value(std::move(maze)));

        // Simplex kernel: the ILP flow end-to-end, legacy engine vs
        // bounded-variable + warm starts. Same branch-and-bound, same
        // relaxation optima, so the selection objective must match.
        const IlpRun legacy = runIlpFlow(design, ilp::LpEngine::Legacy,
                                         /*warm=*/false);
        const IlpRun bounded = runIlpFlow(design, ilp::LpEngine::Bounded,
                                          /*warm=*/true);
        if (legacy.result.hitTimeLimit || bounded.result.hitTimeLimit) {
            reportFail(spec.name + ": ILP hit the time limit; shrink more");
        }
        if (std::abs(legacy.result.solverSolution.objective -
                     bounded.result.solverSolution.objective) > 1e-6) {
            reportFail(spec.name + ": ILP objectives differ (legacy " +
                       std::to_string(legacy.result.solverSolution.objective) +
                       " vs bounded " +
                       std::to_string(bounded.result.solverSolution.objective) +
                       ")");
        }
        if (legacy.result.metrics.routability !=
                bounded.result.metrics.routability ||
            legacy.result.metrics.wirelength !=
                bounded.result.metrics.wirelength) {
            reportFail(spec.name + ": ILP routed solutions differ");
        }
        const long long pivB =
            counterOf(legacy.result.counters, "ilp/lp.pivots");
        const long long pivA =
            counterOf(bounded.result.counters, "ilp/lp.pivots");
        lpPivotsBefore += pivB;
        lpPivotsAfter += pivA;
        obs::json::Object lp;
        lp.set("kernel", "ilp/lp");
        lp.set("design", spec.name);
        lp.set("before", ilpSide(legacy, "legacy-bound-rows"));
        lp.set("after", ilpSide(bounded, "bounded-warm"));
        lp.set("pivotsDropPercent", dropPercent(pivB, pivA));
        kernels.push_back(obs::json::Value(std::move(lp)));

        std::cout << spec.name << ": maze pops " << popsB << " -> " << popsA
                  << " (" << dropPercent(popsB, popsA) << "%), lp pivots "
                  << pivB << " -> " << pivA << " ("
                  << dropPercent(pivB, pivA) << "%)\n";
    }

    obs::json::Object totals;
    obs::json::Object mazeTotals;
    mazeTotals.set("popsBefore", mazePopsBefore);
    mazeTotals.set("popsAfter", mazePopsAfter);
    mazeTotals.set("dropPercent", dropPercent(mazePopsBefore, mazePopsAfter));
    totals.set("maze", std::move(mazeTotals));
    obs::json::Object lpTotals;
    lpTotals.set("pivotsBefore", lpPivotsBefore);
    lpTotals.set("pivotsAfter", lpPivotsAfter);
    lpTotals.set("dropPercent", dropPercent(lpPivotsBefore, lpPivotsAfter));
    totals.set("lp", std::move(lpTotals));

    obs::json::Object doc;
    doc.set("schema", "streak-kernel-bench");
    doc.set("schemaVersion", 1);
    doc.set("bench", "streak");
    doc.set("kernels", std::move(kernels));
    doc.set("totals", std::move(totals));

    const char* env = std::getenv("STREAK_BENCH_JSON");
    const std::string path = env != nullptr ? env : "BENCH_streak.json";
    std::ofstream os(path);
    if (!os) {
        reportFail("cannot open " + path);
    } else {
        obs::json::Value(std::move(doc)).write(os, 2);
        os << '\n';
        std::cout << "wrote " << path << '\n';
    }

    std::cout << "totals: maze pops " << mazePopsBefore << " -> "
              << mazePopsAfter << " ("
              << dropPercent(mazePopsBefore, mazePopsAfter)
              << "%), lp pivots " << lpPivotsBefore << " -> " << lpPivotsAfter
              << " (" << dropPercent(lpPivotsBefore, lpPivotsAfter) << "%)\n";
    return reportErrors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--report") == 0) return runReport();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
