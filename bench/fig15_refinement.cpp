// Fig. 15 reproduction: ablation of the post-routing refinement stage —
// impact on (a) source-to-sink distance violations and (b) wire-length.
//
// Shape expectations vs the paper: refinement removes most distance
// violations at a negligible wire-length overhead (only the necessary
// twisting detours are inserted).
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

int main() {
    using namespace streak;
    io::Table table({"Bench", "Vio w/o", "Vio w/", "WL w/o", "WL w/",
                     "dWL%"});
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        StreakOptions opts = bench::baseOptions();
        opts.solver = SolverKind::PrimalDual;
        opts.postOptimize = true;
        opts.clusteringEnabled = true;

        opts.refinementEnabled = false;
        const StreakResult off = runStreak(d, opts).value();
        opts.refinementEnabled = true;
        const StreakResult on = runStreak(d, opts).value();

        const double dwl =
            off.metrics.wirelength == 0
                ? 0.0
                : 100.0 *
                      (static_cast<double>(on.metrics.wirelength) -
                       static_cast<double>(off.metrics.wirelength)) /
                      static_cast<double>(off.metrics.wirelength);
        table.addRow({d.name, std::to_string(off.distanceViolationsAfter),
                      std::to_string(on.distanceViolationsAfter),
                      std::to_string(off.metrics.wirelength),
                      std::to_string(on.metrics.wirelength),
                      io::Table::fixed(dwl, 2) + "%"});
    }
    std::cout
        << "== Fig. 15: post-refinement ablation (primal-dual flow) ==\n";
    table.print(std::cout);
    return 0;
}
