// Shared helpers for the Streak bench binaries (one binary per paper
// table / figure; see DESIGN.md section 3).
#pragma once

#include <cstdio>
#include <string>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "route/sequential.hpp"

namespace streak::bench {

/// Time limit handed to the ILP per suite. The paper caps GUROBI at
/// 3600 s and reports "> 3600" for the congested suites; our scaled
/// equivalent keeps the benches minutes-long while reproducing the
/// timeout behaviour on the same suite classes.
inline constexpr double kIlpTimeLimitSeconds = 20.0;

struct SuiteRuns {
    Design design;
    route::SequentialResult manual;
    StreakResult ilp;
    StreakResult pd;
};

inline StreakOptions baseOptions() {
    StreakOptions opts;
    opts.ilpTimeLimitSeconds = kIlpTimeLimitSeconds;
    return opts;
}

/// Format a CPU column: "> <limit>" when the limit was hit, else seconds.
inline std::string cpuCell(double seconds, bool hitLimit) {
    char buf[32];
    if (hitLimit) {
        std::snprintf(buf, sizeof buf, "> %.0f", kIlpTimeLimitSeconds);
    } else {
        std::snprintf(buf, sizeof buf, "%.2f", seconds);
    }
    return buf;
}

}  // namespace streak::bench
