// Shared helpers for the Streak bench binaries (one binary per paper
// table / figure; see DESIGN.md section 3).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "obs/json.hpp"
#include "route/sequential.hpp"

namespace streak::bench {

/// Time limit handed to the ILP per suite. The paper caps GUROBI at
/// 3600 s and reports "> 3600" for the congested suites; our scaled
/// equivalent keeps the benches minutes-long while reproducing the
/// timeout behaviour on the same suite classes.
inline constexpr double kIlpTimeLimitSeconds = 20.0;

struct SuiteRuns {
    Design design;
    route::SequentialResult manual;
    StreakResult ilp;
    StreakResult pd;
};

inline StreakOptions baseOptions() {
    StreakOptions opts;
    opts.ilpTimeLimitSeconds = kIlpTimeLimitSeconds;
    return opts;
}

/// Format a CPU column: "> <limit>" when the limit was hit, else seconds.
inline std::string cpuCell(double seconds, bool hitLimit) {
    char buf[32];
    if (hitLimit) {
        std::snprintf(buf, sizeof buf, "> %.0f", kIlpTimeLimitSeconds);
    } else {
        std::snprintf(buf, sizeof buf, "%.2f", seconds);
    }
    return buf;
}

/// No-op observer: passed as StreakOptions::observer when a bench wants
/// the run's counters in its StreakResult (setting any observer turns on
/// detail instrumentation for the run).
inline void observeNothing(const StreakObservation&) {}

/// Machine-readable side channel next to a bench's printed tables:
/// collects one entry per (design, variant) run and writes them as a
/// single JSON document — per-suite stage wall times plus every counter
/// the run recorded.
///
/// The output path defaults to BENCH_<bench>.json in the working
/// directory; the STREAK_BENCH_JSON environment variable overrides it.
class JsonLog {
public:
    explicit JsonLog(std::string benchName) : bench_(std::move(benchName)) {}

    /// Record one finished run. Counters appear only when the run was
    /// observed (see observeNothing above).
    void add(const Design& design, const std::string& variant,
             const StreakResult& r) {
        obs::json::Object run;
        run.set("design", design.name);
        run.set("variant", variant);
        run.set("threadsUsed", r.threadsUsed);
        obs::json::Object seconds;
        seconds.set("build", r.buildSeconds());
        seconds.set("solve", r.solveSeconds());
        seconds.set("distance", r.distanceSeconds());
        seconds.set("post", r.postSeconds());
        seconds.set("total", r.totalSeconds());
        run.set("seconds", std::move(seconds));
        run.set("hitTimeLimit", r.hitTimeLimit);
        obs::json::Object metrics;
        metrics.set("routability", r.metrics.routability);
        metrics.set("wirelength", r.metrics.wirelength);
        metrics.set("avgRegularity", r.metrics.avgRegularity);
        metrics.set("totalOverflow", r.metrics.totalOverflow);
        run.set("metrics", std::move(metrics));
        obs::json::Object counters;
        for (const auto& [name, value] : r.counters.counters) {
            counters.set(name, value);
        }
        run.set("counters", std::move(counters));
        runs_.push_back(obs::json::Value(std::move(run)));
    }

    /// Write the collected runs; call once at the end of main().
    void write() const {
        const char* env = std::getenv("STREAK_BENCH_JSON");
        const std::string path =
            env != nullptr ? env : "BENCH_" + bench_ + ".json";
        std::ofstream os(path);
        if (!os) {
            std::cerr << "bench: cannot open " << path << '\n';
            return;
        }
        obs::json::Object doc;
        doc.set("schema", "streak-bench-report");
        doc.set("schemaVersion", 1);
        doc.set("bench", bench_);
        doc.set("runs", obs::json::Array(runs_));
        obs::json::Value(std::move(doc)).write(os, 2);
        os << '\n';
        std::cout << "wrote " << path << '\n';
    }

private:
    std::string bench_;
    obs::json::Array runs_;
};

}  // namespace streak::bench
