// Figs. 11-12 reproduction: routing congestion maps — manual design vs
// Streak — on the low-congestion multipin suite (synth7, Fig. 11) and the
// congested suite (synth6, Fig. 12).
//
// Shape expectations vs the paper: the sequential baseline concentrates
// wires — at industrial densities into overflow hotspots, at our scaled
// densities into more hot (>90% utilized) cells — while Streak spreads
// routes with zero overflow (its selection respects capacities by
// construction) and fewer hot cells on the congested suite.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "io/heatmap.hpp"
#include "io/table.hpp"

namespace {

void show(const char* title, const streak::grid::EdgeUsage& usage) {
    std::cout << "--- " << title << " ---\n";
    streak::io::writeAsciiHeatmap(usage, std::cout, 64);
    // Hotspot statistics: cells near or over capacity. At the paper's
    // industrial densities the manual design overflows outright; at our
    // scaled densities its concentration shows up as hot cells instead.
    const auto cells = streak::io::congestionGrid(usage);
    int hot = 0;
    double peak = 0.0;
    for (const auto& row : cells) {
        for (const double c : row) {
            if (c > 0.9) ++hot;
            peak = std::max(peak, c);
        }
    }
    std::cout << "overflowed edges: " << usage.overflowedEdges()
              << ", total overflow: " << usage.totalOverflow()
              << ", hot cells (>90%): " << hot << ", peak utilization: "
              << streak::io::Table::percent(peak) << "\n\n";
}

void runSuite(int index, const char* figure) {
    using namespace streak;
    const Design d = gen::makeSynth(index);
    std::cout << "== " << figure << ": congestion maps for " << d.name
              << " ==\n";

    // Manual baseline without congestion awareness and with overflow
    // permitted models the hand design's hotspot behaviour
    // (Figs. 11(a) / 12(a)): it keeps 100% routability by overshooting
    // capacity where the die is crowded.
    route::MazeOptions hot;
    hot.congestionPenalty = 0.0;
    hot.allowOverflow = true;
    const route::SequentialResult man = route::routeSequential(d, hot);
    show("manual design", man.usage);

    StreakOptions opts = bench::baseOptions();
    opts.solver = SolverKind::PrimalDual;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();
    show("Streak (primal-dual + post)", r.routed.usage);
    std::cout << "Streak routability: "
              << io::Table::percent(r.metrics.routability) << "\n\n";
}

}  // namespace

int main() {
    runSuite(7, "Fig. 11");
    runSuite(6, "Fig. 12");
    return 0;
}
