// Table I reproduction: Manual (sequential baseline) vs ILP vs Primal-Dual
// on the seven synthetic suites — routability, wire-length, average group
// regularity (Eq. 9) and CPU time.
//
// Shape expectations vs the paper (absolute numbers differ; the suites are
// scaled synthetic substitutes for the proprietary 10 nm benchmarks):
//   - Manual routes everything with the lowest wire-length.
//   - ILP and primal-dual reach > 95% routability with a few percent WL
//     overhead and high Avg(Reg); the two are nearly identical in quality.
//   - Primal-dual runs orders of magnitude faster; ILP hits its time cap
//     on the congested multipin suites (the paper's "> 3600 s" rows).
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

int main() {
    using namespace streak;
    io::Table table({"Bench", "#SG", "#Net", "Np", "Wmax",
                     "Man:Route", "Man:WL",
                     "ILP:Route", "ILP:WL", "ILP:Reg", "ILP:CPU(s)",
                     "PD:Route", "PD:WL", "PD:Reg", "PD:CPU(s)"});

    bench::JsonLog log("streak");
    double manR = 0, ilpR = 0, pdR = 0, ilpReg = 0, pdReg = 0;
    long manWl = 0, ilpWl = 0, pdWl = 0;
    for (int i = 1; i <= 7; ++i) {
        const Design d = gen::makeSynth(i);
        const route::SequentialResult man = route::routeSequential(d);

        StreakOptions opts = bench::baseOptions();
        opts.observer = bench::observeNothing;  // collect counters
        opts.solver = SolverKind::Ilp;
        const StreakResult ilp = runStreak(d, opts).value();
        opts.solver = SolverKind::PrimalDual;
        const StreakResult pd = runStreak(d, opts).value();
        log.add(d, "ilp", ilp);
        log.add(d, "pd", pd);

        table.addRow({d.name, std::to_string(d.numGroups()),
                      std::to_string(d.numNets()), std::to_string(d.maxPins()),
                      std::to_string(d.maxWidth()),
                      io::Table::percent(man.routability()),
                      std::to_string(man.wirelength),
                      io::Table::percent(ilp.metrics.routability),
                      std::to_string(ilp.metrics.wirelength),
                      io::Table::percent(ilp.metrics.avgRegularity),
                      bench::cpuCell(ilp.solveSeconds(), ilp.hitTimeLimit),
                      io::Table::percent(pd.metrics.routability),
                      std::to_string(pd.metrics.wirelength),
                      io::Table::percent(pd.metrics.avgRegularity),
                      bench::cpuCell(pd.solveSeconds(), false)});

        manR += man.routability();
        manWl += man.wirelength;
        ilpR += ilp.metrics.routability;
        ilpWl += ilp.metrics.wirelength;
        ilpReg += ilp.metrics.avgRegularity;
        pdR += pd.metrics.routability;
        pdWl += pd.metrics.wirelength;
        pdReg += pd.metrics.avgRegularity;
    }
    table.addRow({"average", "-", "-", "-", "-",
                  io::Table::percent(manR / 7), std::to_string(manWl / 7),
                  io::Table::percent(ilpR / 7), std::to_string(ilpWl / 7),
                  io::Table::percent(ilpReg / 7), "-",
                  io::Table::percent(pdR / 7), std::to_string(pdWl / 7),
                  io::Table::percent(pdReg / 7), "-"});
    table.addRow({"ratio", "-", "-", "-", "-",
                  io::Table::fixed(1.0), io::Table::fixed(1.0, 3),
                  io::Table::fixed(ilpR / manR, 4),
                  io::Table::fixed(static_cast<double>(ilpWl) / manWl, 3),
                  "-", "-",
                  io::Table::fixed(pdR / manR, 4),
                  io::Table::fixed(static_cast<double>(pdWl) / manWl, 3),
                  "-", "-"});

    std::cout << "== Table I: manual vs ILP vs primal-dual ==\n";
    table.print(std::cout);
    log.write();
    return 0;
}
