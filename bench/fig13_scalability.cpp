// Fig. 13 reproduction: algorithm scalability — runtime vs total pin
// count for ILP and primal-dual, on (a) a two-pin size series and (b) a
// multipin series whose largest point is enriched with pseudo pins/bits
// (as the paper enlarges Industry2).
//
// Shape expectations vs the paper: primal-dual runtime grows gently with
// size; ILP grows much faster and saturates at its time cap on the larger
// multipin points.
#include <iostream>

#include "bench_util.hpp"
#include "io/table.hpp"

namespace {

void runSeries(bool multipin, const char* title) {
    using namespace streak;
    // Third engine beyond the paper's figure: the hierarchical two-stage
    // ILP (the future-work divide-and-conquer idea) — it should track the
    // flat ILP's quality while scaling far closer to primal-dual.
    io::Table table({"Point", "#Pins", "#Net", "ILP:CPU(s)", "ILP:Route",
                     "hILP:CPU(s)", "hILP:Route", "PD:CPU(s)", "PD:Route"});
    for (const gen::SuiteSpec& spec : gen::scalabilitySpecs(multipin, 4)) {
        const Design d = gen::generate(spec);
        StreakOptions opts = bench::baseOptions();
        opts.solver = SolverKind::Ilp;
        const StreakResult ilp = runStreak(d, opts).value();
        opts.solver = SolverKind::IlpHierarchical;
        const StreakResult hilp = runStreak(d, opts).value();
        opts.solver = SolverKind::PrimalDual;
        const StreakResult pd = runStreak(d, opts).value();
        table.addRow({spec.name, std::to_string(d.totalPins()),
                      std::to_string(d.numNets()),
                      bench::cpuCell(ilp.solveSeconds(), ilp.hitTimeLimit),
                      io::Table::percent(ilp.metrics.routability),
                      bench::cpuCell(hilp.solveSeconds(), hilp.hitTimeLimit),
                      io::Table::percent(hilp.metrics.routability),
                      io::Table::fixed(pd.solveSeconds(), 3),
                      io::Table::percent(pd.metrics.routability)});
    }
    std::cout << "== " << title << " ==\n";
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main() {
    runSeries(false, "Fig. 13(a): two-pin scalability series");
    runSeries(true, "Fig. 13(b): multipin scalability series");
    return 0;
}
