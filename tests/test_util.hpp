// Shared builders for Streak tests.
#pragma once

#include <vector>

#include "core/signal.hpp"

namespace streak::testutil {

/// A bit with the given pins; pins[0] is the driver.
inline Bit makeBit(std::vector<geom::Point> pins, const std::string& name = "b") {
    Bit b;
    b.name = name;
    b.pins = std::move(pins);
    b.driver = 0;
    return b;
}

/// A "bus-like" group: `width` translated copies of the pin pattern,
/// shifted by (dx, dy) per bit.
inline SignalGroup makeBusGroup(const std::vector<geom::Point>& pattern,
                                int width, int dx, int dy,
                                const std::string& name = "g") {
    SignalGroup g;
    g.name = name;
    for (int k = 0; k < width; ++k) {
        std::vector<geom::Point> pins;
        pins.reserve(pattern.size());
        for (const geom::Point p : pattern) {
            pins.push_back({p.x + k * dx, p.y + k * dy});
        }
        g.bits.push_back(makeBit(std::move(pins), name + "_b" + std::to_string(k)));
    }
    return g;
}

/// Small design with one group on a fresh grid.
inline Design makeDesign(std::vector<SignalGroup> groups, int w = 32, int h = 32,
                         int layers = 4, int cap = 10) {
    return Design{"test", grid::RoutingGrid(w, h, layers, cap),
                  std::move(groups)};
}

}  // namespace streak::testutil
