// Tests for the maze router and the sequential baseline.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gen/generator.hpp"
#include "route/maze.hpp"
#include "route/sequential.hpp"
#include "test_util.hpp"

namespace streak::route {
namespace {

using geom::Point;

TEST(MazeRouter, TwoPinShortestPath) {
    grid::RoutingGrid g(16, 16, 2, 4);
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    const auto net = router.route({{2, 3}, {9, 8}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->wirelength2d, 12);  // Manhattan distance
    // Usage was committed.
    long used = 0;
    for (int e = 0; e < g.numEdges(); ++e) used += usage.usage(e);
    EXPECT_EQ(used, 12);
}

TEST(MazeRouter, MultiPinTreeSharesTrunk) {
    grid::RoutingGrid g(20, 20, 2, 8);
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    // Driver plus two sinks on the same row: wire must not double-count.
    const auto net = router.route({{2, 5}, {10, 5}, {16, 5}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->wirelength2d, 14);  // one straight trunk
}

TEST(MazeRouter, AvoidsFullEdges) {
    grid::RoutingGrid g(8, 8, 2, 1);
    grid::EdgeUsage usage(g);
    // Wall off the direct row.
    for (int x = 2; x < 5; ++x) usage.add(g.edgeId(0, x, 3), 1);
    MazeRouter router(&usage);
    const auto net = router.route({{1, 3}, {6, 3}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_GT(net->wirelength2d, 5);  // must detour around the wall
    EXPECT_EQ(usage.totalOverflow(), 0);
}

TEST(MazeRouter, FailsWhenFullyBlocked) {
    grid::RoutingGrid g(8, 8, 2, 1);
    // Vertical cut at x = 3..4 on all layers.
    for (int y = 0; y < 8; ++y) {
        g.addBlockage({{3, y}, {4, y}}, 0, 0);
    }
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 7; ++y) {
            if (x >= 3 && x <= 4) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
    }
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    const auto net = router.route({{1, 4}, {6, 4}}, 0);
    EXPECT_FALSE(net.has_value());
    // Rollback: nothing committed.
    for (int e = 0; e < g.numEdges(); ++e) EXPECT_EQ(usage.usage(e), 0);
}

TEST(MazeRouter, CongestionPenaltySpreadsRoutes) {
    grid::RoutingGrid g(10, 10, 2, 2);
    grid::EdgeUsage usage(g);
    MazeOptions opts;
    opts.congestionPenalty = 50.0;
    MazeRouter router(&usage, opts);
    // Route three identical nets; they should spread across rows and
    // never overflow.
    for (int i = 0; i < 3; ++i) {
        const auto net = router.route({{1, 5}, {8, 5}}, 0);
        ASSERT_TRUE(net.has_value());
    }
    EXPECT_EQ(usage.totalOverflow(), 0);
}


TEST(MazeRouter, AllowOverflowKeepsRoutingThroughFullEdges) {
    grid::RoutingGrid g(8, 8, 2, 1);
    grid::EdgeUsage usage(g);
    // Saturate every horizontal edge of rows 0..7 except leave no free
    // row: the direct path must overflow somewhere.
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 7; ++x) usage.add(g.edgeId(0, x, y), 1);
    }
    MazeOptions opts;
    opts.allowOverflow = true;
    MazeRouter router(&usage, opts);
    const auto net = router.route({{1, 3}, {6, 3}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_GT(usage.totalOverflow(), 0);
}

TEST(MazeRouter, OverflowNeverCrossesHardBlockages) {
    grid::RoutingGrid g(8, 8, 2, 1);
    // Capacity-0 wall: even with allowOverflow, impassable.
    for (int y = 0; y < 8; ++y) g.addBlockage({{3, y}, {4, y}}, 0, 0);
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 7; ++y) {
            if (x >= 3 && x <= 4) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
    }
    grid::EdgeUsage usage(g);
    MazeOptions opts;
    opts.allowOverflow = true;
    MazeRouter router(&usage, opts);
    EXPECT_FALSE(router.route({{1, 4}, {6, 4}}, 0).has_value());
}

// ---------------------------------------------------------------------------
// A* + search-window vs plain-Dijkstra oracle
// ---------------------------------------------------------------------------

/// One randomized routing scenario, replayed identically per variant.
struct MazeScenario {
    int w = 0;
    int h = 0;
    int layers = 0;
    int capacity = 1;
    std::vector<std::pair<Point, Point>> blockRects;  // layer-0 rects
    std::vector<int> preUsedEdges;
    std::vector<std::vector<Point>> nets;  // driver is pin 0
};

MazeScenario randomScenario(std::mt19937* rng) {
    MazeScenario s;
    std::uniform_int_distribution<int> dim(12, 28);
    std::uniform_int_distribution<int> layerCount(2, 4);
    std::uniform_int_distribution<int> cap(1, 3);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    s.w = dim(*rng);
    s.h = dim(*rng);
    s.layers = layerCount(*rng);
    s.capacity = cap(*rng);
    std::uniform_int_distribution<int> px(0, s.w - 1);
    std::uniform_int_distribution<int> py(0, s.h - 1);
    const int rects = static_cast<int>(unit(*rng) * 4.0);
    for (int i = 0; i < rects; ++i) {
        const int x0 = px(*rng);
        const int y0 = py(*rng);
        const int x1 = std::min(s.w - 1, x0 + static_cast<int>(unit(*rng) * 6));
        const int y1 = std::min(s.h - 1, y0 + static_cast<int>(unit(*rng) * 6));
        s.blockRects.push_back({{x0, y0}, {x1, y1}});
    }
    const int nets = 2 + static_cast<int>(unit(*rng) * 2.0);
    for (int n = 0; n < nets; ++n) {
        std::vector<Point> pins;
        const int pinCount = 2 + static_cast<int>(unit(*rng) * 3.0);
        for (int p = 0; p < pinCount; ++p) pins.push_back({px(*rng), py(*rng)});
        s.nets.push_back(std::move(pins));
    }
    return s;
}

/// Replay a scenario under the given search options; pre-existing
/// congestion is seeded deterministically from the scenario.
struct ReplayResult {
    std::vector<bool> routed;
    std::vector<std::vector<int>> edges;
    std::vector<int> wirelength;
    std::vector<int> vias;
    long long totalUsage = 0;
};

ReplayResult replay(const MazeScenario& s, const MazeOptions& opts) {
    grid::RoutingGrid g(s.w, s.h, s.layers, s.capacity);
    for (const auto& [lo, hi] : s.blockRects) g.addBlockage({lo, hi}, 0, 0);
    grid::EdgeUsage usage(g);
    // Deterministic pre-congestion: saturate a pseudo-random edge subset.
    std::mt19937 congestion(s.w * 1000 + s.h);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int e = 0; e < g.numEdges(); ++e) {
        if (unit(congestion) < 0.15) usage.add(e, 1);
    }
    MazeRouter router(&usage, opts);
    ReplayResult r;
    for (const auto& pins : s.nets) {
        const auto net = router.route(pins, 0);
        r.routed.push_back(net.has_value());
        r.edges.push_back(net ? net->edges : std::vector<int>{});
        r.wirelength.push_back(net ? net->wirelength2d : -1);
        r.vias.push_back(net ? net->viaCount : -1);
    }
    for (int e = 0; e < g.numEdges(); ++e) r.totalUsage += usage.usage(e);
    return r;
}

TEST(MazeOracle, AstarAndWindowMatchDijkstraOnRandomGrids) {
    std::mt19937 rng(987654);
    for (int trial = 0; trial < 12; ++trial) {
        const MazeScenario s = randomScenario(&rng);

        MazeOptions dijkstra;  // the oracle: no heuristic, no window
        dijkstra.useAstar = false;
        dijkstra.useWindow = false;
        MazeOptions astar = dijkstra;
        astar.useAstar = true;
        MazeOptions windowed = astar;
        windowed.useWindow = true;
        windowed.windowMargin = 2;  // tiny: force growth on detours
        MazeOptions windowedDijkstra = dijkstra;
        windowedDijkstra.useWindow = true;
        windowedDijkstra.windowMargin = 2;

        const ReplayResult oracle = replay(s, dijkstra);
        for (const MazeOptions& v : {astar, windowed, windowedDijkstra}) {
            const ReplayResult got = replay(s, v);
            ASSERT_EQ(got.routed, oracle.routed) << "trial " << trial;
            ASSERT_EQ(got.edges, oracle.edges) << "trial " << trial;
            EXPECT_EQ(got.wirelength, oracle.wirelength) << "trial " << trial;
            EXPECT_EQ(got.vias, oracle.vias) << "trial " << trial;
            EXPECT_EQ(got.totalUsage, oracle.totalUsage) << "trial " << trial;
        }
    }
}

TEST(MazeOracle, CongestedRunsMatchWithOverflowAllowed) {
    std::mt19937 rng(13579);
    for (int trial = 0; trial < 6; ++trial) {
        const MazeScenario s = randomScenario(&rng);
        MazeOptions oracleOpts;
        oracleOpts.useAstar = false;
        oracleOpts.useWindow = false;
        oracleOpts.allowOverflow = true;
        oracleOpts.congestionPenalty = 20.0;
        MazeOptions fast = oracleOpts;
        fast.useAstar = true;
        fast.useWindow = true;
        fast.windowMargin = 3;
        const ReplayResult oracle = replay(s, oracleOpts);
        const ReplayResult got = replay(s, fast);
        ASSERT_EQ(got.edges, oracle.edges) << "trial " << trial;
        EXPECT_EQ(got.wirelength, oracle.wirelength) << "trial " << trial;
        EXPECT_EQ(got.vias, oracle.vias) << "trial " << trial;
    }
}

TEST(MazeOracle, WindowGrowsToReachSinkBehindLongWall) {
    // The direct corridor is walled off far beyond the initial margin:
    // the path must detour above y = 30 while the tree-bbox window
    // starts as a sliver around y = 5. The progressive window must keep
    // growing (or fall back to full grid) and still find the oracle path.
    const auto build = [](const MazeOptions& opts) {
        grid::RoutingGrid g(40, 40, 2, 1);
        for (int y = 0; y <= 30; ++y) g.addBlockage({{12, y}, {14, y}}, 0, 0);
        for (int x = 12; x <= 14; ++x) {
            for (int y = 0; y <= 30; ++y) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
        grid::EdgeUsage usage(g);
        MazeRouter router(&usage, opts);
        return router.route({{5, 5}, {30, 5}}, 0);
    };
    MazeOptions oracleOpts;
    oracleOpts.useAstar = false;
    oracleOpts.useWindow = false;
    MazeOptions fast;
    fast.useAstar = true;
    fast.useWindow = true;
    fast.windowMargin = 2;
    const auto oracle = build(oracleOpts);
    const auto got = build(fast);
    ASSERT_TRUE(oracle.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->edges, oracle->edges);
    EXPECT_EQ(got->wirelength2d, oracle->wirelength2d);
    EXPECT_EQ(got->viaCount, oracle->viaCount);
    // Sanity: the detour really is long (out and back around the wall).
    EXPECT_GE(got->wirelength2d, 25 + 2 * 25);
}

TEST(MazeOracle, WindowedSearchStillFailsCleanlyWhenBlocked) {
    // Same geometry as FailsWhenFullyBlocked, but with a tiny window:
    // the search must grow through its windows, fall back to the full
    // grid, and still report failure with nothing committed.
    grid::RoutingGrid g(8, 8, 2, 1);
    for (int y = 0; y < 8; ++y) g.addBlockage({{3, y}, {4, y}}, 0, 0);
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 7; ++y) {
            if (x >= 3 && x <= 4) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
    }
    grid::EdgeUsage usage(g);
    MazeOptions opts;
    opts.windowMargin = 1;
    MazeRouter router(&usage, opts);
    EXPECT_FALSE(router.route({{1, 4}, {6, 4}}, 0).has_value());
    for (int e = 0; e < g.numEdges(); ++e) EXPECT_EQ(usage.usage(e), 0);
}

TEST(MazeOracle, SharedScratchMatchesPrivateScratch) {
    // Caller-owned SearchState reused across many nets must not leak
    // state between route() calls.
    std::mt19937 rng(24680);
    const MazeScenario s = randomScenario(&rng);
    const MazeOptions opts;
    const ReplayResult internalScratch = replay(s, opts);

    grid::RoutingGrid g(s.w, s.h, s.layers, s.capacity);
    for (const auto& [lo, hi] : s.blockRects) g.addBlockage({lo, hi}, 0, 0);
    grid::EdgeUsage usage(g);
    std::mt19937 congestion(s.w * 1000 + s.h);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int e = 0; e < g.numEdges(); ++e) {
        if (unit(congestion) < 0.15) usage.add(e, 1);
    }
    MazeRouter router(&usage, opts);
    SearchState shared;
    for (size_t n = 0; n < s.nets.size(); ++n) {
        const auto net = router.route(s.nets[n], 0, &shared);
        ASSERT_EQ(net.has_value(), internalScratch.routed[n]) << "net " << n;
        if (net) {
            EXPECT_EQ(net->edges, internalScratch.edges[n]) << "net " << n;
        }
    }
}

TEST(SequentialRouter, RoutesFullDesign) {
    const Design d = gen::makeSynth(1);
    const SequentialResult r = routeSequential(d);
    EXPECT_EQ(r.totalBits, d.numNets());
    EXPECT_GT(r.routability(), 0.95);
    EXPECT_GT(r.wirelength, 0);
    EXPECT_EQ(r.usage.totalOverflow(), 0);
}

TEST(SequentialRouter, WirelengthNearSteinerOptimal) {
    // Uncongested single group: maze wire-length should be close to the
    // sum of per-bit RSMT lengths.
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    const SequentialResult r = routeSequential(d);
    EXPECT_EQ(r.routedBits, 4);
    EXPECT_EQ(r.wirelength, 4 * 12);
}

TEST(SequentialRouter, DeterministicAcrossRuns) {
    const Design d = gen::makeSynth(1);
    const SequentialResult a = routeSequential(d);
    const SequentialResult b = routeSequential(d);
    EXPECT_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.routedBits, b.routedBits);
}

}  // namespace
}  // namespace streak::route
