// Tests for the maze router and the sequential baseline.
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "route/maze.hpp"
#include "route/sequential.hpp"
#include "test_util.hpp"

namespace streak::route {
namespace {

using geom::Point;

TEST(MazeRouter, TwoPinShortestPath) {
    grid::RoutingGrid g(16, 16, 2, 4);
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    const auto net = router.route({{2, 3}, {9, 8}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->wirelength2d, 12);  // Manhattan distance
    // Usage was committed.
    long used = 0;
    for (int e = 0; e < g.numEdges(); ++e) used += usage.usage(e);
    EXPECT_EQ(used, 12);
}

TEST(MazeRouter, MultiPinTreeSharesTrunk) {
    grid::RoutingGrid g(20, 20, 2, 8);
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    // Driver plus two sinks on the same row: wire must not double-count.
    const auto net = router.route({{2, 5}, {10, 5}, {16, 5}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->wirelength2d, 14);  // one straight trunk
}

TEST(MazeRouter, AvoidsFullEdges) {
    grid::RoutingGrid g(8, 8, 2, 1);
    grid::EdgeUsage usage(g);
    // Wall off the direct row.
    for (int x = 2; x < 5; ++x) usage.add(g.edgeId(0, x, 3), 1);
    MazeRouter router(&usage);
    const auto net = router.route({{1, 3}, {6, 3}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_GT(net->wirelength2d, 5);  // must detour around the wall
    EXPECT_EQ(usage.totalOverflow(), 0);
}

TEST(MazeRouter, FailsWhenFullyBlocked) {
    grid::RoutingGrid g(8, 8, 2, 1);
    // Vertical cut at x = 3..4 on all layers.
    for (int y = 0; y < 8; ++y) {
        g.addBlockage({{3, y}, {4, y}}, 0, 0);
    }
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 7; ++y) {
            if (x >= 3 && x <= 4) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
    }
    grid::EdgeUsage usage(g);
    MazeRouter router(&usage);
    const auto net = router.route({{1, 4}, {6, 4}}, 0);
    EXPECT_FALSE(net.has_value());
    // Rollback: nothing committed.
    for (int e = 0; e < g.numEdges(); ++e) EXPECT_EQ(usage.usage(e), 0);
}

TEST(MazeRouter, CongestionPenaltySpreadsRoutes) {
    grid::RoutingGrid g(10, 10, 2, 2);
    grid::EdgeUsage usage(g);
    MazeOptions opts;
    opts.congestionPenalty = 50.0;
    MazeRouter router(&usage, opts);
    // Route three identical nets; they should spread across rows and
    // never overflow.
    for (int i = 0; i < 3; ++i) {
        const auto net = router.route({{1, 5}, {8, 5}}, 0);
        ASSERT_TRUE(net.has_value());
    }
    EXPECT_EQ(usage.totalOverflow(), 0);
}


TEST(MazeRouter, AllowOverflowKeepsRoutingThroughFullEdges) {
    grid::RoutingGrid g(8, 8, 2, 1);
    grid::EdgeUsage usage(g);
    // Saturate every horizontal edge of rows 0..7 except leave no free
    // row: the direct path must overflow somewhere.
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 7; ++x) usage.add(g.edgeId(0, x, y), 1);
    }
    MazeOptions opts;
    opts.allowOverflow = true;
    MazeRouter router(&usage, opts);
    const auto net = router.route({{1, 3}, {6, 3}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_GT(usage.totalOverflow(), 0);
}

TEST(MazeRouter, OverflowNeverCrossesHardBlockages) {
    grid::RoutingGrid g(8, 8, 2, 1);
    // Capacity-0 wall: even with allowOverflow, impassable.
    for (int y = 0; y < 8; ++y) g.addBlockage({{3, y}, {4, y}}, 0, 0);
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 7; ++y) {
            if (x >= 3 && x <= 4) g.addBlockage({{x, y}, {x, y}}, 1, 0);
        }
    }
    grid::EdgeUsage usage(g);
    MazeOptions opts;
    opts.allowOverflow = true;
    MazeRouter router(&usage, opts);
    EXPECT_FALSE(router.route({{1, 4}, {6, 4}}, 0).has_value());
}

TEST(SequentialRouter, RoutesFullDesign) {
    const Design d = gen::makeSynth(1);
    const SequentialResult r = routeSequential(d);
    EXPECT_EQ(r.totalBits, d.numNets());
    EXPECT_GT(r.routability(), 0.95);
    EXPECT_GT(r.wirelength, 0);
    EXPECT_EQ(r.usage.totalOverflow(), 0);
}

TEST(SequentialRouter, WirelengthNearSteinerOptimal) {
    // Uncongested single group: maze wire-length should be close to the
    // sum of per-bit RSMT lengths.
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    const SequentialResult r = routeSequential(d);
    EXPECT_EQ(r.routedBits, 4);
    EXPECT_EQ(r.wirelength, 4 * 12);
}

TEST(SequentialRouter, DeterministicAcrossRuns) {
    const Design d = gen::makeSynth(1);
    const SequentialResult a = routeSequential(d);
    const SequentialResult b = routeSequential(d);
    EXPECT_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.routedBits, b.routedBits);
}

}  // namespace
}  // namespace streak::route
