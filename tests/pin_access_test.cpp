// Tests for the pin-accessibility (via capacity) extension — the paper's
// future-work item, implemented as an optional per-G-Cell via-slot model
// enforced across candidate generation, both solvers and post-opt.
#include <gtest/gtest.h>

#include "core/ilp_router.hpp"
#include "core/pd_solver.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "post/refine.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(ViaModel, DisabledByDefault) {
    const grid::RoutingGrid g(8, 8, 2, 4);
    EXPECT_FALSE(g.viaLimited());
    EXPECT_EQ(g.viaCapacity(0), -1);
    grid::EdgeUsage u(g);
    EXPECT_EQ(u.totalViaOverflow(), 0);
    EXPECT_GT(u.viaRemaining(0), 1000);  // effectively unlimited
}

TEST(ViaModel, CapacityAndBlockage) {
    grid::RoutingGrid g(8, 8, 2, 4);
    g.setViaCapacity(5);
    EXPECT_TRUE(g.viaLimited());
    EXPECT_EQ(g.viaCapacity(g.cellIndex(3, 3)), 5);
    g.addViaBlockage({{2, 2}, {4, 4}}, 1);
    EXPECT_EQ(g.viaCapacity(g.cellIndex(3, 3)), 1);
    EXPECT_EQ(g.viaCapacity(g.cellIndex(6, 6)), 5);
}

TEST(ViaModel, BlockageRequiresEnabledModel) {
    grid::RoutingGrid g(8, 8, 2, 4);
    EXPECT_THROW(g.addViaBlockage({{0, 0}, {1, 1}}, 0), std::logic_error);
}

TEST(ViaModel, UsageAccounting) {
    grid::RoutingGrid g(8, 8, 2, 4);
    g.setViaCapacity(2);
    grid::EdgeUsage u(g);
    const int cell = g.cellIndex(4, 4);
    u.addVias(cell, 2);
    EXPECT_EQ(u.viaRemaining(cell), 0);
    EXPECT_EQ(u.totalViaOverflow(), 0);
    u.addVias(cell, 3);
    EXPECT_EQ(u.totalViaOverflow(), 3);
    u.removeVias(cell, 3);
    EXPECT_EQ(u.totalViaOverflow(), 0);
}

TEST(ViaPoints, LShapeHasOneViaPoint) {
    steiner::Topology t({{0, 0}, {4, 3}}, 0);
    t.addLShape({0, 0}, {4, 3}, {4, 0});
    const auto vias = t.viaPoints();
    ASSERT_EQ(vias.size(), 1u);
    EXPECT_EQ(vias[0], (Point{4, 0}));
}

TEST(ComputeViaUse, CountsPinsAndBends) {
    const grid::RoutingGrid g(16, 16, 2, 8);
    steiner::Topology t({{0, 0}, {4, 3}}, 0);
    t.addLShape({0, 0}, {4, 3}, {4, 0});
    const auto use = computeViaUse(g, t);
    // 2 pin cells + 1 bend cell.
    long total = 0;
    for (const auto& [cell, n] : use) total += n;
    EXPECT_EQ(total, 3);
}

TEST(ViaModel, CandidatesFilteredByViaCapacity) {
    // Via capacity 0 at the driver cell: every candidate needs a pin
    // stack there, so none can exist.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1)});
    d.grid.setViaCapacity(4);
    d.grid.addViaBlockage({{4, 4}, {4, 4}}, 0);
    const auto objects = identifyObjects(d);
    const auto cands = generateCandidates(d, objects[0], StreakOptions{});
    EXPECT_TRUE(cands.empty());
}

TEST(ViaModel, PdRespectsViaCapacity) {
    // Two stacked single-bit groups with coincident pins: via capacity 3
    // per cell admits only one of them (each bit needs 2 slots at shared
    // cells when stacked: 2 groups x (pin) = 2 <= 3... tighten to 1).
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "a"),
         testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "b")});
    d.grid.setViaCapacity(1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    const RoutedDesign rd = materialize(prob, r.solution);
    EXPECT_EQ(rd.usage.totalViaOverflow(), 0);
    // Only one of the two coincident bits can get the pin slot.
    EXPECT_EQ(rd.routedBits(), 1);
}

TEST(ViaModel, IlpRespectsViaCapacity) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "a"),
         testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "b")});
    d.grid.setViaCapacity(1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult r = solveIlpRouting(prob, 20.0);
    const RoutedDesign rd = materialize(prob, r.solution);
    EXPECT_EQ(rd.usage.totalViaOverflow(), 0);
    EXPECT_EQ(rd.routedBits(), 1);
}

TEST(ViaModel, EndToEndFlowStaysViaClean) {
    gen::SuiteSpec spec = gen::synthSpec(1);
    spec.viaCapacity = 6;
    const Design d = gen::generate(spec);
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_EQ(r.metrics.totalViaOverflow, 0);
    EXPECT_EQ(r.metrics.totalOverflow, 0);
    EXPECT_GT(r.metrics.routability, 0.8);
}

TEST(ViaModel, TighterViaCapacityNeverImprovesRoutability) {
    gen::SuiteSpec spec = gen::synthSpec(1);
    spec.viaCapacity = -1;
    const Design loose = gen::generate(spec);
    spec.viaCapacity = 2;
    const Design tight = gen::generate(spec);
    StreakOptions opts;
    const StreakResult a = runStreak(loose, opts).value();
    const StreakResult b = runStreak(tight, opts).value();
    EXPECT_LE(b.metrics.routability, a.metrics.routability + 1e-12);
    EXPECT_EQ(b.metrics.totalViaOverflow, 0);
}

TEST(ViaModel, RefinementDetoursRespectViaCapacity) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{4, 10}, {8, 10}}));    // short
    g.bits.push_back(testutil::makeBit({{4, 11}, {24, 11}}));   // long
    g.bits.push_back(testutil::makeBit({{4, 12}, {24, 12}}));   // long
    Design d = testutil::makeDesign({g});
    d.grid.setViaCapacity(2);
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
    post::refineDistances(prob, &routed);
    EXPECT_EQ(routed.usage.totalViaOverflow(), 0);
}

}  // namespace
}  // namespace streak
