// Per-run observability sessions (DESIGN.md "Observability"): binding
// semantics (save/restore of session + span context), isolation of
// counters / histograms / spans / the detail gate between sessions, and
// the flow-level contract the campaign runner depends on — sequential
// in-process runs under distinct sessions report exactly what a fresh
// process would, at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "obs/counters.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

namespace streak {
namespace {

void expectSnapshotsEqual(const obs::Snapshot& a, const obs::Snapshot& b) {
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (const auto& [name, hv] : a.histograms) {
        ASSERT_TRUE(b.histograms.contains(name)) << name;
        const auto& other = b.histograms.at(name);
        EXPECT_EQ(other.upperBounds, hv.upperBounds) << name;
        EXPECT_EQ(other.counts, hv.counts) << name;
        EXPECT_EQ(other.total, hv.total) << name;
        EXPECT_EQ(other.sum, hv.sum) << name;
    }
}

/// Timestamp-free skeleton of a trace: (name, parent index, track).
std::vector<std::tuple<std::string, int, int>> structureOf(
    const obs::Trace& trace) {
    std::vector<std::tuple<std::string, int, int>> out;
    out.reserve(trace.size());
    for (const obs::Span& span : trace) {
        out.emplace_back(span.name, span.parent, span.thread);
    }
    return out;
}

/// Order- and track-insensitive skeleton: sorted (name, parent name)
/// pairs. Concurrent workers may interleave span begin order and swap
/// tracks between runs, but which spans exist and where they attach is
/// deterministic.
std::vector<std::pair<std::string, std::string>> shapeOf(
    const obs::Trace& trace) {
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(trace.size());
    for (const obs::Span& span : trace) {
        out.emplace_back(span.name,
                         span.parent >= 0
                             ? trace[static_cast<size_t>(span.parent)].name
                             : std::string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(Session, CountersAndHistogramsIsolateBetweenSessions) {
    obs::Session a;
    obs::Session b;
    {
        const obs::SessionBind bind(a);
        obs::counter("test/session.iso").add(3);
        obs::histogram("test/session.hist", {10}).record(4);
    }
    {
        const obs::SessionBind bind(b);
        obs::counter("test/session.iso").add(5);
    }
    const obs::Snapshot snapA = a.snapshotMetrics();
    const obs::Snapshot snapB = b.snapshotMetrics();
    EXPECT_EQ(snapA.counters.at("test/session.iso"), 3);
    EXPECT_EQ(snapB.counters.at("test/session.iso"), 5);
    EXPECT_TRUE(snapA.histograms.contains("test/session.hist"));
    EXPECT_FALSE(snapB.histograms.contains("test/session.hist"));
    // Neither bind leaked into the process-global default session.
    const obs::Snapshot global = obs::defaultSession().snapshotMetrics();
    EXPECT_FALSE(global.counters.contains("test/session.iso"));
    EXPECT_FALSE(global.histograms.contains("test/session.hist"));
}

TEST(Session, BindRestoresPreviousSessionAndSpanContext) {
    obs::Session a;
    obs::Session b;
    const obs::SessionBind bindA(a);
    obs::SpanScope outer("test/session.outer");
    EXPECT_EQ(a.tracer().currentSpan(), outer.id());
    {
        const obs::SessionBind bindB(b);
        // A fresh bind starts with a clean span context: ids are indices
        // into the *bound* tracer and must never cross sessions.
        EXPECT_EQ(b.tracer().currentSpan(), -1);
        obs::SpanScope inner("test/session.inner");
        EXPECT_EQ(b.tracer().currentSpan(), inner.id());
    }
    EXPECT_EQ(a.tracer().currentSpan(), outer.id());
    EXPECT_EQ(obs::findSpan(a.tracer().snapshot(), "test/session.inner"),
              nullptr);
    EXPECT_NE(obs::findSpan(b.tracer().snapshot(), "test/session.inner"),
              nullptr);
}

TEST(Session, DetailGateIsPerSession) {
    const bool globalBefore = obs::defaultSession().detailEnabled();
    obs::Session a;
    {
        const obs::SessionBind bind(a);
        obs::setDetailEnabled(true);  // routes to the bound session
        EXPECT_TRUE(obs::detailEnabled());
    }
    EXPECT_TRUE(a.detailEnabled());
    EXPECT_EQ(obs::defaultSession().detailEnabled(), globalBefore);
}

/// Small two-pin design shared by the flow-level tests.
Design smallDesign() {
    gen::SuiteSpec spec = gen::synthSpec(1);
    spec.numGroups = 6;
    spec.gridWidth = 48;
    spec.gridHeight = 48;
    return gen::generate(spec);
}

struct SessionRun {
    obs::Snapshot counters;
    obs::Trace trace;
};

/// One flow run under a brand-new session — what a fresh process would
/// report for the same design and options.
SessionRun runInFreshSession(const Design& d, int threads) {
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = threads;
    opts.session = std::make_shared<obs::Session>();
    opts.observer = [](const StreakObservation&) {};
    const StreakResult r = runStreak(d, opts).value();
    return {r.counters, r.trace};
}

TEST(SessionFlow, SequentialSessionRunsMatchAFreshRunAtEveryThreadCount) {
    const Design d = smallDesign();
    obs::Snapshot countersAtOneThread;
    for (const int threads : {1, 2, 8}) {
        // The first run of a fresh session is the fresh-process baseline;
        // the two sequential re-runs must be indistinguishable from it.
        const SessionRun fresh = runInFreshSession(d, threads);
        const SessionRun second = runInFreshSession(d, threads);
        const SessionRun third = runInFreshSession(d, threads);
        expectSnapshotsEqual(second.counters, fresh.counters);
        expectSnapshotsEqual(third.counters, fresh.counters);
        if (threads == 1) {
            // Single-threaded span recording is fully deterministic:
            // the whole skeleton matches span for span.
            EXPECT_EQ(structureOf(second.trace), structureOf(fresh.trace));
            EXPECT_EQ(structureOf(third.trace), structureOf(fresh.trace));
            countersAtOneThread = fresh.counters;
        } else {
            // Workers may interleave begin order and swap tracks, but
            // the set of spans and their parents is deterministic.
            EXPECT_EQ(shapeOf(second.trace), shapeOf(fresh.trace));
            EXPECT_EQ(shapeOf(third.trace), shapeOf(fresh.trace));
            // Determinism contract: counters thread-count-invariant.
            expectSnapshotsEqual(fresh.counters, countersAtOneThread);
        }
    }
}

TEST(SessionFlow, ScopedRunLeavesTheDefaultSessionUntouched) {
    const Design d = smallDesign();
    const obs::Snapshot before = obs::defaultSession().snapshotMetrics();
    (void)runInFreshSession(d, 2);
    const obs::Snapshot after = obs::defaultSession().snapshotMetrics();
    expectSnapshotsEqual(after, before);
}

TEST(SessionFlow, HistogramsFollowTheRunSessionNotTheFirstCaller) {
    // Regression: the edge-utilization histogram handle was cached in a
    // function-local static, pinning the session of whichever run came
    // first — later runs under other sessions silently recorded there,
    // so their own snapshot missed the histogram and the stale session's
    // deltas bled across runs.
    const Design d = smallDesign();
    const SessionRun first = runInFreshSession(d, 1);
    const SessionRun second = runInFreshSession(d, 1);
    ASSERT_TRUE(
        first.counters.histograms.contains("route/edge.utilization_pct"));
    ASSERT_TRUE(
        second.counters.histograms.contains("route/edge.utilization_pct"));
    expectSnapshotsEqual(second.counters, first.counters);
}

}  // namespace
}  // namespace streak
