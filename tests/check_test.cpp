// Tests for the correctness-tooling layer (src/check/): the contract
// macros, the tiny formatter, and the deep auditors — both that healthy
// pipeline state audits clean and that deliberate corruptions are
// rejected with contextual messages.
#include "check/assert.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "check/audit.hpp"
#include "check/ilp_audit.hpp"
#include "core/pd_solver.hpp"
#include "flow/streak.hpp"
#include "ilp/lp.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

/// Route check failures into CheckFailure exceptions and pin the runtime
/// level for the duration of a test, restoring both on exit.
class CheckGuard {
public:
    explicit CheckGuard(check::Level level)
        : prevHandler_(check::setFailureHandler(check::throwingFailureHandler)),
          prevLevel_(check::runtimeLevel()) {
        check::setRuntimeLevel(level);
    }
    ~CheckGuard() {
        check::setRuntimeLevel(prevLevel_);
        check::setFailureHandler(prevHandler_);
    }
    CheckGuard(const CheckGuard&) = delete;
    CheckGuard& operator=(const CheckGuard&) = delete;

private:
    check::FailureHandler prevHandler_;
    check::Level prevLevel_;
};

/// Run `fn`, require it to fail a check, and return the failure message.
template <typename Fn>
std::string failureMessage(Fn&& fn) {
    try {
        fn();
    } catch (const check::CheckFailure& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a check failure, none was raised";
    return {};
}

Design pipelineDesign() {
    return testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1, "bus_a"),
         testutil::makeBusGroup({{20, 20}, {8, 26}}, 3, 1, 0, "bus_b")});
}

// ---------------------------------------------------------------- format

TEST(CheckFormat, SubstitutesPlaceholdersInOrder) {
    EXPECT_EQ(check::format("edge {} on layer {}", 17, 2),
              "edge 17 on layer 2");
    EXPECT_EQ(check::format("no args"), "no args");
    EXPECT_EQ(check::format(""), "");
}

TEST(CheckFormat, SurplusArgumentsAreAppendedNotDropped) {
    EXPECT_EQ(check::format("x = {}", 1, 2, 3), "x = 1 [2, 3]");
}

TEST(CheckFormat, MissingArgumentsLeavePlaceholder) {
    EXPECT_EQ(check::format("a {} b {}", 1), "a 1 b {}");
}

TEST(CheckFormat, ApproxEqualIsRelativeAboveOne) {
    EXPECT_TRUE(check::approxEqual(1e12, 1e12 * (1 + 1e-12)));
    EXPECT_FALSE(check::approxEqual(1e12, 1e12 + 1e4));
    EXPECT_TRUE(check::approxEqual(0.0, 1e-10));
    EXPECT_FALSE(check::approxEqual(0.0, 1e-3));
}

// ---------------------------------------------------------------- macros

TEST(CheckMacros, PassingChecksAreSilent) {
    CheckGuard guard(check::Level::Deep);
    STREAK_ASSERT(1 + 1 == 2);
    STREAK_REQUIRE(true, "never shown");
    STREAK_INVARIANT(true, "never shown");
}

TEST(CheckMacros, FailureMessageCarriesContext) {
    CheckGuard guard(check::Level::Cheap);
    const int edge = 42;
    const std::string msg = failureMessage([&] {
        STREAK_ASSERT(edge < 0, "edge {} usage went negative", edge);
    });
    EXPECT_NE(msg.find("assertion failed"), std::string::npos);
    EXPECT_NE(msg.find("edge < 0"), std::string::npos);
    EXPECT_NE(msg.find("edge 42 usage went negative"), std::string::npos);
    EXPECT_NE(msg.find("check_test.cpp"), std::string::npos);
}

TEST(CheckMacros, RequireReportsAsPrecondition) {
    CheckGuard guard(check::Level::Cheap);
    const std::string msg =
        failureMessage([] { STREAK_REQUIRE(false, "bad call"); });
    EXPECT_NE(msg.find("precondition failed"), std::string::npos);
    EXPECT_NE(msg.find("bad call"), std::string::npos);
}

TEST(CheckMacros, InvariantOnlyFiresAtDeepLevel) {
    {
        CheckGuard guard(check::Level::Cheap);
        STREAK_INVARIANT(false, "must not fire at cheap");
    }
    CheckGuard guard(check::Level::Deep);
    const std::string msg = failureMessage(
        [] { STREAK_INVARIANT(false, "deep violation {}", 7); });
    EXPECT_NE(msg.find("invariant failed"), std::string::npos);
    EXPECT_NE(msg.find("deep violation 7"), std::string::npos);
}

TEST(CheckMacros, DeepAuditSkippedBelowDeepLevel) {
    CheckGuard guard(check::Level::Cheap);
    bool evaluated = false;
    const auto corrupt = [&] {
        evaluated = true;
        check::AuditResult r;
        r.addf("should never be enforced");
        return r;
    };
    STREAK_DEEP_AUDIT(corrupt());
    EXPECT_FALSE(evaluated);  // the audit expression is not even evaluated
}

TEST(CheckMacros, RuntimeLevelIsAdjustable) {
    CheckGuard guard(check::Level::Deep);
    EXPECT_TRUE(check::deepChecksEnabled());
    check::setRuntimeLevel(check::Level::Cheap);
    EXPECT_FALSE(check::deepChecksEnabled());
}

// ---------------------------------------------------------- audit results

TEST(AuditResult, SummaryListsSubjectAndIssues) {
    check::AuditResult r;
    r.subject = "solution";
    r.addf("edge {} over capacity", 3);
    r.addf("object {} unaccounted", 9);
    const std::string s = r.summary();
    EXPECT_FALSE(r.ok());
    EXPECT_NE(s.find("solution: 2 issue(s)"), std::string::npos);
    EXPECT_NE(s.find("edge 3 over capacity"), std::string::npos);
    EXPECT_NE(s.find("object 9 unaccounted"), std::string::npos);
}

TEST(AuditResult, StopsCollectingWhenFull) {
    check::AuditResult r;
    for (int i = 0; i < 200; ++i) r.addf("issue {}", i);
    EXPECT_TRUE(r.full());
    EXPECT_EQ(r.issues.size(), check::AuditResult::kMaxIssues);
    EXPECT_NE(r.summary(4).find("more"), std::string::npos);
}

// --------------------------------------------------------- problem audit

TEST(AuditProblem, BuiltProblemAuditsClean) {
    const Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const check::AuditResult r = check::auditProblem(prob);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditProblem, CorruptGroupIndexIsReported) {
    const Design d = pipelineDesign();
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_GT(prob.numObjects(), 0);
    prob.objects[0].groupIndex = 99;
    const check::AuditResult r = check::auditProblem(prob);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("group index 99 out of range"),
              std::string::npos);
}

TEST(AuditProblem, NegativeCandidateCostIsReported) {
    const Design d = pipelineDesign();
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_FALSE(prob.candidates.empty());
    ASSERT_FALSE(prob.candidates[0].empty());
    prob.candidates[0][0].cost = -1.0;
    const check::AuditResult r = check::auditProblem(prob);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("cost -1 not finite and >= 0"),
              std::string::npos);
}

// -------------------------------------------------------- solution audit

TEST(AuditSolution, PrimalDualSolutionAuditsClean) {
    const Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult pd = solvePrimalDual(prob);
    const check::AuditResult r = check::auditSolution(prob, pd.solution);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditSolution, OutOfRangeChoiceIsReported) {
    const Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    sol.chosen[0] = 99;
    const check::AuditResult r = check::auditSolution(prob, sol);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("chosen candidate 99 out of range"),
              std::string::npos);
}

TEST(AuditSolution, TamperedObjectiveIsReported) {
    const Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    sol.objective += 123.0;
    const check::AuditResult r = check::auditSolution(prob, sol);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("cached objective"), std::string::npos);
}

TEST(AuditSolution, CapacityOverflowIsReportedWithEdgeContext) {
    Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutingSolution sol = solvePrimalDual(prob).solution;
    // Choke an edge the solution actually uses; the audit must name it.
    int usedEdge = -1;
    for (size_t i = 0; i < sol.chosen.size() && usedEdge < 0; ++i) {
        const int j = sol.chosen[i];
        if (j < 0) continue;
        const auto& use = prob.candidates[i][static_cast<size_t>(j)].edgeUse;
        if (!use.empty()) usedEdge = use.front().first;
    }
    ASSERT_GE(usedEdge, 0) << "solution routes nothing";
    d.grid.setCapacity(usedEdge, 0);
    const check::AuditResult r = check::auditSolution(prob, sol);
    ASSERT_FALSE(r.ok());
    const std::string s = r.summary();
    EXPECT_NE(s.find(check::format("edge {}", usedEdge)), std::string::npos);
    EXPECT_NE(s.find("exceeds capacity 0"), std::string::npos);
}

// --------------------------------------------------- routed-design audit

TEST(AuditRoutedDesign, StreakFlowOutputAuditsClean) {
    const Design d = pipelineDesign();
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult res = runStreak(d, opts).value();
    const check::AuditResult r =
        check::auditRoutedDesign(res.problem, res.routed);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditRoutedDesign, TamperedUsageIsReported) {
    const Design d = pipelineDesign();
    const StreakResult res = runStreak(d, StreakOptions{}).value();
    RoutedDesign routed = res.routed;
    routed.usage.add(0, 1);  // phantom track no topology explains
    const check::AuditResult r =
        check::auditRoutedDesign(res.problem, routed);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("recomputed from bit topologies"),
              std::string::npos);
}

TEST(AuditRoutedDesign, DroppedBitIsReported) {
    const Design d = pipelineDesign();
    const StreakResult res = runStreak(d, StreakOptions{}).value();
    RoutedDesign routed = res.routed;
    ASSERT_FALSE(routed.bits.empty());
    routed.bits.pop_back();  // a member is now accounted for zero times
    const check::AuditResult r =
        check::auditRoutedDesign(res.problem, routed);
    ASSERT_FALSE(r.ok());
    // The usage mismatches the dropped bit leaves behind are reported
    // first; the coverage finding must still be in the full issue list.
    bool found = false;
    for (const std::string& issue : r.issues) {
        found |= issue.find("accounted 0 times") != std::string::npos;
    }
    EXPECT_TRUE(found) << r.summary(check::AuditResult::kMaxIssues);
}

TEST(AuditRoutedDesign, CorruptedTopologyIsReported) {
    const Design d = pipelineDesign();
    const StreakResult res = runStreak(d, StreakOptions{}).value();
    RoutedDesign routed = res.routed;
    ASSERT_FALSE(routed.bits.empty());
    // Remove one unit of wire: the topology disconnects (and the recorded
    // usage no longer matches the recomputed demand).
    steiner::Topology& topo = routed.bits[0].topo;
    ASSERT_FALSE(topo.wire().empty());
    const steiner::UnitEdge e = *topo.wire().begin();
    const geom::Point to =
        e.horizontal ? geom::Point{e.at.x + 1, e.at.y}
                     : geom::Point{e.at.x, e.at.y + 1};
    topo.removeSegment({e.at, to});
    const check::AuditResult r =
        check::auditRoutedDesign(res.problem, routed);
    ASSERT_FALSE(r.ok());
}

// ------------------------------------------------------------ ILP audits

TEST(AuditIlp, WellFormedModelAndLpSolutionAuditClean) {
    // min x0 + x1  s.t.  x0 + x1 >= 1,  x0 <= 0.6 (binary x1).
    ilp::Model m;
    const int x0 = m.addVariable(1.0, /*integer=*/false, 0.0, 0.6);
    const int x1 = m.addVariable(1.0, /*integer=*/true, 0.0, 1.0);
    m.addRow({{x0, 1.0}, {x1, 1.0}}, ilp::Sense::GreaterEqual, 1.0);
    EXPECT_TRUE(check::auditIlpModel(m).ok());

    const ilp::Solution lp = ilp::solveLp(m);
    ASSERT_TRUE(lp.hasSolution());
    const check::AuditResult r = check::auditLp(m, lp);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(AuditIlp, NonFiniteObjectiveCoefficientIsReported) {
    // Model::addVariable already rejects non-binary integer bounds; a NaN
    // cost is the structural defect that can still slip through the
    // builder, so that is what the audit must catch.
    ilp::Model m;
    m.addVariable(std::numeric_limits<double>::quiet_NaN(),
                  /*integer=*/false);
    const check::AuditResult r = check::auditIlpModel(m);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("objective coefficient"), std::string::npos);
    EXPECT_NE(r.summary().find("not finite"), std::string::npos);
}

TEST(AuditIlp, RowReferencingUnknownVariableIsReported) {
    ilp::Model m;
    m.addVariable(1.0, /*integer=*/false);
    m.addRow({{5, 1.0}}, ilp::Sense::LessEqual, 1.0);
    const check::AuditResult r = check::auditIlpModel(m);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("outside [0,1)"), std::string::npos);
}

TEST(AuditIlp, InfeasibleValuesAreReported) {
    ilp::Model m;
    const int x0 = m.addVariable(1.0, /*integer=*/false, 0.0, 1.0);
    m.addRow({{x0, 1.0}}, ilp::Sense::GreaterEqual, 1.0);
    ilp::Solution sol;
    sol.status = ilp::SolveStatus::Optimal;
    sol.values = {0.0};  // violates the >= 1 row
    sol.objective = 0.0;
    const check::AuditResult r = check::auditLp(m, sol);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("violates rhs 1"), std::string::npos);
}

TEST(AuditIlp, MisreportedObjectiveIsReported) {
    ilp::Model m;
    const int x0 = m.addVariable(2.0, /*integer=*/false, 0.0, 1.0);
    m.addRow({{x0, 1.0}}, ilp::Sense::GreaterEqual, 1.0);
    ilp::Solution sol;
    sol.status = ilp::SolveStatus::Optimal;
    sol.values = {1.0};
    sol.objective = 0.5;  // really 2.0
    const check::AuditResult r = check::auditLp(m, sol);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("recomputed c^T x"), std::string::npos);
}

TEST(AuditIlp, SolutionsWithoutValuesAuditClean) {
    ilp::Model m;
    m.addVariable(1.0, /*integer=*/false);
    ilp::Solution sol;  // status Limit: nothing claimed
    EXPECT_TRUE(check::auditLp(m, sol).ok());
}

// -------------------------------------------- deep audits in the pipeline

TEST(DeepAudit, FullStreakFlowPassesUnderDeepChecks) {
    CheckGuard guard(check::Level::Deep);
    const Design d = pipelineDesign();
    StreakOptions opts;
    opts.postOptimize = true;
    // Every STREAK_DEEP_AUDIT stage boundary in the flow now runs; a
    // throw here means the pipeline handed corrupt state downstream.
    const StreakResult res = runStreak(d, opts).value();
    EXPECT_GT(res.routed.routedBits(), 0);
}

TEST(DeepAudit, IlpSolverPassesUnderDeepChecks) {
    CheckGuard guard(check::Level::Deep);
    const Design d = pipelineDesign();
    StreakOptions opts;
    opts.solver = SolverKind::Ilp;
    const StreakResult res = runStreak(d, opts).value();
    EXPECT_GT(res.routed.routedBits(), 0);
}

TEST(DeepAudit, CorruptedSolutionIsRejectedAtStageBoundary) {
    CheckGuard guard(check::Level::Deep);
    const Design d = pipelineDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    sol.chosen[0] = 99;
    const std::string msg = failureMessage(
        [&] { STREAK_DEEP_AUDIT(check::auditSolution(prob, sol)); });
    EXPECT_NE(msg.find("audit failed"), std::string::npos);
    EXPECT_NE(msg.find("chosen candidate 99 out of range"),
              std::string::npos);
}

}  // namespace
}  // namespace streak
