#include "track/tracks.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/pd_solver.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace streak::track {
namespace {

using geom::Point;

RoutedDesign route(const Design&, const RoutingProblem& prob) {
    return materialize(prob, solvePrimalDual(prob).solution);
}

TEST(AssignTracks, AllTrunksPlacedWhenUncongested) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    const TrackAssignment ta = assignTracks(routed);
    EXPECT_EQ(ta.unplaced, 0);
    // 4 straight bits -> 4 trunks.
    EXPECT_EQ(ta.wires.size(), 4u);
    for (const AssignedWire& w : ta.wires) EXPECT_GE(w.track, 0);
}

TEST(AssignTracks, NoTwoWiresShareTrackOverSameEdge) {
    const Design d = gen::makeSynth(1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    const TrackAssignment ta = assignTracks(routed);
    // Overlap check: (layer, line, track) -> intervals must be disjoint.
    std::map<std::tuple<int, int, int>, std::vector<std::pair<int, int>>> used;
    for (const AssignedWire& w : ta.wires) {
        if (w.track < 0) continue;
        const bool horiz = w.segment.horizontal();
        const int line = horiz ? w.segment.a.y : w.segment.a.x;
        const int lo = horiz ? w.segment.a.x : w.segment.a.y;
        const int hi = horiz ? w.segment.b.x : w.segment.b.y;
        auto& intervals = used[{w.layer, line, w.track}];
        for (const auto& [l2, h2] : intervals) {
            EXPECT_FALSE(l2 < hi && lo < h2)
                << "overlap on layer " << w.layer << " line " << line
                << " track " << w.track;
        }
        intervals.emplace_back(lo, hi);
    }
}

TEST(AssignTracks, TracksRespectEdgeCapacity) {
    const Design d = gen::makeSynth(3);  // has blockages (dented capacity)
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    const TrackAssignment ta = assignTracks(routed);
    const grid::RoutingGrid& g = d.grid;
    for (const AssignedWire& w : ta.wires) {
        if (w.track < 0) continue;
        const bool horiz = w.segment.horizontal();
        if (horiz) {
            for (int x = w.segment.a.x; x < w.segment.b.x; ++x) {
                EXPECT_LT(w.track,
                          g.capacity(g.edgeId(w.layer, x, w.segment.a.y)));
            }
        } else {
            for (int y = w.segment.a.y; y < w.segment.b.y; ++y) {
                EXPECT_LT(w.track,
                          g.capacity(g.edgeId(w.layer, w.segment.a.x, y)));
            }
        }
    }
}

TEST(AssignTracks, BusBitsGetAdjacentOrderedTracks) {
    // 6 parallel bits sharing one row? No — translated by (0,1): each on
    // its own row. Use dx=0, dy=0 stacking instead: all bits in ONE panel.
    SignalGroup g;
    g.name = "stack";
    for (int k = 0; k < 4; ++k) {
        g.bits.push_back(
            testutil::makeBit({{2, 10}, {20, 10}}, "b" + std::to_string(k)));
    }
    const Design d = testutil::makeDesign({g});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    ASSERT_EQ(routed.routedBits(), 4);
    const TrackAssignment ta = assignTracks(routed);
    EXPECT_EQ(ta.unplaced, 0);
    EXPECT_DOUBLE_EQ(trackOrderliness(routed, ta), 1.0);
}

TEST(AssignTracks, OrderlinessHighOnGeneratedSuite) {
    const Design d = gen::makeSynth(2);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    const TrackAssignment ta = assignTracks(routed);
    // Edge capacity does not guarantee dogleg-free assignability for
    // full-length trunks; a tiny residue may need doglegs (not modelled).
    EXPECT_LE(ta.unplaced, static_cast<int>(ta.wires.size()) / 100);
    EXPECT_GE(trackOrderliness(routed, ta), 0.8);
}

TEST(AssignTracks, EmptyDesign) {
    const Design d = testutil::makeDesign({});
    RoutedDesign empty(d.grid);
    const TrackAssignment ta = assignTracks(empty);
    EXPECT_TRUE(ta.wires.empty());
    EXPECT_DOUBLE_EQ(trackOrderliness(empty, ta), 1.0);
}

TEST(AssignTracks, Deterministic) {
    const Design d = gen::makeSynth(5);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = route(d, prob);
    const TrackAssignment a = assignTracks(routed);
    const TrackAssignment b = assignTracks(routed);
    ASSERT_EQ(a.wires.size(), b.wires.size());
    for (size_t i = 0; i < a.wires.size(); ++i) {
        EXPECT_EQ(a.wires[i].track, b.wires[i].track);
    }
}

}  // namespace
}  // namespace streak::track
