// The report validator library (src/flow/report_check): a genuine run
// report passes, and every class of malformed input — truncated JSON,
// wrong schema or version, missing or mistyped sections — comes back as
// structured problem strings, never a crash. tools/report_check is a
// thin CLI over these functions; check.sh drives it on fresh exports.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "flow/report.hpp"
#include "flow/report_check.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "obs/json.hpp"

namespace streak {
namespace {

namespace json = obs::json;

/// A genuine run report (text form) for the mutation tests.
std::string freshReport() {
    gen::SuiteSpec spec = gen::synthSpec(1);
    spec.numGroups = 4;
    spec.gridWidth = 40;
    spec.gridHeight = 40;
    const Design d = gen::generate(spec);
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = 1;
    opts.observer = [](const StreakObservation&) {};
    const StreakResult r = runStreak(d, opts).value();
    std::ostringstream os;
    flow::writeRunReport(d, opts, r, os);
    return os.str();
}

json::Value parseDoc(const std::string& text) {
    std::string error;
    json::Value doc = json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    return doc;
}

/// Copy of the document without one top-level key.
std::string withoutKey(const json::Value& doc, const std::string& key) {
    json::Object out;
    for (const auto& [k, v] : doc.asObject().items()) {
        if (k != key) out.set(k, v);
    }
    return json::Value(std::move(out)).dump(2);
}

/// Copy of the document with one top-level key replaced.
std::string withKey(const json::Value& doc, const std::string& key,
                    json::Value value) {
    json::Object out;
    for (const auto& [k, v] : doc.asObject().items()) out.set(k, v);
    out.set(key, std::move(value));
    return json::Value(std::move(out)).dump(2);
}

bool anyProblemMentions(const flow::CheckResult& result,
                        const std::string& needle) {
    for (const std::string& problem : result.problems) {
        if (problem.find(needle) != std::string::npos) return true;
    }
    return false;
}

class ReportCheck : public ::testing::Test {
protected:
    static void SetUpTestSuite() { text_ = new std::string(freshReport()); }
    static void TearDownTestSuite() {
        delete text_;
        text_ = nullptr;
    }
    static const std::string& text() { return *text_; }

private:
    static std::string* text_;
};

std::string* ReportCheck::text_ = nullptr;

TEST_F(ReportCheck, AcceptsAGenuineReport) {
    const flow::CheckResult result = flow::checkRunReport(text(), "report");
    EXPECT_TRUE(result.ok()) << result.problems.front();
}

TEST_F(ReportCheck, TruncatedJsonIsAStructuredProblem) {
    for (const size_t keep : {0u, 1u, 40u}) {
        const std::string truncated = text().substr(0, text().size() / 2 + keep);
        const flow::CheckResult result =
            flow::checkRunReport(truncated, "report");
        EXPECT_FALSE(result.ok()) << "accepted a truncated report";
        ASSERT_FALSE(result.problems.empty());
        EXPECT_EQ(result.problems.front().rfind("report:", 0), 0u)
            << result.problems.front();
    }
}

TEST_F(ReportCheck, MissingRobustSectionIsAProblem) {
    const flow::CheckResult result =
        flow::checkRunReport(withoutKey(parseDoc(text()), "robust"), "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "\"robust\""));
}

TEST_F(ReportCheck, MissingProcessSectionIsAProblem) {
    const flow::CheckResult result = flow::checkRunReport(
        withoutKey(parseDoc(text()), "process"), "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "\"process\""));
}

TEST_F(ReportCheck, WrongSchemaVersionNamesExpectedAndActual) {
    const flow::CheckResult result = flow::checkRunReport(
        withKey(parseDoc(text()), "schemaVersion", json::Value(99)), "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "schemaVersion 99"));
    EXPECT_TRUE(anyProblemMentions(
        result,
        "expected " + std::to_string(flow::kReportSchemaVersion)));
}

TEST_F(ReportCheck, WrongSchemaStringIsAProblem) {
    const flow::CheckResult result = flow::checkRunReport(
        withKey(parseDoc(text()), "schema", json::Value("other-schema")),
        "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "other-schema"));
}

TEST_F(ReportCheck, MistypedSectionIsAProblem) {
    const flow::CheckResult result = flow::checkRunReport(
        withKey(parseDoc(text()), "counters", json::Value(3)), "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "\"counters\""));
    EXPECT_TRUE(anyProblemMentions(result, "wrong type"));
}

TEST_F(ReportCheck, RouteReportFailsWhenEcoIsRequired) {
    // `streak eco --report` appends the eco section; a plain route report
    // must fail under --eco semantics and pass without them.
    const flow::CheckResult strict =
        flow::checkRunReport(text(), "report", /*requireEco=*/true);
    EXPECT_FALSE(strict.ok());
    EXPECT_TRUE(anyProblemMentions(strict, "\"eco\""));
    EXPECT_TRUE(flow::checkRunReport(text(), "report").ok());
}

TEST_F(ReportCheck, InconsistentEcoSectionIsAProblem) {
    json::Object eco;
    eco.set("totalGroups", 10);
    eco.set("resolvedGroups", 4);
    eco.set("carriedGroups", 5);  // 4 + 5 != 10
    eco.set("resolved", json::Array{json::Value("g0"), json::Value("g1")});
    eco.set("incrementalSeconds", 0.5);
    const flow::CheckResult result = flow::checkRunReport(
        withKey(parseDoc(text()), "eco", json::Value(std::move(eco))),
        "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(
        result, "resolvedGroups + carriedGroups != totalGroups"));
    EXPECT_TRUE(
        anyProblemMentions(result, "resolved list length disagrees"));
}

TEST_F(ReportCheck, MissingSpanTreeIsAProblem) {
    const flow::CheckResult result = flow::checkRunReport(
        withKey(parseDoc(text()), "spans", json::Value(json::Array{})),
        "report");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "span tree is empty"));
}

TEST(TraceCheck, RejectsTruncatedAndUnbalanced) {
    EXPECT_FALSE(flow::checkChromeTrace("{\"traceEvents\": [", "trace").ok());

    // E with no matching B on its track.
    const char* unbalanced = R"({"traceEvents": [
        {"ph": "E", "name": "x", "pid": 0, "tid": 0, "ts": 1}]})";
    const flow::CheckResult result =
        flow::checkChromeTrace(unbalanced, "trace");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "no open B"));
}

TEST(BenchCheck, RejectsMalformedDocuments) {
    EXPECT_FALSE(flow::checkKernelBench("{", "bench").ok());
    EXPECT_FALSE(flow::checkKernelBench("{}", "bench").ok());
    const flow::CheckResult result = flow::checkKernelBench(
        R"({"schema": "streak-kernel-bench", "schemaVersion": 1,
            "kernels": [], "totals": {}})",
        "bench");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(anyProblemMentions(result, "no kernel entries"));
}

}  // namespace
}  // namespace streak
