#include "steiner/topology.hpp"

#include <gtest/gtest.h>

namespace streak::steiner {
namespace {

using geom::Point;

Topology lShape() {
    // Driver at (0,0), sink at (3,2), corner at (3,0).
    Topology t({{0, 0}, {3, 2}}, 0);
    t.addLShape({0, 0}, {3, 2}, {3, 0});
    return t;
}

TEST(Topology, WirelengthCountsUnitEdges) {
    const Topology t = lShape();
    EXPECT_EQ(t.wirelength(), 5);
}

TEST(Topology, AddSegmentIsUnion) {
    Topology t({{0, 0}, {4, 0}}, 0);
    t.addSegment({{0, 0}, {3, 0}});
    t.addSegment({{1, 0}, {4, 0}});  // overlaps [1,3]
    EXPECT_EQ(t.wirelength(), 4);
}

TEST(Topology, ConnectedAndTree) {
    const Topology t = lShape();
    EXPECT_TRUE(t.connected());
    EXPECT_TRUE(t.isTree());
}

TEST(Topology, DisconnectedPinDetected) {
    Topology t({{0, 0}, {5, 5}}, 0);
    t.addSegment({{0, 0}, {3, 0}});
    EXPECT_FALSE(t.connected());
    EXPECT_FALSE(t.isTree());
}

TEST(Topology, FloatingWireDetected) {
    Topology t({{0, 0}, {2, 0}}, 0);
    t.addSegment({{0, 0}, {2, 0}});
    t.addSegment({{5, 5}, {6, 5}});  // floating metal
    EXPECT_FALSE(t.connected());
}

TEST(Topology, CycleIsNotATree) {
    Topology t({{0, 0}, {2, 2}}, 0);
    t.addSegment({{0, 0}, {2, 0}});
    t.addSegment({{2, 0}, {2, 2}});
    t.addSegment({{2, 2}, {0, 2}});
    t.addSegment({{0, 2}, {0, 0}});
    EXPECT_TRUE(t.connected());
    EXPECT_FALSE(t.isTree());
}

TEST(Topology, BendCount) {
    EXPECT_EQ(lShape().bendCount(), 1);
    Topology straight({{0, 0}, {5, 0}}, 0);
    straight.addSegment({{0, 0}, {5, 0}});
    EXPECT_EQ(straight.bendCount(), 0);
}

TEST(Topology, SourceToSinkDistances) {
    const Topology t = lShape();
    const auto d = t.sourceToSinkDistances();
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 5);
}

TEST(Topology, UnreachablePinGetsMinusOne) {
    Topology t({{0, 0}, {9, 9}}, 0);
    t.addSegment({{0, 0}, {4, 0}});
    const auto d = t.sourceToSinkDistances();
    EXPECT_EQ(d[1], -1);
}

TEST(Topology, StructureFindsBend) {
    const Topology t = lShape();
    const TopoStructure st = t.structure();
    ASSERT_EQ(st.nodes.size(), 3u);
    EXPECT_EQ(st.numRCs(), 2);
    int bends = 0;
    for (const auto& n : st.nodes) bends += n.isBend ? 1 : 0;
    EXPECT_EQ(bends, 1);
}

TEST(Topology, StructureFindsJunction) {
    // T shape: trunk (0,0)-(4,0), branch up at (2,0) to (2,3).
    Topology t({{0, 0}, {4, 0}, {2, 3}}, 0);
    t.addSegment({{0, 0}, {4, 0}});
    t.addSegment({{2, 0}, {2, 3}});
    const TopoStructure st = t.structure();
    EXPECT_EQ(st.numRCs(), 3);
    int deg3 = 0;
    for (const auto& n : st.nodes) deg3 += n.degree == 3 ? 1 : 0;
    EXPECT_EQ(deg3, 1);
}

TEST(Topology, StructureRCsAreStraight) {
    const Topology t = lShape();
    for (const auto& [u, v] : t.structure().rcs) {
        const auto& st = t.structure();
        const geom::Point a = st.nodes[static_cast<size_t>(u)].pt;
        const geom::Point b = st.nodes[static_cast<size_t>(v)].pt;
        EXPECT_TRUE(a.x == b.x || a.y == b.y);
    }
}

TEST(Topology, RemoveSegment) {
    Topology t = lShape();
    t.removeSegment({{3, 0}, {3, 2}});
    EXPECT_EQ(t.wirelength(), 3);
    EXPECT_FALSE(t.connected());
}

TEST(Topology, TranslatePreservesShape) {
    const Topology t = lShape();
    const Topology moved = t.translate(2, -1);
    EXPECT_EQ(moved.wirelength(), t.wirelength());
    EXPECT_EQ(moved.bendCount(), t.bendCount());
    EXPECT_TRUE(moved.isTree());
    EXPECT_EQ(moved.pins()[0], (Point{2, -1}));
    EXPECT_EQ(moved.pins()[1], (Point{5, 1}));
}

TEST(Topology, RemapStretchesCoordinates) {
    const Topology t = lShape();
    // Stretch x by 2, keep y.
    std::unordered_map<int, int> xMap, yMap;
    for (int x = 0; x <= 3; ++x) xMap[x] = 2 * x;
    for (int y = 0; y <= 2; ++y) yMap[y] = y;
    const Topology r = t.remap(xMap, yMap);
    EXPECT_TRUE(r.connected());
    EXPECT_EQ(r.pins()[1], (Point{6, 2}));
    EXPECT_EQ(r.wirelength(), 8);  // 6 horizontal + 2 vertical
}

TEST(Topology, WireHashIdenticalForEqualShapes) {
    const Topology a = lShape();
    Topology b({{0, 0}, {3, 2}}, 0);
    b.addSegment({{0, 0}, {3, 0}});
    b.addSegment({{3, 0}, {3, 2}});
    EXPECT_EQ(a.wireHash(), b.wireHash());
    const Topology c = a.translate(1, 0);
    EXPECT_NE(a.wireHash(), c.wireHash());
}

TEST(Topology, SinglePinTopologyIsTrivialTree) {
    const Topology t({{5, 5}}, 0);
    EXPECT_TRUE(t.connected());
    EXPECT_TRUE(t.isTree());
    EXPECT_EQ(t.wirelength(), 0);
}

TEST(Topology, RejectsBadDriver) {
    EXPECT_THROW(Topology({{0, 0}}, 1), std::invalid_argument);
    EXPECT_THROW(Topology({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace streak::steiner
