// Property sweep over the TopoStructure view: for any tree topology the
// derived RC graph must itself be a tree over the feature nodes whose
// total length equals the wire-length. These invariants underpin the
// regularity ratio, track assignment and refinement, so they get their
// own sweep.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "steiner/rsmt.hpp"
#include "steiner/topology.hpp"

namespace streak::steiner {
namespace {

using geom::Point;

class StructureProperty : public ::testing::TestWithParam<int> {};

std::vector<Point> randomPins(unsigned seed, int minCount, int maxCount) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> coord(0, 24);
    std::uniform_int_distribution<int> count(minCount, maxCount);
    const int n = count(rng);
    std::set<Point> unique;
    while (static_cast<int>(unique.size()) < n) {
        unique.insert({coord(rng), coord(rng)});
    }
    return {unique.begin(), unique.end()};
}

TEST_P(StructureProperty, RcLengthsSumToWirelength) {
    const auto pins = randomPins(static_cast<unsigned>(GetParam()), 2, 8);
    for (const Topology& t : enumerateTopologies(pins, 0)) {
        const TopoStructure st = t.structure();
        long rcTotal = 0;
        for (const auto& [u, v] : st.rcs) {
            rcTotal += manhattan(st.nodes[static_cast<size_t>(u)].pt,
                                 st.nodes[static_cast<size_t>(v)].pt);
        }
        EXPECT_EQ(rcTotal, t.wirelength());
    }
}

TEST_P(StructureProperty, RcGraphIsTreeForTreeTopologies) {
    const auto pins = randomPins(static_cast<unsigned>(GetParam()) + 100u, 3, 8);
    for (const Topology& t : enumerateTopologies(pins, 0)) {
        ASSERT_TRUE(t.isTree());
        const TopoStructure st = t.structure();
        if (st.nodes.empty()) continue;
        // Tree: |RC| = |nodes| - 1 and connected.
        EXPECT_EQ(st.numRCs(), static_cast<int>(st.nodes.size()) - 1);
        // Union-find connectivity over RCs.
        std::vector<int> parent(st.nodes.size());
        for (size_t i = 0; i < parent.size(); ++i) {
            parent[i] = static_cast<int>(i);
        }
        const auto find = [&](int a) {
            while (parent[static_cast<size_t>(a)] != a) {
                a = parent[static_cast<size_t>(a)];
            }
            return a;
        };
        for (const auto& [u, v] : st.rcs) {
            parent[static_cast<size_t>(find(u))] = find(v);
        }
        const int root = find(0);
        for (size_t i = 0; i < st.nodes.size(); ++i) {
            EXPECT_EQ(find(static_cast<int>(i)), root);
        }
    }
}

TEST_P(StructureProperty, EveryPinAppearsAsNode) {
    const auto pins = randomPins(static_cast<unsigned>(GetParam()) + 200u, 2, 7);
    for (const Topology& t : enumerateTopologies(pins, 0)) {
        const TopoStructure st = t.structure();
        std::set<int> pinNodes;
        for (const auto& n : st.nodes) {
            if (n.pinIndex >= 0) pinNodes.insert(n.pinIndex);
        }
        // Distinct pin positions each own a node (coincident pins share).
        std::set<Point> distinct(t.pins().begin(), t.pins().end());
        EXPECT_GE(pinNodes.size(), distinct.size() > 0 ? 1u : 0u);
        for (size_t i = 0; i < t.pins().size(); ++i) {
            bool found = false;
            for (const auto& n : st.nodes) {
                if (n.pt == t.pins()[i]) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found) << "pin " << i;
        }
    }
}

TEST_P(StructureProperty, BendNodesMatchBendCount) {
    const auto pins = randomPins(static_cast<unsigned>(GetParam()) + 300u, 2, 7);
    for (const Topology& t : enumerateTopologies(pins, 0)) {
        const TopoStructure st = t.structure();
        int bends = 0;
        for (const auto& n : st.nodes) bends += n.isBend ? 1 : 0;
        // structure() flags only degree-2 corners as bends; bendCount()
        // counts every mixed-orientation point (including junctions and
        // corner pins), so it dominates.
        EXPECT_LE(bends, t.bendCount());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureProperty, ::testing::Range(1, 16));

}  // namespace
}  // namespace streak::steiner
