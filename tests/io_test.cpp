#include <gtest/gtest.h>

#include <sstream>

#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "io/heatmap.hpp"
#include "io/table.hpp"
#include "robust/error.hpp"
#include "test_util.hpp"

namespace streak::io {
namespace {

TEST(DesignIo, RoundTripPreservesEverything) {
    const Design original = gen::makeSynth(1);
    std::stringstream ss;
    writeDesign(original, ss);
    const Design loaded = readDesign(ss);

    ASSERT_EQ(loaded.numGroups(), original.numGroups());
    ASSERT_EQ(loaded.numNets(), original.numNets());
    EXPECT_EQ(loaded.grid.width(), original.grid.width());
    EXPECT_EQ(loaded.grid.height(), original.grid.height());
    EXPECT_EQ(loaded.grid.numLayers(), original.grid.numLayers());
    for (int e = 0; e < original.grid.numEdges(); ++e) {
        EXPECT_EQ(loaded.grid.capacity(e), original.grid.capacity(e));
    }
    for (int g = 0; g < original.numGroups(); ++g) {
        const SignalGroup& og = original.groups[static_cast<size_t>(g)];
        const SignalGroup& lg = loaded.groups[static_cast<size_t>(g)];
        EXPECT_EQ(lg.name, og.name);
        for (int k = 0; k < og.width(); ++k) {
            EXPECT_EQ(lg.bits[static_cast<size_t>(k)].pins,
                      og.bits[static_cast<size_t>(k)].pins);
            EXPECT_EQ(lg.bits[static_cast<size_t>(k)].driver,
                      og.bits[static_cast<size_t>(k)].driver);
        }
    }
}

TEST(DesignIo, RejectsBadHeader) {
    std::stringstream ss("NOTSTREAK 1\nGRID 4 4 2 1\n");
    EXPECT_THROW(readDesign(ss), std::runtime_error);
}

TEST(DesignIo, RejectsMissingGrid) {
    std::stringstream ss("STREAK 1\nGROUP g 0\n");
    EXPECT_THROW(readDesign(ss), std::runtime_error);
}

TEST(DesignIo, RejectsPinCountMismatch) {
    std::stringstream ss(
        "STREAK 1\nGRID 8 8 2 4\nGROUP g 1\nBIT b 2 0\nPIN 1 1\n");
    EXPECT_THROW(readDesign(ss), std::runtime_error);
}

TEST(DesignIo, RejectsDriverOutOfRange) {
    std::stringstream ss(
        "STREAK 1\nGRID 8 8 2 4\nGROUP g 1\nBIT b 1 3\nPIN 1 1\n");
    EXPECT_THROW(readDesign(ss), std::runtime_error);
}

TEST(DesignIo, SkipsComments) {
    std::stringstream ss(
        "# leading comment\nSTREAK 1\n# another\nGRID 8 8 2 4\n");
    const Design d = readDesign(ss);
    EXPECT_EQ(d.grid.width(), 8);
    EXPECT_EQ(d.numGroups(), 0);
}


TEST(DesignIo, ViaModelRoundTrip) {
    Design original = gen::makeSynth(1);
    original.grid.setViaCapacity(6);
    original.grid.addViaBlockage({{4, 4}, {8, 8}}, 2);
    std::stringstream ss;
    writeDesign(original, ss);
    const Design loaded = readDesign(ss);
    ASSERT_TRUE(loaded.grid.viaLimited());
    for (int c = 0; c < original.grid.numCells(); ++c) {
        EXPECT_EQ(loaded.grid.viaCapacity(c), original.grid.viaCapacity(c));
    }
}

TEST(DesignIo, ViaBlockageWithoutCapIsRejected) {
    std::stringstream ss(
        "STREAK 1\nGRID 8 8 2 4\nVIABLOCKAGE 1 1 2 2 0\n");
    EXPECT_THROW(readDesign(ss), std::runtime_error);
}

TEST(DesignIo, TruncatedRecordReportsLineAndColumn) {
    // GRID on line 2 is cut off after the height: the error must name
    // the line and point past the last parsed character.
    std::stringstream ss("STREAK 1\nGRID 8 8\n");
    try {
        (void)readDesign(ss);
        FAIL() << "expected a parse error";
    } catch (const robust::StreakException& e) {
        EXPECT_EQ(e.error().kind, robust::ErrorKind::InvalidInput);
        EXPECT_EQ(e.error().site, "io/read");
        const std::string what = e.what();
        EXPECT_NE(what.find("bad GRID line"), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("column 9"), std::string::npos) << what;
    }
}

TEST(DesignIo, CorruptedFieldReportsLineAndColumn) {
    // The BIT pin count on line 4 is not a number; tellg() stops at the
    // space before it (column 6: after "BIT b").
    std::stringstream ss(
        "STREAK 1\nGRID 8 8 2 4\nGROUP g 1\nBIT b garbage 0\nPIN 1 1\n");
    try {
        (void)readDesign(ss);
        FAIL() << "expected a parse error";
    } catch (const robust::StreakException& e) {
        EXPECT_EQ(e.error().kind, robust::ErrorKind::InvalidInput);
        const std::string what = e.what();
        EXPECT_NE(what.find("bad BIT line"), std::string::npos) << what;
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
        EXPECT_NE(what.find("column"), std::string::npos) << what;
    }
}

TEST(DesignIo, CountMismatchReportsDeclaringLine) {
    // BIT on line 4 declares 2 pins but only 1 follows; the error points
    // back at the declaring record, not at end-of-file.
    std::stringstream ss(
        "STREAK 1\nGRID 8 8 2 4\nGROUP g 1\nBIT b 2 0\nPIN 1 1\n");
    try {
        (void)readDesign(ss);
        FAIL() << "expected a parse error";
    } catch (const robust::StreakException& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("pin count mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("declared 2, found 1"), std::string::npos) << what;
        EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    }
}

TEST(DesignIo, MissingFileIsInvalidInput) {
    try {
        (void)readDesignFile("/nonexistent/design.streak");
        FAIL() << "expected an error";
    } catch (const robust::StreakException& e) {
        EXPECT_EQ(e.error().kind, robust::ErrorKind::InvalidInput);
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }
}

TEST(Heatmap, CongestionGridReflectsUsage) {
    grid::RoutingGrid g(8, 8, 2, 4);
    grid::EdgeUsage usage(g);
    usage.add(g.edgeId(0, 3, 5), 2);
    const auto cells = congestionGrid(usage);
    EXPECT_DOUBLE_EQ(cells[5][3], 0.5);
    EXPECT_DOUBLE_EQ(cells[0][0], 0.0);
}

TEST(Heatmap, OverflowShowsAsX) {
    grid::RoutingGrid g(8, 8, 2, 2);
    grid::EdgeUsage usage(g);
    usage.add(g.edgeId(0, 3, 5), 5);
    std::stringstream ss;
    writeAsciiHeatmap(usage, ss);
    EXPECT_NE(ss.str().find('X'), std::string::npos);
}

TEST(Heatmap, CsvHasHeaderAndAllCells) {
    grid::RoutingGrid g(4, 3, 2, 2);
    grid::EdgeUsage usage(g);
    std::stringstream ss;
    writeCsvHeatmap(usage, ss);
    std::string line;
    int lines = 0;
    while (std::getline(ss, line)) ++lines;
    EXPECT_EQ(lines, 1 + 4 * 3);
}

TEST(Table, AlignsColumns) {
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::stringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, Formatters) {
    EXPECT_EQ(Table::percent(0.9934), "99.34%");
    EXPECT_EQ(Table::percent(1.0, 0), "100%");
    EXPECT_EQ(Table::fixed(7.005, 2), "7.00");  // round-to-even friendly
}

}  // namespace
}  // namespace streak::io
