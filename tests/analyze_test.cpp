// Tests for the static-analysis subsystem (tools/analyze): the rule pack
// over on-disk fixtures (fire / waive / stale-waiver per rule), the
// module layering pass, and the SARIF export round-tripped through the
// in-tree JSON parser.
//
// Fixture sources live under tests/analyze_fixtures/ (path injected as
// STREAK_ANALYZE_FIXTURES); the repo's real layering declaration comes
// in as STREAK_REPO_LAYERS so the spec that gates src/ is also the spec
// the tests exercise.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/sarif.hpp"
#include "obs/json.hpp"

namespace streak::analyze {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture: " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return std::move(ss).str();
}

/// Load one fixture relative to tests/analyze_fixtures/.
SourceFile fixture(const std::string& rel) {
    const fs::path p = fs::path(STREAK_ANALYZE_FIXTURES) / rel;
    return {p.generic_string(), lex(slurp(p))};
}

/// Lex an in-memory snippet under a synthetic path (for path-dependent
/// exemptions and ad-hoc cases).
SourceFile snippet(std::string path, std::string_view text) {
    return {std::move(path), lex(text)};
}

std::vector<Finding> run(const std::vector<SourceFile>& files,
                         const LayerSpec* layers = nullptr) {
    AnalyzerOptions opts;
    opts.layering = layers != nullptr;
    return analyze(files, layers, opts);
}

/// Expected findings as (line, rule), order-insensitive.
using Expected = std::vector<std::pair<int, std::string>>;

void expectFindings(const std::vector<Finding>& got, Expected want,
                    const std::string& context) {
    Expected gotPairs;
    for (const Finding& f : got) gotPairs.emplace_back(f.line, f.rule);
    std::sort(gotPairs.begin(), gotPairs.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(gotPairs, want) << context;
}

LayerSpec parseSpec(const std::string& text) {
    LayerSpec spec;
    std::string error;
    EXPECT_TRUE(parseLayerSpec(text, "fixture-layers.txt", &spec, &error))
        << error;
    return spec;
}

// ---------------------------------------------------------------------
// Per-rule fixtures: each file carries a firing line, a waived line, and
// a stale waiver that must surface as unused-suppression.

TEST(AnalyzeRules, FixturesFireWaiveAndRot) {
    const std::vector<std::pair<std::string, Expected>> cases = {
        {"rules/banned_function.cpp",
         {{4, "banned-function"}, {6, "unused-suppression"}}},
        {"rules/raw_new_delete.cpp",
         {{5, "raw-new-delete"},
          {6, "raw-new-delete"},
          {8, "unused-suppression"}}},
        {"rules/pragma_once.hpp", {{1, "pragma-once"}}},
        {"rules/pragma_once_waived.hpp", {}},
        {"rules/relative_include.cpp",
         {{2, "relative-include"}, {4, "unused-suppression"}}},
        {"rules/float_equality.cpp",
         {{2, "float-equality"}, {5, "unused-suppression"}}},
        {"rules/bare_assert.cpp",
         {{2, "bare-assert"}, {3, "bare-assert"}, {5, "unused-suppression"}}},
        {"rules/raw_timing.cpp",
         {{4, "raw-timing"}, {9, "unused-suppression"}}},
        {"rules/unordered_iteration.cpp",
         {{7, "unordered-iteration"}, {16, "unused-suppression"}}},
        {"rules/pointer_keyed.cpp",
         {{5, "pointer-keyed"},
          {6, "pointer-keyed"},
          {9, "unused-suppression"}}},
        {"rules/thread_state.cpp",
         {{3, "thread-state"},
          {4, "thread-state"},
          {6, "unused-suppression"}}},
        {"rules/nondet_random.cpp",
         {{3, "nondet-random"},
          {4, "nondet-random"},
          {7, "unused-suppression"}}},
        {"rules/obs_registry.cpp",
         {{5, "obs-global-registry"},
          {6, "obs-global-registry"},
          {14, "unused-suppression"}}},
    };
    for (const auto& [file, want] : cases) {
        expectFindings(run({fixture(file)}), want, file);
    }
}

TEST(AnalyzeRules, ObsRegistryRuleExemptsSrcObsAndSessionCalls) {
    const std::string_view code =
        "void f() { obs::counter(\"flow/x\").add(1); }\n";
    // src/obs implements the free functions; everywhere else they are a
    // hidden dependency on the bound session.
    expectFindings(run({snippet("src/obs/counters.cpp", code)}), {},
                   "src/obs is exempt");
    expectFindings(run({snippet("src/flow/streak.cpp", code)}),
                   {{1, "obs-global-registry"}}, "src/flow fires");
    // The sanctioned spelling resolves through the session object.
    expectFindings(
        run({snippet("src/flow/streak.cpp",
                     "void f() { obs::session().counter(\"x\").add(1); }\n")}),
        {}, "session member call is fine");
}

TEST(AnalyzeRules, CompanionHeaderSuppliesUnorderedVars) {
    // Alone, the .cpp knows nothing about stuff_.
    expectFindings(run({fixture("rules/unordered_header.cpp")}), {},
                   "cpp alone");
    // With its companion header the member is known unordered.
    const std::vector<Finding> got = run({fixture("rules/unordered_header.hpp"),
                                          fixture("rules/unordered_header.cpp")});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "unordered-iteration");
    EXPECT_EQ(got[0].line, 5);
    EXPECT_NE(got[0].file.find("unordered_header.cpp"), std::string::npos);
}

TEST(AnalyzeRules, UnorderedReturningFunctionsAreVisibleRepoWide) {
    const std::vector<Finding> got = run({fixture("rules/unordered_fn.hpp"),
                                          fixture("rules/unordered_fn_use.cpp")});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "unordered-iteration");
    EXPECT_EQ(got[0].line, 5);
    EXPECT_NE(got[0].file.find("unordered_fn_use.cpp"), std::string::npos);
}

TEST(AnalyzeRules, MarkerNamingUnknownRuleIsReported) {
    const std::vector<Finding> got =
        run({snippet("x.cpp", "int x = 0;  // analyze-ok: no-such-rule\n")});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "unused-suppression");
    EXPECT_NE(got[0].message.find("unknown rule"), std::string::npos);
}

TEST(AnalyzeRules, StringsAndCommentsNeverFire) {
    // The false-positive class the token lexer exists to kill: banned
    // constructs mentioned in literals, comments and raw strings.
    const std::vector<Finding> got = run({snippet(
        "quiet.cpp",
        "// std::rand() and new int and assert(x) in a comment\n"
        "const char* a = \"printf(\\\"%d\\\", std::rand())\";\n"
        "const char* b = R\"(delete p; thread_local int t;)\";\n"
        "/* for (int v : bag) with std::unordered_set<int> bag */\n")});
    expectFindings(got, {}, "strings and comments");
}

TEST(AnalyzeRules, PathExemptionsForInfrastructureModules) {
    const std::string timing =
        "#include <chrono>\n"
        "long t() { return std::chrono::steady_clock::now()\n"
        "                      .time_since_epoch().count(); }\n";
    EXPECT_TRUE(run({snippet("src/obs/stopwatch.cpp", timing)}).empty());
    EXPECT_TRUE(run({snippet("src/parallel/pool.cpp", timing)}).empty());
    EXPECT_EQ(run({snippet("src/route/maze.cpp", timing)}).size(), 1u);

    const std::string seeding = "#include <random>\nstd::mt19937 rng;\n";
    EXPECT_TRUE(run({snippet("src/gen/generator.cpp", seeding)}).empty());
    EXPECT_EQ(run({snippet("src/core/solver.cpp", seeding)}).size(), 1u);
}

TEST(AnalyzeRules, CatchAllOnlyInInfrastructureModules) {
    // src/parallel (task isolation) and src/robust (trip plumbing) are
    // the only modules allowed to swallow everything; anywhere else a
    // catch-all would eat cancellation and fault trips.
    const std::string handler =
        "void f() {\n"
        "  try { g(); } catch (...) {\n"
        "  }\n"
        "}\n";
    EXPECT_TRUE(run({snippet("src/parallel/pool.cpp", handler)}).empty());
    EXPECT_TRUE(run({snippet("src/robust/control.cpp", handler)}).empty());
    const std::vector<Finding> got =
        run({snippet("src/flow/streak.cpp", handler)});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "catch-all");
    EXPECT_EQ(got[0].line, 2);

    const std::vector<Finding> waived = run({snippet(
        "src/flow/streak.cpp",
        "void f() {\n"
        "  try { g(); } catch (...) {  // analyze-ok: catch-all\n"
        "  }\n"
        "}\n")});
    expectFindings(waived, {}, "waived catch-all");
}

TEST(AnalyzeRules, FlowThrowMustBeStructured) {
    const std::vector<Finding> bad = run({snippet(
        "src/flow/streak.cpp",
        "#include <stdexcept>\n"
        "void f() { throw std::runtime_error(\"x\"); }\n")});
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0].rule, "flow-throw");
    EXPECT_EQ(bad[0].line, 2);

    // Rethrow, structured throws, and non-flow modules are all fine.
    EXPECT_TRUE(
        run({snippet("src/flow/report.cpp",
                     "void f() { try { g(); } catch (const E& e) { throw; } "
                     "}\n")})
            .empty());
    EXPECT_TRUE(
        run({snippet("src/flow/streak.cpp",
                     "void f(robust::StreakError err) { throw "
                     "robust::StreakException(std::move(err)); }\n")})
            .empty());
    EXPECT_TRUE(
        run({snippet("src/core/solver.cpp",
                     "void f() { throw std::runtime_error(\"x\"); }\n")})
            .empty());
}

// ---------------------------------------------------------------------
// Layering

std::vector<SourceFile> layeringFixtures() {
    return {fixture("layering/src/geom/ok.hpp"),
            fixture("layering/src/geom/bad.cpp"),
            fixture("layering/src/flow/streak.hpp")};
}

TEST(AnalyzeLayering, UndeclaredUpwardEdgeIsRejected) {
    const LayerSpec spec = parseSpec("geom:\nflow: geom\n");
    const std::vector<Finding> got = run(layeringFixtures(), &spec);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "layering");
    EXPECT_EQ(got[0].line, 2);
    EXPECT_NE(got[0].file.find("geom/bad.cpp"), std::string::npos);
    EXPECT_NE(got[0].message.find("geom -> flow"), std::string::npos);
}

TEST(AnalyzeLayering, ExceptionWaivesOneFileAndRotsWhenUnused) {
    const LayerSpec waived =
        parseSpec("geom:\nflow: geom\nexcept geom/bad.cpp flow\n");
    EXPECT_TRUE(run(layeringFixtures(), &waived).empty());

    const LayerSpec stale =
        parseSpec("geom:\nflow: geom\nexcept geom/gone.cpp flow\n");
    const std::vector<Finding> got =
        run({fixture("layering/src/geom/ok.hpp")}, &stale);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "layering");
    EXPECT_NE(got[0].message.find("unused layering exception"),
              std::string::npos);
}

TEST(AnalyzeLayering, UndeclaredModuleIsReported) {
    const LayerSpec spec = parseSpec("geom:\n");
    const std::vector<Finding> got =
        run({snippet("src/mystery/x.cpp", "int x;\n")}, &spec);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "layering");
    EXPECT_NE(got[0].message.find("module 'mystery'"), std::string::npos);
}

TEST(AnalyzeLayering, CyclicSpecShortCircuitsEdgeChecks) {
    const LayerSpec spec = parseSpec("a: b\nb: a\n");
    const std::vector<Finding> got = run(layeringFixtures(), &spec);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rule, "layering");
    EXPECT_NE(got[0].message.find("cycle"), std::string::npos);
}

TEST(AnalyzeLayering, SpecParseErrors) {
    LayerSpec spec;
    std::string error;
    EXPECT_FALSE(parseLayerSpec("geom\n", "bad.txt", &spec, &error));
    EXPECT_NE(error.find("bad.txt:1"), std::string::npos);
    LayerSpec dup;
    EXPECT_FALSE(
        parseLayerSpec("geom: check\ngeom:\n", "bad.txt", &dup, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(AnalyzeLayering, RepoSpecRejectsTheSyntheticEdge) {
    // The checked-in layers.txt that gates src/ must parse, and must
    // reject the fixture's geom -> flow include. (Its deep-audit `except`
    // entries go unused against the fixture tree; filter by file.)
    LayerSpec spec;
    std::string error;
    ASSERT_TRUE(
        parseLayerSpec(slurp(STREAK_REPO_LAYERS), "layers.txt", &spec, &error))
        << error;
    std::vector<Finding> onFixture;
    for (const Finding& f : run(layeringFixtures(), &spec)) {
        if (f.file.find("analyze_fixtures") != std::string::npos) {
            onFixture.push_back(f);
        }
    }
    ASSERT_EQ(onFixture.size(), 1u);
    EXPECT_EQ(onFixture[0].rule, "layering");
    EXPECT_EQ(onFixture[0].line, 2);
    EXPECT_NE(onFixture[0].message.find("geom -> flow"), std::string::npos);
}

// ---------------------------------------------------------------------
// SARIF

TEST(AnalyzeSarif, RoundTripsThroughInTreeJsonParser) {
    const std::vector<Finding> findings = run(
        {fixture("rules/bare_assert.cpp"), fixture("rules/pragma_once.hpp")});
    ASSERT_FALSE(findings.empty());

    std::string error;
    const obs::json::Value doc =
        obs::json::parse(sarifDocument(findings).dump(2), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc.find("version")->asString(), "2.1.0");
    const obs::json::Array& runs = doc.find("runs")->asArray();
    ASSERT_EQ(runs.size(), 1u);
    const obs::json::Value& driver =
        *runs[0].find("tool")->find("driver");
    EXPECT_EQ(driver.find("name")->asString(), "streak_analyze");

    // Every catalog rule is declared, in catalog order.
    const obs::json::Array& rules = driver.find("rules")->asArray();
    ASSERT_EQ(rules.size(), ruleCatalog().size());
    for (size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(rules[i].find("id")->asString(), ruleCatalog()[i].id);
    }

    const obs::json::Array& results = runs[0].find("results")->asArray();
    ASSERT_EQ(results.size(), findings.size());
    for (size_t i = 0; i < results.size(); ++i) {
        const obs::json::Value& r = results[i];
        EXPECT_EQ(r.find("ruleId")->asString(), findings[i].rule);
        EXPECT_EQ(r.find("level")->asString(), "error");
        EXPECT_EQ(r.find("message")->find("text")->asString(),
                  findings[i].message);
        const size_t ruleIndex =
            static_cast<size_t>(r.find("ruleIndex")->asNumber());
        ASSERT_LT(ruleIndex, rules.size());
        EXPECT_EQ(rules[ruleIndex].find("id")->asString(), findings[i].rule);
        const obs::json::Value& phys =
            *r.find("locations")->asArray()[0].find("physicalLocation");
        EXPECT_EQ(phys.find("artifactLocation")->find("uri")->asString(),
                  findings[i].file);
        EXPECT_EQ(static_cast<int>(
                      phys.find("region")->find("startLine")->asNumber()),
                  findings[i].line);
    }
}

TEST(AnalyzeSarif, CleanRunStillDeclaresTheCatalog) {
    std::string error;
    const obs::json::Value doc =
        obs::json::parse(sarifDocument({}).dump(), &error);
    ASSERT_TRUE(error.empty()) << error;
    const obs::json::Array& runs = doc.find("runs")->asArray();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_TRUE(runs[0].find("results")->asArray().empty());
    EXPECT_EQ(runs[0]
                  .find("tool")
                  ->find("driver")
                  ->find("rules")
                  ->asArray()
                  .size(),
              ruleCatalog().size());
}

}  // namespace
}  // namespace streak::analyze
