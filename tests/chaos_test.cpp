// Chaos suite (DESIGN.md "Robustness", check.sh stage 9): sweep every
// cataloged fault site across the shrunk synth suites with a seeded
// fault schedule and assert the flow's fault-tolerance contract — every
// run either returns an audited-clean solution (possibly degraded) or a
// structured StreakError. Never a crash, never a raw foreign exception.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "check/audit.hpp"
#include "flow/report.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "obs/json.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace streak {
namespace {

/// Shrunk synth suites (the golden_flow_test shrink, reduced further):
/// small enough that the full sites x suites sweep runs in seconds.
gen::SuiteSpec chaosSpec(int suite) {
    gen::SuiteSpec spec = gen::synthSpec(suite);
    spec.numGroups = 3;
    spec.gridWidth = 32;
    spec.gridHeight = 32;
    spec.numBlockages = spec.numBlockages < 2 ? spec.numBlockages : 2;
    return spec;
}

/// Sites that only execute under the ILP solver; everything else is
/// reachable from the default primal-dual configuration.
bool needsIlpSolver(const std::string& site) {
    return site == "ilp/solve" || site == "lp/solve" || site == "bnb/node";
}

class ChaosSweep : public ::testing::Test {
protected:
    void SetUp() override {
        if (!robust::faultInjectionCompiled()) {
            GTEST_SKIP() << "STREAK_FAULTS=0 in this build";
        }
        robust::disarmFaults();
    }
    void TearDown() override { robust::disarmFaults(); }
};

TEST_F(ChaosSweep, EveryFaultSiteOnEverySuiteEndsInAuditedStateOrError) {
    for (const std::string& site : robust::faultSiteCatalog()) {
        for (int suite = 1; suite <= 7; ++suite) {
            SCOPED_TRACE(site + " on synth" + std::to_string(suite));
            // Seeded, deterministic schedule: the hit index depends only
            // on (site, suite), so a failure here reproduces exactly.
            robust::armFaultFromSeed(
                site, static_cast<unsigned long>(suite) * 131 + 7);

            const Design d = gen::generate(chaosSpec(suite));
            // io/read fires on the file-format path, not inside the
            // flow: exercise it via a write/read roundtrip.
            if (site == "io/read") {
                std::stringstream ss;
                io::writeDesign(d, ss);
                try {
                    const Design loaded = io::readDesign(ss);
                    EXPECT_EQ(loaded.numNets(), d.numNets());
                } catch (const robust::StreakException& e) {
                    EXPECT_EQ(e.error().kind,
                              robust::ErrorKind::FaultInjected);
                }
                robust::disarmFaults();
                continue;
            }

            StreakOptions opts;
            opts.postOptimize = true;
            if (needsIlpSolver(site)) {
                opts.solver = SolverKind::Ilp;
                opts.ilpTimeLimitSeconds = 2.0;
            }
            const FlowResult res = runStreak(d, opts);
            if (res.ok()) {
                // Clean or degraded: the output must audit clean.
                const StreakResult& r = res.value();
                const check::AuditResult audit =
                    check::auditRoutedDesign(r.problem, r.routed);
                EXPECT_TRUE(audit.ok()) << audit.summary();
                if (r.degraded()) {
                    for (const robust::Degradation& deg : r.degradations) {
                        EXPECT_FALSE(deg.rung.empty());
                        EXPECT_FALSE(deg.stage.empty());
                    }
                }
            } else {
                // The only acceptable failure from an injected fault is
                // the structured fault-injected error itself.
                EXPECT_EQ(res.error().kind, robust::ErrorKind::FaultInjected)
                    << res.error().describe();
                EXPECT_FALSE(res.error().stage.empty());
            }
            robust::disarmFaults();
        }
    }
}

TEST_F(ChaosSweep, SolveStageFaultDegradesToThePdResult) {
    // Deterministic ladder check: an ILP-stage fault with a PD warm
    // start must fall back to the warm solution, not fail the run.
    robust::armFault("ilp/solve", /*hitIndex=*/0);
    const Design d = gen::generate(chaosSpec(1));
    StreakOptions opts;
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 2.0;
    const FlowResult res = runStreak(d, opts);
    ASSERT_TRUE(res.ok()) << res.error().describe();
    const StreakResult& r = res.value();
    ASSERT_TRUE(r.degraded());
    std::set<std::string> rungs;
    for (const robust::Degradation& deg : r.degradations) {
        rungs.insert(deg.rung);
    }
    EXPECT_TRUE(rungs.contains("solve.ilp_to_pd"));
    EXPECT_TRUE(r.hitTimeLimit);  // degraded solve reports its limit
    const check::AuditResult audit =
        check::auditRoutedDesign(r.problem, r.routed);
    EXPECT_TRUE(audit.ok()) << audit.summary();
    EXPECT_GT(r.metrics.routedBits, 0);
}

TEST_F(ChaosSweep, RecoveryPolicyOffTurnsTheRungIntoAnError)
{
    robust::armFault("ilp/solve", /*hitIndex=*/0);
    const Design d = gen::generate(chaosSpec(1));
    StreakOptions opts;
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 2.0;
    opts.recovery.ilpFallbackToPd = false;
    const FlowResult res = runStreak(d, opts);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, robust::ErrorKind::FaultInjected);
    EXPECT_EQ(res.error().stage, stage::kSolve);
}

/// The rung strings the run report's "robust" section lists for a run.
std::set<std::string> reportedRungs(const Design& d,
                                    const StreakOptions& opts,
                                    const StreakResult& r) {
    const obs::json::Value report = flow::buildRunReport(d, opts, r);
    const obs::json::Value* robustSec = report.find("robust");
    EXPECT_NE(robustSec, nullptr);
    std::set<std::string> rungs;
    if (robustSec == nullptr) return rungs;
    EXPECT_TRUE(robustSec->find("degraded")->asBool());
    for (const obs::json::Value& deg :
         robustSec->find("degradations")->asArray()) {
        EXPECT_FALSE(deg.find("stage")->asString().empty());
        EXPECT_FALSE(deg.find("message")->asString().empty());
        rungs.insert(deg.find("rung")->asString());
    }
    return rungs;
}

TEST_F(ChaosSweep, PostRefineFaultTakesTheRollbackRung) {
    // Force the ladder's last rung: a fault inside the refinement wave
    // loop must restore the pre-post routing, record post.rolled_back,
    // surface it in the report's robust section — and still audit clean.
    bool rungSeen = false;
    for (int suite = 1; suite <= 7 && !rungSeen; ++suite) {
        robust::armFault("post/refine", /*hitIndex=*/0);
        const Design d = gen::generate(chaosSpec(suite));
        StreakOptions opts;
        opts.postOptimize = true;
        const FlowResult res = runStreak(d, opts);
        ASSERT_TRUE(res.ok()) << res.error().describe();
        const StreakResult& r = res.value();
        for (const robust::Degradation& deg : r.degradations) {
            if (deg.rung != "post.rolled_back") continue;
            rungSeen = true;
            EXPECT_EQ(deg.stage, stage::kPost);
            EXPECT_TRUE(reportedRungs(d, opts, r).contains(
                "post.rolled_back"));
            const check::AuditResult audit =
                check::auditRoutedDesign(r.problem, r.routed);
            EXPECT_TRUE(audit.ok()) << audit.summary();
            // Rolled-back output is the pre-post routing, so the distance
            // flags must be internally consistent with the counters.
            int flagged = 0;
            for (const char f : r.groupDistanceAfter) flagged += f != 0;
            EXPECT_EQ(flagged, r.distanceViolationsAfter);
        }
        robust::disarmFaults();
    }
    // The refinement loop only runs when some suite has violations to
    // refine; the shrunk suites are built so at least one does.
    EXPECT_TRUE(rungSeen) << "no suite reached the refinement wave loop";
}

TEST_F(ChaosSweep, PostRollbackPolicyOffTurnsTheFaultIntoExitCode6) {
    bool errorSeen = false;
    for (int suite = 1; suite <= 7 && !errorSeen; ++suite) {
        robust::armFault("post/refine", /*hitIndex=*/0);
        const Design d = gen::generate(chaosSpec(suite));
        StreakOptions opts;
        opts.postOptimize = true;
        opts.recovery.postRollback = false;
        const FlowResult res = runStreak(d, opts);
        if (!res.ok()) {
            errorSeen = true;
            EXPECT_EQ(res.error().kind, robust::ErrorKind::FaultInjected);
            EXPECT_EQ(res.error().stage, stage::kPost);
            EXPECT_EQ(robust::exitCodeFor(res.error().kind), 6);
        }
        robust::disarmFaults();
    }
    EXPECT_TRUE(errorSeen) << "no suite reached the refinement wave loop";
}

TEST_F(ChaosSweep, DistanceFaultTakesTheSkipRung) {
    robust::armFault("distance/analyze", /*hitIndex=*/0);
    const Design d = gen::generate(chaosSpec(2));
    StreakOptions opts;
    opts.postOptimize = true;
    const FlowResult res = runStreak(d, opts);
    ASSERT_TRUE(res.ok()) << res.error().describe();
    const StreakResult& r = res.value();
    ASSERT_TRUE(r.degraded());
    EXPECT_TRUE(reportedRungs(d, opts, r).contains("distance.skipped"));
    // The skipped stage reports zero violations and all-clean flags
    // sized to the design, not empty vectors.
    EXPECT_EQ(r.distanceViolationsBefore, 0);
    EXPECT_EQ(r.distanceViolationsAfter, 0);
    EXPECT_EQ(r.groupDistanceAfter.size(),
              static_cast<size_t>(d.numGroups()));
}

TEST_F(ChaosSweep, DistanceSkipPolicyOffTurnsTheFaultIntoExitCode6) {
    robust::armFault("distance/analyze", /*hitIndex=*/0);
    const Design d = gen::generate(chaosSpec(2));
    StreakOptions opts;
    opts.postOptimize = true;
    opts.recovery.distanceSkipOnFailure = false;
    const FlowResult res = runStreak(d, opts);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, robust::ErrorKind::FaultInjected);
    EXPECT_EQ(res.error().stage, stage::kDistance);
    EXPECT_EQ(robust::exitCodeFor(res.error().kind), 6);
}

TEST(ChaosDeadline, ImmediateDeadlineFailsStructurally) {
    // A deadline that expires before the first checkpoint: no partial
    // solution exists yet, so the run must fail with deadline-expired —
    // not crash, not return an unaudited result.
    const Design d = gen::generate(chaosSpec(5));
    StreakOptions opts;
    opts.deadlineSeconds = 1e-9;
    opts.postOptimize = true;
    const FlowResult res = runStreak(d, opts);
    if (res.ok()) {
        // Conceivable only if the whole run fit under the clock tick.
        EXPECT_GE(res.value().metrics.routedBits, 0);
    } else {
        EXPECT_EQ(res.error().kind, robust::ErrorKind::DeadlineExpired);
    }
}

TEST(ChaosDeadline, GenerousDeadlineChangesNothing) {
    const Design d = gen::generate(chaosSpec(3));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult plain = runStreak(d, opts).value();
    opts.deadlineSeconds = 3600.0;
    const StreakResult timed = runStreak(d, opts).value();
    EXPECT_EQ(plain.metrics.wirelength, timed.metrics.wirelength);
    EXPECT_EQ(plain.metrics.routedBits, timed.metrics.routedBits);
    EXPECT_FALSE(timed.degraded());
}

}  // namespace
}  // namespace streak
