#include "post/ripup.hpp"

#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(Ripup, NoopWhenEverythingRouted) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    const std::vector<int> before = sol.chosen;
    const post::RipupResult r = post::ripupAndReroute(prob, &sol);
    EXPECT_EQ(r.objectsRecovered, 0);
    EXPECT_EQ(r.objectsRipped, 0);
    EXPECT_EQ(sol.chosen, before);
}

TEST(Ripup, RecoversDirectFitAfterFreedCapacity) {
    // Two identical single-bit groups on a capacity-1 corridor: PD routes
    // one and skips the other. Rip-up must rip the winner and... both
    // cannot fit; it must end capacity-clean either way.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "a"),
         testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "b")},
        32, 32, 2, 1);
    // Only one horizontal layer of capacity 1 on the shared row and no
    // alternate rows: block everything except y = 4.
    for (int y = 0; y < 32; ++y) {
        if (y == 4) continue;
        d.grid.addBlockage({{0, y}, {31, y}}, 0, 0);
    }
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    post::ripupAndReroute(prob, &sol);
    const RoutedDesign rd = materialize(prob, sol);
    EXPECT_EQ(rd.usage.totalOverflow(), 0);
    // At most one of the two coincident objects can hold the track.
    int routed = 0;
    for (const int c : sol.chosen) routed += c >= 0 ? 1 : 0;
    EXPECT_EQ(routed, 1);
}

TEST(Ripup, StaysCapacityCleanOnCongestedSuite) {
    const Design d = gen::makeSynth(6);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    int routedBefore = 0;
    for (const int c : sol.chosen) routedBefore += c >= 0 ? 1 : 0;
    const post::RipupResult r = post::ripupAndReroute(prob, &sol);
    const RoutedDesign rd = materialize(prob, sol);
    EXPECT_EQ(rd.usage.totalOverflow(), 0);
    EXPECT_EQ(rd.usage.totalViaOverflow(), 0);
    // Accounting consistency.
    EXPECT_GE(r.objectsRecovered, 0);
    EXPECT_LE(r.objectsLost, r.objectsRipped);
}

TEST(Ripup, DeterministicAcrossRuns) {
    const Design d = gen::makeSynth(6);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution a = solvePrimalDual(prob).solution;
    RoutingSolution b = a;
    post::ripupAndReroute(prob, &a);
    post::ripupAndReroute(prob, &b);
    EXPECT_EQ(a.chosen, b.chosen);
}

TEST(Ripup, ObjectiveMatchesChosenAssignment) {
    const Design d = gen::makeSynth(1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutingSolution sol = solvePrimalDual(prob).solution;
    post::ripupAndReroute(prob, &sol);
    EXPECT_DOUBLE_EQ(sol.objective, solutionObjective(prob, sol.chosen));
}

}  // namespace
}  // namespace streak
