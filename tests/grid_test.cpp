#include "grid/routing_grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace streak::grid {
namespace {

TEST(RoutingGrid, AlternatingLayerDirections) {
    const RoutingGrid g(8, 8, 4, 10);
    EXPECT_EQ(g.layerDir(0), Dir::Horizontal);
    EXPECT_EQ(g.layerDir(1), Dir::Vertical);
    EXPECT_EQ(g.layerDir(2), Dir::Horizontal);
    EXPECT_EQ(g.layerDir(3), Dir::Vertical);
    EXPECT_EQ(g.layersOf(Dir::Horizontal), (std::vector<int>{0, 2}));
    EXPECT_EQ(g.layersOf(Dir::Vertical), (std::vector<int>{1, 3}));
}

TEST(RoutingGrid, EdgeCountPerLayer) {
    const RoutingGrid g(5, 3, 2, 1);
    // Horizontal layer: (5-1)*3 = 12 edges; vertical: 5*(3-1) = 10.
    EXPECT_EQ(g.numEdges(), 22);
}

TEST(RoutingGrid, EdgeIdsAreUniqueAndInvertible) {
    const RoutingGrid g(6, 4, 3, 2);
    std::set<int> ids;
    for (int l = 0; l < g.numLayers(); ++l) {
        for (int y = 0; y < g.height(); ++y) {
            for (int x = 0; x < g.width(); ++x) {
                if (!g.validEdge(l, x, y)) continue;
                const int e = g.edgeId(l, x, y);
                EXPECT_TRUE(ids.insert(e).second) << "duplicate id " << e;
                const auto c = g.edgeCoord(e);
                EXPECT_EQ(c.layer, l);
                EXPECT_EQ(c.x, x);
                EXPECT_EQ(c.y, y);
            }
        }
    }
    EXPECT_EQ(static_cast<int>(ids.size()), g.numEdges());
}

TEST(RoutingGrid, ValidEdgeRespectsDirectionBounds) {
    const RoutingGrid g(4, 4, 2, 1);
    EXPECT_TRUE(g.validEdge(0, 2, 3));   // horizontal: x < w-1
    EXPECT_FALSE(g.validEdge(0, 3, 3));  // x == w-1 is out
    EXPECT_TRUE(g.validEdge(1, 3, 2));   // vertical: y < h-1
    EXPECT_FALSE(g.validEdge(1, 3, 3));
    EXPECT_FALSE(g.validEdge(2, 0, 0));  // layer out of range
}

TEST(RoutingGrid, BlockageReducesCapacity) {
    RoutingGrid g(8, 8, 2, 10);
    g.addBlockage({{2, 2}, {4, 4}}, 0, 1);
    EXPECT_EQ(g.capacity(g.edgeId(0, 3, 3)), 1);
    EXPECT_EQ(g.capacity(g.edgeId(0, 5, 3)), 10);
    EXPECT_EQ(g.capacity(g.edgeId(1, 3, 3)), 10);  // other layer untouched
}

TEST(RoutingGrid, BlockageNeverRaisesCapacity) {
    RoutingGrid g(8, 8, 2, 3);
    g.addBlockage({{0, 0}, {7, 7}}, 0, 5);
    EXPECT_EQ(g.capacity(g.edgeId(0, 1, 1)), 3);
}

TEST(RoutingGrid, EdgesOnSegment) {
    const RoutingGrid g(8, 8, 2, 10);
    const auto h = g.edgesOnSegment({{1, 3}, {4, 3}}, 0);
    EXPECT_EQ(h.size(), 3u);
    const auto v = g.edgesOnSegment({{2, 6}, {2, 1}}, 1);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_TRUE(g.edgesOnSegment({{2, 2}, {2, 2}}, 0).empty());
}

TEST(RoutingGrid, RejectsDegenerateDimensions) {
    EXPECT_THROW(RoutingGrid(1, 8, 2, 1), std::invalid_argument);
    EXPECT_THROW(RoutingGrid(8, 8, 1, 1), std::invalid_argument);
}

TEST(EdgeUsage, TracksOverflow) {
    RoutingGrid g(4, 4, 2, 2);
    EdgeUsage u(g);
    const int e = g.edgeId(0, 1, 1);
    EXPECT_EQ(u.totalOverflow(), 0);
    u.add(e, 2);
    EXPECT_EQ(u.remaining(e), 0);
    EXPECT_EQ(u.totalOverflow(), 0);
    u.add(e, 3);
    EXPECT_EQ(u.totalOverflow(), 3);
    EXPECT_EQ(u.overflowedEdges(), 1);
    u.remove(e, 4);
    EXPECT_EQ(u.usage(e), 1);
    EXPECT_EQ(u.totalOverflow(), 0);
}

TEST(EdgeUsage, ClearResets) {
    RoutingGrid g(4, 4, 2, 2);
    EdgeUsage u(g);
    u.add(g.edgeId(0, 0, 0), 5);
    u.clear();
    EXPECT_EQ(u.usage(g.edgeId(0, 0, 0)), 0);
}

}  // namespace
}  // namespace streak::grid
