#include "core/equiv.hpp"

#include <gtest/gtest.h>

#include "core/backbone.hpp"
#include "core/identify.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

struct Case {
    SignalGroup group;
    RoutingObject object;
};

Case makeCase(const std::vector<Point>& pattern, int width, int dx, int dy) {
    Case c;
    c.group = testutil::makeBusGroup(pattern, width, dx, dy);
    auto objects = identifyObjects(c.group, 0);
    EXPECT_EQ(objects.size(), 1u);
    c.object = objects[0];
    return c;
}

TEST(EquivalentTopology, TranslatedBitsGetTranslatedCopies) {
    Case c = makeCase({{0, 0}, {8, 0}, {8, 5}}, 4, 0, 1);
    const auto backbones = generateBackbones(c.group, c.object);
    ASSERT_FALSE(backbones.empty());
    const steiner::Topology& bb = backbones.front();
    for (int k = 0; k < c.object.width(); ++k) {
        const steiner::Topology t =
            equivalentTopology(bb, c.group, c.object, k);
        EXPECT_TRUE(t.connected()) << "bit " << k;
        EXPECT_EQ(t.wirelength(), bb.wirelength());
        EXPECT_EQ(t.bendCount(), bb.bendCount());
        // Pins are the member bit's own pins.
        const Bit& bit = c.group.bits[static_cast<size_t>(
            c.object.bitIndices[static_cast<size_t>(k)])];
        EXPECT_EQ(t.pins(), bit.pins);
    }
}

TEST(EquivalentTopology, StretchedBitKeepsStructure) {
    // Two isomorphic bits with different sink distances.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {6, 0}, {6, 4}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {10, 1}, {10, 8}}));
    auto objects = identifyObjects(g, 0);
    ASSERT_EQ(objects.size(), 1u);
    const auto backbones = generateBackbones(g, objects[0]);
    ASSERT_FALSE(backbones.empty());
    for (int k = 0; k < 2; ++k) {
        const steiner::Topology t =
            equivalentTopology(backbones[0], g, objects[0], k);
        EXPECT_TRUE(t.connected());
        // Same number of bends: equivalent structure despite stretching.
        EXPECT_EQ(t.bendCount(), backbones[0].bendCount());
        for (const int d : t.sourceToSinkDistances()) EXPECT_GE(d, 0);
    }
}

TEST(EquivalentTopology, RepresentativeGetsBackboneItself) {
    Case c = makeCase({{0, 0}, {7, 3}}, 5, 0, 1);
    const auto backbones = generateBackbones(c.group, c.object);
    const steiner::Topology t = equivalentTopology(
        backbones[0], c.group, c.object, c.object.representativeBit);
    EXPECT_EQ(t.wireHash(), backbones[0].wireHash());
}

TEST(EquivalentTopologies, OneTopologyPerBit) {
    Case c = makeCase({{0, 0}, {9, 0}}, 6, 0, 1);
    const auto backbones = generateBackbones(c.group, c.object);
    const auto topos = equivalentTopologies(backbones[0], c.group, c.object);
    ASSERT_EQ(topos.size(), 6u);
    // Parallel tracks: bit k is bit 0 translated by (0, k).
    for (size_t k = 1; k < topos.size(); ++k) {
        EXPECT_EQ(topos[k].wireHash(),
                  topos[0].translate(0, static_cast<int>(k)).wireHash());
    }
}

TEST(EquivalentTopology, MultipinBackboneAllPinsReached) {
    Case c = makeCase({{0, 0}, {10, 0}, {10, 6}, {4, 6}, {0, 8}}, 3, 1, 0);
    const auto backbones = generateBackbones(c.group, c.object);
    for (const steiner::Topology& bb : backbones) {
        for (int k = 0; k < c.object.width(); ++k) {
            const steiner::Topology t =
                equivalentTopology(bb, c.group, c.object, k);
            EXPECT_TRUE(t.connected());
            for (const int d : t.sourceToSinkDistances()) EXPECT_GE(d, 0);
        }
    }
}

TEST(GenerateBackbones, AreTreesOverRepresentativePins) {
    Case c = makeCase({{0, 0}, {12, 0}, {12, 9}, {5, 9}}, 4, 0, 1);
    const auto backbones = generateBackbones(c.group, c.object);
    ASSERT_FALSE(backbones.empty());
    const int repBit = c.object.bitIndices[static_cast<size_t>(
        c.object.representativeBit)];
    for (const steiner::Topology& bb : backbones) {
        EXPECT_TRUE(bb.isTree());
        EXPECT_EQ(bb.pins(),
                  c.group.bits[static_cast<size_t>(repBit)].pins);
    }
}

TEST(GenerateBackbones, HonorsMaxBackbones) {
    Case c = makeCase({{0, 0}, {12, 3}, {6, 9}}, 3, 0, 1);
    BackboneOptions opts;
    opts.maxBackbones = 2;
    const auto backbones = generateBackbones(c.group, c.object, opts);
    EXPECT_LE(backbones.size(), 2u);
    EXPECT_GE(backbones.size(), 1u);
}

}  // namespace
}  // namespace streak
