// Tests for the two selection engines (primal-dual and ILP) and the
// shared problem/solution plumbing.
#include <gtest/gtest.h>

#include "core/ilp_router.hpp"
#include "core/pd_solver.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

Design simpleDesign() {
    return testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 4, 0, 1, "a"),
         testutil::makeBusGroup({{4, 20}, {14, 20}, {14, 26}}, 3, 0, 1, "b")},
        32, 32, 4, 10);
}

/// Check no capacity is exceeded by the chosen candidates.
void expectCapacityClean(const RoutingProblem& prob,
                         const RoutingSolution& sol) {
    const RoutedDesign rd = materialize(prob, sol);
    EXPECT_EQ(rd.usage.totalOverflow(), 0);
}

TEST(BuildProblem, ObjectsAndCandidatesPopulated) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    EXPECT_EQ(prob.numObjects(), 2);
    for (const auto& cands : prob.candidates) {
        EXPECT_FALSE(cands.empty());
    }
    EXPECT_EQ(prob.groupObjects.size(), 2u);
}

TEST(BuildProblem, PairBlocksOnlyWithinGroups) {
    Design d = simpleDesign();
    // Split group 0 into two styles -> two objects in one group.
    d.groups[0].bits[2].pins[1] = {2 + 10, 4 + 2 + 6};
    d.groups[0].bits[3].pins[1] = {2 + 10, 4 + 3 + 6};
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    EXPECT_EQ(prob.numObjects(), 3);
    ASSERT_EQ(prob.pairBlocks.size(), 1u);
    const PairBlock& pb = prob.pairBlocks[0];
    EXPECT_EQ(prob.objects[static_cast<size_t>(pb.objA)].groupIndex,
              prob.objects[static_cast<size_t>(pb.objB)].groupIndex);
}

TEST(PrimalDual, RoutesEverythingWhenUncongested) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    for (const int c : r.solution.chosen) EXPECT_GE(c, 0);
    expectCapacityClean(prob, r.solution);
}

TEST(PrimalDual, ObjectiveAtLeastLowerBound) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    EXPECT_GE(r.solution.objective, prob.costLowerBound() - 1e-9);
}

TEST(PrimalDual, RespectsCapacityUnderPressure) {
    // Two groups forced through the same corridor with tiny capacity.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 10}, {22, 10}}, 6, 0, 1, "a"),
         testutil::makeBusGroup({{2, 10}, {22, 10}}, 6, 0, 1, "b")},
        32, 32, 2, 3);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, OptimalOnSimpleDesign) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult r = solveIlpRouting(prob, 30.0);
    EXPECT_FALSE(r.hitTimeLimit);
    for (const int c : r.solution.chosen) EXPECT_GE(c, 0);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, NeverWorseThanPrimalDual) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult pd = solvePrimalDual(prob);
    const IlpRouteResult ilp = solveIlpRouting(prob, 30.0);
    if (!ilp.hitTimeLimit) {
        EXPECT_LE(ilp.solution.objective, pd.solution.objective + 1e-6);
    }
}

TEST(IlpRouter, CapacityForcesLayerSpread) {
    // One wide group on a 2-layer grid with capacity < width: the
    // remaining bits cannot fit, some objects stay unrouted rather than
    // overflowing.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 10}, {26, 10}}, 8, 0, 0, "stack")},
        32, 32, 2, 3);
    // dx = dy = 0: all 8 bits are coincident -> all demand on one track.
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult r = solveIlpRouting(prob, 30.0);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, DecomposesIndependentComponents) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult r = solveIlpRouting(prob, 30.0);
    EXPECT_EQ(r.components, 2);
}

TEST(IlpRouter, ZeroCandidateComponentLeavesObjectUnrouted) {
    // A component whose objects have no candidates at all must not break
    // the budget split (its weight is 0) or the model build: the object
    // simply stays unrouted (slack = 1) and everything else solves.
    const Design d = simpleDesign();
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    prob.candidates[0].clear();
    const IlpRouteResult r = solveIlpRouting(prob, 10.0);
    EXPECT_EQ(r.solution.chosen[0], -1);
    EXPECT_GE(r.solution.chosen[1], 0);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, SingleComponentOwnsTheWholeBudget) {
    // Split the only group into two style objects: same-group objects
    // always interact through pair costs, so the whole problem collapses
    // into a single component that owns the entire time budget.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 4, 0, 1, "a")}, 32, 32, 4,
        10);
    d.groups[0].bits[2].pins[1] = {12, 12};
    d.groups[0].bits[3].pins[1] = {12, 13};
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_GT(prob.numObjects(), 1);
    const IlpRouteResult r = solveIlpRouting(prob, 10.0);
    EXPECT_EQ(r.components, 1);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, ExpiredBudgetKeepsTheWarmStart) {
    // timeLimitSeconds = 0: every component's deterministic budget share
    // is already spent, so branch-and-bound must immediately fall back
    // to the warm start — a valid (degraded) solution, never a crash.
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult warm = solvePrimalDual(prob);
    const IlpRouteResult r = solveIlpRouting(prob, 0.0, &warm.solution);
    EXPECT_TRUE(r.hitTimeLimit);
    EXPECT_EQ(r.solution.chosen, warm.solution.chosen);
    expectCapacityClean(prob, r.solution);
}

TEST(IlpRouter, ExpiredBudgetWithoutWarmStartLeavesAllUnrouted) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult r = solveIlpRouting(prob, 0.0);
    EXPECT_TRUE(r.hitTimeLimit);
    for (const int c : r.solution.chosen) EXPECT_EQ(c, -1);
    expectCapacityClean(prob, r.solution);
}

TEST(SolutionObjective, CountsMAndPairTerms) {
    const Design d = simpleDesign();
    StreakOptions opts;
    const RoutingProblem prob = buildProblem(d, opts);
    std::vector<int> allUnrouted(static_cast<size_t>(prob.numObjects()), -1);
    EXPECT_DOUBLE_EQ(solutionObjective(prob, allUnrouted),
                     opts.nonRoutePenaltyM * prob.numObjects());
}

TEST(Materialize, EveryBitRoutedOrListed) {
    const Design d = simpleDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    const RoutedDesign rd = materialize(prob, r.solution);
    EXPECT_EQ(rd.routedBits() + static_cast<int>(rd.unroutedMembers.size()),
              d.numNets());
    // Usage equals the sum of per-bit edge demands.
    long used = 0;
    for (int e = 0; e < d.grid.numEdges(); ++e) used += rd.usage.usage(e);
    long wl = 0;
    for (const RoutedBit& b : rd.bits) wl += b.topo.wirelength();
    EXPECT_EQ(used, wl);
}

}  // namespace
}  // namespace streak
