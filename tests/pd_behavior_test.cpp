// Behavioural tests of the primal-dual selection: pair costs steer group
// mates towards shared topologies, capacities prune, and the s_i
// mechanism kicks in exactly when a candidate set drains.
#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(PdBehavior, ObjectWithoutCandidatesIsSkippedNotCrashed) {
    // Capacity 0 grid: no candidates exist at all.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 2, 0, 1)});
    for (int e = 0; e < d.grid.numEdges(); ++e) d.grid.setCapacity(e, 0);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    for (const int c : r.solution.chosen) EXPECT_EQ(c, -1);
    EXPECT_DOUBLE_EQ(r.solution.objective,
                     prob.opts.nonRoutePenaltyM * prob.numObjects());
}

TEST(PdBehavior, PairCostSteersLayerAgreement) {
    // Two objects of one group: without pair costs each would pick its
    // own cheapest layers; the pairLayerWeight pulls them together.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 4, 0, 1)}, 32, 32, 6, 10);
    // Split into two styles.
    d.groups[0].bits[2].pins[1] = {12, 12};
    d.groups[0].bits[3].pins[1] = {12, 13};
    StreakOptions opts;
    opts.pairLayerWeight = 50.0;  // dominate everything else
    const RoutingProblem prob = buildProblem(d, opts);
    ASSERT_EQ(prob.numObjects(), 2);
    const PdResult r = solvePrimalDual(prob);
    ASSERT_GE(r.solution.chosen[0], 0);
    ASSERT_GE(r.solution.chosen[1], 0);
    const RouteCandidate& a =
        prob.candidates[0][static_cast<size_t>(r.solution.chosen[0])];
    const RouteCandidate& b =
        prob.candidates[1][static_cast<size_t>(r.solution.chosen[1])];
    EXPECT_EQ(a.hLayer, b.hLayer);
    EXPECT_EQ(a.vLayer, b.vLayer);
}

TEST(PdBehavior, IterationCountMatchesRoutedObjects) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 3, 0, 1, "a"),
         testutil::makeBusGroup({{2, 20}, {12, 20}}, 3, 0, 1, "b")});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    int routed = 0;
    for (const int c : r.solution.chosen) routed += c >= 0 ? 1 : 0;
    EXPECT_EQ(r.iterations, routed);
}

TEST(PdBehavior, DualBoundBelowPrimalObjective) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}, {12, 10}}, 5, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    EXPECT_LE(r.dualBound, r.solution.objective + 1e-9);
}

TEST(PdBehavior, CapacityExhaustionFallsBackToOtherLayers) {
    // Saturate layer 0 along the bus row; PD must pick the other H layer.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 2, 0, 1)}, 32, 32, 4, 2);
    for (int x = 0; x < 31; ++x) {
        for (int y = 3; y < 7; ++y) {
            d.grid.setCapacity(d.grid.edgeId(0, x, y), 0);
        }
    }
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const PdResult r = solvePrimalDual(prob);
    for (size_t i = 0; i < prob.candidates.size(); ++i) {
        const int c = r.solution.chosen[i];
        ASSERT_GE(c, 0);
        EXPECT_EQ(prob.candidates[i][static_cast<size_t>(c)].hLayer, 2);
    }
}

TEST(PdBehavior, PrefersSharedBackboneUnderIrregularityPressure) {
    // Two objects with compatible straight routes; a huge irregularity
    // weight must not make anything unroutable, and the chosen pair must
    // score a finite pair cost (some RCs map).
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {16, 4}}, 4, 0, 1)});
    d.groups[0].bits[2].pins[1] = {16, 10};
    d.groups[0].bits[3].pins[1] = {16, 11};
    StreakOptions opts;
    opts.irregularityWeight = 500.0;
    const RoutingProblem prob = buildProblem(d, opts);
    const PdResult r = solvePrimalDual(prob);
    for (const int c : r.solution.chosen) EXPECT_GE(c, 0);
}

}  // namespace
}  // namespace streak
